/**
 * @file
 * Warm-state persistence format of the scheduling service.
 *
 * encodeState()/decodeState() live on SchedService (svc/service.hh);
 * this header only documents the format and pins its version.
 *
 * The snapshot is line-oriented text with length-framed raw sections
 * (no escaping anywhere):
 *
 *     mvp-warm-state 1
 *     cache <count>
 *     entry <key-bytes> <payload-bytes>
 *     <key bytes>
 *     <payload bytes>
 *     ...
 *     loops <count>
 *     loop <text-bytes>
 *     <canonical loop text>
 *     providers <count>
 *     provider <name> cme <entries>
 *     geom <capacity> <line> <assoc> op <id> set <n> <ids...> \
 *         value <ratio> <ci>
 *     ...
 *     provider <name> oracle <entries>
 *     geom <capacity> <line> <assoc> set <n> <ids...> points <p> \
 *         misses <n values> psm <n> <values...> tags <n> <values...>
 *     ...
 *     end
 *
 * Cache entries are sorted by key, loops by canonical text, providers
 * by name, memo entries by the export APIs' canonical order — so
 * identical service states encode byte-identically, and a
 * save/load/save round trip of the cache section is the identity.
 * Doubles travel as %.17g (lossless for IEEE doubles).
 *
 * Versioning: the leading `mvp-warm-state <version>` line is checked
 * on load; any mismatch is a hard error rather than a guess — warm
 * state is a cache, so the recovery from an old snapshot is simply a
 * cold start. Bump the version whenever a section's shape, order or
 * meaning changes.
 */

#ifndef MVP_SVC_STATE_HH
#define MVP_SVC_STATE_HH

namespace mvp::svc
{

/** Snapshot format version written and accepted by this build. */
constexpr int WARM_STATE_VERSION = 1;

} // namespace mvp::svc

#endif // MVP_SVC_STATE_HH
