/**
 * @file
 * Building a custom multiVLIWprocessor and exploring the bus trade-off.
 *
 * Defines a 3-cluster machine (not one of the Table-1 presets), runs one
 * of the swim kernels over a sweep of register-bus counts and latencies,
 * and prints how II, communications and total cycles respond — the kind
 * of design-space probing the library's machine model is meant for.
 */

#include <cstdio>

#include "cme/solver.hh"
#include "common/table.hh"
#include "common/strutil.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace mvp;

namespace
{

MachineConfig
threeClusterMachine()
{
    MachineConfig m;
    m.name = "custom-3cluster";
    m.nClusters = 3;
    m.intFusPerCluster = 1;
    m.fpFusPerCluster = 2;
    m.memFusPerCluster = 1;
    m.regsPerCluster = 24;
    m.nRegBuses = 1;
    m.regBusLatency = 1;
    m.nMemBuses = 1;
    m.memBusLatency = 2;
    m.totalCacheBytes = 6144;   // 2 KB per cluster
    m.cacheLineBytes = 32;
    m.mshrEntries = 8;
    m.validate();
    return m;
}

} // namespace

int
main()
{
    const auto bench = workloads::makeSwim();
    const auto &nest = bench.loops[2];   // calc2: 7 loads, 1 store
    std::printf("loop: %s (%zu ops, %zu memory refs)\n\n",
                nest.name().c_str(), nest.size(),
                nest.memoryOps().size());

    cme::CmeAnalysis cme(nest);
    TextTable table({"reg buses", "bus latency", "II", "SC", "comms",
                     "maxlive", "compute", "stall", "total"});
    table.setTitle("swim.calc2 on a custom 3-cluster machine (RMCA, "
                   "threshold 0.25)");

    for (int buses : {1, 2, 3}) {
        for (Cycle lat : {1, 2, 4}) {
            auto machine = threeClusterMachine();
            machine.nRegBuses = buses;
            machine.regBusLatency = lat;
            const auto graph = ddg::Ddg::build(nest, machine);
            auto r = sched::scheduleRmca(graph, machine, 0.25, cme);
            if (!r.ok) {
                std::printf("  %d buses @%lld: %s\n", buses,
                            static_cast<long long>(lat),
                            r.error.c_str());
                continue;
            }
            const auto sim =
                sim::simulateLoop(graph, r.schedule, machine);
            int max_live = 0;
            for (int ml : r.schedule.maxLive())
                max_live = std::max(max_live, ml);
            table.addRow({std::to_string(buses), std::to_string(lat),
                          std::to_string(r.schedule.ii()),
                          std::to_string(r.schedule.stageCount()),
                          std::to_string(r.schedule.numComms()),
                          std::to_string(max_live),
                          std::to_string(sim.computeCycles),
                          std::to_string(sim.stallCycles),
                          std::to_string(sim.totalCycles())});
        }
        table.addRule();
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Reading the table: more buses and shorter latencies "
                "let the scheduler reach\nlower IIs before the bus "
                "saturates; a 4-cycle bus forces II >= 4 per\n"
                "concurrent transfer, exactly the reservation-table "
                "behaviour of Section 2.1.\n");
    return 0;
}
