#include "sched/scheduler.hh"

#include <algorithm>
#include <optional>

#include "cme/reuse.hh"
#include "common/logging.hh"
#include "sched/lifetimes.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/ordering.hh"

namespace mvp::sched
{

namespace
{

constexpr double EPS = 1e-9;
constexpr Cycle NO_BOUND = CYCLE_MAX / 4;

/** A register communication the placement under evaluation would add. */
struct NewComm
{
    OpId producer;
    ClusterId from;
    ClusterId to;
    Cycle xferStart;
    std::size_t xferSlot;   ///< xferStart mod II, precomputed
    int bus;
};

/** A candidate placement of one op in one cluster. */
struct Placement
{
    Cycle time = TIME_UNPLACED;
    Cycle outLatency = 0;
    std::vector<NewComm> newComms;
};

/**
 * State of one II attempt.
 *
 * Constructed once per scheduler run and re-armed with reset() for every
 * II bump, so the II search loop performs no per-attempt allocation. All
 * placement-loop scratch state lives in flat, reusable buffers (no
 * per-candidate maps or vectors): cross-cluster communication starts are
 * a dense [op x cluster] table, the inbound / outbound transfer books of
 * one trySlot() call are sparse arrays with an explicit id list, the
 * placed neighbourhood of the op being placed is snapshotted once per
 * place() instead of being re-walked per candidate cluster, and the
 * per-cluster locality base is cached incrementally so the CME layer is
 * queried once per (cluster, candidate) instead of twice.
 */
class Attempt
{
  public:
    Attempt(const ddg::Ddg &graph, const MachineConfig &machine,
            const SchedulerOptions &options)
        : graph_(graph), machine_(machine), options_(options), ii_(1),
          mrt_(machine, 1),
          sched_(1, graph.size(), machine.nClusters),
          geom_(machine.clusterCacheGeom()),
          reuse_(graph.loop())
    {
        // Size the thread-local buffers for this graph/machine; assign()
        // reuses the capacity left by earlier scheduler runs, so a warm
        // thread schedules without heap traffic.
        const auto n = graph.size();
        const auto nc = static_cast<std::size_t>(machine.nClusters);
        is_placed_.assign(n, false);
        if (mem_set_.size() < nc)
            mem_set_.resize(nc);
        override_lat_.assign(n, LAT_NO_OVERRIDE);
        comm_start_.assign(n * nc, CYCLE_MAX);
        in_min_dist_.assign(n, DIST_UNSET);
        in_need_ids_.clear();
        out_budget_.assign(nc, CYCLE_MAX);
        base_miss_.assign(nc, 0.0);
        base_miss_valid_.assign(nc, false);
        affinity_.assign(nc, 0);
    }

    /** Re-arm for a fresh II attempt, reusing every buffer. */
    void reset(Cycle ii)
    {
        ii_ = ii;
        mrt_.reset(ii);
        sched_.reset(ii, graph_.size(), machine_.nClusters);
        std::fill(is_placed_.begin(), is_placed_.end(), false);
        for (auto &set : mem_set_)
            set.clear();
        std::fill(override_lat_.begin(), override_lat_.end(),
                  LAT_NO_OVERRIDE);
        std::fill(comm_start_.begin(), comm_start_.end(), CYCLE_MAX);
        std::fill(in_min_dist_.begin(), in_min_dist_.end(), DIST_UNSET);
        in_need_ids_.clear();
        std::fill(base_miss_valid_.begin(), base_miss_valid_.end(),
                  false);
    }

    /** Place one op; false aborts the attempt (II must grow). */
    bool place(OpId v);

    /**
     * Shift the whole schedule by a multiple of II so that every time
     * is non-negative (placement may have gone below zero; the modulo
     * structure is shift-invariant).
     */
    void normalize();

    /** Final register-pressure check; false aborts the attempt. */
    bool checkRegisters();

    ModuloSchedule takeSchedule() { return std::move(sched_); }

    const std::vector<std::vector<OpId>> &memSets() const
    {
        return mem_set_;
    }

  private:
    /**
     * Snapshot of one placed in-neighbour of the op being placed, with
     * the cluster-independent arithmetic folded in at snapshot time.
     */
    struct InNb
    {
        OpId src;
        int distance;
        bool isReg;
        ClusterId cluster;  ///< producer's cluster
        Cycle iiDist;       ///< II * distance
        Cycle ready;        ///< producer's time + outLatency
        Cycle baseEarly;    ///< early bound without a bus transfer
    };

    /** Snapshot of one placed out-neighbour of the op being placed. */
    struct OutNb
    {
        OpId dst;
        bool isReg;
        ClusterId cluster;  ///< consumer's cluster
        Cycle budget;       ///< consumer's time + II * distance
        Cycle lateNonReg;   ///< budget - edge latency (non-register)
    };

    void snapshotNeighbours(OpId v);
    bool trySlot(OpId v, ClusterId c, Cycle out_lat, Placement &out);
    bool tryCandidate(OpId v, ClusterId c, Cycle t, std::size_t slot,
                      Cycle out_lat, Placement &out);
    void commit(OpId v, ClusterId c, const Placement &p, bool miss);
    double addedMisses(OpId v, ClusterId c);
    void computeAffinities(OpId v);
    int cachedAffinity(OpId v, ClusterId c);
    bool betterCluster(OpId v, ClusterId cand, ClusterId best,
                       double cand_miss, double best_miss, bool use_miss);

    /** Start cycle of the committed transfer of @p u to cluster @p c. */
    Cycle &commStart(OpId u, ClusterId c)
    {
        return comm_start_[static_cast<std::size_t>(u) *
                               static_cast<std::size_t>(
                                   machine_.nClusters) +
                           static_cast<std::size_t>(c)];
    }

    const ddg::Ddg &graph_;
    const MachineConfig &machine_;
    const SchedulerOptions &options_;
    Cycle ii_;
    Mrt mrt_;
    ModuloSchedule sched_;
    CacheGeom geom_;                           ///< per-cluster cache
    cme::ReuseAnalysis reuse_;                 ///< hoisted out of place()
    ir::FuType fu_ = ir::FuType::Int;          ///< FU class of current op
    int out_needed_ = 0;              ///< clusters with an out budget
    bool affinity_valid_ = false;     ///< per-sweep affinity memo flag

    /**
     * Every pure-buffer member below is thread-local and shared by all
     * attempts of the thread: only one Attempt is live per scheduler
     * run, runs never nest, and the constructor (re)sizes each buffer,
     * so a warm thread reaches a steady state with zero heap traffic in
     * the placement loop. (An \c inline \c static member inside an
     * anonymous namespace is still one object per translation unit.)
     */
    inline static thread_local std::vector<char> is_placed_;
    /** Memory ops per cluster. */
    inline static thread_local std::vector<std::vector<OpId>> mem_set_;
    /** [op] override of miss-promoted loads; LAT_NO_OVERRIDE = none. */
    inline static thread_local std::vector<Cycle> override_lat_;
    /** [op x cluster] committed transfer starts; CYCLE_MAX = none. */
    inline static thread_local std::vector<Cycle> comm_start_;

    /** @name place() scratch (rebuilt per op, shared by the sweep) */
    /// @{
    inline static thread_local std::vector<InNb> in_nbs_;
    inline static thread_local std::vector<OutNb> out_nbs_;
    /// @}

    /** @name trySlot() scratch (reset at every call) */
    /// @{
    /** Producers needing a transfer. */
    inline static thread_local std::vector<OpId> in_need_ids_;
    /** [op] min distance; DIST_UNSET = unset. */
    inline static thread_local std::vector<int> in_min_dist_;
    /** [cluster] consumption budget; CYCLE_MAX = unset. */
    inline static thread_local std::vector<Cycle> out_budget_;
    /** Tentative bus reservations. */
    inline static thread_local std::vector<NewComm> reserved_;
    inline static thread_local Placement cur_placement_;
    inline static thread_local Placement best_placement_;
    /// @}

    /** @name Incremental per-cluster locality cache */
    /// @{
    /** missesPerIteration(mem_set_) per cluster. */
    inline static thread_local std::vector<double> base_miss_;
    /** Invalidated on memory-op commit. */
    inline static thread_local std::vector<char> base_miss_valid_;
    /** set + candidate buffer. */
    inline static thread_local std::vector<OpId> with_scratch_;
    /// @}

    /** [cluster] one-walk register-affinity profits. */
    inline static thread_local std::vector<int> affinity_;
};

/**
 * Capture the placed neighbourhood of @p v once per place() call. The
 * cluster sweep evaluates the same op against every cluster (and again
 * for the miss-latency probe); walking the edge table and the placement
 * array once instead of per candidate keeps trySlot() touching only the
 * compact snapshot.
 */
void
Attempt::snapshotNeighbours(OpId v)
{
    in_nbs_.clear();
    out_nbs_.clear();
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.src == v || !is_placed_[static_cast<std::size_t>(e.src)])
            continue;
        const auto &pu = sched_.placed(e.src);
        const Cycle ii_dist = ii_ * e.distance;
        const Cycle ready = pu.time + pu.outLatency;
        const Cycle base_early =
            (e.isRegFlow() ? ready : pu.time + e.latency) - ii_dist;
        in_nbs_.push_back({e.src, e.distance, e.isRegFlow(), pu.cluster,
                           ii_dist, ready, base_early});
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.dst == v || !is_placed_[static_cast<std::size_t>(e.dst)])
            continue;
        const auto &pw = sched_.placed(e.dst);
        const Cycle budget = pw.time + ii_ * e.distance;
        out_nbs_.push_back({e.dst, e.isRegFlow(), pw.cluster, budget,
                            budget - e.latency});
    }
}

bool
Attempt::trySlot(OpId v, ClusterId c, Cycle out_lat, Placement &out)
{
    const Cycle lrb = machine_.regBusLatency;

    // --- Reset the scratch books (cheap: only touched entries). ---
    for (OpId u : in_need_ids_)
        in_min_dist_[static_cast<std::size_t>(u)] = DIST_UNSET;
    in_need_ids_.clear();
    std::fill(out_budget_.begin(), out_budget_.end(), CYCLE_MAX);
    out_needed_ = 0;

    // --- Collect window bounds from the snapshotted neighbours. ---
    Cycle early = 0;
    Cycle late = NO_BOUND;
    const bool has_pred = !in_nbs_.empty();
    const bool has_succ = !out_nbs_.empty();

    // Inbound cross-cluster register values that need a *new* transfer:
    // producer -> tightest arrival budget (t_v + II*min_dist).
    for (const InNb &nb : in_nbs_) {
        if (nb.isReg && nb.cluster != c) {
            if (const Cycle cs = commStart(nb.src, c); cs != CYCLE_MAX) {
                early = std::max(early, cs + lrb - nb.iiDist);
            } else {
                early = std::max(early, nb.ready + lrb - nb.iiDist);
                auto &min_dist =
                    in_min_dist_[static_cast<std::size_t>(nb.src)];
                if (min_dist == DIST_UNSET) {
                    in_need_ids_.push_back(nb.src);
                    min_dist = nb.distance;
                } else {
                    min_dist = std::min(min_dist, nb.distance);
                }
            }
        } else {
            early = std::max(early, nb.baseEarly);
        }
    }
    // Bus reservation order must not depend on edge-visit order.
    if (in_need_ids_.size() > 1)
        std::sort(in_need_ids_.begin(), in_need_ids_.end());

    // Outbound cross-cluster transfers to placed consumers: destination
    // cluster -> tightest consumption budget min(t_w + II*dist).
    for (const OutNb &nb : out_nbs_) {
        if (nb.isReg && nb.cluster != c) {
            auto &b = out_budget_[static_cast<std::size_t>(nb.cluster)];
            if (b == CYCLE_MAX)
                ++out_needed_;
            b = std::min(b, nb.budget);
        } else {
            late = std::min(late,
                            nb.isReg ? nb.budget - out_lat : nb.lateNonReg);
        }
    }
    for (Cycle budget : out_budget_)
        if (budget != CYCLE_MAX)
            late = std::min(late, budget - lrb - out_lat);

    // With placed neighbours on both sides the window [early, late]
    // must be non-empty; one-sided windows are never empty (the scan
    // direction follows the constrained side, times may go negative).
    if (has_pred && has_succ && late < early)
        return false;

    // --- Scan the window in place (at most II slots; SMS direction
    // rule). Times may go negative while scheduling: modulo schedules
    // are shift-invariant, and the attempt normalises by a multiple of
    // II once every node is placed. ---
    if (has_succ && !has_pred) {
        const Cycle hi = std::min(late, NO_BOUND);
        const Cycle lo = hi - ii_ + 1;
        std::size_t s = mrt_.slot(hi);
        for (Cycle t = hi; t >= lo; --t) {
            if (tryCandidate(v, c, t, s, out_lat, out))
                return true;
            s = mrt_.prevSlot(s);
        }
    } else {
        const Cycle hi = std::min(late, early + ii_ - 1);
        if (early <= hi) {
            std::size_t s = mrt_.slot(early);
            for (Cycle t = early; t <= hi; ++t) {
                if (tryCandidate(v, c, t, s, out_lat, out))
                    return true;
                s = mrt_.nextSlot(s);
            }
        }
    }
    return false;
}

/**
 * Evaluate one candidate cycle: FU slot plus tentative bus reservations
 * for every transfer trySlot() booked in the scratch arrays. The
 * reservations are always rolled back — the caller re-applies them on
 * commit; evaluation of other clusters must not hold them.
 */
bool
Attempt::tryCandidate(OpId v, ClusterId c, Cycle t, std::size_t slot,
                      Cycle out_lat, Placement &out)
{
    if (!mrt_.fuFreeAt(slot, c, fu_))
        return false;

    // Fast path: no bus transfer to book, the FU slot alone decides.
    if (in_need_ids_.empty() && out_needed_ == 0) {
        out.time = t;
        out.outLatency = out_lat;
        out.newComms.clear();
        return true;
    }

    const Cycle lrb = machine_.regBusLatency;
    reserved_.clear();
    auto rollback = [&]() {
        for (const auto &nc : reserved_)
            mrt_.releaseBusAt(nc.bus, nc.xferSlot);
        reserved_.clear();
    };
    bool ok = true;

    // Inbound transfers (value of u must reach cluster c).
    for (OpId u : in_need_ids_) {
        const int min_dist = in_min_dist_[static_cast<std::size_t>(u)];
        const auto &pu = sched_.placed(u);
        const Cycle x_min = pu.time + pu.outLatency;
        const Cycle x_max = t + ii_ * min_dist - lrb;
        bool found = false;
        const Cycle hi = std::min(x_max, x_min + ii_ - 1);
        if (x_min <= hi) {
            std::size_t sx = mrt_.slot(x_min);
            for (Cycle x = x_min; x <= hi; ++x) {
                const int bus = mrt_.findFreeBusAt(sx);
                if (bus != BUS_NONE) {
                    mrt_.reserveBusAt(bus, sx);
                    reserved_.push_back({u, pu.cluster, c, x, sx, bus});
                    found = true;
                    break;
                }
                sx = mrt_.nextSlot(sx);
            }
        }
        if (!found) {
            ok = false;
            break;
        }
    }

    // Outbound transfers (v's value must reach consumer clusters).
    if (ok) {
        for (ClusterId dest = 0; dest < machine_.nClusters; ++dest) {
            const Cycle budget =
                out_budget_[static_cast<std::size_t>(dest)];
            if (budget == CYCLE_MAX)
                continue;
            const Cycle x_min = t + out_lat;
            const Cycle x_max = budget - lrb;
            bool found = false;
            const Cycle hi = std::min(x_max, x_min + ii_ - 1);
            if (x_min <= hi) {
                std::size_t sx = mrt_.slot(x_min);
                for (Cycle x = x_min; x <= hi; ++x) {
                    const int bus = mrt_.findFreeBusAt(sx);
                    if (bus != BUS_NONE) {
                        mrt_.reserveBusAt(bus, sx);
                        reserved_.push_back({v, c, dest, x, sx, bus});
                        found = true;
                        break;
                    }
                    sx = mrt_.nextSlot(sx);
                }
            }
            if (!found) {
                ok = false;
                break;
            }
        }
    }

    if (!ok) {
        rollback();
        return false;
    }

    out.time = t;
    out.outLatency = out_lat;
    out.newComms.assign(reserved_.begin(), reserved_.end());
    rollback();
    return true;
}

void
Attempt::commit(OpId v, ClusterId c, const Placement &p, bool miss)
{
    auto &slot = sched_.placed(v);
    slot.cluster = c;
    slot.time = p.time;
    slot.outLatency = p.outLatency;
    slot.missScheduled = miss;
    is_placed_[static_cast<std::size_t>(v)] = true;
    mrt_.placeFu(p.time, c, graph_.loop().op(v).fuType());
    for (const auto &nc : p.newComms) {
        mrt_.reserveBusAt(nc.bus, nc.xferSlot);
        sched_.comms().push_back(
            {nc.producer, nc.from, nc.to, nc.xferStart, nc.bus});
        commStart(nc.producer, nc.to) = nc.xferStart;
    }
    if (graph_.loop().op(v).isMemory()) {
        mem_set_[static_cast<std::size_t>(c)].push_back(v);
        base_miss_valid_[static_cast<std::size_t>(c)] = false;
    }
    if (miss)
        override_lat_[static_cast<std::size_t>(v)] = p.outLatency;
}

double
Attempt::addedMisses(OpId v, ClusterId c)
{
    auto *loc = options_.locality;
    const auto &set = mem_set_[static_cast<std::size_t>(c)];
    // The base set only changes when a memory op is committed to this
    // cluster, so its miss count is computed once per commit, not per
    // candidate evaluated against it.
    if (!base_miss_valid_[static_cast<std::size_t>(c)]) {
        base_miss_[static_cast<std::size_t>(c)] =
            loc->missesPerIteration(set, geom_);
        base_miss_valid_[static_cast<std::size_t>(c)] = true;
    }
    with_scratch_.assign(set.begin(), set.end());
    with_scratch_.push_back(v);
    return loc->missesPerIteration(with_scratch_, geom_) -
           base_miss_[static_cast<std::size_t>(c)];
}

void
Attempt::computeAffinities(OpId v)
{
    // Output-edge profit of [22]: register edges between v and the ops
    // already placed in a cluster count double; additionally, a
    // *sibling* bond counts once — a placed node adjacent to an
    // unscheduled neighbour of v (e.g. the other operand of v's future
    // consumer). Joining that cluster lets the shared neighbour be
    // placed without any edge leaving the cluster's subgraph, which is
    // exactly the exit-edge quantity the heuristic minimises.
    //
    // One walk accumulates the profit of every cluster at once: each
    // placed neighbour contributes to its own cluster's bucket, so the
    // sweep never re-traverses the two-level neighbourhood per cluster.
    std::fill(affinity_.begin(), affinity_.end(), 0);
    auto neighbour_cluster_bonus = [&](OpId other) {
        if (other == v)
            return;
        if (is_placed_[static_cast<std::size_t>(other)]) {
            affinity_[static_cast<std::size_t>(
                sched_.placed(other).cluster)] += 2;
            return;
        }
        // Unscheduled neighbour: look one level further.
        auto sibling = [&](OpId w) {
            if (w != v && w != other &&
                is_placed_[static_cast<std::size_t>(w)])
                ++affinity_[static_cast<std::size_t>(
                    sched_.placed(w).cluster)];
        };
        for (int ei : graph_.inEdges(other)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.isRegFlow())
                sibling(e.src);
        }
        for (int ei : graph_.outEdges(other)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.isRegFlow())
                sibling(e.dst);
        }
    };
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.isRegFlow())
            neighbour_cluster_bonus(e.src);
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.isRegFlow())
            neighbour_cluster_bonus(e.dst);
    }
}

/**
 * Affinities are invariant during one cluster sweep (no placement
 * changes mid-sweep), so the one-walk computation runs lazily on the
 * first tie-break of a sweep; place() invalidates it per op.
 */
int
Attempt::cachedAffinity(OpId v, ClusterId c)
{
    if (!affinity_valid_) {
        computeAffinities(v);
        affinity_valid_ = true;
    }
    return affinity_[static_cast<std::size_t>(c)];
}

bool
Attempt::betterCluster(OpId v, ClusterId cand, ClusterId best,
                       double cand_miss, double best_miss,
                       bool use_miss)
{
    if (use_miss) {
        if (cand_miss < best_miss - EPS)
            return true;
        if (cand_miss > best_miss + EPS)
            return false;
    }
    const int a_cand = cachedAffinity(v, cand);
    const int a_best = cachedAffinity(v, best);
    if (a_cand != a_best)
        return a_cand > a_best;
    // Workload balance: fewer ops of this FU class already placed.
    const int l_cand = mrt_.fuLoad(cand, fu_);
    const int l_best = mrt_.fuLoad(best, fu_);
    if (l_cand != l_best)
        return l_cand < l_best;
    return cand < best;
}

bool
Attempt::place(OpId v)
{
    const auto &op = graph_.loop().op(v);
    const Cycle hit_lat = graph_.opLatency(v);
    const bool mem_select = options_.memoryAware && op.isMemory() &&
                            options_.locality != nullptr;
    fu_ = op.fuType();
    snapshotNeighbours(v);

    // Evaluate every cluster with the hit latency.
    affinity_valid_ = false;
    ClusterId best = INVALID_ID;
    double best_miss = 0.0;
    for (ClusterId c = 0; c < machine_.nClusters; ++c) {
        if (!trySlot(v, c, hit_lat, cur_placement_))
            continue;
        const double miss = mem_select ? addedMisses(v, c) : 0.0;
        if (best == INVALID_ID ||
            betterCluster(v, c, best, miss, best_miss, mem_select)) {
            best = c;
            std::swap(best_placement_, cur_placement_);
            best_miss = miss;
        }
    }
    if (best == INVALID_ID)
        return false;

    // Binding prefetching: promote likely-missing loads to the miss
    // latency in their chosen cluster (§4.3). A load whose CME miss
    // ratio exceeds the threshold is promoted; so is a load with
    // same-line (spatial group) reuse of an already-promoted leader in
    // the same cluster — its data rides the leader's outstanding fill,
    // so its consumers face the same worst-case latency (the spatial-
    // locality case §4.3 calls out).
    bool promoted = false;
    if (op.isLoad() && options_.missThreshold < 1.0 - EPS &&
        options_.locality != nullptr) {
        const double ratio = options_.locality->missRatio(
            mem_set_[static_cast<std::size_t>(best)], v, geom_);
        bool rides_promoted_fill = false;
        if (ratio <= options_.missThreshold + EPS) {
            for (OpId u : mem_set_[static_cast<std::size_t>(best)]) {
                if (!sched_.placed(u).missScheduled)
                    continue;
                const auto delta = reuse_.byteDelta(v, u);
                if (delta && std::llabs(*delta) <
                                 machine_.cacheLineBytes) {
                    rides_promoted_fill = true;
                    break;
                }
            }
        }
        const Cycle miss_lat = machine_.missLatency();
        if ((ratio > options_.missThreshold + EPS ||
             rides_promoted_fill) &&
            miss_lat > hit_lat) {
            // Probe in place: v is unplaced, so its override slot is
            // free; restore it unless the promotion actually commits.
            bool allowed = true;
            if (graph_.inRecurrence(v)) {
                override_lat_[static_cast<std::size_t>(v)] = miss_lat;
                allowed = graph_.feasibleII(ii_, override_lat_);
                if (!allowed)
                    override_lat_[static_cast<std::size_t>(v)] =
                        LAT_NO_OVERRIDE;
            }
            if (allowed) {
                if (trySlot(v, best, miss_lat, cur_placement_)) {
                    commit(v, best, cur_placement_, true);
                    promoted = true;
                } else {
                    override_lat_[static_cast<std::size_t>(v)] =
                        LAT_NO_OVERRIDE;
                }
            }
        }
    }
    if (!promoted)
        commit(v, best, best_placement_, false);
    return true;
}

void
Attempt::normalize()
{
    Cycle min_time = 0;
    for (const auto &p : sched_.placements())
        min_time = std::min(min_time, p.time);
    if (min_time >= 0)
        return;
    const Cycle shift = ((-min_time + ii_ - 1) / ii_) * ii_;
    for (std::size_t v = 0; v < graph_.size(); ++v)
        sched_.placed(static_cast<OpId>(v)).time += shift;
    for (auto &c : sched_.comms())
        c.xferStart += shift;
}

bool
Attempt::checkRegisters()
{
    const LifetimeStats lt = computeLifetimes(graph_, sched_, machine_);
    sched_.setMaxLive(lt.maxLivePerCluster);
    for (int ml : lt.maxLivePerCluster)
        if (ml > machine_.regsPerCluster)
            return false;
    return true;
}

} // namespace

ClusteredModuloScheduler::ClusteredModuloScheduler(
    const ddg::Ddg &graph, const MachineConfig &machine,
    SchedulerOptions options)
    : graph_(graph), machine_(machine), options_(options)
{
    if ((options_.memoryAware ||
         options_.missThreshold < 1.0 - EPS) &&
        options_.locality == nullptr)
        mvp_fatal("scheduler options require a locality analysis");
    if (options_.locality &&
        &options_.locality->loop() != &graph.loop())
        mvp_fatal("locality analysis bound to a different loop");
}

ScheduleResult
ClusteredModuloScheduler::run()
{
    ScheduleResult result;
    result.stats.resMii = resMii(graph_.loop(), machine_);
    result.stats.recMii = graph_.recMii();
    result.stats.mii =
        std::max(result.stats.resMii, result.stats.recMii);

    // The ordering is computed once at mII and kept across II bumps,
    // in a thread-local buffer (part of the scratch workspace).
    static thread_local std::vector<OpId> order;
    computeOrdering(graph_, result.stats.mii, order);
    result.stats.orderingBothNeighbours =
        bothNeighbourCount(graph_, order);

    // One attempt object reused across II bumps (reset() re-arms it
    // without reallocating any buffer).
    Attempt attempt(graph_, machine_, options_);
    for (Cycle ii = result.stats.mii; ii <= options_.maxII; ++ii) {
        ++result.stats.iiAttempts;
        attempt.reset(ii);
        bool ok = true;
        for (OpId v : order) {
            if (!attempt.place(v)) {
                mvp_verbose("loop '", graph_.loop().name(), "' II=", ii,
                            ": op ", v, " unplaceable");
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        attempt.normalize();
        if (!attempt.checkRegisters()) {
            mvp_verbose("loop '", graph_.loop().name(), "' II=", ii,
                        ": register pressure exceeded");
            continue;
        }

        if (options_.locality) {
            const CacheGeom geom = machine_.clusterCacheGeom();
            for (const auto &set : attempt.memSets())
                result.stats.predictedMissesPerIter +=
                    options_.locality->missesPerIteration(set, geom);
        }
        result.ok = true;
        result.schedule = attempt.takeSchedule();
        result.stats.comms =
            static_cast<int>(result.schedule.numComms());
        result.stats.missScheduledLoads =
            result.schedule.missScheduledLoads();
        return result;
    }

    result.error = "no feasible II up to " +
                   std::to_string(options_.maxII) + " for loop '" +
                   graph_.loop().name() + "'";
    return result;
}

ScheduleResult
scheduleBaseline(const ddg::Ddg &graph, const MachineConfig &machine,
                 double miss_threshold, cme::LocalityAnalysis *locality)
{
    SchedulerOptions opt;
    opt.memoryAware = false;
    opt.missThreshold = miss_threshold;
    opt.locality = locality;
    return ClusteredModuloScheduler(graph, machine, opt).run();
}

ScheduleResult
scheduleRmca(const ddg::Ddg &graph, const MachineConfig &machine,
             double miss_threshold, cme::LocalityAnalysis &locality)
{
    SchedulerOptions opt;
    opt.memoryAware = true;
    opt.missThreshold = miss_threshold;
    opt.locality = &locality;
    return ClusteredModuloScheduler(graph, machine, opt).run();
}

} // namespace mvp::sched
