#include "svc/protocol.hh"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace mvp::svc
{
namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitWords(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
            ++i;
        std::size_t j = i;
        while (j < s.size() && s[j] != ' ' && s[j] != '\t')
            ++j;
        if (j > i)
            out.push_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

/** %.17g: distinct doubles render distinctly, equal ones identically —
 * exactly what a canonical key and a lossless reply need. */
std::string
fmtG(double v)
{
    return strprintf("%.17g", v);
}

bool
parseDouble(const std::string &s, double *out)
{
    char *end = nullptr;
    *out = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && !s.empty();
}

bool
parseInt64(const std::string &s, std::int64_t *out)
{
    char *end = nullptr;
    *out = std::strtoll(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && !s.empty();
}

const char *KNOWN_CONFIG_KEYS = "backend, exact-backend, locality, "
                                "node-budget, threshold, time-budget-ms";

/**
 * Apply one `config KEY VALUE` line. Returns an error message, or ""
 * on success. Registry names are not validated here: an unknown
 * backend/provider fatals inside the scheduling call, which the
 * service turns into an *uncached* error reply — the cache only ever
 * holds replies the registries actually produced.
 */
std::string
applyConfig(RequestOptions &opt, const std::string &key,
            const std::string &value)
{
    if (key == "backend") {
        opt.backend = value;
        return "";
    }
    if (key == "locality") {
        opt.locality = value;
        return "";
    }
    if (key == "exact-backend") {
        opt.exactBackend = value;
        return "";
    }
    if (key == "threshold") {
        if (!parseDouble(value, &opt.threshold))
            return "config threshold wants a number, got '" + value +
                   "'";
        return "";
    }
    if (key == "time-budget-ms") {
        if (!parseInt64(value, &opt.timeBudgetMs))
            return "config time-budget-ms wants an integer, got '" +
                   value + "'";
        return "";
    }
    if (key == "node-budget") {
        if (!parseInt64(value, &opt.nodeBudget))
            return "config node-budget wants an integer, got '" +
                   value + "'";
        return "";
    }
    return "unknown config key '" + key +
           "' (known: " + KNOWN_CONFIG_KEYS + ")";
}

std::string
boolWord(bool v)
{
    return v ? "true" : "false";
}

} // namespace

std::string
canonicalOptionsText(const RequestOptions &options)
{
    std::string out;
    out += "config backend " + options.backend + "\n";
    out += "config exact-backend " + options.exactBackend + "\n";
    out += "config locality " + options.locality + "\n";
    out += "config node-budget " + std::to_string(options.nodeBudget) +
           "\n";
    out += "config threshold " + fmtG(options.threshold) + "\n";
    out += "config time-budget-ms " +
           std::to_string(options.timeBudgetMs) + "\n";
    return out;
}

Request
parseRequest(const std::string &payload, const std::string &origin)
{
    Request req;

    // The config prefix: every `config` line before the first
    // scenario line. Blank lines and comments inside the prefix are
    // skipped (comments cannot change a parse); everything from the
    // first non-config content line on is the scenario text.
    std::size_t pos = 0;
    std::size_t scenario_start = payload.size();
    while (pos < payload.size()) {
        std::size_t eol = payload.find('\n', pos);
        if (eol == std::string::npos)
            eol = payload.size();
        const std::string line = trim(payload.substr(pos, eol - pos));
        if (line.empty() || line[0] == '#') {
            pos = eol + 1;
            continue;
        }
        const std::vector<std::string> words = splitWords(line);
        if (words[0] != "config") {
            scenario_start = pos;
            break;
        }
        if (words.size() != 3) {
            req.error = origin + ": config lines are 'config KEY " +
                        "VALUE', got '" + line + "'";
            return req;
        }
        req.error = applyConfig(req.options, words[1], words[2]);
        if (!req.error.empty()) {
            req.error = origin + ": " + req.error;
            return req;
        }
        pos = eol + 1;
    }

    {
        FatalScope guard;
        try {
            req.scenario = text::parseScenario(
                payload.substr(scenario_start), origin);
        } catch (const FatalError &e) {
            req.error = e.what();
            return req;
        }
    }

    req.raw = payload;
    req.loopKey = text::printLoop(req.scenario.loop);
    req.machineKey = text::printMachine(req.scenario.machine);
    req.key = canonicalOptionsText(req.options) + "\n" + req.loopKey +
              "\n" + req.machineKey;
    return req;
}

std::string
renderReply(const Request &request, const sched::ScheduleResult &result)
{
    const sched::SchedStats &st = result.stats;
    const sched::ModuloSchedule &sch = result.schedule;
    std::string out;
    out += "status ok\n";
    out += "loop \"" + request.scenario.loop.name() + "\"\n";
    out += "machine \"" + request.scenario.machine.name + "\"\n";
    out += "backend " + request.options.backend + "\n";
    out += "ii " + std::to_string(sch.ii()) + "\n";
    out += "stages " + std::to_string(sch.stageCount()) + "\n";
    out += "clusters " + std::to_string(sch.numClusters()) + "\n";
    out += "res-mii " + std::to_string(st.resMii) + "\n";
    out += "rec-mii " + std::to_string(st.recMii) + "\n";
    out += "mii " + std::to_string(st.mii) + "\n";
    out += "ii-attempts " + std::to_string(st.iiAttempts) + "\n";
    out += "comms " + std::to_string(st.comms) + "\n";
    out += "miss-scheduled-loads " +
           std::to_string(st.missScheduledLoads) + "\n";
    out += "ordering-both-neighbours " +
           std::to_string(st.orderingBothNeighbours) + "\n";
    out += "predicted-misses-per-iter " +
           fmtG(st.predictedMissesPerIter) + "\n";
    out += "proven-optimal " + boolWord(st.provenOptimal) + "\n";
    out += "ii-lower-bound " + std::to_string(st.iiLowerBound) + "\n";
    out += "pressure-optimal " + boolWord(st.pressureOptimal) + "\n";
    out += "search-nodes " + std::to_string(st.searchNodes) + "\n";
    out += "budget-exhausted " + boolWord(st.budgetExhausted) + "\n";
    out += "gap-known " + boolWord(st.gapKnown) + "\n";
    out += "exact-ii " + std::to_string(st.exactII) + "\n";
    out += "ii-gap " + std::to_string(st.iiGap) + "\n";

    std::string live;
    for (const int v : sch.maxLive())
        live += " " + std::to_string(v);
    out += "max-live" + live + "\n";

    const auto &placed = sch.placements();
    out += "ops " + std::to_string(placed.size()) + "\n";
    for (std::size_t v = 0; v < placed.size(); ++v) {
        const auto &p = placed[v];
        out += "op " + std::to_string(v) + " cluster " +
               std::to_string(p.cluster) + " time " +
               std::to_string(p.time) + " latency " +
               std::to_string(p.outLatency) + " miss " +
               boolWord(p.missScheduled) + "\n";
    }

    out += "transfers " + std::to_string(sch.comms().size()) + "\n";
    for (const auto &c : sch.comms())
        out += "comm producer " + std::to_string(c.producer) +
               " from " + std::to_string(c.from) + " to " +
               std::to_string(c.to) + " start " +
               std::to_string(c.xferStart) + " bus " +
               std::to_string(c.bus) + "\n";
    return out;
}

std::string
renderErrorReply(const std::string &message)
{
    std::string flat = message;
    for (char &c : flat)
        if (c == '\n' || c == '\r')
            c = ' ';
    return "status error\nerror " + flat + "\n";
}

} // namespace mvp::svc
