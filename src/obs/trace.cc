#include "obs/trace.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"

namespace mvp::obs
{

namespace detail
{
std::atomic<bool> g_trace_on{false};
} // namespace detail

namespace
{

using Clock = std::chrono::steady_clock;

struct TraceEvent
{
    const char *name;       ///< literal, borrowed
    std::string detail;     ///< copied context, may be empty
    std::int64_t arg;       ///< TRACE_NO_ARG when absent
    std::int64_t ts_us;
    std::int64_t dur_us;    ///< -1 = instant event
};

struct TraceBuffer
{
    int tid = 0;
    std::string thread_name;
    std::vector<TraceEvent> events;
};

/**
 * Session state. Buffers are owned here (not by the threads) so they
 * survive thread exit and a parked-pool traceFinish() can read them;
 * the registration mutex plus the driver's own pool hand-off order
 * the writes.
 */
struct TraceState
{
    std::mutex mu;
    std::vector<std::unique_ptr<TraceBuffer>> buffers;
    std::string path;
    bool active = false;
    Clock::time_point start{};
    std::uint64_t epoch = 0;   ///< bumped per traceInit, invalidates TLS
    int next_tid = 0;
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

thread_local TraceBuffer *t_buffer = nullptr;
thread_local std::uint64_t t_epoch = 0;

/** This thread's buffer in the current session, registering on first
 * touch. Only call while tracing is on. */
TraceBuffer &
buffer()
{
    auto &s = state();
    if (t_buffer == nullptr || t_epoch != s.epoch) {
        std::lock_guard<std::mutex> lock(s.mu);
        s.buffers.push_back(std::make_unique<TraceBuffer>());
        t_buffer = s.buffers.back().get();
        t_buffer->tid = s.next_tid++;
        t_epoch = s.epoch;
    }
    return *t_buffer;
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendEventJson(std::string &out, const TraceEvent &ev, int tid)
{
    out += "{\"name\":\"";
    out += jsonEscape(ev.name);
    out += "\",\"cat\":\"mvp\",\"ph\":\"";
    out += ev.dur_us < 0 ? 'i' : 'X';
    out += "\",\"ts\":";
    out += std::to_string(ev.ts_us);
    if (ev.dur_us >= 0) {
        out += ",\"dur\":";
        out += std::to_string(ev.dur_us);
    } else {
        out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    const bool has_detail = !ev.detail.empty();
    const bool has_arg = ev.arg != TRACE_NO_ARG;
    if (has_detail || has_arg) {
        out += ",\"args\":{";
        if (has_detail) {
            out += "\"detail\":\"";
            out += jsonEscape(ev.detail);
            out += '"';
        }
        if (has_arg) {
            if (has_detail)
                out += ',';
            out += "\"arg\":";
            out += std::to_string(ev.arg);
        }
        out += '}';
    }
    out += '}';
}

} // namespace

namespace detail
{

std::int64_t
traceNowUs()
{
    const auto now = Clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               now - state().start)
        .count();
}

void
traceEmit(const char *name, std::string_view detail, std::int64_t arg,
          std::int64_t ts_us, std::int64_t dur_us)
{
    // Double-check: a span that straddled traceFinish() must not
    // touch a retired session's buffers.
    if (!traceOn())
        return;
    buffer().events.push_back(
        {name, std::string(detail), arg, ts_us, dur_us});
}

} // namespace detail

void
traceInstant(const char *name, std::string_view detail, std::int64_t arg)
{
    if (!traceOn())
        return;
    obs::detail::traceEmit(name, detail, arg, obs::detail::traceNowUs(),
                           -1);
}

void
traceSetThreadName(const std::string &name)
{
    if (!traceOn())
        return;
    buffer().thread_name = name;
}

void
traceInit(const std::string &path)
{
    auto &s = state();
    std::unique_lock<std::mutex> lock(s.mu);
    s.buffers.clear();
    s.path = path;
    s.active = true;
    s.start = Clock::now();
    ++s.epoch;
    s.next_tid = 0;
    lock.unlock();
    detail::g_trace_on.store(true);
    traceSetThreadName("main");
}

void
traceFinish()
{
    auto &s = state();
    if (!s.active)
        return;
    // Stop collection first; late spans (there should be none — see
    // the header contract) drop themselves in traceEmit().
    detail::g_trace_on.store(false);
    s.active = false;

    std::lock_guard<std::mutex> lock(s.mu);
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const auto &buf : s.buffers) {
        if (!buf->thread_name.empty()) {
            if (!first)
                out += ',';
            first = false;
            out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                   "\"tid\":";
            out += std::to_string(buf->tid);
            out += ",\"args\":{\"name\":\"";
            out += jsonEscape(buf->thread_name);
            out += "\"}}";
        }
        for (const auto &ev : buf->events) {
            if (!first)
                out += ',';
            first = false;
            appendEventJson(out, ev, buf->tid);
        }
    }
    out += "]}\n";

    std::FILE *f = std::fopen(s.path.c_str(), "w");
    if (f == nullptr) {
        mvp_warn("cannot write trace file '", s.path, "'");
        return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    mvp_inform("trace written to ", s.path);
}

} // namespace mvp::obs
