/**
 * @file
 * Experiment harness: prepares every workload loop once (DDG + CME
 * analysis bound to a stable LoopNest) and runs (machine, scheduler,
 * threshold) configurations over the whole suite, reporting the paper's
 * metric — cycles executing modulo-scheduled loops, split into
 * NCYCLE_compute and NCYCLE_stall and normalised to the unified
 * configuration.
 *
 * Suite runs go through the ParallelDriver (harness/driver.hh): every
 * (loop, configuration) point is an independent work item, sharded
 * across a --jobs-sized pool and merged back in canonical (benchmark,
 * loop, config) order, so the emitted tables are byte-identical at any
 * job count.
 */

#ifndef MVP_HARNESS_EXPERIMENT_HH
#define MVP_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "harness/driver.hh"
#include "machine/machine.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace mvp::harness
{

/**
 * Deprecated scheduler selector. The registry backend *name* in
 * RunConfig::backend is the single source of truth ("baseline",
 * "rmca", "exact", "verify", or anything registered at runtime); this
 * enum survives only as a shim for out-of-tree callers written against
 * the PR-2 API. New code should assign RunConfig::backend directly.
 */
enum class SchedKind { Baseline, Rmca };

/** Printable name (deprecated with SchedKind). */
std::string_view schedKindName(SchedKind kind);

/** The registry backend name a SchedKind shorthand stands for. */
std::string_view backendFor(SchedKind kind);

/** One experiment point. */
struct RunConfig
{
    MachineConfig machine;

    /**
     * Scheduler backend by registry name ("baseline", "rmca", "exact",
     * "verify", or anything registered at runtime). Empty is read as
     * "baseline".
     */
    std::string backend = "baseline";

    double threshold = 1.0;

    /** Node budget forwarded to search-based backends. */
    std::int64_t searchBudget = sched::DEFAULT_SEARCH_BUDGET;
};

/** The registry name runLoop() will resolve @p config to. */
std::string backendName(const RunConfig &config);

/** Per-loop outcome. */
struct LoopRunResult
{
    std::string benchmark;
    std::string loop;
    sched::ScheduleResult sched;
    sim::SimResult sim;
};

/** Whole-suite outcome. */
struct SuiteResult
{
    Cycle compute = 0;
    Cycle stall = 0;
    std::vector<LoopRunResult> loops;

    /** Per-benchmark (compute, stall) sums. */
    std::map<std::string, std::pair<Cycle, Cycle>> perBenchmark;

    Cycle total() const { return compute + stall; }
};

/**
 * Canonical textual serialisation of a suite result: one line per loop
 * (benchmark, loop, backend-relevant schedule facts, simulated cycles)
 * plus the aggregates, in workbench order. Two SuiteResults are equal
 * iff their serialisations are byte-identical — the determinism tests
 * compare jobs=1 against jobs=N through this.
 */
std::string formatSuiteResult(const SuiteResult &suite);

/**
 * All workload loops prepared once: stable LoopNest storage plus the
 * DDG and a shared CME analysis per loop. The CME memoisation then
 * amortises across every configuration of a sweep — including sharded
 * sweeps: the analysis is thread-safe and its answers do not depend on
 * query interleaving.
 */
class Workbench
{
  public:
    /** One prepared loop. */
    struct Entry
    {
        std::string benchmark;
        ir::LoopNest nest;
        std::unique_ptr<ddg::Ddg> ddg;
        std::unique_ptr<cme::CmeAnalysis> cme;
    };

    /**
     * Prepare every loop of every suite (or of @p only, when given).
     * Operation latencies are identical in all Table-1 machines, so one
     * DDG per loop serves the whole sweep. Preparation also warms each
     * DDG's lazily-computed SCC tables so the graphs are read-only —
     * and therefore freely shared — once sharded scheduling starts.
     */
    explicit Workbench(const std::vector<std::string> &only = {});

    const std::vector<std::unique_ptr<Entry>> &entries() const
    {
        return entries_;
    }

    /** Benchmarks present (paper order). */
    std::vector<std::string> benchmarks() const;

  private:
    std::vector<std::unique_ptr<Entry>> entries_;
};

/**
 * Schedule + simulate one prepared loop under one configuration, with
 * the caller's scheduler context.
 */
LoopRunResult runLoop(Workbench::Entry &entry, const RunConfig &config,
                      sim::SimParams sim_params,
                      sched::SchedContext &ctx);

/** runLoop with a transient context. */
LoopRunResult runLoop(Workbench::Entry &entry, const RunConfig &config,
                      sim::SimParams sim_params = {});

/**
 * Schedule + simulate the whole workbench under one configuration,
 * sharding the loops across @p driver.
 */
SuiteResult runSuite(Workbench &bench, const RunConfig &config,
                     sim::SimParams sim_params, ParallelDriver &driver);

/** runSuite on a default-sized driver (MVP_JOBS / hardware size). */
SuiteResult runSuite(Workbench &bench, const RunConfig &config,
                     sim::SimParams sim_params = {});

/**
 * Run many configurations over the workbench at once, sharding the
 * full (loop, configuration) cross product across @p driver — the
 * preferred shape for figure/table sweeps, where the item count (and
 * so the driver's load-balancing slack) is configs x loops instead of
 * loops. Returns one SuiteResult per configuration, in input order,
 * each byte-identical to what runSuite would have produced serially.
 */
std::vector<SuiteResult> runSuiteSweep(
    Workbench &bench, const std::vector<RunConfig> &configs,
    sim::SimParams sim_params, ParallelDriver &driver);

} // namespace mvp::harness

#endif // MVP_HARNESS_EXPERIMENT_HH
