/**
 * @file
 * Tests for the experiment harness: workbench preparation, suite runs,
 * and aggregate consistency.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/presets.hh"

namespace mvp::harness
{
namespace
{

TEST(Workbench, PreparesAllSuites)
{
    Workbench bench;
    EXPECT_EQ(bench.benchmarks().size(), 8u);
    EXPECT_GE(bench.entries().size(), 32u);
    for (const auto &e : bench.entries()) {
        EXPECT_NE(e->ddg, nullptr);
        EXPECT_NE(e->cme, nullptr);
        EXPECT_EQ(&e->cme->loop(), &e->nest);
    }
}

TEST(Workbench, FilterSelectsSubset)
{
    Workbench bench({"swim", "mgrid"});
    EXPECT_EQ(bench.benchmarks().size(), 2u);
    for (const auto &e : bench.entries())
        EXPECT_TRUE(e->benchmark == "swim" || e->benchmark == "mgrid");
}

TEST(RunSuite, AggregatesMatchLoopSums)
{
    Workbench bench({"tomcatv"});
    RunConfig config;
    config.machine = makeTwoCluster();
    config.sched = SchedKind::Rmca;
    config.threshold = 1.0;
    sim::SimParams params;
    params.maxExecutions = 2;
    const auto suite = runSuite(bench, config, params);

    Cycle compute = 0;
    Cycle stall = 0;
    for (const auto &loop : suite.loops) {
        compute += loop.sim.computeCycles;
        stall += loop.sim.stallCycles;
        EXPECT_TRUE(loop.sched.ok);
    }
    EXPECT_EQ(suite.compute, compute);
    EXPECT_EQ(suite.stall, stall);
    EXPECT_EQ(suite.total(), compute + stall);
    ASSERT_EQ(suite.perBenchmark.size(), 1u);
    EXPECT_EQ(suite.perBenchmark.at("tomcatv").first, compute);
}

TEST(RunSuite, DeterministicAcrossRuns)
{
    Workbench bench({"su2cor"});
    RunConfig config;
    config.machine = makeFourCluster();
    config.sched = SchedKind::Baseline;
    config.threshold = 0.25;
    sim::SimParams params;
    params.maxExecutions = 2;
    const auto a = runSuite(bench, config, params);
    const auto b = runSuite(bench, config, params);
    EXPECT_EQ(a.compute, b.compute);
    EXPECT_EQ(a.stall, b.stall);
}

TEST(RunSuite, RmcaNeverWorseOnConflictSuites)
{
    // The headline property on a conflict-heavy suite under the
    // realistic bus configuration.
    Workbench bench({"tomcatv"});
    sim::SimParams params;
    params.maxExecutions = 4;

    RunConfig base;
    base.machine = withLimitedBuses(makeFourCluster(), 1, 4);
    base.sched = SchedKind::Baseline;
    base.threshold = 1.0;
    RunConfig rmca = base;
    rmca.sched = SchedKind::Rmca;

    const auto rb = runSuite(bench, base, params);
    const auto rr = runSuite(bench, rmca, params);
    EXPECT_LE(rr.total(), rb.total() * 105 / 100);   // within noise, <=
}

TEST(SchedKindName, Printable)
{
    EXPECT_EQ(schedKindName(SchedKind::Baseline), "Baseline");
    EXPECT_EQ(schedKindName(SchedKind::Rmca), "RMCA");
}

} // namespace
} // namespace mvp::harness
