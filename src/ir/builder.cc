#include "ir/builder.hh"

#include "common/logging.hh"

namespace mvp::ir
{

LoopNestBuilder::LoopNestBuilder(std::string name) : nest_(std::move(name))
{
}

std::size_t
LoopNestBuilder::loop(const std::string &name, std::int64_t lower,
                      std::int64_t upper, std::int64_t step)
{
    LoopDim dim;
    dim.name = name;
    dim.lower = lower;
    dim.upper = upper;
    dim.step = step;
    return nest_.addLoop(std::move(dim));
}

ArrayId
LoopNestBuilder::array(const std::string &name,
                       std::vector<std::int64_t> dims, int elem_size)
{
    ArrayDecl decl;
    decl.name = name;
    decl.dims = std::move(dims);
    decl.elemSize = elem_size;
    const ArrayId id = nest_.addArray(std::move(decl));
    auto_layout_.push_back(true);
    return id;
}

ArrayId
LoopNestBuilder::arrayAt(const std::string &name,
                         std::vector<std::int64_t> dims, Addr base,
                         int elem_size)
{
    ArrayDecl decl;
    decl.name = name;
    decl.dims = std::move(dims);
    decl.elemSize = elem_size;
    decl.base = base;
    const ArrayId id = nest_.addArray(std::move(decl));
    auto_layout_.push_back(false);
    return id;
}

OpId
LoopNestBuilder::load(ArrayId arr, std::vector<AffineExpr> index,
                      const std::string &name)
{
    Operation o;
    o.opcode = Opcode::Load;
    o.name = name;
    o.memRef = AffineRef{arr, std::move(index)};
    return nest_.addOp(std::move(o));
}

OpId
LoopNestBuilder::store(ArrayId arr, std::vector<AffineExpr> index,
                       Operand value, const std::string &name)
{
    Operation o;
    o.opcode = Opcode::Store;
    o.name = name;
    o.inputs = {value};
    o.memRef = AffineRef{arr, std::move(index)};
    return nest_.addOp(std::move(o));
}

OpId
LoopNestBuilder::op(Opcode opcode, std::vector<Operand> inputs,
                    const std::string &name)
{
    mvp_assert(!ir::isMemory(opcode),
               "use load()/store() for memory operations");
    Operation o;
    o.opcode = opcode;
    o.name = name;
    o.inputs = std::move(inputs);
    return nest_.addOp(std::move(o));
}

LoopNest
LoopNestBuilder::build()
{
    mvp_assert(!built_, "LoopNestBuilder::build() called twice");
    built_ = true;

    Addr cursor = layout_base_;
    for (std::size_t a = 0; a < nest_.arrays().size(); ++a) {
        if (!auto_layout_[a])
            continue;
        auto &decl = nest_.mutableArray(static_cast<ArrayId>(a));
        const auto align = static_cast<Addr>(layout_align_);
        cursor = (cursor + align - 1) / align * align;
        decl.base = cursor;
        cursor += static_cast<Addr>(decl.sizeBytes() + layout_pad_);
    }

    nest_.validate();
    return std::move(nest_);
}

} // namespace mvp::ir
