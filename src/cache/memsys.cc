#include "cache/memsys.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mvp::cache
{

MemorySystem::MemorySystem(const MachineConfig &machine)
    : machine_(machine), geom_(machine.clusterCacheGeom())
{
    clusters_.resize(static_cast<std::size_t>(machine.nClusters));
    for (auto &cl : clusters_) {
        cl.ways.assign(static_cast<std::size_t>(geom_.numSets()) *
                           static_cast<std::size_t>(geom_.assoc),
                       Way{});
        cl.mshrBusyUntil.assign(
            static_cast<std::size_t>(machine.mshrEntries), 0);
    }
    if (!machine.unboundedMemBuses)
        busFreeAt_.assign(static_cast<std::size_t>(machine.nMemBuses), 0);
}

void
MemorySystem::reset()
{
    for (auto &cl : clusters_) {
        std::fill(cl.ways.begin(), cl.ways.end(), Way{});
        std::fill(cl.mshrBusyUntil.begin(), cl.mshrBusyUntil.end(), 0);
        cl.inflight.clear();
    }
    std::fill(busFreeAt_.begin(), busFreeAt_.end(), 0);
    stats_.reset();
}

Cycle
MemorySystem::acquireBus(Cycle ready)
{
    if (machine_.unboundedMemBuses)
        return ready;
    // Grant the bus that frees earliest; occupy it for the bus latency.
    std::size_t best = 0;
    for (std::size_t b = 1; b < busFreeAt_.size(); ++b)
        if (busFreeAt_[b] < busFreeAt_[best])
            best = b;
    const Cycle grant = std::max(ready, busFreeAt_[best]);
    busFreeAt_[best] = grant + machine_.memBusLatency;
    stats_.counter("bus_wait_cycles") += grant - ready;
    stats_.counter("bus_transactions") += 1;
    return grant;
}

int
MemorySystem::findWay(const Cluster &cl, std::int64_t set,
                      std::int64_t line) const
{
    const auto base =
        static_cast<std::size_t>(set) * static_cast<std::size_t>(
                                            geom_.assoc);
    for (int w = 0; w < geom_.assoc; ++w) {
        const auto &way = cl.ways[base + static_cast<std::size_t>(w)];
        if (way.state != LineState::Invalid && way.line == line)
            return w;
    }
    return -1;
}

MemorySystem::Way
MemorySystem::installLine(Cluster &cl, std::int64_t set, std::int64_t line,
                          LineState state)
{
    const auto base =
        static_cast<std::size_t>(set) * static_cast<std::size_t>(
                                            geom_.assoc);
    const Way victim = cl.ways[base + static_cast<std::size_t>(
                                          geom_.assoc - 1)];
    for (int w = geom_.assoc - 1; w > 0; --w)
        cl.ways[base + static_cast<std::size_t>(w)] =
            cl.ways[base + static_cast<std::size_t>(w - 1)];
    cl.ways[base] = Way{line, state};
    return victim;
}

void
MemorySystem::invalidateRemote(std::int64_t line, ClusterId except)
{
    const std::int64_t set = line % geom_.numSets();
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        if (static_cast<ClusterId>(c) == except)
            continue;
        const int w = findWay(clusters_[c], set, line);
        if (w >= 0) {
            clusters_[c]
                .ways[static_cast<std::size_t>(set) *
                          static_cast<std::size_t>(geom_.assoc) +
                      static_cast<std::size_t>(w)]
                .state = LineState::Invalid;
            stats_.counter("invalidations") += 1;
        }
    }
}

LineState
MemorySystem::probe(ClusterId cluster, Addr addr) const
{
    const auto &cl = clusters_[static_cast<std::size_t>(cluster)];
    const std::int64_t line = geom_.lineOf(addr);
    const std::int64_t set = line % geom_.numSets();
    const int w = findWay(cl, set, line);
    if (w < 0)
        return LineState::Invalid;
    return cl
        .ways[static_cast<std::size_t>(set) *
                  static_cast<std::size_t>(geom_.assoc) +
              static_cast<std::size_t>(w)]
        .state;
}

MemAccessResult
MemorySystem::access(ClusterId cluster, Addr addr, bool is_store,
                     Cycle issue)
{
    auto &cl = clusters_[static_cast<std::size_t>(cluster)];
    const std::int64_t line = geom_.lineOf(addr);
    const std::int64_t set = line % geom_.numSets();
    MemAccessResult res;
    stats_.counter(is_store ? "stores" : "loads") += 1;

    // A fill for this line still in flight? Merge before probing tags
    // (the tag was installed eagerly when the fill was initiated, so the
    // probe alone would mis-report an instant hit).
    if (auto it = cl.inflight.find(line); it != cl.inflight.end()) {
        if (it->second > issue) {
            res.mergedInFlight = true;
            stats_.counter("mshr_merges") += 1;
            stats_.counter("local_misses") += 1;
            res.completion =
                std::max(it->second, issue + machine_.latCacheHit);
            if (is_store) {
                const int w = findWay(cl, set, line);
                const bool shared =
                    w < 0 ||
                    cl.ways[static_cast<std::size_t>(set) *
                                static_cast<std::size_t>(geom_.assoc) +
                            static_cast<std::size_t>(w)]
                            .state != LineState::Modified;
                if (shared) {
                    // Ownership needs an upgrade once the data arrives.
                    const Cycle grant = acquireBus(res.completion);
                    invalidateRemote(line, cluster);
                    if (w >= 0)
                        cl.ways[static_cast<std::size_t>(set) *
                                    static_cast<std::size_t>(
                                        geom_.assoc) +
                                static_cast<std::size_t>(w)]
                            .state = LineState::Modified;
                    res.completion = grant + machine_.memBusLatency;
                    stats_.counter("upgrades") += 1;
                }
            }
            return res;
        }
        cl.inflight.erase(it);
    }

    const int way = findWay(cl, set, line);
    if (way >= 0) {
        const auto idx = static_cast<std::size_t>(set) *
                             static_cast<std::size_t>(geom_.assoc) +
                         static_cast<std::size_t>(way);
        const LineState state = cl.ways[idx].state;
        // Touch for LRU.
        const Way touched = cl.ways[idx];
        for (std::size_t w = idx;
             w > static_cast<std::size_t>(set) *
                     static_cast<std::size_t>(geom_.assoc);
             --w)
            cl.ways[w] = cl.ways[w - 1];
        cl.ways[static_cast<std::size_t>(set) *
                static_cast<std::size_t>(geom_.assoc)] = touched;
        auto &mru = cl.ways[static_cast<std::size_t>(set) *
                            static_cast<std::size_t>(geom_.assoc)];

        if (!is_store || state == LineState::Modified) {
            // Plain hit.
            if (is_store)
                mru.state = LineState::Modified;
            res.localHit = true;
            res.completion = issue + machine_.latCacheHit;
            stats_.counter("local_hits") += 1;
            return res;
        }
        // Store to a Shared line: upgrade (invalidation) transaction.
        const Cycle grant = acquireBus(issue + machine_.latCacheHit);
        invalidateRemote(line, cluster);
        mru.state = LineState::Modified;
        res.localHit = true;
        res.completion = grant + machine_.memBusLatency;
        stats_.counter("upgrades") += 1;
        return res;
    }

    // --- Local miss. ---
    stats_.counter("local_misses") += 1;

    // Allocate an MSHR entry; a full MSHR stalls the machine at issue.
    auto mshr = std::min_element(cl.mshrBusyUntil.begin(),
                                 cl.mshrBusyUntil.end());
    Cycle alloc = issue;
    if (*mshr > issue) {
        res.issueStall = *mshr - issue;
        alloc = *mshr;
        stats_.counter("mshr_full_stall_cycles") += res.issueStall;
    }

    // The local tag check discovered the miss; then arbitrate for a bus.
    const Cycle ready = alloc + machine_.latCacheHit;
    const Cycle grant = acquireBus(ready);

    // Snoop the other clusters at grant time.
    bool remote_dirty = false;
    bool remote_has = false;
    for (std::size_t c = 0; c < clusters_.size() && !remote_has; ++c) {
        if (static_cast<ClusterId>(c) == cluster)
            continue;
        const int w = findWay(clusters_[c], set, line);
        if (w >= 0) {
            remote_has = true;
            remote_dirty =
                clusters_[c]
                    .ways[static_cast<std::size_t>(set) *
                              static_cast<std::size_t>(geom_.assoc) +
                          static_cast<std::size_t>(w)]
                    .state == LineState::Modified;
        }
    }

    Cycle fill_done;
    if (remote_has) {
        // Cache-to-cache transfer: the bus transaction plus the remote
        // cache's access time.
        fill_done = grant + machine_.memBusLatency + machine_.latCacheHit;
        res.remoteHit = true;
        stats_.counter("remote_hits") += 1;
        if (remote_dirty)
            stats_.counter("dirty_supplies") += 1;
        // Supplier downgrades (load) or invalidates (store below).
        for (std::size_t c = 0; c < clusters_.size(); ++c) {
            if (static_cast<ClusterId>(c) == cluster)
                continue;
            const int w = findWay(clusters_[c], set, line);
            if (w >= 0)
                clusters_[c]
                    .ways[static_cast<std::size_t>(set) *
                              static_cast<std::size_t>(geom_.assoc) +
                          static_cast<std::size_t>(w)]
                    .state = LineState::Shared;
        }
    } else {
        fill_done = grant + machine_.memBusLatency + machine_.latMainMemory;
        stats_.counter("memory_fills") += 1;
    }

    if (is_store)
        invalidateRemote(line, cluster);

    // Install the line, write back a dirty victim (write buffer: the
    // writeback occupies a bus but does not delay this fill).
    const Way victim = installLine(
        cl, set, line, is_store ? LineState::Modified : LineState::Shared);
    if (victim.state == LineState::Modified) {
        acquireBus(fill_done);
        stats_.counter("writebacks") += 1;
    }

    *mshr = fill_done;
    cl.inflight[line] = fill_done;
    // Retire completed in-flight markers lazily (keeps the map tiny;
    // stale entries are also dropped on lookup).
    for (auto it = cl.inflight.begin(); it != cl.inflight.end();) {
        if (it->second < issue)
            it = cl.inflight.erase(it);
        else
            ++it;
    }

    res.completion = fill_done;
    return res;
}

} // namespace mvp::cache
