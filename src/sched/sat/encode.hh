/**
 * @file
 * CNF encoding of one fixed-II clustered modulo-scheduling attempt.
 *
 * The encoding deliberately mirrors the *enumerated placement space* of
 * the exact branch-and-bound (exact/bnb.cc), not merely the checker's
 * legality predicate, so the two engines certify identical IIs:
 *
 *  - op times are order-encoded (O[v,j] <=> t_v <= j) over static
 *    window hulls derived from the same rules the B&B applies per
 *    node: the first op in placement order is anchored at cycle 0
 *    (shift invariance), ops with placed predecessors get an ascending
 *    window of width II above their dependence-ready cycle, ops with
 *    only placed successors get a descending window of width II below
 *    their consumption budget, isolated ops get [0, II-1];
 *  - the width-II window caps — dynamic in the B&B because they hang
 *    off the neighbours' actual placements — become per-edge
 *    disjunctions ("some neighbour's bound admits t_v");
 *  - cluster choice is one-hot with the B&B's prefix-population
 *    symmetry break (an op may only open cluster c when clusters
 *    0..c-1 already hold an earlier op);
 *  - each (producer, destination-cluster) pair gets one shared
 *    order-encoded transfer start, constrained exactly like
 *    bookTransfers(): start >= producer ready, width-II booking
 *    window, arrival before every remote reader's budget;
 *  - per-cluster FU capacity, per-slot bus capacity and per-cluster
 *    register pressure are sequential-counter (Sinz) at-most-k
 *    cardinalities over modulo-slot indicator variables.
 *
 * The bus and register cardinalities are sound under-approximations
 * (bus occupancy ignores circular-arc colourability at latency >= 2;
 * liveness indicators drop per-stage multiplicity), so a decoded model
 * is re-validated by ModuloSchedule::validate(); the backend blocks
 * any model the checker rejects and re-solves. Refutations need no
 * such care: every B&B-reachable placement satisfies the encoding, so
 * UNSAT certifies the II exactly as a B&B exhaustion does (relative
 * to the enumerated placement space — the same caveat bnb.hh
 * documents).
 *
 * All clauses carry the negated activation literal of this attempt, so
 * one incremental Solver hosts successive II probes of a loop: probing
 * II=k solves under assumption {activation(k)}, a refuted probe is
 * retired with the unit ~activation(k), and learned clauses carry over.
 */

#ifndef MVP_SCHED_SAT_ENCODE_HH
#define MVP_SCHED_SAT_ENCODE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/sat/solver.hh"
#include "sched/schedule.hh"

namespace mvp::sched::sat
{

/**
 * Builder/decoder for one (loop, machine, II) attempt. Construct, call
 * build() once, then solve under {activation()}; decode() models and
 * blockModel() rejected ones.
 */
class IiEncoding
{
  public:
    enum class Status
    {
        Ok,         ///< encoding emitted; solve under {activation()}
        Infeasible, ///< statically refuted (empty window hull): the II
                    ///< is certified infeasible without solving
        TooLarge,   ///< variable budget exceeded; treat as "unknown"
    };

    IiEncoding(const ddg::Ddg &graph, const MachineConfig &machine,
               const std::vector<OpId> &order, Cycle ii);

    /** Emit the encoding into @p s (allocates the activation var). */
    Status build(Solver &s);

    /** Assumption literal activating this attempt's clauses. */
    Lit activation() const { return act_; }

    /**
     * Decode the current model into @p out (placements, transfers with
     * earliest-fit bus assignment, times normalised to >= 0). Returns
     * false when no bus assignment exists for the decoded transfer
     * starts — a model the caller must blockModel() and re-solve.
     */
    bool decode(const Solver &s, ModuloSchedule &out) const;

    /**
     * Add a clause excluding the current model's decoded placement
     * (op times, clusters, live transfer starts — the projection
     * decode() depends on, so every assignment decoding to the same
     * rejected schedule dies with it).
     */
    void blockModel(Solver &s);

    std::int64_t varsAdded() const { return vars_; }
    std::int64_t clausesAdded() const { return clauses_; }

  private:
    /** Order-encoded time window of one op. */
    struct OpVars
    {
        Cycle lo = 0;
        Cycle hi = 0;  ///< inclusive; O vars span [lo, hi-1]
        Var o0 = -1;   ///< first O var (j = lo); -1 when hi == lo
        Var k0 = -1;   ///< first cluster var (multi-cluster only)
        Var s0 = -1;   ///< first modulo-slot var (FU counting; lazy)
        Var b0 = -1;   ///< first (cluster x slot) var (lazy)
        Var l0 = -1;   ///< local-liveness indicators (pressure; lazy)
    };

    /** One potential transfer: producer u's value into cluster d. */
    struct CommVars
    {
        OpId u = INVALID_ID;
        ClusterId d = INVALID_ID;
        Cycle xlo = 0;
        Cycle xhi = -1; ///< inclusive; empty range = transfer impossible
        Var p0 = -1;    ///< order vars for the start, span [xlo, xhi-1]
        Var e = -1;     ///< "this transfer exists"
        Var u0 = -1;    ///< bus-occupancy indicators, one per slot (lazy)
        Var r0 = -1;    ///< remote-liveness indicators, per slot (lazy)
    };

    // Sentinels threaded through clause construction: lit() drops
    // FALSE literals and suppresses clauses containing TRUE ones.
    static constexpr Lit TRUE_LIT{-4};
    static constexpr Lit FALSE_LIT{-6};
    static Lit neg(Lit l);

    Lit ole(OpId v, Cycle j) const;  ///< literal for t_v <= j
    Lit ple(int pair, Cycle j) const; ///< literal for x_pair <= j
    Lit klit(OpId v, ClusterId c) const; ///< literal for cluster(v)==c

    void clause(Solver &s, std::initializer_list<Lit> ls);
    void clauseV(Solver &s, const std::vector<Lit> &ls);
    Var fresh(Solver &s);

    /** Guarded at-most-k (Sinz sequential counter) over plain lits. */
    void atMostK(Solver &s, const std::vector<Lit> &xs, int k);

    bool computeWindows();
    void emitTimeChains(Solver &s);
    void emitClusterConstraints(Solver &s);
    void emitCommStructure(Solver &s);
    void emitDependences(Solver &s);
    void emitWindowCaps(Solver &s);
    void emitFuCapacity(Solver &s);
    void emitBusCapacity(Solver &s);
    void emitRegisterPressure(Solver &s);

    Cycle modSlot(Cycle a) const;
    Cycle modelTime(const Solver &s, OpId v) const;
    ClusterId modelCluster(const Solver &s, OpId v) const;
    Cycle modelStart(const Solver &s, int pair) const;

    const ddg::Ddg &graph_;
    const MachineConfig &machine_;
    const std::vector<OpId> &order_;
    const Cycle ii_;
    const Cycle lrb_;
    const int nc_;
    const std::size_t n_;

    Lit act_ = LIT_UNDEF;
    std::vector<OpVars> ops_;      ///< by OpId
    std::vector<int> pos_;         ///< by OpId: position in order_
    std::vector<CommVars> comms_;
    std::vector<int> pair_of_;     ///< [op*nc + d] -> comms_ index or -1
    std::vector<Lit> buf_;         ///< clause scratch
    std::int64_t vars_ = 0;
    std::int64_t clauses_ = 0;
    bool too_large_ = false;
};

} // namespace mvp::sched::sat

#endif // MVP_SCHED_SAT_ENCODE_HH
