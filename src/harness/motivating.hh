/**
 * @file
 * The motivating example of Section 3 (Figure 3), reusable by tests,
 * examples and the fig3 bench.
 *
 * DO I = 1, N, 2
 *     A(I) = B(I)*C(I) + B(I+1)*C(I+1)
 * ENDDO
 *
 * on a 2-cluster machine with one 2-cycle arithmetic unit and one memory
 * unit per cluster, one register bus of 2-cycle latency, 2-cycle local
 * caches, 2-cycle memory bus and 10-cycle main memory. B and C live at a
 * distance that is a multiple of the local cache size, so scheduling
 * B(I) and C(I) into the same cluster makes every access miss
 * (ping-pong), while grouping the B loads in one cluster and the C loads
 * in the other trades two extra register communications (II 3 -> 4) for
 * a 25% / 0% miss mix — the paper's 1.5x win.
 */

#ifndef MVP_HARNESS_MOTIVATING_HH
#define MVP_HARNESS_MOTIVATING_HH

#include "ir/loop.hh"
#include "machine/machine.hh"

namespace mvp::harness
{

/** The loop of Figure 3 with @p n_iter kernel iterations (I pairs). */
ir::LoopNest motivatingLoop(std::int64_t n_iter = 1024,
                            std::int64_t n_times = 2);

/** The 2-cluster machine of Section 3. */
MachineConfig motivatingMachine();

} // namespace mvp::harness

#endif // MVP_HARNESS_MOTIVATING_HH
