#include "sched/ordering.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mvp::sched
{

namespace
{

/** Reachability matrix (transitive, not reflexive) via per-node BFS. */
std::vector<std::vector<char>>
reachability(const ddg::Ddg &graph)
{
    const std::size_t n = graph.size();
    std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
    for (std::size_t s = 0; s < n; ++s) {
        std::vector<OpId> work{static_cast<OpId>(s)};
        while (!work.empty()) {
            const OpId u = work.back();
            work.pop_back();
            for (int ei : graph.outEdges(u)) {
                const OpId v = graph.edges()[static_cast<std::size_t>(ei)]
                                   .dst;
                if (!reach[s][static_cast<std::size_t>(v)]) {
                    reach[s][static_cast<std::size_t>(v)] = 1;
                    work.push_back(v);
                }
            }
        }
    }
    return reach;
}

} // namespace

std::vector<OpId>
computeOrdering(const ddg::Ddg &graph, Cycle ii)
{
    const std::size_t n = graph.size();
    if (n == 0)
        return {};

    const auto tb = graph.timeBounds(ii);
    const auto reach = reachability(graph);

    // ---- Step 1: the priority list of node sets. ----
    // Non-trivial SCCs by decreasing RecMII (ties: smaller first id);
    // the new set also absorbs every node lying on a path between the
    // union of earlier sets and the SCC. Remaining nodes form the final
    // set.
    struct SccInfo
    {
        int index;
        Cycle rec_mii;
    };
    std::vector<SccInfo> recurrence_sccs;
    const auto &sccs = graph.sccs();
    for (std::size_t s = 0; s < sccs.size(); ++s) {
        const bool cyclic =
            sccs[s].size() > 1 || graph.inRecurrence(sccs[s][0]);
        if (cyclic)
            recurrence_sccs.push_back(
                {static_cast<int>(s), graph.sccRecMii(static_cast<int>(s))});
    }
    std::sort(recurrence_sccs.begin(), recurrence_sccs.end(),
              [&](const SccInfo &a, const SccInfo &b) {
                  if (a.rec_mii != b.rec_mii)
                      return a.rec_mii > b.rec_mii;
                  return sccs[static_cast<std::size_t>(a.index)][0] <
                         sccs[static_cast<std::size_t>(b.index)][0];
              });

    std::vector<std::vector<OpId>> sets;
    std::vector<char> taken(n, 0);
    std::vector<OpId> placed_union;
    for (const auto &info : recurrence_sccs) {
        std::vector<OpId> set;
        for (OpId v : sccs[static_cast<std::size_t>(info.index)]) {
            if (!taken[static_cast<std::size_t>(v)]) {
                taken[static_cast<std::size_t>(v)] = 1;
                set.push_back(v);
            }
        }
        if (set.empty())
            continue;
        // Absorb nodes on paths between earlier sets and this one.
        if (!placed_union.empty()) {
            for (std::size_t v = 0; v < n; ++v) {
                if (taken[v])
                    continue;
                bool from_prev = false;
                bool to_set = false;
                bool from_set = false;
                bool to_prev = false;
                for (OpId p : placed_union) {
                    from_prev |= reach[static_cast<std::size_t>(p)][v];
                    to_prev |= reach[v][static_cast<std::size_t>(p)];
                }
                for (OpId s : set) {
                    to_set |= reach[v][static_cast<std::size_t>(s)];
                    from_set |= reach[static_cast<std::size_t>(s)][v];
                }
                if ((from_prev && to_set) || (from_set && to_prev)) {
                    taken[v] = 1;
                    set.push_back(static_cast<OpId>(v));
                }
            }
        }
        for (OpId v : set)
            placed_union.push_back(v);
        sets.push_back(std::move(set));
    }
    // Final set: everything not yet taken.
    std::vector<OpId> rest;
    for (std::size_t v = 0; v < n; ++v)
        if (!taken[v])
            rest.push_back(static_cast<OpId>(v));
    if (!rest.empty())
        sets.push_back(std::move(rest));

    // ---- Step 2: swing ordering inside the concatenated sets. ----
    std::vector<OpId> order;
    order.reserve(n);
    std::vector<char> ordered(n, 0);

    auto height = [&](OpId v) { return tb.height(v); };
    auto depth = [&](OpId v) { return tb.depth(v); };
    auto mobility = [&](OpId v) { return tb.mobility(v); };

    // Choose from R by the sweep's priority; ties: lowest mobility, then
    // lowest id (determinism).
    auto pick = [&](const std::vector<OpId> &r, bool top_down) {
        OpId best = r[0];
        for (OpId v : r) {
            const Cycle pv = top_down ? height(v) : depth(v);
            const Cycle pb = top_down ? height(best) : depth(best);
            if (pv > pb ||
                (pv == pb && (mobility(v) < mobility(best) ||
                              (mobility(v) == mobility(best) && v < best))))
                best = v;
        }
        return best;
    };

    auto preds_in = [&](OpId v, const std::vector<char> &in_set) {
        std::vector<OpId> out;
        for (int ei : graph.inEdges(v)) {
            const OpId u =
                graph.edges()[static_cast<std::size_t>(ei)].src;
            if (in_set[static_cast<std::size_t>(u)] &&
                !ordered[static_cast<std::size_t>(u)])
                out.push_back(u);
        }
        return out;
    };
    auto succs_in = [&](OpId v, const std::vector<char> &in_set) {
        std::vector<OpId> out;
        for (int ei : graph.outEdges(v)) {
            const OpId w =
                graph.edges()[static_cast<std::size_t>(ei)].dst;
            if (in_set[static_cast<std::size_t>(w)] &&
                !ordered[static_cast<std::size_t>(w)])
                out.push_back(w);
        }
        return out;
    };

    for (const auto &set : sets) {
        std::vector<char> in_set(n, 0);
        std::size_t remaining = 0;
        for (OpId v : set) {
            if (!ordered[static_cast<std::size_t>(v)]) {
                in_set[static_cast<std::size_t>(v)] = 1;
                ++remaining;
            }
        }

        while (remaining > 0) {
            // Seed the sweep: unordered set members adjacent to the
            // global order so far; prefer the predecessor side
            // (bottom-up) as [22] does.
            std::vector<OpId> r;
            bool top_down;
            // Predecessors of ordered nodes that lie in this set.
            for (OpId o : order)
                for (OpId u : preds_in(o, in_set))
                    r.push_back(u);
            if (!r.empty()) {
                top_down = false;   // consume predecessors bottom-up
            } else {
                for (OpId o : order)
                    for (OpId w : succs_in(o, in_set))
                        r.push_back(w);
                if (!r.empty()) {
                    top_down = true;
                } else {
                    // Detached from everything ordered: start top-down
                    // from the set's most source-like node.
                    for (std::size_t v = 0; v < n; ++v)
                        if (in_set[v] && !ordered[v])
                            r.push_back(static_cast<OpId>(v));
                    top_down = true;
                }
            }
            std::sort(r.begin(), r.end());
            r.erase(std::unique(r.begin(), r.end()), r.end());

            // Alternate directional sweeps until the set drains or the
            // frontier empties (then re-seed).
            while (!r.empty()) {
                while (!r.empty()) {
                    const OpId v = pick(r, top_down);
                    order.push_back(v);
                    ordered[static_cast<std::size_t>(v)] = 1;
                    --remaining;
                    std::erase(r, v);
                    const auto next =
                        top_down ? succs_in(v, in_set)
                                 : preds_in(v, in_set);
                    for (OpId w : next)
                        if (std::find(r.begin(), r.end(), w) == r.end())
                            r.push_back(w);
                }
                // Swing: pick up the other direction's frontier.
                top_down = !top_down;
                for (OpId o : order) {
                    const auto next = top_down ? succs_in(o, in_set)
                                               : preds_in(o, in_set);
                    for (OpId w : next)
                        if (std::find(r.begin(), r.end(), w) == r.end())
                            r.push_back(w);
                }
                if (r.empty())
                    break;
            }
        }
    }

    mvp_assert(order.size() == n, "ordering lost nodes");
    return order;
}

int
bothNeighbourCount(const ddg::Ddg &graph, const std::vector<OpId> &order)
{
    std::vector<char> before(graph.size(), 0);
    int count = 0;
    for (OpId v : order) {
        bool has_pred = false;
        bool has_succ = false;
        for (int ei : graph.inEdges(v)) {
            const OpId u = graph.edges()[static_cast<std::size_t>(ei)].src;
            if (u != v && before[static_cast<std::size_t>(u)])
                has_pred = true;
        }
        for (int ei : graph.outEdges(v)) {
            const OpId w = graph.edges()[static_cast<std::size_t>(ei)].dst;
            if (w != v && before[static_cast<std::size_t>(w)])
                has_succ = true;
        }
        if (has_pred && has_succ)
            ++count;
        before[static_cast<std::size_t>(v)] = 1;
    }
    return count;
}

} // namespace mvp::sched
