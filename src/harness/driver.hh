/**
 * @file
 * Sharded deterministic experiment driver.
 *
 * The paper's results are whole-suite sweeps — every (loop, machine,
 * scheduler, threshold) point over eight benchmark suites — and each
 * point is independent of every other: the scheduler takes an explicit
 * SchedContext (sched/context.hh) and the per-loop locality analyses
 * answer concurrent queries deterministically. The ParallelDriver
 * exploits that: work items are claimed dynamically from a shared queue
 * by a --jobs-sized pool (an idle worker steals the next unclaimed
 * item, so an expensive loop never serialises the sweep behind it),
 * each worker owns one SchedContext for the driver's whole lifetime
 * (warm buffers across items *and* across run() calls), and results
 * land in their item's slot so callers merge them in canonical
 * (benchmark, loop, config) order.
 *
 * The pool is persistent: worker threads are spawned on the first
 * parallel run() and parked on a condition variable between runs, so a
 * driver that executes many short sweeps (a figure binary's grid, the
 * gap study's per-machine passes) pays thread startup once instead of
 * per sweep.
 *
 * Determinism contract: every output — suite tables, gap tables, golden
 * schedule fingerprints — is byte-identical for jobs=1 and jobs=N,
 * enforced by tests/driver_test.cc. The pieces that make this true:
 * per-item results are pure functions of the item (no cross-item
 * state), CME sampling seeds derive from query keys rather than query
 * order, and the merge step runs in item order on one thread.
 */

#ifndef MVP_HARNESS_DRIVER_HH
#define MVP_HARNESS_DRIVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/flags.hh"   // the binaries' flag parsers lived here
#include "sched/context.hh"

namespace mvp::harness
{

/**
 * Worker count to use when the caller does not say: the MVP_JOBS
 * environment variable when set (>= 1), otherwise the hardware
 * concurrency, always at least 1.
 */
int defaultJobs();

/**
 * A persistent worker pool that shards independent work items.
 *
 * One driver may run any number of sweeps. Threads are spawned once,
 * on the first run() that needs them, and parked between sweeps; each
 * worker's SchedContext therefore stays warm for the driver's whole
 * lifetime. Item indices are claimed atomically, so scheduling is
 * dynamic: workers that finish early steal the remaining items of
 * slower ones. run() is not reentrant — one sweep at a time per
 * driver, from one calling thread.
 */
class ParallelDriver
{
  public:
    /** @p jobs <= 0 means defaultJobs(). */
    explicit ParallelDriver(int jobs = 0);

    /** Parks and joins the pool; outstanding run() calls must have
     * returned. */
    ~ParallelDriver();

    ParallelDriver(const ParallelDriver &) = delete;
    ParallelDriver &operator=(const ParallelDriver &) = delete;

    /** The worker count run() will use. */
    int jobs() const { return jobs_; }

    /**
     * Run @p work(item, ctx) for every item index in [0, n). @p ctx is
     * the claiming worker's private SchedContext — reused across all
     * items that worker ever claims, never shared between workers.
     * Blocks until every item has completed. @p work must not touch
     * shared mutable state other than its own item's result slot (and
     * the thread-safe analyses), and must not throw.
     */
    void run(std::size_t n,
             const std::function<void(std::size_t, sched::SchedContext &)>
                 &work);

  private:
    /** Spawn the pool if it is not running yet. */
    void ensurePool();

    /** Worker loop: park, claim items of the current sweep, repeat.
     * @p w is the worker's pool index, used for trace track names. */
    void workerMain(int w);

    int jobs_;

    /** @name Pool state (guarded by mu_ unless noted) */
    /// @{
    std::mutex mu_;
    std::condition_variable wake_;   ///< workers wait for a sweep
    std::condition_variable done_;   ///< run() waits for completion
    std::uint64_t generation_ = 0;   ///< bumped per sweep
    std::size_t items_ = 0;          ///< item count of current sweep
    const std::function<void(std::size_t, sched::SchedContext &)>
        *work_ = nullptr;            ///< valid while a sweep is active
    std::size_t active_ = 0;         ///< workers still in current sweep
    bool shutdown_ = false;
    std::atomic<std::size_t> next_{0};   ///< item claim counter
    std::vector<std::thread> pool_;
    /// @}

    /** Serial fast path's context, warm across run() calls. */
    sched::SchedContext serialCtx_;
};

} // namespace mvp::harness

#endif // MVP_HARNESS_DRIVER_HH
