/**
 * @file
 * Cache Miss Equations with a sampling solver.
 *
 * The CME framework (Ghosh, Martonosi & Malik) describes, for every
 * reference R and iteration point i, two families of equations:
 *
 *  - *cold* equations: R misses at i when no earlier access in the
 *    analysed set touched R's memory line, and
 *  - *replacement* equations: R misses at i when, since the most recent
 *    access to the line (the reuse source), interfering accesses mapped
 *    at least `associativity` distinct other lines into the same cache
 *    set.
 *
 * Solving the equations exactly means counting integer points in an
 * exponential number of polyhedra (NP-hard); the paper instead uses the
 * accelerated solver of Bermudo et al. plus the sampling estimator of
 * Vera et al., which evaluates the equations at randomly sampled
 * iteration points until a confidence interval tightens. This class
 * implements that strategy: at each sampled point the equations are
 * decided exactly by walking the access stream backwards to the reuse
 * source while tracking same-set interference; the sample mean estimates
 * the miss ratio with a 95% CI stop rule. When the iteration space is
 * small the solver switches to exhaustive evaluation (zero-width CI).
 *
 * The access stream itself comes from a shared StreamCache
 * (cme/stream.hh): the backward walk reads materialised per-op line
 * arrays instead of re-evaluating affine references per step, and the
 * same arrays feed the exact oracle bound to the nest.
 */

#ifndef MVP_CME_SOLVER_HH
#define MVP_CME_SOLVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cme/locality.hh"
#include "cme/setkey.hh"
#include "cme/stream.hh"
#include "common/random.hh"

namespace mvp::cme
{

/** Tuning knobs for the sampling solver. */
struct CmeParams
{
    /** Samples always drawn before the CI stop rule may fire. */
    int minSamples = 48;

    /** Hard cap on samples per (set, op) query. */
    int maxSamples = 320;

    /** Stop when the 95% CI half-width drops below this. */
    double ciTarget = 0.04;

    /**
     * Upper bound on the backward walk (in accesses) while resolving one
     * equation; reuse further away than this is declared a miss, which
     * matches the capacity behaviour of the small caches studied.
     */
    int maxWalk = 4096;

    /** Seed for the deterministic sampling RNG. */
    std::uint64_t seed = 0x5eedULL;
};

/**
 * One solved query: the estimated miss ratio plus the 95% CI
 * half-width the stop rule settled at (0 when the solver evaluated the
 * iteration space exhaustively). The hybrid locality provider inspects
 * the half-width to decide when to fall back to the exact oracle.
 * This is exactly what the memo stores (cme/setkey.hh), aliased rather
 * than duplicated so the two cannot drift.
 */
using RatioEstimate = detail::RatioValue;

/** True when @p estimate met the solver's CI target. */
inline bool
estimateConverged(const RatioEstimate &estimate, const CmeParams &params)
{
    return estimate.ciHalfWidth <= params.ciTarget;
}

/**
 * One exported RatioMemo entry: the full query key (geometry, target
 * op, canonical set) plus the memoised estimate. This is the unit the
 * scheduling service persists so a restarted server rewarms the
 * sampling solver without re-solving a single equation.
 */
struct CmeMemoEntry
{
    CacheGeom geom;
    OpId op = INVALID_ID;
    std::vector<OpId> set;
    RatioEstimate value;
};

/**
 * Sampling CME solver bound to one loop nest. Thread-safe: any number
 * of threads may query one instance concurrently (the experiment
 * driver's workers share the per-loop analysis of a sweep). The memo is
 * a lock-striped open-addressing table; working buffers are per-thread;
 * results are bit-identical regardless of interleaving because every
 * ratio — including its sampling seed — is a pure function of the
 * (set, op, geometry) key.
 */
class CmeAnalysis : public LocalityAnalysis
{
  public:
    /**
     * Bind to @p nest, drawing access streams from @p streams (one is
     * created privately when null). Sharing one StreamCache between the
     * solver, the oracle and any number of fresh analyses of the same
     * nest is the intended shape — the Workbench keeps one per loop.
     */
    explicit CmeAnalysis(const ir::LoopNest &nest, CmeParams params = {},
                         std::shared_ptr<StreamCache> streams = nullptr);

    const ir::LoopNest &loop() const override { return nest_; }

    double missesPerIteration(const std::vector<OpId> &set,
                              const CacheGeom &geom) override;

    double missRatio(const std::vector<OpId> &set, OpId op,
                     const CacheGeom &geom) override;

    /** missRatio() plus the CI half-width the stop rule settled at. */
    RatioEstimate estimateRatio(const std::vector<OpId> &set, OpId op,
                                const CacheGeom &geom);

    /** The solver's tuning knobs. */
    const CmeParams &params() const { return params_; }

    /** The shared access-stream cache this analysis draws from. */
    const std::shared_ptr<StreamCache> &streams() const
    {
        return streams_;
    }

    /**
     * Number of distinct (set, op, geometry) queries answered so far.
     * Under concurrent use this can momentarily exceed the memo size
     * (two threads racing on the same fresh query both count).
     */
    std::size_t queriesSolved() const
    {
        return queries_.load(std::memory_order_relaxed);
    }

    /** Total equation evaluations (sampled points) so far. */
    std::size_t pointsEvaluated() const
    {
        return points_.load(std::memory_order_relaxed);
    }

    /**
     * Total solveRatio() calls, memo hits included; with
     * queriesSolved() (the misses) this yields the RatioMemo hit
     * rate. Same concurrent-use caveat as queriesSolved().
     */
    std::size_t ratioLookups() const
    {
        return lookups_.load(std::memory_order_relaxed);
    }

    /**
     * Snapshot every memoised ratio, deterministically sorted by
     * (geometry, op, set) so identical analysis states export
     * byte-identical warm-state files.
     */
    std::vector<CmeMemoEntry> exportMemo() const;

    /**
     * Publish @p entries into the memo (keep-the-winner: entries whose
     * key is already memoised are dropped). Values must come from an
     * exportMemo() of an analysis of the same nest — the solver is
     * deterministic, so imported and recomputed values coincide and
     * determinism is unaffected.
     */
    void importMemo(const std::vector<CmeMemoEntry> &entries);

  private:
    /**
     * Decide hit/miss for position @p ref_pos of the set at iteration
     * point @p point under @p geom by evaluating the cold/replacement
     * equations with a bounded backward walk over the cached line
     * streams in @p lines (one pointer per set position). @p conflicts
     * comes from the calling thread's scratch.
     */
    bool isMiss(const std::int64_t *const *lines, std::size_t nops,
                std::size_t ref_pos, std::int64_t point,
                const CacheGeom &geom,
                std::vector<std::int64_t> &conflicts);

    /**
     * Memoised estimate of one op's miss ratio inside a set. @p set must
     * be canonical (sorted, duplicate-free) and contain @p op.
     */
    detail::RatioValue solveRatio(const std::vector<OpId> &set, OpId op,
                                  const CacheGeom &geom);

    /**
     * Legacy string key; kept solely to derive the per-query sampling
     * seed, so the hashed-key memo stays bit-identical to the original
     * string-keyed implementation. Built only on memo misses that take
     * the sampling path.
     */
    static std::string samplingKey(const std::vector<OpId> &set, OpId op,
                                   const CacheGeom &geom);

    const ir::LoopNest &nest_;
    CmeParams params_;
    std::shared_ptr<StreamCache> streams_;
    detail::ShardedRatioMemo memo_;
    std::atomic<std::size_t> queries_{0};
    std::atomic<std::size_t> points_{0};
    std::atomic<std::size_t> lookups_{0};
};

} // namespace mvp::cme

#endif // MVP_CME_SOLVER_HH
