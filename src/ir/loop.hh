/**
 * @file
 * Loop-nest intermediate representation.
 *
 * A LoopNest holds a perfect loop nest whose innermost body is the unit
 * of modulo scheduling. It carries:
 *  - the loop dimensions (bounds and steps; outermost first),
 *  - the arrays referenced by the body (sizes, element width, base
 *    address in the flat benchmark address space),
 *  - the body operations and their register dataflow (with loop-carried
 *    distances on the innermost loop).
 *
 * This is the information the ICTINEO front-end hands the paper's
 * scheduler; reproducing the IR lets every downstream component (DDG
 * construction, Cache Miss Equations, the lockstep simulator) work from
 * first principles.
 */

#ifndef MVP_IR_LOOP_HH
#define MVP_IR_LOOP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "ir/affine.hh"
#include "ir/opcode.hh"

namespace mvp::ir
{

/**
 * One loop of the nest: iterates lower, lower+step, ... while < upper.
 */
struct LoopDim
{
    std::string name;
    std::int64_t lower = 0;
    std::int64_t upper = 0;   ///< exclusive
    std::int64_t step = 1;    ///< must be positive

    /** Number of iterations executed by this loop. */
    std::int64_t tripCount() const;
};

/**
 * An array declaration: row-major, element size in bytes, and the base
 * address the benchmark's data layout assigned to it.
 */
struct ArrayDecl
{
    ArrayId id = INVALID_ID;
    std::string name;
    std::vector<std::int64_t> dims;   ///< extents, outermost first
    int elemSize = 4;                 ///< bytes per element
    Addr base = 0;                    ///< assigned base address

    /** Total size in bytes. */
    std::int64_t sizeBytes() const;

    /** Total number of elements. */
    std::int64_t elements() const;
};

/**
 * A register operand: the body operation producing the value plus the
 * innermost-loop distance (0 = same iteration, k = value produced k
 * iterations earlier). producer == INVALID_ID denotes a loop-invariant
 * live-in (constant or value computed outside the loop) that creates no
 * dependence edge.
 */
struct Operand
{
    OpId producer = INVALID_ID;
    int distance = 0;

    /** True when this operand is a loop-invariant live-in. */
    bool isLiveIn() const { return producer == INVALID_ID; }
};

/** A live-in operand (no dependence). */
Operand liveIn();

/** An operand reading @p producer 's value from @p distance iterations ago. */
Operand use(OpId producer, int distance = 0);

/**
 * One operation of the innermost loop body.
 */
struct Operation
{
    OpId id = INVALID_ID;
    Opcode opcode = Opcode::IAdd;
    std::string name;                 ///< optional label for dumps
    std::vector<Operand> inputs;      ///< register operands
    std::optional<AffineRef> memRef;  ///< present iff Load/Store

    /** FU class of this operation. */
    FuType fuType() const { return fuTypeOf(opcode); }

    /** True for Load/Store. */
    bool isMemory() const { return ir::isMemory(opcode); }

    /** True for Load. */
    bool isLoad() const { return ir::isLoad(opcode); }

    /** True for Store. */
    bool isStore() const { return ir::isStore(opcode); }

    /** True when the op defines a register value. */
    bool producesValue() const { return ir::producesValue(opcode); }
};

/**
 * A perfect loop nest with a modulo-schedulable innermost body.
 */
class LoopNest
{
  public:
    /** Construct an empty nest with a name (for reports). */
    explicit LoopNest(std::string name = "loop");

    /** Loop-nest name. */
    const std::string &name() const { return name_; }

    /** All loops, outermost first. */
    const std::vector<LoopDim> &loops() const { return loops_; }

    /** Number of loops in the nest. */
    std::size_t depth() const { return loops_.size(); }

    /** Index of the innermost loop. */
    std::size_t innerDepth() const { return loops_.size() - 1; }

    /** Innermost loop descriptor. */
    const LoopDim &innerLoop() const;

    /** NITER: trip count of the innermost loop. */
    std::int64_t innerTripCount() const;

    /** NTIMES: number of innermost-loop executions (outer trips product). */
    std::int64_t outerExecutions() const;

    /** All arrays declared for this nest. */
    const std::vector<ArrayDecl> &arrays() const { return arrays_; }

    /** Array by id. */
    const ArrayDecl &array(ArrayId id) const;

    /** All body operations (ids are dense, in program order). */
    const std::vector<Operation> &ops() const { return ops_; }

    /** Operation by id. */
    const Operation &op(OpId id) const;

    /** Number of body operations. */
    std::size_t size() const { return ops_.size(); }

    /** Ids of the memory operations, in program order. */
    std::vector<OpId> memoryOps() const;

    /**
     * Byte address touched by @p ref at induction-variable values
     * @p ivs (row-major linearisation).
     */
    Addr addressOf(const AffineRef &ref,
                   const std::vector<std::int64_t> &ivs) const;

    /**
     * Check structural invariants: operand producers exist and produce
     * values, distances are non-negative, memory ops carry references to
     * declared arrays with one index per dimension, every reference stays
     * in bounds over the whole iteration space, loop bounds are sane.
     * Calls mvp_fatal() with a diagnostic on violation.
     */
    void validate() const;

    /** Multi-line dump of loops, arrays and operations. */
    std::string toString() const;

    /** @name Mutators (used by LoopNestBuilder) */
    /// @{
    std::size_t addLoop(LoopDim dim);
    ArrayId addArray(ArrayDecl decl);
    OpId addOp(Operation op);
    ArrayDecl &mutableArray(ArrayId id);
    /// @}

  private:
    std::string name_;
    std::vector<LoopDim> loops_;
    std::vector<ArrayDecl> arrays_;
    std::vector<Operation> ops_;
};

/**
 * Dense view of a loop nest's iteration space: maps linear indices
 * [0, points()) to induction-variable vectors in lexicographic execution
 * order (outermost slowest). Used by the CME sampling solver and the
 * simulator.
 */
class IterationSpace
{
  public:
    explicit IterationSpace(const LoopNest &nest);

    /** Total iteration points of the full nest. */
    std::int64_t points() const { return points_; }

    /** Points of the innermost loop only. */
    std::int64_t innerPoints() const { return trips_.back(); }

    /** Induction-variable values at linear index @p idx. */
    std::vector<std::int64_t> at(std::int64_t idx) const;

    /** Write the IVs for @p idx into @p out (resized as needed). */
    void at(std::int64_t idx, std::vector<std::int64_t> &out) const;

    /** Linear index of an IV vector. */
    std::int64_t indexOf(const std::vector<std::int64_t> &ivs) const;

  private:
    const LoopNest &nest_;
    std::vector<std::int64_t> trips_;
    std::int64_t points_;
};

} // namespace mvp::ir

#endif // MVP_IR_LOOP_HH
