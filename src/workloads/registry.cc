#include "workloads/workloads.hh"

#include "common/logging.hh"
#include "common/registry.hh"
#include "gen/generator.hh"
#include "text/format.hh"

namespace mvp::workloads
{

namespace
{

using BenchmarkFactory = Benchmark (*)();

/**
 * The builtin suites behind the shared NamedFactoryTable, so unknown
 * workload names fail exactly like unknown scheduler backends and
 * locality providers: with the component kind and the list of valid
 * names.
 */
const NamedFactoryTable<BenchmarkFactory> &
builtinTable()
{
    static const NamedFactoryTable<BenchmarkFactory> table = [] {
        NamedFactoryTable<BenchmarkFactory> t;
        t.add("tomcatv", &makeTomcatv);
        t.add("swim", &makeSwim);
        t.add("su2cor", &makeSu2cor);
        t.add("hydro2d", &makeHydro2d);
        t.add("mgrid", &makeMgrid);
        t.add("applu", &makeApplu);
        t.add("turb3d", &makeTurb3d);
        t.add("apsi", &makeApsi);
        return t;
    }();
    return table;
}

/** True when @p name starts with @p scheme. */
bool
hasScheme(const std::string &name, const char *scheme)
{
    return name.rfind(scheme, 0) == 0;
}

/** `file:<path>` -> the loops of a text-format loop file. */
Benchmark
loadFileWorkload(const std::string &path)
{
    text::LoopFile file = text::loadLoopFile(path);
    if (file.loops.empty())
        mvp_fatal("workload file '", path, "' declares no loops");
    Benchmark bench;
    bench.name = file.suite.empty() ? path : file.suite;
    bench.loops = std::move(file.loops);
    return bench;
}

} // namespace

std::vector<Benchmark>
allBenchmarks()
{
    std::vector<Benchmark> all;
    for (const auto &name : benchmarkNames())
        all.push_back(builtinTable().get(name, "workload")());
    return all;
}

std::vector<NamedLoop>
allLoops()
{
    std::vector<NamedLoop> out;
    for (auto &bench : allBenchmarks()) {
        std::size_t index = 0;
        for (auto &nest : bench.loops)
            out.push_back({bench.name, index++, std::move(nest)});
    }
    return out;
}

Benchmark
benchmarkByName(const std::string &name)
{
    if (hasScheme(name, "file:"))
        return loadFileWorkload(name.substr(5));
    if (hasScheme(name, "gen:")) {
        Benchmark bench;
        bench.name = name;
        bench.loops = gen::generateFromSpec(name.substr(4));
        return bench;
    }
    if (name.find(':') != std::string::npos)
        mvp_fatal("unknown workload scheme in '", name,
                  "' (known: file:<path>, gen:<spec>)");
    return builtinTable().get(name, "workload")();
}

std::vector<Benchmark>
resolveWorkloads(const std::vector<std::string> &names)
{
    if (names.empty())
        return allBenchmarks();
    std::vector<Benchmark> out;
    out.reserve(names.size());
    for (const auto &name : names)
        out.push_back(benchmarkByName(name));
    return out;
}

std::vector<std::string>
benchmarkNames()
{
    return {"tomcatv", "swim",  "su2cor", "hydro2d",
            "mgrid",   "applu", "turb3d", "apsi"};
}

} // namespace mvp::workloads
