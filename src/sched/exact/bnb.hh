/**
 * @file
 * Exact modulo scheduling by conflict-driven branch and bound.
 *
 * The search enumerates, at a fixed II, every (cluster, cycle) placement
 * of every operation over the same candidate windows the heuristic
 * scheduler scans (SMS direction rule, at most II slots per op, with
 * cross-cluster transfers booked earliest-fit on the register buses),
 * backtracking through the modulo reservation table. The II iterates
 * upward from MII until a feasible schedule exists; the first feasible
 * II is minimal over the enumerated placement space, which contains
 * every schedule the heuristic family (baseline and RMCA, any
 * threshold) can emit — so the reported heuristic-vs-exact II gap is
 * exact for this scheduler family.
 *
 * Certificate semantics: a schedule found at II == MII is optimal in
 * the absolute sense (the resource/recurrence lower bound is the
 * certificate). When lower IIs were instead ruled out by exhausting
 * the search (refutation lifting), the provenOptimal flag is relative
 * to the enumerated placement space — the compact per-op windows and
 * earliest-fit transfer rule could in principle exclude an exotic
 * schedule (e.g. one that spreads lifetimes across extra stages to
 * duck under the register limit), so such a certificate proves "no
 * scheduler of this family can do better", not absolute infeasibility
 * below.
 *
 * Pruning, strongest first:
 *  - incremental register pressure (exact/pressure.hh): lifetime
 *    intervals only grow along a DFS path, so a partial schedule whose
 *    per-cluster MaxLive already exceeds the register file — or whose
 *    summed MaxLive already reaches the incumbent during the tiebreak —
 *    is cut without visiting its subtree;
 *  - conflict-driven backjumping: every refuted candidate cites the
 *    earlier decisions implicated in its failure (window-defining
 *    neighbours, FU-slot occupants, booked transfers); when an op's
 *    candidates are exhausted the union of citations names the deepest
 *    decision worth revisiting, skipping the unimplicated levels in
 *    between, and an empty union certifies the whole II infeasible on
 *    the spot (lifted into the iiLowerBound that persists across II
 *    probes);
 *  - MII = max(ResMII, RecMII) floors the II iteration, per-class FU
 *    counts refute IIs whose reservation table cannot seat every op
 *    before an attempt charges its first node, dependence windows cap
 *    candidates per op at II cycles, and bus saturation fails
 *    candidates before commit.
 *
 * Once a feasible schedule is found at the minimal II, the search keeps
 * running to minimise the register-pressure tiebreak (summed MaxLive).
 * Budgets degrade the whole search gracefully: on exhaustion the best
 * schedule so far is returned with provenOptimal == false ("gap
 * unknown"). The primary budget is wall-clock (timeBudgetMs), checked
 * on the node-charging path; the node budget remains as a deprecated
 * cap for callers that need machine-independent determinism of the
 * degradation point itself.
 */

#ifndef MVP_SCHED_EXACT_BNB_HH
#define MVP_SCHED_EXACT_BNB_HH

#include <atomic>
#include <chrono>

#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/scheduler.hh"

namespace mvp::sched::exact
{

/** Exact-search knobs. */
struct ExactOptions
{
    /** Give up (fail the loop) beyond this II. */
    Cycle maxII = 512;

    /**
     * Deprecated node cap: candidate placements evaluated per II
     * attempt before that attempt is abandoned (neither feasible nor
     * refuted); 0 (the default) means uncapped, leaving the wall-clock
     * budget in charge. Kept for callers that need the degradation
     * point to be a pure function of (loop, machine, options) — node
     * charging is still interleaving-independent — and for tests that
     * starve the search deterministically.
     */
    std::int64_t nodeBudget = 0;

    /**
     * Wall-clock budget for the whole search (all II attempts),
     * checked on the node-charging path. Negative = unlimited; 0 = an
     * already-expired deadline (the first charged node aborts, which
     * keeps even that degenerate case deterministic). On expiry the
     * search degrades exactly like the node cap: best schedule so far,
     * "gap unknown".
     */
    std::int64_t timeBudgetMs = DEFAULT_TIME_BUDGET_MS;

    /**
     * After the minimal II is secured, keep searching that II for the
     * schedule with the smallest summed MaxLive (the tiebreak of the
     * exact-scheduling literature). Off = stop at the first feasible
     * schedule.
     */
    bool tiebreakPressure = true;

    /**
     * Node allowance of the tiebreak phase: nodes charged after the
     * first feasible schedule before the attempt settles for the best
     * schedule seen (pressureOptimal == false); 0 = unlimited. The II
     * certificate is decided before the tiebreak starts, so the
     * allowance never weakens it; node-based on purpose so the
     * tiebreak's outcome is reproducible across machines and job
     * counts (a wall-clock tiebreak would make reports
     * timing-dependent). Exhausting it is a documented phase end, not
     * a budget failure — budgetExhausted stays false.
     */
    std::int64_t tiebreakBudget = DEFAULT_TIEBREAK_BUDGET;

    /** Conflict-driven backjumping (loops of <= 64 ops). */
    bool conflictLearning = true;

    /**
     * @name Portfolio-shard plumbing (sched/exact/portfolio.hh)
     * Default values leave all of it inert; the portfolio backend uses
     * these to race II probes and split subtrees across workers.
     */
    /// @{
    /** > 0: probe exactly this II instead of scanning from MII. */
    Cycle onlyII = 0;

    /**
     * Partition the search: this searcher explores only the depth-1
     * candidates whose index is congruent to shardIndex mod
     * shardCount. The union of all shards' trees is the full tree (the
     * root op has a single candidate), so "every shard refuted" is a
     * complete refutation.
     */
    int shardIndex = 0;
    int shardCount = 1;

    /**
     * Shared incumbent II, polled on the charging path: the attempt
     * aborts once *sharedBestII <= the II being searched (a refutation
     * at or above a known-feasible II proves nothing more). Not owned.
     */
    const std::atomic<Cycle> *sharedBestII = nullptr;

    /** Deadline shared across shards; overrides timeBudgetMs. */
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;

    /**
     * Portfolio only: race one CDCL probe (sched/sat/) next to the
     * B&B shards of every II — first certifier (model or UNSAT proof)
     * wins the probe. The settled II is engine-independent (both
     * engines certify the same IIs), so reports stay byte-identical
     * to the serial engine's; disable to time the pure-B&B portfolio.
     */
    bool satProbe = true;
    /// @}
};

/** Historical name, kept for existing callers. */
using BnbOptions = ExactOptions;

/**
 * Schedule @p graph exactly, drawing ordering/lifetime scratch from
 * @p ctx. Never throws; failure (no feasible II within maxII, or a
 * budget exhausted before any schedule was found) is reported in the
 * result. The stats fields filled in: resMii, recMii, mii, iiAttempts,
 * comms, provenOptimal, iiLowerBound, pressureOptimal, searchNodes,
 * budgetExhausted.
 *
 * Node charging is interleaving-independent: every child the search
 * considers is charged exactly once (see Searcher::chargeNode), so
 * under a pure node cap the degradation point is a pure function of
 * (loop, machine, options) — identical whether loops are swept
 * serially or sharded across a thread pool. The wall-clock budget
 * trades that reproducibility of the *cutoff point* for a
 * machine-meaningful bound; results that settle within the budget are
 * deterministic either way.
 */
ScheduleResult scheduleExact(const ddg::Ddg &graph,
                             const MachineConfig &machine,
                             const ExactOptions &options,
                             SchedContext &ctx);

/** scheduleExact with a transient context. */
ScheduleResult scheduleExact(const ddg::Ddg &graph,
                             const MachineConfig &machine,
                             const ExactOptions &options = {});

} // namespace mvp::sched::exact

#endif // MVP_SCHED_EXACT_BNB_HH
