#include "cme/oracle.hh"

#include <algorithm>
#include <tuple>

#include "common/logging.hh"

namespace mvp::cme
{

namespace
{

/** Per-thread working buffers (the oracle is shared by workers). */
struct OracleScratch
{
    std::vector<OpId> canonical;              ///< canonical-set buffer
    std::vector<OpId> subset;                 ///< parent-probe buffer
    std::vector<const std::int64_t *> lines;  ///< per-position streams
    std::vector<const SetBuckets *> buckets;  ///< per-position buckets
    std::vector<std::int64_t> cursor;         ///< merge iterators
    std::vector<std::int64_t> last;           ///< merge end offsets
    std::vector<char> touched;                ///< per-cache-set flags
};

OracleScratch &
oracleScratch()
{
    static thread_local OracleScratch scratch;
    return scratch;
}

/**
 * Apply one access to cache set @p s: LRU probe + MRU promotion, with
 * the direct-mapped case (the paper's configuration) special-cased to a
 * single compare-and-store. Returns true on a miss.
 */
inline bool
applyAccess(std::int64_t *tags, std::size_t s, std::size_t assoc,
            std::int64_t line)
{
    std::int64_t *way = tags + s * assoc;
    if (assoc == 1) {
        if (way[0] == line)
            return false;
        way[0] = line;
        return true;
    }
    for (std::size_t w = 0; w < assoc; ++w) {
        if (way[w] == line) {
            for (std::size_t k = w; k > 0; --k)
                way[k] = way[k - 1];
            way[0] = line;
            return false;
        }
    }
    for (std::size_t k = assoc - 1; k > 0; --k)
        way[k] = way[k - 1];
    way[0] = line;
    return true;
}

} // namespace

CacheOracle::CacheOracle(const ir::LoopNest &nest,
                         std::shared_ptr<StreamCache> streams,
                         std::size_t checkpoint_byte_cap)
    : nest_(nest), streams_(std::move(streams)),
      checkpointByteCap_(checkpoint_byte_cap)
{
    if (!streams_)
        streams_ = std::make_shared<StreamCache>(nest_);
    mvp_assert(&streams_->loop() == &nest_,
               "stream cache bound to a different loop");
}

void
CacheOracle::simulateFresh(const std::vector<OpId> &set,
                           const CacheGeom &geom, SimResult &res)
{
    const std::int64_t num_sets = geom.numSets();
    const auto assoc = static_cast<std::size_t>(geom.assoc);
    const std::size_t m = set.size();
    const std::int64_t points = streams_->points();
    const bool pow2 = (num_sets & (num_sets - 1)) == 0;
    const std::int64_t mask = num_sets - 1;

    OracleScratch &scratch = oracleScratch();
    scratch.lines.clear();
    for (OpId op : set)
        scratch.lines.push_back(
            streams_->lines(op, geom.lineBytes).lines.data());
    const std::int64_t *const *lines = scratch.lines.data();

    res.perSetMisses.assign(static_cast<std::size_t>(num_sets) * m, 0);
    res.tags.assign(static_cast<std::size_t>(num_sets) * assoc, -1);
    for (std::int64_t p = 0; p < points; ++p) {
        for (std::size_t j = 0; j < m; ++j) {
            const std::int64_t line = lines[j][p];
            const auto s = static_cast<std::size_t>(
                pow2 ? (line & mask) : (line % num_sets));
            if (applyAccess(res.tags.data(), s, assoc, line))
                ++res.perSetMisses[s * m + j];
        }
    }
}

void
CacheOracle::simulateExtended(const std::vector<OpId> &set,
                              std::size_t new_pos,
                              const SimResult &parent,
                              const CacheGeom &geom, SimResult &res)
{
    const std::int64_t num_sets = geom.numSets();
    const auto assoc = static_cast<std::size_t>(geom.assoc);
    const std::size_t m = set.size();
    const std::size_t pm = parent.ops.size();
    mvp_assert(pm + 1 == m, "extension parent has the wrong arity");

    OracleScratch &scratch = oracleScratch();
    scratch.buckets.clear();
    for (OpId op : set)
        scratch.buckets.push_back(&streams_->buckets(op, geom));
    const SetBuckets &grown = *scratch.buckets[new_pos];

    res.perSetMisses.assign(static_cast<std::size_t>(num_sets) * m, 0);
    res.tags.assign(static_cast<std::size_t>(num_sets) * assoc, -1);

    // The cache sets the grown op maps into — only these need
    // re-simulation; every other set keeps the parent's exact history.
    scratch.touched.assign(static_cast<std::size_t>(num_sets), 0);
    std::int64_t replayed = 0;   ///< accesses mapping into touched sets
    for (std::int64_t s = 0; s < num_sets; ++s) {
        if (!grown.touches(s))
            continue;
        scratch.touched[static_cast<std::size_t>(s)] = 1;
        for (std::size_t j = 0; j < m; ++j)
            replayed += scratch.buckets[j]->offsets
                            [static_cast<std::size_t>(s) + 1] -
                        scratch.buckets[j]
                            ->offsets[static_cast<std::size_t>(s)];
    }

    // Copy the untouched sets' checkpoint, remapping counter positions
    // around the insertion point (the grown op's own counter stays 0 —
    // untouched means it never maps there).
    for (std::int64_t s = 0; s < num_sets; ++s) {
        const auto su = static_cast<std::size_t>(s);
        if (scratch.touched[su])
            continue;
        for (std::size_t w = 0; w < assoc; ++w)
            res.tags[su * assoc + w] = parent.tags[su * assoc + w];
        for (std::size_t j = 0; j < pm; ++j)
            res.perSetMisses[su * m + (j < new_pos ? j : j + 1)] =
                parent.perSetMisses[su * pm + j];
    }

    const std::int64_t total =
        streams_->points() * static_cast<std::int64_t>(m);
    if (replayed * 4 > total) {
        // Dense extension (a streaming op touches most sets): a
        // touched-filtered chronological walk costs one flag test per
        // access on top of a from-scratch simulation — never the m-way
        // merge's per-access select. Identical results either way; the
        // cutover only picks the cheaper exact path.
        const bool pow2 = (num_sets & (num_sets - 1)) == 0;
        const std::int64_t mask = num_sets - 1;
        scratch.lines.clear();
        for (OpId op : set)
            scratch.lines.push_back(
                streams_->lines(op, geom.lineBytes).lines.data());
        const std::int64_t *const *lines = scratch.lines.data();
        const std::int64_t points = streams_->points();
        for (std::int64_t p = 0; p < points; ++p) {
            for (std::size_t j = 0; j < m; ++j) {
                const std::int64_t line = lines[j][p];
                const auto s = static_cast<std::size_t>(
                    pow2 ? (line & mask) : (line % num_sets));
                if (!scratch.touched[s])
                    continue;
                if (applyAccess(res.tags.data(), s, assoc, line))
                    ++res.perSetMisses[s * m + j];
            }
        }
        return;
    }

    // Sparse extension: replay only the touched buckets, merging the
    // per-op chronological lists. Ties within one iteration point
    // resolve to the lowest set position — the order the interleaved
    // stream has.
    scratch.cursor.resize(m);
    scratch.last.resize(m);
    for (std::int64_t s = 0; s < num_sets; ++s) {
        const auto su = static_cast<std::size_t>(s);
        if (!scratch.touched[su])
            continue;
        for (std::size_t j = 0; j < m; ++j) {
            scratch.cursor[j] = scratch.buckets[j]->offsets[su];
            scratch.last[j] = scratch.buckets[j]->offsets[su + 1];
        }
        for (;;) {
            std::size_t best = m;
            std::int64_t best_point = 0;
            for (std::size_t j = 0; j < m; ++j) {
                if (scratch.cursor[j] >= scratch.last[j])
                    continue;
                const std::int64_t point =
                    scratch.buckets[j]
                        ->entries[static_cast<std::size_t>(
                            scratch.cursor[j])]
                        .point;
                if (best == m || point < best_point) {
                    best = j;
                    best_point = point;
                }
            }
            if (best == m)
                break;
            const std::int64_t line =
                scratch.buckets[best]
                    ->entries[static_cast<std::size_t>(
                        scratch.cursor[best]++)]
                    .line;
            if (applyAccess(res.tags.data(), su, assoc, line))
                ++res.perSetMisses[su * m + best];
        }
    }
}

const CacheOracle::SimResult &
CacheOracle::simulate(const std::vector<OpId> &set, const CacheGeom &geom)
{
    const detail::QueryKeyRef ref{
        detail::queryHash(geom, INVALID_ID, set), &geom, INVALID_ID, &set};
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto it = memo_.find(ref); it != memo_.end())
            return it->second;
    }

    // Incremental path: the scheduler grows cluster sets one op at a
    // time, so some one-op-smaller subset is usually memoised already.
    // Memoised results are immutable, so the parent pointer found under
    // the lock stays readable after it is released. Cap-trimmed
    // results (no checkpoint) cannot serve as parents.
    const SimResult *parent = nullptr;
    std::size_t new_pos = 0;
    if (set.size() > 1) {
        OracleScratch &scratch = oracleScratch();
        std::lock_guard<std::mutex> lock(mu_);   // one guard, m probes
        for (std::size_t x = 0; x < set.size() && !parent; ++x) {
            scratch.subset.clear();
            for (std::size_t j = 0; j < set.size(); ++j)
                if (j != x)
                    scratch.subset.push_back(set[j]);
            const detail::QueryKeyRef sub{
                detail::queryHash(geom, INVALID_ID, scratch.subset),
                &geom, INVALID_ID, &scratch.subset};
            if (auto it = memo_.find(sub);
                it != memo_.end() && it->second.hasCheckpoint()) {
                parent = &it->second;
                new_pos = x;
            }
        }
    }

    SimResult res;
    res.ops = set;
    res.points = streams_->points();
    if (parent) {
        incremental_.fetch_add(1, std::memory_order_relaxed);
        simulateExtended(set, new_pos, *parent, geom, res);
    } else {
        full_.fetch_add(1, std::memory_order_relaxed);
        simulateFresh(set, geom, res);
    }
    const std::int64_t num_sets = geom.numSets();
    for (std::size_t j = 0; j < set.size(); ++j) {
        std::int64_t total = 0;
        for (std::int64_t s = 0; s < num_sets; ++s)
            total += res.perSetMisses[static_cast<std::size_t>(s) *
                                          set.size() +
                                      j];
        res.misses[set[j]] = total;
    }

    // A concurrent simulation of the same set may have inserted first;
    // emplace then keeps the winner. Both results are identical (the
    // trace simulation is deterministic), so callers cannot tell.
    // Checkpoints are retained only up to the byte cap: past it the
    // result is memoised aggregates-only, which bounds memo memory on
    // long sweeps (checkpoints change extension *speed*, not answers —
    // which entries keep theirs may depend on interleaving, the values
    // never do).
    const std::size_t checkpoint_bytes =
        (res.perSetMisses.size() + res.tags.size()) *
        sizeof(std::int64_t);
    std::lock_guard<std::mutex> lock(mu_);
    const bool keep =
        checkpointBytes_ + checkpoint_bytes <= checkpointByteCap_;
    if (!keep) {
        res.perSetMisses = {};
        res.tags = {};
    }
    const auto [it, inserted] = memo_.emplace(
        detail::QueryKey{ref.hash, geom, INVALID_ID, set},
        std::move(res));
    if (inserted && keep)
        checkpointBytes_ += checkpoint_bytes;
    return it->second;
}

double
CacheOracle::missesPerIteration(const std::vector<OpId> &set,
                                const CacheGeom &geom)
{
    if (set.empty())
        return 0.0;
    const SimResult &res = simulate(
        detail::canonicalInto(oracleScratch().canonical, set), geom);
    std::int64_t total = 0;
    for (const auto &[op, misses] : res.misses)
        total += misses;
    return static_cast<double>(total) / static_cast<double>(res.points);
}

double
CacheOracle::missRatio(const std::vector<OpId> &set, OpId op,
                       const CacheGeom &geom)
{
    mvp_assert(nest_.op(op).isMemory(), "missRatio of a non-memory op");
    const SimResult &res = simulate(
        detail::canonicalInto(oracleScratch().canonical, set, op), geom);
    return static_cast<double>(res.misses.at(op)) /
           static_cast<double>(res.points);
}

std::unordered_map<OpId, std::int64_t>
CacheOracle::missCounts(const std::vector<OpId> &set, const CacheGeom &geom)
{
    return simulate(detail::canonicalInto(oracleScratch().canonical, set),
                    geom)
        .misses;
}

std::vector<OracleMemoEntry>
CacheOracle::exportMemo() const
{
    std::vector<OracleMemoEntry> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out.reserve(memo_.size());
        for (const auto &[key, res] : memo_) {
            OracleMemoEntry entry;
            entry.geom = key.geom;
            entry.set = key.set;
            entry.points = res.points;
            entry.misses.reserve(key.set.size());
            for (const OpId op : key.set)
                entry.misses.push_back(res.misses.at(op));
            entry.perSetMisses = res.perSetMisses;
            entry.tags = res.tags;
            out.push_back(std::move(entry));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const OracleMemoEntry &a, const OracleMemoEntry &b) {
                  const auto ka =
                      std::tie(a.geom.capacityBytes, a.geom.lineBytes,
                               a.geom.assoc, a.set);
                  const auto kb =
                      std::tie(b.geom.capacityBytes, b.geom.lineBytes,
                               b.geom.assoc, b.set);
                  return ka < kb;
              });
    return out;
}

void
CacheOracle::importMemo(const std::vector<OracleMemoEntry> &entries)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const OracleMemoEntry &entry : entries) {
        if (entry.set.empty() ||
            entry.misses.size() != entry.set.size() || entry.points <= 0)
            mvp_fatal("malformed oracle warm-state entry (",
                      entry.set.size(), " ops, ", entry.misses.size(),
                      " miss totals, ", entry.points, " points)");
        detail::QueryKey key{
            detail::queryHash(entry.geom, INVALID_ID, entry.set),
            entry.geom, INVALID_ID, entry.set};
        if (memo_.find(key) != memo_.end())
            continue;
        SimResult res;
        res.ops = entry.set;
        res.points = entry.points;
        for (std::size_t i = 0; i < entry.set.size(); ++i)
            res.misses[entry.set[i]] = entry.misses[i];
        // A checkpoint is only usable when its shape matches the
        // geometry; anything else (including a cap-trimmed export) is
        // memoised aggregates-only, which affects extension speed but
        // never answers.
        const auto num_sets =
            static_cast<std::size_t>(entry.geom.numSets());
        const bool shape_ok =
            entry.perSetMisses.size() == num_sets * entry.set.size() &&
            entry.tags.size() ==
                num_sets * static_cast<std::size_t>(entry.geom.assoc);
        const std::size_t checkpoint_bytes =
            (entry.perSetMisses.size() + entry.tags.size()) *
            sizeof(std::int64_t);
        const bool keep =
            shape_ok &&
            checkpointBytes_ + checkpoint_bytes <= checkpointByteCap_;
        if (keep) {
            res.perSetMisses = entry.perSetMisses;
            res.tags = entry.tags;
            checkpointBytes_ += checkpoint_bytes;
        }
        memo_.emplace(std::move(key), std::move(res));
    }
}

} // namespace mvp::cme
