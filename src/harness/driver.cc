#include "harness/driver.hh"

#include <chrono>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mvp::harness
{

int
defaultJobs()
{
    if (const char *env = std::getenv("MVP_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
        mvp_warn("ignoring MVP_JOBS='", env, "' (want an integer >= 1)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ParallelDriver::ParallelDriver(int jobs)
    : jobs_(jobs >= 1 ? jobs : defaultJobs())
{
}

ParallelDriver::~ParallelDriver()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : pool_)
        t.join();
}

void
ParallelDriver::ensurePool()
{
    if (!pool_.empty())
        return;
    pool_.reserve(static_cast<std::size_t>(jobs_));
    for (int w = 0; w < jobs_; ++w)
        pool_.emplace_back([this, w] { workerMain(w); });
}

void
ParallelDriver::workerMain(int w)
{
    using ObsClock = std::chrono::steady_clock;

    // One context per worker for the driver's whole lifetime: scratch
    // buffers grown by one sweep stay warm for every later sweep.
    sched::SchedContext ctx;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t, sched::SchedContext &)>
            *work = nullptr;
        std::size_t items = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            work = work_;
            items = items_;
        }

        // Named per sweep, not per thread: a trace session may start
        // after the pool was spawned, and re-registering is idempotent.
        if (obs::traceOn())
            obs::traceSetThreadName("worker-" + std::to_string(w));
        const bool mets = obs::metricsOn();
        const auto busy_start = mets ? ObsClock::now() : ObsClock::time_point{};
        std::int64_t items_done = 0;

        // Dynamic self-scheduling: each idle worker claims (steals) the
        // next unclaimed item, so the pool load-balances itself around
        // expensive items — exact-backend loops cost up to ~10^3x a
        // heuristic one, which static round-robin sharding would
        // serialise behind the unluckiest worker.
        for (;;) {
            const auto claim_start =
                mets ? ObsClock::now() : ObsClock::time_point{};
            const std::size_t i =
                next_.fetch_add(1, std::memory_order_relaxed);
            if (mets) {
                const auto us =
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        ObsClock::now() - claim_start)
                        .count();
                ctx.metrics
                    .rtHist("pool.claim_latency_us", 0.0, 1000.0, 50)
                    .add(static_cast<double>(us));
            }
            if (i >= items)
                break;
            MVP_TRACE_SPAN("item", {}, static_cast<std::int64_t>(i));
            const auto item_start =
                mets ? ObsClock::now() : ObsClock::time_point{};
            (*work)(i, ctx);
            ++items_done;
            if (mets) {
                const auto ms =
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        ObsClock::now() - item_start)
                        .count();
                ctx.metrics.timer("pool.item_ms")
                    .add(static_cast<double>(ms) / 1000.0);
            }
        }

        if (mets) {
            const auto busy_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    ObsClock::now() - busy_start)
                    .count();
            ctx.metrics.rt("pool.busy_ms") += busy_us / 1000;
            ctx.metrics.rtHist("pool.items_per_worker", 0.0, 1024.0, 64)
                .add(static_cast<double>(items_done));
            // Fold before --active_: when run() returns, every
            // worker's sweep contribution is already in the registry.
            obs::Registry::instance().fold(ctx.metrics);
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
        }
        done_.notify_one();
    }
}

void
ParallelDriver::run(
    std::size_t n,
    const std::function<void(std::size_t, sched::SchedContext &)> &work)
{
    if (n == 0)
        return;

    MVP_TRACE_SPAN("sweep", {}, static_cast<std::int64_t>(n));
    if (obs::metricsOn()) {
        // Deterministic totals: the same items run whatever the job
        // count, so these byte-compare across --jobs values.
        serialCtx_.metrics.det("pool.sweeps") += 1;
        serialCtx_.metrics.det("pool.items") +=
            static_cast<std::int64_t>(n);
        serialCtx_.metrics.rtMax("pool.workers", jobs_);
    }

    if (jobs_ <= 1 || n == 1) {
        // Serial fast path: same code path as a one-worker pool, minus
        // the thread. The determinism tests compare this against the
        // sharded runs.
        for (std::size_t i = 0; i < n; ++i) {
            MVP_TRACE_SPAN("item", {}, static_cast<std::int64_t>(i));
            work(i, serialCtx_);
        }
        if (obs::metricsOn())
            obs::Registry::instance().fold(serialCtx_.metrics);
        return;
    }

    ensurePool();
    {
        std::lock_guard<std::mutex> lock(mu_);
        work_ = &work;
        items_ = n;
        next_.store(0, std::memory_order_relaxed);
        active_ = pool_.size();
        ++generation_;
    }
    wake_.notify_all();

    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] { return active_ == 0; });
        work_ = nullptr;
    }
    if (obs::metricsOn())
        obs::Registry::instance().fold(serialCtx_.metrics);
}

} // namespace mvp::harness
