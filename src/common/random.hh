/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the library (the CME sampling solver, the
 * synthetic workload generators, randomised property tests) draws from a
 * seeded Rng so that complete experiment sweeps are bit-reproducible.
 */

#ifndef MVP_COMMON_RANDOM_HH
#define MVP_COMMON_RANDOM_HH

#include <cstdint>

namespace mvp
{

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Small, fast, and good enough statistical quality for sampling iteration
 * spaces; no global state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound) via Lemire rejection; bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t s_[4];
};

} // namespace mvp

#endif // MVP_COMMON_RANDOM_HH
