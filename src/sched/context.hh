/**
 * @file
 * Explicit scheduler contexts: every scratch buffer the scheduling
 * stack reuses across runs, owned by the caller instead of hiding in
 * `thread_local` statics.
 *
 * PR 1 removed the per-run allocations of the hot path by parking the
 * placement-loop buffers in `inline static thread_local` members. That
 * made reentrancy an accident of thread identity: two schedulers on one
 * thread would silently share buffers, and nothing in the type system
 * said so. A SchedContext makes the contract explicit — one context per
 * concurrently-running scheduler, created by whoever owns the thread
 * (the parallel driver creates one per worker). A warm context reaches
 * the same steady state as the old thread-local buffers: zero heap
 * traffic in the placement loop after the first few runs.
 *
 * A SchedContext is NOT thread-safe; it is cheap to construct (empty
 * vectors) and grows to the high-water mark of the loops scheduled
 * through it. The convenience entry points that take no context
 * (scheduleBaseline, scheduleWithBackend without a context, ...) build
 * a transient one per call, trading the buffer reuse for ergonomics.
 */

#ifndef MVP_SCHED_CONTEXT_HH
#define MVP_SCHED_CONTEXT_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"
#include "ddg/ddg.hh"
#include "obs/metrics.hh"
#include "sched/sentinels.hh"

namespace mvp::sched
{

namespace detail
{

/** A register communication a candidate placement would add. */
struct NewComm
{
    OpId producer;
    ClusterId from;
    ClusterId to;
    Cycle xferStart;
    std::size_t xferSlot;   ///< xferStart mod II, precomputed
    int bus;
};

/** A candidate placement of one op in one cluster. */
struct Placement
{
    Cycle time = TIME_UNPLACED;
    Cycle outLatency = 0;
    std::vector<NewComm> newComms;
};

/**
 * Snapshot of one placed in-neighbour of the op being placed, with the
 * cluster-independent arithmetic folded in at snapshot time.
 */
struct InNb
{
    OpId src;
    int distance;
    bool isReg;
    ClusterId cluster;  ///< producer's cluster
    Cycle iiDist;       ///< II * distance
    Cycle ready;        ///< producer's time + outLatency
    Cycle baseEarly;    ///< early bound without a bus transfer
};

/** Snapshot of one placed out-neighbour of the op being placed. */
struct OutNb
{
    OpId dst;
    bool isReg;
    ClusterId cluster;  ///< consumer's cluster
    Cycle budget;       ///< consumer's time + II * distance
    Cycle lateNonReg;   ///< budget - edge latency (non-register)
};

/**
 * Scratch of the heuristic placement loop (scheduler.cc's Attempt).
 * Field meanings are documented at the point of use; everything here is
 * a pure buffer — (re)sized at the start of a run, value-initialised
 * before every read, reused only for its capacity.
 */
struct PlacementScratch
{
    std::vector<char> isPlaced;
    /** Memory ops per cluster. */
    std::vector<std::vector<OpId>> memSet;
    /** [op] override of miss-promoted loads; LAT_NO_OVERRIDE = none. */
    std::vector<Cycle> overrideLat;
    /** [op x cluster] committed transfer starts; CYCLE_MAX = none. */
    std::vector<Cycle> commStart;

    /** @name place() scratch (rebuilt per op, shared by the sweep) */
    /// @{
    std::vector<InNb> inNbs;
    std::vector<OutNb> outNbs;
    /// @}

    /** @name trySlot() scratch (reset at every call) */
    /// @{
    /** Producers needing a transfer. */
    std::vector<OpId> inNeedIds;
    /** [op] min distance; DIST_UNSET = unset. */
    std::vector<int> inMinDist;
    /** [cluster] consumption budget; CYCLE_MAX = unset. */
    std::vector<Cycle> outBudget;
    /** Tentative bus reservations. */
    std::vector<NewComm> reserved;
    Placement curPlacement;
    Placement bestPlacement;
    /// @}

    /** @name Incremental per-cluster locality cache */
    /// @{
    /** missesPerIteration(memSet) per cluster. */
    std::vector<double> baseMiss;
    /** Invalidated on memory-op commit. */
    std::vector<char> baseMissValid;
    /** set + candidate buffer. */
    std::vector<OpId> withScratch;
    /// @}

    /** [cluster] one-walk register-affinity profits. */
    std::vector<int> affinity;
};

} // namespace detail

/**
 * Scratch of computeOrdering()/bothNeighbourCount(): the swing-ordering
 * work lists, the lazily-built reachability matrix, and the ASAP/ALAP
 * tables of the current II.
 */
struct OrderingScratch
{
    ddg::Ddg::TimeBounds tb;

    struct SccInfo
    {
        int index;
        Cycle recMii;
    };
    std::vector<SccInfo> recurrenceSccs;

    std::vector<char> reach;   ///< n x n reachability, built lazily
    std::vector<char> taken;
    std::vector<char> ordered;
    std::vector<char> inSet;
    std::vector<char> before;  ///< bothNeighbourCount()
    std::vector<OpId> work;    ///< reachability BFS stack
    std::vector<OpId> placedUnion;
    std::vector<OpId> setNodes;   ///< flat sets
    std::vector<std::size_t> setBegin;
    std::vector<OpId> frontier;   ///< the sweep's candidate list R
};

/** Scratch of computeLifetimes(). */
struct LifetimeScratch
{
    struct Interval
    {
        ClusterId cluster;
        Cycle from;
        Cycle to;   ///< inclusive
    };
    std::vector<Interval> intervals;
    /** Flat [cluster x slot] live-count table. */
    std::vector<Cycle> live;
};

/**
 * Everything one scheduler needs to run allocation-free once warm.
 * Owned by the caller; one per concurrently-running scheduler. The
 * parallel experiment driver keeps one per worker thread; benches and
 * tests that schedule in a loop keep one across iterations.
 */
class SchedContext
{
  public:
    OrderingScratch ordering;
    LifetimeScratch lifetimes;
    detail::PlacementScratch placement;

    /** The node ordering, computed once per run and kept across II
     * bumps. */
    std::vector<OpId> order;

    /** Metric accumulator riding along with the scratch: same
     * ownership, same thread-affinity. Schedulers record here with
     * plain integer arithmetic; whoever owns the context folds it
     * into the obs::Registry at sweep boundaries (the parallel
     * driver does this per worker per sweep). The destructor folds
     * whatever is left so transient contexts aren't lost — the
     * Registry singleton is first touched at flag-parse time, well
     * before any static pool's contexts are built, so it outlives
     * them. */
    obs::MetricShard metrics;

    ~SchedContext()
    {
        if (obs::metricsOn())
            obs::Registry::instance().fold(metrics);
    }
};

} // namespace mvp::sched

#endif // MVP_SCHED_CONTEXT_HH
