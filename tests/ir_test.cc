/**
 * @file
 * Unit tests for the loop-nest IR: affine expressions, address
 * computation, validation, iteration spaces and the builder's layout
 * allocator.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/loop.hh"
#include "ir/opcode.hh"

namespace mvp::ir
{
namespace
{

// --------------------------------------------------------------- opcode

TEST(Opcode, FuClasses)
{
    EXPECT_EQ(fuTypeOf(Opcode::IAdd), FuType::Int);
    EXPECT_EQ(fuTypeOf(Opcode::Copy), FuType::Int);
    EXPECT_EQ(fuTypeOf(Opcode::FMadd), FuType::Fp);
    EXPECT_EQ(fuTypeOf(Opcode::FDiv), FuType::Fp);
    EXPECT_EQ(fuTypeOf(Opcode::Load), FuType::Mem);
    EXPECT_EQ(fuTypeOf(Opcode::Store), FuType::Mem);
}

TEST(Opcode, Predicates)
{
    EXPECT_TRUE(isMemory(Opcode::Load));
    EXPECT_TRUE(isMemory(Opcode::Store));
    EXPECT_FALSE(isMemory(Opcode::FAdd));
    EXPECT_TRUE(isLoad(Opcode::Load));
    EXPECT_FALSE(isLoad(Opcode::Store));
    EXPECT_TRUE(producesValue(Opcode::Load));
    EXPECT_FALSE(producesValue(Opcode::Store));
}

TEST(Opcode, NamesAreStable)
{
    EXPECT_EQ(opcodeName(Opcode::FMadd), "fmadd");
    EXPECT_EQ(fuTypeName(FuType::Mem), "MEM");
}

// --------------------------------------------------------------- affine

TEST(AffineExpr, EvalLinearCombination)
{
    AffineExpr e;
    e.coeffs = {2, -1};
    e.constant = 5;
    EXPECT_EQ(e.eval({10, 3}), 22);
    EXPECT_EQ(e.eval({0, 0}), 5);
}

TEST(AffineExpr, MissingCoefficientsAreZero)
{
    const AffineExpr e = affineVar(0);
    EXPECT_EQ(e.coeff(0), 1);
    EXPECT_EQ(e.coeff(5), 0);
    EXPECT_EQ(e.eval({7, 100, 100}), 7);
}

TEST(AffineExpr, ConstantDetection)
{
    EXPECT_TRUE(affineConst(3).isConstant());
    EXPECT_FALSE(affineVar(1).isConstant());
    AffineExpr zero_coeffs;
    zero_coeffs.coeffs = {0, 0};
    zero_coeffs.constant = -1;
    EXPECT_TRUE(zero_coeffs.isConstant());
}

TEST(AffineExpr, EqualityIgnoresTrailingZeros)
{
    AffineExpr a = affineVar(0);
    AffineExpr b = affineVar(0);
    b.coeffs.push_back(0);
    EXPECT_EQ(a, b);
    b.constant = 1;
    EXPECT_FALSE(a == b);
}

TEST(AffineExpr, ToString)
{
    EXPECT_EQ(affineVar(1, 2, 3).toString(), "2*i1 + 3");
    EXPECT_EQ(affineVar(0).toString(), "i0");
    EXPECT_EQ(affineConst(0).toString(), "0");
}

TEST(AffineRef, UniformlyGenerated)
{
    const AffineRef a{0, {affineVar(0), affineVar(1, 1, -1)}};
    const AffineRef b{0, {affineVar(0), affineVar(1, 1, 4)}};
    const AffineRef c{0, {affineVar(0), affineVar(1, 2, 0)}};
    const AffineRef d{1, {affineVar(0), affineVar(1, 1, 0)}};
    EXPECT_TRUE(a.uniformlyGeneratedWith(b));
    EXPECT_FALSE(a.uniformlyGeneratedWith(c));   // different coefficient
    EXPECT_FALSE(a.uniformlyGeneratedWith(d));   // different array
}

// ----------------------------------------------------------------- loop

LoopNest
smallNest()
{
    LoopNestBuilder b("t");
    b.loop("i", 0, 4);
    b.loop("j", 0, 8, 2);
    const auto A = b.arrayAt("A", {4, 16}, 0x1000);
    const auto l = b.load(A, {affineVar(0), affineVar(1)}, "l");
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()}, "m");
    b.store(A, {affineVar(0), affineVar(1)}, use(m), "s");
    return b.build();
}

TEST(LoopNest, TripCounts)
{
    const LoopNest nest = smallNest();
    EXPECT_EQ(nest.depth(), 2u);
    EXPECT_EQ(nest.innerTripCount(), 4);   // 0,2,4,6
    EXPECT_EQ(nest.outerExecutions(), 4);
    EXPECT_EQ(nest.loops()[0].tripCount(), 4);
}

TEST(LoopNest, RowMajorAddressing)
{
    const LoopNest nest = smallNest();
    const auto &ref = *nest.op(0).memRef;
    // A[i][j] at 0x1000 + (i*16 + j) * 4.
    EXPECT_EQ(nest.addressOf(ref, {0, 0}), 0x1000u);
    EXPECT_EQ(nest.addressOf(ref, {1, 0}), 0x1000u + 64);
    EXPECT_EQ(nest.addressOf(ref, {2, 6}), 0x1000u + (2 * 16 + 6) * 4);
}

TEST(LoopNest, MemoryOpsList)
{
    const LoopNest nest = smallNest();
    const auto mem = nest.memoryOps();
    ASSERT_EQ(mem.size(), 2u);
    EXPECT_EQ(mem[0], 0);
    EXPECT_EQ(mem[1], 2);
}

TEST(LoopNestDeath, OutOfBoundsReferenceIsFatal)
{
    LoopNestBuilder b("bad");
    b.loop("i", 0, 10);
    const auto A = b.array("A", {8});
    b.load(A, {affineVar(0)});   // i reaches 9, extent is 8
    EXPECT_EXIT((void)b.build(), ::testing::ExitedWithCode(1), "indexes");
}

TEST(LoopNestDeath, ReadBeforeDefInSameIterationIsFatal)
{
    LoopNestBuilder b("bad2");
    b.loop("i", 0, 4);
    const auto A = b.array("A", {4});
    // Op 0 reads op 1 at distance 0: not yet executed.
    b.op(Opcode::FAdd, {use(1, 0)});
    b.load(A, {affineVar(0)});
    EXPECT_EXIT((void)b.build(), ::testing::ExitedWithCode(1),
                "before it executes");
}

TEST(LoopNestDeath, StoreWithoutValueIsFatal)
{
    LoopNest nest("manual");
    nest.addLoop({"i", 0, 4, 1});
    nest.addArray({INVALID_ID, "A", {4}, 4, 0});
    Operation st;
    st.opcode = Opcode::Store;
    st.memRef = AffineRef{0, {affineVar(0)}};
    nest.addOp(std::move(st));
    EXPECT_EXIT(nest.validate(), ::testing::ExitedWithCode(1),
                "no value operand");
}

TEST(LoopNest, ToStringMentionsEverything)
{
    const std::string s = smallNest().toString();
    EXPECT_NE(s.find("for i"), std::string::npos);
    EXPECT_NE(s.find("A["), std::string::npos);
    EXPECT_NE(s.find("fmul"), std::string::npos);
}

// ------------------------------------------------------ iteration space

TEST(IterationSpace, LexicographicOrder)
{
    const LoopNest nest = smallNest();
    const IterationSpace space(nest);
    EXPECT_EQ(space.points(), 16);
    EXPECT_EQ(space.innerPoints(), 4);
    // First point: i=0, j=0; second: i=0, j=2 (inner advances first).
    EXPECT_EQ(space.at(0), (std::vector<std::int64_t>{0, 0}));
    EXPECT_EQ(space.at(1), (std::vector<std::int64_t>{0, 2}));
    EXPECT_EQ(space.at(4), (std::vector<std::int64_t>{1, 0}));
    EXPECT_EQ(space.at(15), (std::vector<std::int64_t>{3, 6}));
}

TEST(IterationSpace, IndexRoundTrip)
{
    const LoopNest nest = smallNest();
    const IterationSpace space(nest);
    for (std::int64_t p = 0; p < space.points(); ++p)
        EXPECT_EQ(space.indexOf(space.at(p)), p);
}

// -------------------------------------------------------------- builder

TEST(Builder, AutoLayoutIsAlignedAndDisjoint)
{
    LoopNestBuilder b("layout");
    b.loop("i", 0, 4);
    b.layoutBase(0x1000);
    b.layoutAlign(64);
    const auto A = b.array("A", {5});       // 20 bytes
    const auto B = b.array("B", {4});
    const auto l = b.load(A, {affineVar(0)});
    b.store(B, {affineVar(0)}, use(l));
    const LoopNest nest = b.build();
    EXPECT_EQ(nest.array(A).base, 0x1000u);
    EXPECT_EQ(nest.array(B).base % 64, 0u);
    EXPECT_GE(nest.array(B).base,
              nest.array(A).base +
                  static_cast<Addr>(nest.array(A).sizeBytes()));
}

TEST(Builder, ExplicitBasesAreKept)
{
    LoopNestBuilder b("explicit");
    b.loop("i", 0, 4);
    const auto A = b.arrayAt("A", {4}, 0x2000);
    const auto l = b.load(A, {affineVar(0)});
    b.op(Opcode::FAdd, {use(l), liveIn()});
    const LoopNest nest = b.build();
    EXPECT_EQ(nest.array(A).base, 0x2000u);
}

TEST(Builder, NextOpIdSupportsRecurrences)
{
    LoopNestBuilder b("acc");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    const OpId acc = b.op(Opcode::FAdd, {use(l), use(b.nextOpId(), 1)});
    const LoopNest nest = b.build();
    EXPECT_EQ(nest.op(acc).inputs[1].producer, acc);
    EXPECT_EQ(nest.op(acc).inputs[1].distance, 1);
}

TEST(Builder, ElementSizeAffectsLayoutAndAddressing)
{
    LoopNestBuilder b("elem8");
    b.loop("i", 0, 4);
    const auto A = b.arrayAt("A", {8}, 0x100, 8);
    const auto l = b.load(A, {affineVar(0)});
    b.op(Opcode::FAdd, {use(l), liveIn()});
    const LoopNest nest = b.build();
    EXPECT_EQ(nest.array(A).sizeBytes(), 64);
    EXPECT_EQ(nest.addressOf(*nest.op(l).memRef, {3}), 0x100u + 24);
}

} // namespace
} // namespace mvp::ir
