/**
 * @file
 * Tests for the synthetic-scenario generator: seed determinism (the
 * property the differential pipeline's reproducible-by-seed reports
 * rest on), structural validity over many seeds, distribution
 * coverage, gen-spec parsing, the `gen:` workload scheme and the
 * corpus dump helpers.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "ddg/ddg.hh"
#include "gen/corpus.hh"
#include "gen/generator.hh"
#include "machine/presets.hh"
#include "text/format.hh"
#include "workloads/workloads.hh"

namespace mvp::gen
{
namespace
{

TEST(Generator, SameSeedSameScenarioBitForBit)
{
    for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
        const Scenario a = generateScenario(seed);
        const Scenario b = generateScenario(seed);
        EXPECT_EQ(text::printLoop(a.nest), text::printLoop(b.nest));
        EXPECT_EQ(text::printMachine(a.machine),
                  text::printMachine(b.machine));
    }
}

TEST(Generator, DifferentSeedsDiverge)
{
    // Not a tautology (two draws *can* collide) but with these seeds
    // the streams differ; a regression to a constant generator fails.
    std::set<std::string> loops;
    std::set<std::string> machines;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        loops.insert(text::printLoop(generateLoop(seed)));
        machines.insert(text::printMachine(generateMachine(seed)));
    }
    EXPECT_GE(loops.size(), 15u);
    EXPECT_GE(machines.size(), 12u);
}

TEST(Generator, LoopAndMachineSubStreamsAreIndependent)
{
    // The machine draw must not perturb the loop draw: scenario and
    // direct generation agree through the derived sub-seeds.
    const Scenario sc = generateScenario(7);
    EXPECT_EQ(text::printLoop(sc.nest),
              text::printLoop(generateLoop(deriveSeed(7, 0))));
    EXPECT_EQ(text::printMachine(sc.machine),
              text::printMachine(generateMachine(deriveSeed(7, 1))));
}

TEST(Generator, HundredsOfSeedsProduceValidSchedulableInput)
{
    const MachineConfig lat_machine = makeUnified();
    int recurrences = 0;
    int clustered = 0;
    int conflict_layouts = 0;
    for (std::uint64_t s = 0; s < 400; ++s) {
        const Scenario sc = generateScenario(deriveSeed(0xabcdULL, s));
        sc.nest.validate();   // fatal on violation
        sc.machine.validate();
        EXPECT_GE(sc.nest.size(), 3u);
        EXPECT_FALSE(sc.nest.memoryOps().empty());
        EXPECT_GT(sc.nest.innerTripCount(), 4);
        // Small iteration spaces keep the CME solver exhaustive (and
        // the simulator fast) — the differential pipeline's regime.
        EXPECT_LE(ir::IterationSpace(sc.nest).points(), 320);
        if (ddg::Ddg::build(sc.nest, lat_machine).recMii() > 1)
            ++recurrences;
        if (sc.machine.isClustered())
            ++clustered;
        // 8 KB-periodic bases conflict in every <= 8 KB direct cache.
        const CacheGeom dm{8192, 32, 1};
        const auto &arrays = sc.nest.arrays();
        for (std::size_t a = 1; a < arrays.size(); ++a)
            if (dm.setOf(arrays[a].base) == dm.setOf(arrays[0].base)) {
                ++conflict_layouts;
                break;
            }
    }
    // The distributions must actually exercise the interesting axes.
    EXPECT_GE(recurrences, 100);
    EXPECT_GE(clustered, 150);
    EXPECT_GE(conflict_layouts, 80);
}

TEST(Generator, SuiteNamesAreUniqueAndDeterministic)
{
    const auto suite = generateSuite(11, 16);
    ASSERT_EQ(suite.size(), 16u);
    std::set<std::string> names;
    for (const auto &nest : suite)
        EXPECT_TRUE(names.insert(nest.name()).second) << nest.name();
    const auto again = generateSuite(11, 16);
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(text::printLoop(suite[i]), text::printLoop(again[i]));
    // A longer suite extends, never reshuffles, a shorter one.
    const auto longer = generateSuite(11, 20);
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(longer[i].name(), suite[i].name());
}

// ------------------------------------------------------- gen: specs

TEST(GenSpec, ParsesKeysWithBothSeparators)
{
    const auto a = generateFromSpec("seed=9,loops=3");
    const auto b = generateFromSpec("seed=9+loops=3");
    ASSERT_EQ(a.size(), 3u);
    ASSERT_EQ(b.size(), 3u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(text::printLoop(a[i]), text::printLoop(b[i]));

    const auto deep = generateFromSpec("seed=9,loops=4,depth=2");
    for (const auto &nest : deep)
        EXPECT_EQ(nest.depth(), 2u);
}

TEST(GenSpecDeath, RejectsUnknownKeysAndBadValues)
{
    EXPECT_EXIT((void)generateFromSpec("seed=9,frobs=2"),
                ::testing::ExitedWithCode(1),
                "unknown key 'frobs' \\(known: seed, loops, depth, "
                "ops\\)");
    EXPECT_EXIT((void)generateFromSpec("loops=banana"),
                ::testing::ExitedWithCode(1), "bad value 'banana'");
    EXPECT_EXIT((void)generateFromSpec("loops=0"),
                ::testing::ExitedWithCode(1), "loops wants 1..4096");
}

TEST(GenSpec, GenSchemeResolvesThroughWorkloadRegistry)
{
    const auto bench =
        workloads::benchmarkByName("gen:seed=21+loops=5");
    EXPECT_EQ(bench.name, "gen:seed=21+loops=5");
    ASSERT_EQ(bench.loops.size(), 5u);
    const auto direct = generateSuite(21, 5);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(text::printLoop(bench.loops[i]),
                  text::printLoop(direct[i]));
}

// --------------------------------------------------------- corpus

TEST(Corpus, WritesFilesTheTextFrontendLoadsBack)
{
    const std::string dir = ::testing::TempDir() + "gen_test_corpus";
    CorpusSpec spec;
    spec.seed = 33;
    spec.loops = 3;
    spec.machines = 2;
    const auto paths = writeCorpus(spec, dir);
    ASSERT_EQ(paths.size(), 3u);

    const text::LoopFile file = text::loadLoopFile(paths[0]);
    EXPECT_EQ(file.suite, "gen33");
    ASSERT_EQ(file.loops.size(), 3u);
    const auto direct = generateSuite(33, 3);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(text::printLoop(file.loops[i]),
                  text::printLoop(direct[i]));
    for (std::size_t m = 1; m < paths.size(); ++m)
        text::loadMachineFile(paths[m]).validate();

    std::filesystem::remove_all(dir);
}

TEST(Corpus, ScenarioDumpReplaysExactly)
{
    const std::string stem = ::testing::TempDir() + "gen_test_scn";
    const Scenario sc = generateScenario(77);
    const auto paths = writeScenario(sc, stem);
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(text::printLoop(text::loadLoopFile(paths[0]).loops.at(0)),
              text::printLoop(sc.nest));
    EXPECT_EQ(text::printMachine(text::loadMachineFile(paths[1])),
              text::printMachine(sc.machine));
    for (const auto &p : paths)
        std::filesystem::remove(p);
}

} // namespace
} // namespace mvp::gen
