/**
 * @file
 * Quickstart: build a loop, schedule it with both schedulers on the
 * 2-cluster machine, and simulate the result.
 *
 * The loop is a SAXPY-like kernel over two arrays that conflict in the
 * direct-mapped caches, so the memory-aware scheduler (RMCA) produces a
 * visibly different cluster assignment than the register-only baseline.
 */

#include <cstdio>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "vliw/kernel.hh"

using namespace mvp;

int
main()
{
    // --- 1. Describe the loop (what a compiler front-end would emit). ---
    ir::LoopNestBuilder b("quickstart.saxpy2");
    b.loop("rep", 0, 16);      // outer repetitions (NTIMES)
    b.loop("i", 0, 512);       // the modulo-scheduled inner loop (NITER)
    // X and Y are 8 KB apart: same cache set in every configuration.
    const auto X = b.arrayAt("X", {512}, 0x10000);
    const auto Y = b.arrayAt("Y", {512}, 0x12000);
    const auto Z = b.arrayAt("Z", {512}, 0x14000);

    const auto x = b.load(X, {ir::affineVar(1)}, "x");
    const auto y = b.load(Y, {ir::affineVar(1)}, "y");
    const auto ax = b.op(ir::Opcode::FMul, {ir::use(x), ir::liveIn()},
                         "ax");
    const auto s = b.op(ir::Opcode::FAdd, {ir::use(ax), ir::use(y)}, "s");
    b.store(Z, {ir::affineVar(1)}, ir::use(s), "sz");
    const ir::LoopNest nest = b.build();
    std::printf("%s\n", nest.toString().c_str());

    // --- 2. Pick a machine and build the dependence graph. ---
    const MachineConfig machine = makeTwoCluster();
    std::printf("machine: %s\n\n", machine.summary().c_str());
    const auto graph = ddg::Ddg::build(nest, machine);
    std::printf("%s\n", graph.toString().c_str());

    // --- 3. Schedule: baseline vs RMCA. ---
    cme::CmeAnalysis locality(nest);
    auto base = sched::scheduleBaseline(graph, machine, 1.0, &locality);
    auto rmca = sched::scheduleRmca(graph, machine, 0.0, locality);
    if (!base.ok || !rmca.ok) {
        std::printf("scheduling failed\n");
        return 1;
    }
    std::printf("baseline schedule:\n%s\n",
                base.schedule.toString(graph, machine).c_str());
    std::printf("RMCA schedule (threshold 0.00, '*' = miss latency):\n%s\n",
                rmca.schedule.toString(graph, machine).c_str());

    // --- 4. Expand to VLIW code (Figure 2 format). ---
    const auto img = vliw::KernelImage::generate(graph, rmca.schedule,
                                                 machine);
    std::printf("code: %zu instructions, kernel utilisation %.0f%%\n\n",
                img.codeSizeInstrs(), img.kernelUtilisation() * 100);

    // --- 5. Simulate both schedules on the lockstep machine. ---
    const auto sim_base = sim::simulateLoop(graph, base.schedule, machine);
    const auto sim_rmca = sim::simulateLoop(graph, rmca.schedule, machine);
    std::printf("baseline: II=%lld compute=%lld stall=%lld total=%lld\n",
                static_cast<long long>(base.schedule.ii()),
                static_cast<long long>(sim_base.computeCycles),
                static_cast<long long>(sim_base.stallCycles),
                static_cast<long long>(sim_base.totalCycles()));
    std::printf("RMCA:     II=%lld compute=%lld stall=%lld total=%lld\n",
                static_cast<long long>(rmca.schedule.ii()),
                static_cast<long long>(sim_rmca.computeCycles),
                static_cast<long long>(sim_rmca.stallCycles),
                static_cast<long long>(sim_rmca.totalCycles()));
    std::printf("speedup: %.2fx\n",
                static_cast<double>(sim_base.totalCycles()) /
                    static_cast<double>(sim_rmca.totalCycles()));
    return 0;
}
