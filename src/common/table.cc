#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace mvp
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    mvp_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    mvp_assert(cells.size() == headers_.size(),
               "row has ", cells.size(), " cells, expected ",
               headers_.size());
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addRule()
{
    rows_.push_back(Row{true, {}});
}

std::size_t
TextTable::rows() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        if (!row.is_rule)
            ++n;
    return n;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.is_rule)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 3;

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << '\n';
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << padRight(headers_[c], widths[c]) << (c + 1 < widths.size()
                                                       ? " | "
                                                       : "");
    os << '\n' << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        if (row.is_rule) {
            os << std::string(total, '-') << '\n';
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            os << padRight(row.cells[c], widths[c])
               << (c + 1 < widths.size() ? " | " : "");
        os << '\n';
    }
    return os.str();
}

} // namespace mvp
