#include "sched/exact/bnb.hh"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "sched/exact/pressure.hh"
#include "sched/lifetimes.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/ordering.hh"

namespace mvp::sched::exact
{

namespace
{

constexpr Cycle NO_BOUND = CYCLE_MAX / 4;

/** Outcome of one DFS subtree. */
enum class Walk
{
    Continue,   ///< subtree exhausted, keep searching siblings
    Stop,       ///< a satisfying schedule was found, unwind
    Abort,      ///< budget exhausted or cancelled, unwind
};

/**
 * One committed transfer, kept on an undo stack so backtracking can
 * release the bus and the comm-start entry it booked. The booking
 * depth feeds conflict attribution: a candidate refuted by bus
 * saturation cites the decisions whose transfers crowd the window.
 */
struct BookedComm
{
    OpId producer;
    ClusterId from;
    ClusterId to;
    Cycle xferStart;
    std::size_t xferSlot;
    int bus;
    int depth;   ///< DFS depth that booked it
};

/**
 * Depth-first branch-and-bound over (op -> cluster, cycle) placements
 * at one II at a time. State mirrors the heuristic Attempt — the same
 * Mrt, the same comm-start table, the same neighbour windows — but
 * every commit is invertible, which is what turns the greedy placement
 * loop into an exhaustive search. Two symmetry breaks keep the tree
 * small without losing any schedule shape:
 *
 *  - the first op is pinned to cycle 0 (modulo schedules are
 *    shift-invariant, so every solution has a shifted twin there);
 *  - an op may only enter a cluster that is already populated or the
 *    single lowest-numbered empty one (clusters are interchangeable in
 *    the machine model, so every solution has a relabelled twin whose
 *    clusters first appear in DFS order).
 *
 * On top of the enumeration sit two search accelerators (see
 * bnb.hh): the incremental pressure bound and conflict-driven
 * backjumping. Both are result-preserving — the minimal II, the
 * lifted lower bound and the best (first minimal-pressure) schedule
 * are identical with each toggled on or off; only the node count
 * shrinks. (A third accelerator, a dominance memo over canonical
 * partial-schedule signatures, was retired after the PR-7 counters
 * proved its hit count structurally zero: candidate windows are ≤ II
 * wide, so same-depth prefixes always differ in some op's modulo slot
 * and signatures never collided — see docs/observability.md.)
 */
class Searcher
{
  public:
    Searcher(const ddg::Ddg &graph, const MachineConfig &machine,
             const ExactOptions &options, SchedContext &ctx)
        : graph_(graph), machine_(machine), options_(options), ctx_(ctx),
          mrt_(machine, 1), sched_(1, graph.size(), machine.nClusters)
    {
        const auto n = graph_.size();
        const auto nc = static_cast<std::size_t>(machine_.nClusters);
        placed_.assign(n, 0);
        comm_start_.assign(n * nc, CYCLE_MAX);
        out_budget_.assign(nc, CYCLE_MAX);
        in_min_dist_.assign(n, DIST_UNSET);
        cluster_pop_.assign(nc, 0);
        need_in_.resize(n);
        need_out_.resize(n);
        in_nbs_.resize(n);
        out_nbs_.resize(n);
        nb_mask_.assign(n, 0);
        c_order_.resize(n);
        for (int f = 0; f < ir::NUM_FU_TYPES; ++f) {
            remaining_[f] = 0;
            used_[f] = 0;
        }
        for (std::size_t v = 0; v < n; ++v)
            ++remaining_[static_cast<int>(
                graph_.loop().op(static_cast<OpId>(v)).fuType())];
    }

    /** Run the full II iteration; fills the result. */
    ScheduleResult run();

  private:
    struct InNb
    {
        OpId src;
        int distance;
        bool isReg;
        Cycle iiDist;
        Cycle ready;      ///< producer time + out latency
        Cycle baseEarly;  ///< early bound without a bus transfer
        ClusterId cluster;
    };
    struct OutNb
    {
        bool isReg;
        ClusterId cluster;
        Cycle budget;      ///< consumer time + II * distance
        Cycle lateNonReg;  ///< budget - edge latency (non-register)
    };

    Walk dfs(std::size_t k);
    Walk leaf();
    Walk tryPlace(OpId v, ClusterId c, Cycle t, std::size_t slot,
                  std::size_t k, std::uint64_t &conf);
    void snapshotNeighbours(OpId v, std::size_t k);
    bool bookTransfers(OpId v, ClusterId c, Cycle t, std::size_t k);
    void unbook(std::size_t mark);
    bool resourcesFit() const;
    bool applyPressure(OpId v, ClusterId c, Cycle t,
                       std::size_t comm_mark);

    /**
     * Charge one search node against the budgets; false means the
     * attempt must abort (node cap, wall-clock deadline, or a
     * portfolio sibling proved the probe pointless). Every child the
     * search considers is charged exactly once — candidate placements
     * in tryPlace() and children pruned beforehand by an empty
     * dependence window alike — so under a pure node cap the count at
     * which "gap unknown" degradation triggers depends only on (loop,
     * machine, options), never on how a sweep is sharded. The
     * deadline and the cancel token are polled every 64 nodes,
     * starting at the first (so a zero budget aborts deterministically
     * before any work).
     */
    bool chargeNode()
    {
        ++nodes_;
        if (node_cap_ && nodes_ > attempt_limit_) {
            budget_hit_ = true;
            return false;
        }
        // The tiebreak allowance ends the phase, it is not a budget
        // failure: the minimal II (and its certificate) are already
        // secured, only pressureOptimal is forfeited.
        if (found_ && tiebreak_cap_ > 0 &&
            nodes_ - found_nodes_ > tiebreak_cap_)
            return false;
        if ((nodes_ & 63) == 1) {
            if (deadline_on_ &&
                std::chrono::steady_clock::now() >= deadline_) {
                budget_hit_ = true;
                return false;
            }
            if (cancel_ != nullptr &&
                cancel_->load(std::memory_order_relaxed) <= ii_) {
                cancelled_ = true;
                budget_hit_ = true;
                return false;
            }
        }
        return true;
    }

    /**
     * Subtree-splitting filter: at depth 1 (the root op has exactly
     * one candidate) each candidate belongs to one shard, so the
     * shards' trees partition the full tree and the union of shard
     * refutations is a complete refutation.
     */
    bool shardSkip(std::size_t k)
    {
        return k == 1 && shard_count_ > 1 &&
               (depth1_counter_++ % shard_count_) != shard_index_;
    }

    /** @name Conflict-driven backjumping */
    /// @{
    static constexpr std::uint64_t prefixMask(std::size_t k)
    {
        return k >= 64 ? ~0ull : ((1ull << k) - 1);
    }

    /**
     * Exhausted depth: turn the accumulated conflict set into a jump.
     * An empty set certifies the whole II infeasible (no earlier
     * decision is implicated, so every assignment fails identically);
     * otherwise the deepest cited decision is the next one worth
     * revisiting and the rest of the set is carried to it.
     *
     * @p from is the depth being left, for the jump-depth telemetry:
     * a skip of more than one level counts as a backjump and its
     * distance lands in the depth histogram.
     */
    void setJump(std::uint64_t mask, std::size_t from)
    {
        jump_active_ = true;
        if (mask == 0) {
            jump_to_ = -1;
            carry_ = 0;
            ++ii_empty_conf_;
            if (bj_hist_ != nullptr)
                bj_hist_->add(static_cast<double>(from) + 1.0);
        } else {
            jump_to_ = 63 - std::countl_zero(mask);
            carry_ = mask & ~(1ull << jump_to_);
            const int dist = static_cast<int>(from) - jump_to_;
            if (dist > 1) {
                ++backjumps_;
                if (bj_hist_ != nullptr)
                    bj_hist_->add(static_cast<double>(dist));
            }
        }
    }

    /** Depths whose transfers currently hold buses. */
    std::uint64_t bookedDepthMask() const
    {
        std::uint64_t m = 0;
        for (const BookedComm &bc : booked_)
            m |= 1ull << bc.depth;
        return m;
    }

    /** Index into the occupant-depth table (maintained when cbj_). */
    std::size_t fuCell(ClusterId c, std::size_t slot,
                       ir::FuType fu) const
    {
        return (slot * static_cast<std::size_t>(machine_.nClusters) +
                static_cast<std::size_t>(c)) *
                   ir::NUM_FU_TYPES +
               static_cast<std::size_t>(fu);
    }

    /** Depths occupying (cluster, slot, fu) in the reservation
     * table. */
    std::uint64_t fuOccupantMask(ClusterId c, std::size_t slot,
                                 ir::FuType fu) const
    {
        return fu_depth_mask_[fuCell(c, slot, fu)];
    }
    /// @}

    Cycle &commStart(OpId u, ClusterId c)
    {
        return comm_start_[static_cast<std::size_t>(u) *
                               static_cast<std::size_t>(
                                   machine_.nClusters) +
                           static_cast<std::size_t>(c)];
    }

    const ddg::Ddg &graph_;
    const MachineConfig &machine_;
    const ExactOptions &options_;
    SchedContext &ctx_;   ///< ordering + lifetime scratch

    Cycle ii_ = 1;
    Mrt mrt_;
    ModuloSchedule sched_;
    std::vector<OpId> order_;
    std::vector<char> placed_;
    std::vector<Cycle> comm_start_;
    std::vector<BookedComm> booked_;   ///< undo stack of transfers
    std::vector<int> cluster_pop_;     ///< ops per cluster
    ClusterId opened_ = 0;             ///< populated clusters

    /**
     * Depth-indexed scratch: unlike the heuristic's flat thread-local
     * buffers, the search re-enters the placement logic recursively,
     * so everything a level still needs after recursing lives in a
     * per-depth slot.
     */
    std::vector<std::vector<InNb>> in_nbs_;
    std::vector<std::vector<OutNb>> out_nbs_;
    /** Producers needing a new transfer: (producer, min distance). */
    std::vector<std::vector<std::pair<OpId, int>>> need_in_;
    /** Destination clusters needing a transfer: (cluster, budget). */
    std::vector<std::vector<std::pair<ClusterId, Cycle>>> need_out_;
    /** Placed-neighbour depths of the op at each depth (conflicts). */
    std::vector<std::uint64_t> nb_mask_;
    /** (slot, cluster, fu) -> depth bits of the current occupants. */
    std::vector<std::uint64_t> fu_depth_mask_;

    /** Transient dedup scratch, clean between uses. */
    std::vector<OpId> in_need_ids_;
    std::vector<int> in_min_dist_;
    std::vector<Cycle> out_budget_;
    std::vector<ClusterId> cluster_order_scratch_;
    std::vector<int> cluster_score_scratch_;
    /** Per-depth cluster visit order (survives the recursion). */
    std::vector<std::vector<ClusterId>> c_order_;

    /** FU-class counting bound. */
    int remaining_[ir::NUM_FU_TYPES];
    int used_[ir::NUM_FU_TYPES];

    /** Search accelerators. */
    PressureTracker pressure_;
    std::vector<int> order_pos_;     ///< op -> DFS depth
    bool cbj_ = false;
    /**
     * Incremental pressure tracking is maintained only when the
     * tiebreak needs its bound; with the tiebreak off (first feasible
     * leaf wins — e.g. portfolio racing probes) leaves fall back to
     * the one-shot computeLifetimes check and the search skips the
     * per-placement interval bookkeeping entirely.
     */
    bool pressure_on_ = false;
    bool jump_active_ = false;
    int jump_to_ = 0;
    std::uint64_t carry_ = 0;

    /** Budgets. */
    std::int64_t nodes_ = 0;
    std::int64_t attempt_limit_ = 0;   ///< nodes_ cap of this II attempt
    std::int64_t attempt_start_nodes_ = 0;
    std::int64_t found_nodes_ = 0;     ///< nodes_ at the first leaf
    std::int64_t tiebreak_cap_ = 0;    ///< tiebreak node allowance
    bool node_cap_ = false;
    bool deadline_on_ = false;
    std::chrono::steady_clock::time_point deadline_;
    const std::atomic<Cycle> *cancel_ = nullptr;
    bool budget_hit_ = false;
    bool cancelled_ = false;

    /** Sharding. */
    int shard_count_ = 1;
    int shard_index_ = 0;
    std::int64_t depth1_counter_ = 0;

    bool found_ = false;
    Cycle best_pressure_ = CYCLE_MAX;
    ModuloSchedule best_;
    std::vector<int> best_max_live_;

    /**
     * @name Observability tallies
     * Plain members bumped on the hot path (an increment is cheaper
     * than the branch that would skip it) and folded once per run()
     * by foldMetrics(). A serial search's counts are a pure function
     * of (loop, machine, options) and fold into the deterministic
     * section; a portfolio probe (shared incumbent or sharded tree)
     * races siblings, so its counts are runtime-only.
     */
    /// @{
    void foldMetrics(const ScheduleResult &result);

    Histogram *bj_hist_ = nullptr;   ///< non-null only when metricsOn
    std::int64_t leaves_ = 0;
    std::int64_t dead_leaves_ = 0;       ///< register-overflow leaves
    std::int64_t backjumps_ = 0;         ///< jumps skipping > 1 level
    std::int64_t ii_empty_conf_ = 0;     ///< empty-conflict certificates
    std::int64_t prune_fu_ = 0;          ///< FU slot already taken
    std::int64_t prune_bus_ = 0;         ///< transfers unbookable
    std::int64_t prune_window_ = 0;      ///< empty dependence window
    std::int64_t prune_pressure_ = 0;    ///< register bound cut
    std::int64_t fu_refuted_ = 0;        ///< IIs refuted by counting
    std::int64_t ii_refuted_ = 0;        ///< IIs refuted by search
    std::int64_t lifts_ = 0;             ///< lower-bound raises
    /// @}
};

void
Searcher::snapshotNeighbours(OpId v, std::size_t k)
{
    auto &ins = in_nbs_[k];
    auto &outs = out_nbs_[k];
    ins.clear();
    outs.clear();
    std::uint64_t mask = 0;
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.src == v || !placed_[static_cast<std::size_t>(e.src)])
            continue;
        const auto &pu = sched_.placed(e.src);
        const Cycle ii_dist = ii_ * e.distance;
        const Cycle ready = pu.time + pu.outLatency;
        const Cycle base_early =
            (e.isRegFlow() ? ready : pu.time + e.latency) - ii_dist;
        ins.push_back({e.src, e.distance, e.isRegFlow(), ii_dist, ready,
                       base_early, pu.cluster});
        if (cbj_)
            mask |= 1ull << order_pos_[static_cast<std::size_t>(e.src)];
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.dst == v || !placed_[static_cast<std::size_t>(e.dst)])
            continue;
        const auto &pw = sched_.placed(e.dst);
        const Cycle budget = pw.time + ii_ * e.distance;
        outs.push_back(
            {e.isRegFlow(), pw.cluster, budget, budget - e.latency});
        if (cbj_)
            mask |= 1ull << order_pos_[static_cast<std::size_t>(e.dst)];
    }
    nb_mask_[k] = mask;
}

/**
 * The per-class counting bound: every op needs one slot of its FU
 * class somewhere in the II x clusters reservation table. Placement
 * keeps remaining_[f] + used_[f] invariant (the total op count of
 * class f), so the comparison is a pure function of the II — checked
 * once per attempt before the search starts, where a failure is an
 * instant II refutation; below the root it could never fire.
 */
bool
Searcher::resourcesFit() const
{
    for (int f = 0; f < ir::NUM_FU_TYPES; ++f) {
        const auto type = static_cast<ir::FuType>(f);
        const int capacity =
            static_cast<int>(ii_) * machine_.totalFus(type);
        if (remaining_[f] > capacity - used_[f])
            return false;
    }
    return true;
}

/**
 * Book every cross-cluster transfer the placement (v -> c at t) needs,
 * earliest-fit on the lowest free bus (the same deterministic rule the
 * heuristic applies, so its schedules are all reachable). On failure
 * everything booked by this call is rolled back.
 */
bool
Searcher::bookTransfers(OpId v, ClusterId c, Cycle t, std::size_t k)
{
    const Cycle lrb = machine_.regBusLatency;
    const Cycle out_lat = graph_.opLatency(v);
    const std::size_t mark = booked_.size();
    const int depth = static_cast<int>(k);

    for (const auto &[u, min_dist] : need_in_[k]) {
        const auto &pu = sched_.placed(u);
        const Cycle x_min = pu.time + pu.outLatency;
        const Cycle x_max = t + ii_ * min_dist - lrb;
        const Cycle hi = std::min(x_max, x_min + ii_ - 1);
        bool ok = false;
        if (x_min <= hi) {
            std::size_t sx = mrt_.slot(x_min);
            for (Cycle x = x_min; x <= hi; ++x) {
                const int bus = mrt_.findFreeBusAt(sx);
                if (bus != BUS_NONE) {
                    mrt_.reserveBusAt(bus, sx);
                    booked_.push_back(
                        {u, pu.cluster, c, x, sx, bus, depth});
                    commStart(u, c) = x;
                    ok = true;
                    break;
                }
                sx = mrt_.nextSlot(sx);
            }
        }
        if (!ok) {
            unbook(mark);
            return false;
        }
    }

    for (const auto &[dest, budget] : need_out_[k]) {
        const Cycle x_min = t + out_lat;
        const Cycle x_max = budget - lrb;
        const Cycle hi = std::min(x_max, x_min + ii_ - 1);
        bool ok = false;
        if (x_min <= hi) {
            std::size_t sx = mrt_.slot(x_min);
            for (Cycle x = x_min; x <= hi; ++x) {
                const int bus = mrt_.findFreeBusAt(sx);
                if (bus != BUS_NONE) {
                    mrt_.reserveBusAt(bus, sx);
                    booked_.push_back({v, c, dest, x, sx, bus, depth});
                    commStart(v, dest) = x;
                    ok = true;
                    break;
                }
                sx = mrt_.nextSlot(sx);
            }
        }
        if (!ok) {
            unbook(mark);
            return false;
        }
    }
    return true;
}

void
Searcher::unbook(std::size_t mark)
{
    while (booked_.size() > mark) {
        const BookedComm &bc = booked_.back();
        mrt_.releaseBusAt(bc.bus, bc.xferSlot);
        commStart(bc.producer, bc.to) = CYCLE_MAX;
        booked_.pop_back();
    }
}

/**
 * Mirror the placement (v -> c at t) into the pressure tracker: a new
 * local interval when v produces a value, a local extension plus a
 * remote interval per transfer this placement booked, and extensions
 * of every placed register neighbour's interval to the new read
 * times — exactly the intervals lifetimes.cc would derive from the
 * full schedule (a debug assert in leaf() keeps the two honest).
 * Returns false when the subtree is pruned: a cluster past its
 * register file (sound in both phases — intervals only grow), or a
 * summed MaxLive already at the incumbent (tiebreak phase; leaf
 * acceptance needs a strict improvement, so the winner is unchanged).
 */
bool
Searcher::applyPressure(OpId v, ClusterId c, Cycle t,
                        std::size_t comm_mark)
{
    const Cycle lrb = machine_.regBusLatency;
    if (graph_.loop().op(v).producesValue())
        pressure_.addLocal(v, c, t + graph_.opLatency(v));
    for (std::size_t i = comm_mark; i < booked_.size(); ++i) {
        const BookedComm &bc = booked_[i];
        pressure_.extendLocal(bc.producer, bc.xferStart);
        pressure_.addRemote(bc.producer, bc.to, bc.xferStart + lrb);
    }
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.src == v || !e.isRegFlow() ||
            !placed_[static_cast<std::size_t>(e.src)])
            continue;
        const Cycle read = t + ii_ * e.distance;
        const auto &pu = sched_.placed(e.src);
        if (pu.cluster == c)
            pressure_.extendLocal(e.src, read);
        else
            pressure_.extendRemote(e.src, c, read);
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (!e.isRegFlow() || !placed_[static_cast<std::size_t>(e.dst)])
            continue;
        const auto &pw = sched_.placed(e.dst);
        const Cycle read = pw.time + ii_ * e.distance;
        if (pw.cluster == c)
            pressure_.extendLocal(v, read);
        else
            pressure_.extendRemote(v, pw.cluster, read);
    }
    if (pressure_.overflown())
        return false;
    return !(found_ && pressure_.sumMax() >= best_pressure_);
}

Walk
Searcher::leaf()
{
    ++leaves_;
    Cycle pressure = 0;
    if (pressure_on_) {
        if (pressure_.overflown())
            return Walk::Continue;   // defensive: pruned at placement
        pressure = pressure_.sumMax();
#ifndef NDEBUG
        // The tracker must agree with the from-scratch recompute on
        // every leaf it accepts.
        const LifetimeStats lt =
            computeLifetimes(graph_, sched_, machine_, ctx_.lifetimes);
        for (std::size_t c = 0; c < lt.maxLivePerCluster.size(); ++c)
            mvp_assert(lt.maxLivePerCluster[c] ==
                           pressure_.clusterMaxes()[c],
                       "pressure tracker diverged from "
                       "computeLifetimes at a leaf");
#endif
        if (!found_ || pressure < best_pressure_) {
            best_ = sched_;
            best_max_live_ = pressure_.clusterMaxes();
            best_pressure_ = pressure;
        }
    } else {
        const LifetimeStats lt =
            computeLifetimes(graph_, sched_, machine_, ctx_.lifetimes);
        for (int ml : lt.maxLivePerCluster)
            if (ml > machine_.regsPerCluster) {
                // Dead leaf (register overflow): refuted by the placed
                // lifetimes, which every decision shaped.
                ++dead_leaves_;
                if (cbj_)
                    setJump(prefixMask(order_.size()), order_.size());
                return Walk::Continue;
            }
        for (int ml : lt.maxLivePerCluster)
            pressure += ml;
        if (!found_ || pressure < best_pressure_) {
            best_ = sched_;
            best_max_live_ = lt.maxLivePerCluster;
            best_pressure_ = pressure;
        }
    }
    if (!found_) {
        found_ = true;
        found_nodes_ = nodes_;
    }
    // A leaf implicates every decision: the tiebreak enumeration above
    // it must stay chronological (backjumping may only skip certified
    // refutations, never unexplored schedules).
    if (cbj_)
        setJump(prefixMask(order_.size()), order_.size());
    // Keep searching this II for a lower-pressure schedule (bounded by
    // the budgets), or stop at the first one when the tiebreak is off.
    return options_.tiebreakPressure ? Walk::Continue : Walk::Stop;
}

Walk
Searcher::tryPlace(OpId v, ClusterId c, Cycle t, std::size_t slot,
                   std::size_t k, std::uint64_t &conf)
{
    if (!chargeNode())
        return Walk::Abort;
    const auto fu = graph_.loop().op(v).fuType();
    if (!mrt_.fuFreeAt(slot, c, fu)) {
        ++prune_fu_;
        if (cbj_)
            conf |= fuOccupantMask(c, slot, fu);
        return Walk::Continue;
    }

    const std::size_t comm_mark = booked_.size();
    const std::size_t sched_comm_mark = sched_.comms().size();
    if (!bookTransfers(v, c, t, k)) {
        ++prune_bus_;
        if (cbj_)
            conf |= nb_mask_[k] | bookedDepthMask();
        return Walk::Continue;
    }

    // Commit the placement.
    auto &pv = sched_.placed(v);
    pv.cluster = c;
    pv.time = t;
    pv.outLatency = graph_.opLatency(v);
    pv.missScheduled = false;
    placed_[static_cast<std::size_t>(v)] = 1;
    mrt_.placeFu(t, c, fu);
    if (cbj_)
        fu_depth_mask_[fuCell(c, slot, fu)] |= 1ull << k;
    ++used_[static_cast<int>(fu)];
    --remaining_[static_cast<int>(fu)];
    if (cluster_pop_[static_cast<std::size_t>(c)]++ == 0)
        ++opened_;
    for (std::size_t i = comm_mark; i < booked_.size(); ++i) {
        const BookedComm &bc = booked_[i];
        sched_.comms().push_back(
            {bc.producer, bc.from, bc.to, bc.xferStart, bc.bus});
    }

    Walk w = Walk::Continue;
    if (pressure_on_) {
        const std::size_t pressure_mark = pressure_.mark();
        if (applyPressure(v, c, t, comm_mark)) {
            w = dfs(k + 1);
        } else {
            ++prune_pressure_;
            if (cbj_)
                conf |= prefixMask(k);
        }
        pressure_.undoTo(pressure_mark);
    } else {
        w = dfs(k + 1);
    }

    // Undo in reverse commit order.
    sched_.comms().resize(sched_comm_mark);
    if (--cluster_pop_[static_cast<std::size_t>(c)] == 0)
        --opened_;
    ++remaining_[static_cast<int>(fu)];
    --used_[static_cast<int>(fu)];
    if (cbj_)
        fu_depth_mask_[fuCell(c, slot, fu)] &= ~(1ull << k);
    mrt_.removeFu(t, c, fu);
    placed_[static_cast<std::size_t>(v)] = 0;
    pv = PlacedOp{};
    unbook(comm_mark);
    return w;
}

Walk
Searcher::dfs(std::size_t k)
{
    if (k == order_.size())
        return leaf();

    const OpId v = order_[k];
    const Cycle lrb = machine_.regBusLatency;
    const Cycle out_lat = graph_.opLatency(v);

    snapshotNeighbours(v, k);
    const auto &ins = in_nbs_[k];
    const auto &outs = out_nbs_[k];
    const bool has_pred = !ins.empty();
    const bool has_succ = !outs.empty();

    // Union of conflict citations over every refuted candidate below.
    std::uint64_t conf = 0;

    // Cluster-symmetry break: populated clusters plus one fresh one.
    // In the tiebreak phase, clusters already holding this op's
    // register neighbours go first: co-location avoids remote
    // intervals, so low-pressure incumbents surface early and the
    // incumbent bound starts cutting while the allowance lasts.
    const ClusterId c_limit = std::min<ClusterId>(
        machine_.nClusters, opened_ + 1);
    auto &c_order = c_order_[k];
    c_order.resize(static_cast<std::size_t>(c_limit));
    for (ClusterId i = 0; i < c_limit; ++i)
        c_order[static_cast<std::size_t>(i)] = i;
    if (found_ && c_limit > 1) {
        auto &score = cluster_score_scratch_;
        score.assign(static_cast<std::size_t>(c_limit), 0);
        for (const InNb &nb : ins)
            if (nb.isReg && nb.cluster < c_limit)
                ++score[static_cast<std::size_t>(nb.cluster)];
        for (const OutNb &nb : outs)
            if (nb.isReg && nb.cluster < c_limit)
                ++score[static_cast<std::size_t>(nb.cluster)];
        std::stable_sort(c_order.begin(), c_order.end(),
                         [&](ClusterId a, ClusterId b) {
                             return score[static_cast<std::size_t>(a)] >
                                    score[static_cast<std::size_t>(b)];
                         });
    }
    for (ClusterId ci = 0; ci < c_limit; ++ci) {
        const ClusterId c = c_order[static_cast<std::size_t>(ci)];
        // --- Window bounds and transfer needs for this cluster, the
        // same arithmetic as the heuristic's trySlot(). The dedup
        // scratch drains into this depth's need lists so recursion
        // below cannot clobber them. ---
        auto &need_in = need_in_[k];
        auto &need_out = need_out_[k];
        need_in.clear();
        need_out.clear();

        Cycle early = 0;
        Cycle late = NO_BOUND;
        for (const InNb &nb : ins) {
            if (nb.isReg && nb.cluster != c) {
                if (const Cycle cs = commStart(nb.src, c);
                    cs != CYCLE_MAX) {
                    early = std::max(early, cs + lrb - nb.iiDist);
                } else {
                    early = std::max(early, nb.ready + lrb - nb.iiDist);
                    auto &min_dist =
                        in_min_dist_[static_cast<std::size_t>(nb.src)];
                    if (min_dist == DIST_UNSET) {
                        in_need_ids_.push_back(nb.src);
                        min_dist = nb.distance;
                    } else {
                        min_dist = std::min(min_dist, nb.distance);
                    }
                }
            } else {
                early = std::max(early, nb.baseEarly);
            }
        }
        // Bus reservation order must not depend on edge-visit order.
        if (in_need_ids_.size() > 1)
            std::sort(in_need_ids_.begin(), in_need_ids_.end());
        for (OpId u : in_need_ids_) {
            need_in.emplace_back(
                u, in_min_dist_[static_cast<std::size_t>(u)]);
            in_min_dist_[static_cast<std::size_t>(u)] = DIST_UNSET;
        }
        in_need_ids_.clear();

        for (const OutNb &nb : outs) {
            if (nb.isReg && nb.cluster != c) {
                auto &b =
                    out_budget_[static_cast<std::size_t>(nb.cluster)];
                b = std::min(b, nb.budget);
            } else {
                late = std::min(late, nb.isReg ? nb.budget - out_lat
                                               : nb.lateNonReg);
            }
        }
        for (ClusterId dest = 0; dest < machine_.nClusters; ++dest) {
            auto &b = out_budget_[static_cast<std::size_t>(dest)];
            if (b != CYCLE_MAX) {
                late = std::min(late, b - lrb - out_lat);
                need_out.emplace_back(dest, b);
                b = CYCLE_MAX;
            }
        }
        // A cluster whose dependence window is empty is a pruned child:
        // charge it like any candidate so budget exhaustion triggers at
        // a sharding-independent node count. The window was pinched by
        // this op's placed neighbours (and any transfers consulted), so
        // those are the conflict citations.
        if (has_pred && has_succ && late < early) {
            ++prune_window_;
            if (cbj_)
                conf |= nb_mask_[k] | bookedDepthMask();
            if (!chargeNode())
                return Walk::Abort;
            continue;
        }

        // --- Enumerate every candidate cycle in the window (the
        // heuristic stops at the first fit; the search tries all). ---
        if (has_succ && !has_pred) {
            const Cycle hi = std::min(late, NO_BOUND);
            const Cycle lo = hi - ii_ + 1;
            std::size_t s = mrt_.slot(hi);
            for (Cycle t = hi; t >= lo; --t) {
                if (shardSkip(k)) {
                    s = mrt_.prevSlot(s);
                    continue;
                }
                const Walk w = tryPlace(v, c, t, s, k, conf);
                if (w != Walk::Continue)
                    return w;
                if (jump_active_) {
                    if (jump_to_ != static_cast<int>(k))
                        return Walk::Continue;   // not implicated: skip
                    conf |= carry_;
                    jump_active_ = false;
                }
                s = mrt_.prevSlot(s);
            }
        } else {
            // Shift-invariance: the root op anchors the schedule, so a
            // single candidate cycle covers every shifted solution.
            const Cycle hi = (k == 0 && !has_pred && !has_succ)
                                 ? early
                                 : std::min(late, early + ii_ - 1);
            std::size_t s = mrt_.slot(early);
            for (Cycle t = early; t <= hi; ++t) {
                if (shardSkip(k)) {
                    s = mrt_.nextSlot(s);
                    continue;
                }
                const Walk w = tryPlace(v, c, t, s, k, conf);
                if (w != Walk::Continue)
                    return w;
                if (jump_active_) {
                    if (jump_to_ != static_cast<int>(k))
                        return Walk::Continue;   // not implicated: skip
                    conf |= carry_;
                    jump_active_ = false;
                }
                s = mrt_.nextSlot(s);
            }
        }
    }
    // Exhausted cleanly: hand the conflict set to the deepest
    // implicated decision. The candidate windows themselves were
    // carved by this op's placed neighbours (and the booked transfers
    // commStart consulted), so those decisions are implicated in the
    // exhaustion even when no individual candidate cited them —
    // moving one shifts the window to cycles this enumeration never
    // saw.
    if (cbj_)
        setJump(conf | nb_mask_[k] | bookedDepthMask(), k);
    return Walk::Continue;
}

void
Searcher::foldMetrics(const ScheduleResult &result)
{
    if (!obs::metricsOn())
        return;
    // A probe search (shared incumbent or sharded tree) races its
    // siblings — whoever publishes the incumbent first reshapes the
    // others' pruning — so its counts go to the runtime section. The
    // portfolio's final serial re-derivation, and every plain exact
    // search, is a pure function of (loop, machine, options) within
    // budget and byte-compares across job counts.
    const bool probe = cancel_ != nullptr || shard_count_ > 1;
    const char *prefix = probe ? "portfolio.shard." : "exact.";
    auto &m = ctx_.metrics;
    const auto c = [&](const char *name) -> std::int64_t & {
        return m.counter(!probe, std::string(prefix) + name);
    };
    c("searches") += 1;
    c("nodes") += nodes_;
    c("ii_attempts") += result.stats.iiAttempts;
    c("ii_refuted") += ii_refuted_;
    c("fu_refuted") += fu_refuted_;
    c("lifts") += lifts_;
    c("leaves") += leaves_;
    c("dead_leaves") += dead_leaves_;
    c("backjumps") += backjumps_;
    c("ii_certified_infeasible") += ii_empty_conf_;
    c("prune_fu") += prune_fu_;
    c("prune_bus") += prune_bus_;
    c("prune_window") += prune_window_;
    c("prune_pressure") += prune_pressure_;
    if (cancelled_)
        c("cancelled") += 1;
    if (budget_hit_)
        c("budget_exhausted") += 1;
}

ScheduleResult
Searcher::run()
{
    MVP_TRACE_SPAN("exact", graph_.loop().name());
    ScheduleResult result;
    result.stats.resMii = resMii(graph_.loop(), machine_);
    result.stats.recMii = graph_.recMii();
    result.stats.mii =
        std::max(result.stats.resMii, result.stats.recMii);
    result.stats.iiLowerBound = result.stats.mii;
    if (graph_.size() == 0) {
        result.error = "empty loop";
        return result;
    }

    // Same placement order as the heuristic (computed once at MII):
    // the search tree then contains every heuristic run as one path.
    // Portfolio shards and the final re-derivation compute the same
    // ordering, so every probe explores (its slice of) the same tree.
    computeOrdering(graph_, result.stats.mii, order_, ctx_.ordering);

    const std::size_t n = order_.size();
    cbj_ = options_.conflictLearning && n <= 64;
    pressure_on_ = options_.tiebreakPressure;
    order_pos_.assign(graph_.size(), 0);
    for (std::size_t d = 0; d < n; ++d)
        order_pos_[static_cast<std::size_t>(order_[d])] =
            static_cast<int>(d);

    node_cap_ = options_.nodeBudget > 0;
    if (options_.hasDeadline) {
        deadline_on_ = true;
        deadline_ = options_.deadline;
    } else if (options_.timeBudgetMs >= 0) {
        deadline_on_ = true;
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.timeBudgetMs);
    }
    cancel_ = options_.sharedBestII;
    tiebreak_cap_ = options_.tiebreakBudget;
    shard_count_ = std::max(1, options_.shardCount);
    shard_index_ = options_.shardIndex;

    if (obs::metricsOn()) {
        // Same routing rule as foldMetrics(): probe searches race
        // siblings, so their distributions are runtime-only.
        const bool probe = cancel_ != nullptr || shard_count_ > 1;
        bj_hist_ = probe ? &ctx_.metrics.rtHist(
                               "portfolio.shard.backjump_depth", 0.0,
                               65.0, 65)
                         : &ctx_.metrics.detHist("exact.backjump_depth",
                                                 0.0, 65.0, 65);
    }

    // Up to this many II attempts may burn their whole node cap
    // without settling before the search gives up; the wall-clock
    // deadline instead ends the search at the first aborted attempt
    // (time does not come back at a larger II).
    constexpr int MAX_ABORTED_ATTEMPTS = 4;
    int aborted_attempts = 0;

    const Cycle first_ii =
        options_.onlyII > 0 ? options_.onlyII : result.stats.mii;
    const Cycle last_ii =
        options_.onlyII > 0 ? options_.onlyII : options_.maxII;
    for (Cycle ii = first_ii; ii <= last_ii; ++ii) {
        MVP_TRACE_SPAN("exact-ii", graph_.loop().name(),
                       static_cast<std::int64_t>(ii));
        ++result.stats.iiAttempts;
        ii_ = ii;
        mrt_.reset(ii);
        sched_.reset(ii, graph_.size(), machine_.nClusters);
        std::fill(placed_.begin(), placed_.end(), 0);
        std::fill(comm_start_.begin(), comm_start_.end(), CYCLE_MAX);
        std::fill(cluster_pop_.begin(), cluster_pop_.end(), 0);
        opened_ = 0;
        booked_.clear();
        for (int f = 0; f < ir::NUM_FU_TYPES; ++f)
            used_[f] = 0;
        pressure_.reset(ii, machine_.nClusters, graph_.size(),
                        machine_.regsPerCluster);
        if (cbj_)
            fu_depth_mask_.assign(static_cast<std::size_t>(ii) *
                                      static_cast<std::size_t>(
                                          machine_.nClusters) *
                                      ir::NUM_FU_TYPES,
                                  0);
        depth1_counter_ = 0;
        jump_active_ = false;
        attempt_start_nodes_ = nodes_;
        attempt_limit_ = nodes_ + options_.nodeBudget;

        // FU counting refutes the II before the attempt pays for a
        // single node (see resourcesFit — the check is II-pure, so
        // re-evaluating it inside the search would do no work).
        if (!resourcesFit()) {
            ++fu_refuted_;
            if (result.stats.iiLowerBound == ii) {
                result.stats.iiLowerBound = ii + 1;
                ++lifts_;
            }
            mvp_verbose("exact: loop '", graph_.loop().name(),
                        "' II=", ii, " refuted by FU counting");
            continue;
        }

        const Walk w = dfs(0);
        jump_active_ = false;
        if (found_) {
            // The first feasible II is minimal over the search space;
            // it carries the certificate when it meets the lower
            // bound — MII itself, or MII raised by exhaustive
            // refutation of every II below. An aborted attempt on the
            // way here left the lower bound behind, so the schedule
            // is then reported as best-in-budget, not proven.
            result.ok = true;
            result.stats.provenOptimal =
                ii == result.stats.iiLowerBound;
            result.stats.pressureOptimal =
                options_.tiebreakPressure && w != Walk::Abort;
            break;
        }
        if (w == Walk::Abort) {
            // Budget gone with nothing found at this II: the II is
            // neither feasible-in-space nor refuted; the lower bound
            // must not rise past it. A cancelled probe or an expired
            // deadline ends the search outright; a node-cap abort
            // moves on (a larger II is usually much easier) until the
            // abort allowance is spent.
            if (cancelled_)
                break;
            if (deadline_on_ &&
                std::chrono::steady_clock::now() >= deadline_)
                break;
            if (++aborted_attempts >= MAX_ABORTED_ATTEMPTS)
                break;
            continue;
        }
        // DFS ran dry within budget: II == ii is refuted; the lower
        // bound rises only while refutations are gapless from MII.
        ++ii_refuted_;
        if (result.stats.iiLowerBound == ii) {
            result.stats.iiLowerBound = ii + 1;
            ++lifts_;
        }
        mvp_verbose("exact: loop '", graph_.loop().name(), "' II=", ii,
                    " refuted (", nodes_, " nodes)");
    }

    result.stats.searchNodes = nodes_;
    result.stats.budgetExhausted = budget_hit_;
    foldMetrics(result);
    if (!result.ok) {
        result.error =
            budget_hit_
                ? "exact search budget exhausted before any schedule "
                  "was found for loop '" +
                      graph_.loop().name() + "'"
                : "no feasible II up to " +
                      std::to_string(last_ii) + " for loop '" +
                      graph_.loop().name() + "'";
        return result;
    }

    // Normalise the winner (placement may have gone below cycle zero;
    // modulo schedules are shift-invariant) and attach MaxLive.
    Cycle min_time = 0;
    for (const auto &p : best_.placements())
        min_time = std::min(min_time, p.time);
    if (min_time < 0) {
        const Cycle shift =
            ((-min_time + best_.ii() - 1) / best_.ii()) * best_.ii();
        for (std::size_t v = 0; v < graph_.size(); ++v)
            best_.placed(static_cast<OpId>(v)).time += shift;
        for (auto &cm : best_.comms())
            cm.xferStart += shift;
    }
    best_.setMaxLive(best_max_live_);
    result.schedule = std::move(best_);
    result.stats.comms = static_cast<int>(result.schedule.numComms());
    return result;
}

} // namespace

ScheduleResult
scheduleExact(const ddg::Ddg &graph, const MachineConfig &machine,
              const ExactOptions &options, SchedContext &ctx)
{
    return Searcher(graph, machine, options, ctx).run();
}

ScheduleResult
scheduleExact(const ddg::Ddg &graph, const MachineConfig &machine,
              const ExactOptions &options)
{
    SchedContext ctx;
    return scheduleExact(graph, machine, options, ctx);
}

} // namespace mvp::sched::exact
