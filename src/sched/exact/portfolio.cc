#include "sched/exact/portfolio.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "common/logging.hh"
#include "harness/driver.hh"
#include "obs/trace.hh"
#include "sched/mii.hh"
#include "sched/sat/sat.hh"

namespace mvp::sched::exact
{

namespace
{

/** What a fully-merged II probe settled to. */
enum class Probe
{
    Feasible,   ///< some shard found a schedule
    Refuted,    ///< every shard exhausted its subtree
    Aborted     ///< a shard hit a budget: the II stays unresolved
};

/**
 * Merge one II's slot results: @p shards B&B subtree shards followed by
 * the optional SAT probe (count > shards). Two independent refutation
 * certificates exist — every B&B shard exhausting its subtree, or the
 * SAT probe's UNSAT proof — and either alone settles the II.
 */
Probe
mergeShards(const ScheduleResult *slot, int shards, int count)
{
    bool feasible = false;
    bool bnb_refuted = true;
    bool sat_refuted = false;
    for (int s = 0; s < count; ++s) {
        if (slot[s].ok) {
            feasible = true;
        } else if (s < shards) {
            if (slot[s].stats.budgetExhausted)
                bnb_refuted = false;   // aborted or cancelled
        } else if (!slot[s].stats.budgetExhausted) {
            sat_refuted = true;        // a full UNSAT proof
        }
    }
    if (feasible)
        return Probe::Feasible;
    return (bnb_refuted || sat_refuted) ? Probe::Refuted
                                        : Probe::Aborted;
}

} // namespace

ScheduleResult
scheduleExactPortfolio(const ddg::Ddg &graph,
                       const MachineConfig &machine,
                       const ExactOptions &options,
                       harness::ParallelDriver &pool, SchedContext &ctx)
{
    // Degenerate loops take the serial path: nothing to race.
    if (graph.size() == 0)
        return scheduleExact(graph, machine, options, ctx);

    const Cycle res_mii = resMii(graph.loop(), machine);
    const Cycle rec_mii = graph.recMii();
    const Cycle mii = std::max(res_mii, rec_mii);

    const int jobs = std::max(1, pool.jobs());
    const int probes = std::min(jobs, 2);           // concurrent IIs
    const int shards = std::max(1, jobs / probes);  // splits per II
    // Slots per II: the B&B shards plus one CDCL probe racing them.
    const int stride = shards + (options.satProbe ? 1 : 0);

    // One deadline across every wave (the serial engine's whole-search
    // budget); the final re-derivation below gets a fresh window.
    const bool deadline_on =
        options.hasDeadline || options.timeBudgetMs >= 0;
    const auto deadline =
        options.hasDeadline
            ? options.deadline
            : std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(
                      options.timeBudgetMs < 0 ? 0
                                               : options.timeBudgetMs);

    // Shared incumbent: probes at or above it cancel themselves.
    std::atomic<Cycle> shared_best{options.maxII + 1};

    Cycle next = mii;       // lowest unprobed II
    Cycle lb = mii;         // IIs below are refuted, gaplessly from MII
    Cycle best = options.maxII + 1;
    bool gapless = true;    // no aborted II below the refuted prefix
    int aborted_attempts = 0;
    // Same allowance as the serial engine: keep probing larger IIs
    // past a few budget-starved attempts, then give up.
    constexpr int MAX_ABORTED_ATTEMPTS = 4;
    std::int64_t total_nodes = 0;
    int ii_attempts = 0;

    /** Winning shard's schedule at `best`: proof of feasibility kept
     * in case the final serial re-derivation runs out of budget. */
    ScheduleResult shard_best;

    // Runtime counters: probe outcomes depend on who raced whom (an
    // abort is literally a timing event), so nothing here is part of
    // the byte-compared deterministic section.
    const bool mets = obs::metricsOn();
    if (mets)
        ctx.metrics.rt("portfolio.runs") += 1;

    std::vector<ScheduleResult> slots;
    while (next <= options.maxII && next < best) {
        if (deadline_on &&
            std::chrono::steady_clock::now() >= deadline)
            break;
        if (aborted_attempts >= MAX_ABORTED_ATTEMPTS &&
            best > options.maxII)
            break;

        MVP_TRACE_SPAN("portfolio-wave", graph.loop().name(),
                       static_cast<std::int64_t>(next));
        if (mets)
            ctx.metrics.rt("portfolio.waves") += 1;

        const Cycle wave_last = std::min(
            {next + probes - 1, options.maxII, best - 1});
        const int wave_iis = static_cast<int>(wave_last - next + 1);
        const std::size_t n =
            static_cast<std::size_t>(wave_iis) *
            static_cast<std::size_t>(stride);
        slots.assign(n, ScheduleResult{});
        pool.run(n, [&](std::size_t idx, SchedContext &wctx) {
            const Cycle ii =
                next + static_cast<Cycle>(idx) / stride;
            const int pos = static_cast<int>(idx) % stride;
            ScheduleResult r;
            if (pos < shards) {
                ExactOptions o = options;
                o.onlyII = ii;
                o.shardIndex = pos;
                o.shardCount = shards;
                o.tiebreakPressure = false; // probes settle feasibility
                o.sharedBestII = &shared_best;
                o.hasDeadline = deadline_on;
                o.deadline = deadline;
                if (!deadline_on)
                    o.timeBudgetMs = -1;
                r = scheduleExact(graph, machine, o, wctx);
            } else {
                // The CDCL probe of this II: first certifier wins;
                // the shared incumbent cancels whichever engine loses.
                SatOptions so;
                so.maxII = options.maxII;
                so.onlyII = ii;
                so.sharedBestII = &shared_best;
                so.hasDeadline = deadline_on;
                so.deadline = deadline;
                if (!deadline_on)
                    so.timeBudgetMs = -1;
                r = scheduleSatExact(graph, machine, so, wctx);
            }
            if (r.ok) {
                Cycle cur =
                    shared_best.load(std::memory_order_relaxed);
                std::int64_t races = 0;
                while (ii < cur &&
                       !shared_best.compare_exchange_weak(
                           cur, ii, std::memory_order_relaxed)) {
                    ++races;
                }
                // Interleaving-shaped by definition: each retry is a
                // sibling publishing its incumbent first.
                if (races > 0 && obs::metricsOn())
                    wctx.metrics.rt("portfolio.cas_retries") += races;
            }
            slots[idx] = std::move(r);
        });

        for (int w = 0; w < wave_iis; ++w) {
            const Cycle ii = next + w;
            ++ii_attempts;
            for (int s = 0; s < stride; ++s)
                total_nodes +=
                    slots[static_cast<std::size_t>(w) * stride + s]
                        .stats.searchNodes;
            const Probe probe = mergeShards(
                &slots[static_cast<std::size_t>(w) * stride], shards,
                stride);
            if (mets) {
                const char *outcome =
                    probe == Probe::Feasible ? "portfolio.probe_feasible"
                    : probe == Probe::Refuted
                        ? "portfolio.probe_refuted"
                        : "portfolio.probe_aborted";
                ctx.metrics.rt(outcome) += 1;
            }
            switch (probe) {
            case Probe::Feasible:
                if (ii < best) {
                    best = ii;
                    for (int s = 0; s < stride; ++s) {
                        auto &r = slots[static_cast<std::size_t>(w) *
                                            stride +
                                        s];
                        if (r.ok) {
                            shard_best = std::move(r);
                            break;
                        }
                    }
                }
                break;
            case Probe::Refuted:
                if (gapless && ii == lb)
                    lb = ii + 1;
                mvp_verbose("portfolio: loop '", graph.loop().name(),
                            "' II=", ii, " refuted (", shards,
                            " shards)");
                break;
            case Probe::Aborted:
                if (ii < best) {
                    gapless = false;
                    ++aborted_attempts;
                }
                break;
            }
        }
        next = wave_last + 1;
    }

    if (best > options.maxII) {
        // Nothing found: same failure modes and error strings as the
        // serial engine.
        ScheduleResult fail;
        fail.stats.resMii = res_mii;
        fail.stats.recMii = rec_mii;
        fail.stats.mii = mii;
        fail.stats.iiAttempts = ii_attempts;
        fail.stats.searchNodes = total_nodes;
        fail.stats.iiLowerBound = lb;
        const bool starved = !gapless || next <= options.maxII;
        fail.stats.budgetExhausted = starved;
        fail.error =
            starved ? "exact search budget exhausted before any "
                      "schedule was found for loop '" +
                          graph.loop().name() + "'"
                    : "no feasible II up to " +
                          std::to_string(options.maxII) +
                          " for loop '" + graph.loop().name() + "'";
        return fail;
    }

    // Serial re-derivation at the settled II: placements become a pure
    // function of (loop, machine, options) — byte-identical at any job
    // count — and the caller's pressure tiebreak runs here, under its
    // node allowance and a fresh wall-clock window.
    ExactOptions fin = options;
    fin.onlyII = best;
    fin.shardIndex = 0;
    fin.shardCount = 1;
    fin.sharedBestII = nullptr;
    fin.hasDeadline = false;
    ScheduleResult out = scheduleExact(graph, machine, fin, ctx);

    if (!out.ok) {
        // The re-derivation's budget expired before it re-found a leaf
        // (the feasible subtree may sit late in an enumeration a
        // high-index shard reached quickly). Feasibility at `best` was
        // already proven, so return the winning shard's schedule
        // rather than a failure; the tiebreak never ran over it.
        shard_best.stats.iiAttempts = ii_attempts + out.stats.iiAttempts;
        shard_best.stats.searchNodes = total_nodes + out.stats.searchNodes;
        shard_best.stats.iiLowerBound = lb;
        shard_best.stats.provenOptimal = best == lb;
        shard_best.stats.pressureOptimal = false;
        shard_best.stats.budgetExhausted = true;
        return shard_best;
    }

    out.stats.iiAttempts += ii_attempts;
    out.stats.searchNodes += total_nodes;
    out.stats.iiLowerBound = lb;
    out.stats.provenOptimal = best == lb;
    out.stats.budgetExhausted = best != lb;
    return out;
}

} // namespace mvp::sched::exact
