/**
 * @file
 * Observability-layer contract: the metrics registry's deterministic
 * section must be byte-identical at jobs=1/2/8, enabling metrics and
 * tracing must not perturb a single scheduling decision (suite
 * serialisations stay byte-identical), and the tracer must emit
 * well-formed Chrome trace-event JSON with one track per pool worker.
 * The TSan job runs this file: the jobs=8 sweeps below hammer the
 * per-thread trace buffers and the shard-fold path under the pool.
 *
 * Also unit-covers the stats primitives the registry is built on
 * (Histogram percentile/dump/merge, StatGroup locale independence).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <locale>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/gapstudy.hh"
#include "machine/presets.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mvp::obs
{
namespace
{

const int JOB_COUNTS[] = {1, 2, 8};

/** Every obs test leaves the registry disabled and empty behind. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Registry::instance().disable();
        Registry::instance().reset();
    }
    void TearDown() override
    {
        Registry::instance().disable();
        Registry::instance().reset();
    }
};

/**
 * One small but representative workload: the rmca heuristic over two
 * machines plus a node-budgeted exact gap study. The node cap (and
 * the disabled wall clock) keep every search outcome a pure function
 * of the work item, which is what the deterministic section's
 * byte-identity contract is allowed to rely on.
 */
void
runInstrumentedSweep(harness::Workbench &bench, int jobs)
{
    harness::ParallelDriver driver(jobs);
    sim::SimParams params;
    params.maxExecutions = 2;

    std::vector<harness::RunConfig> configs;
    for (const MachineConfig &machine : {makeUnified(), makeTwoCluster()}) {
        harness::RunConfig cfg;
        cfg.machine = machine;
        cfg.backend = "rmca";
        cfg.threshold = 0.25;
        configs.push_back(cfg);
    }
    harness::runSuiteSweep(bench, configs, params, driver);

    harness::GapOptions gap;
    gap.threshold = 0.25;
    gap.nodeBudget = 20000;
    gap.timeBudgetMs = -1;   // node cap only: deterministic outcomes
    harness::runGapStudy(bench, makeTwoCluster(), gap, driver);
}

TEST_F(ObsTest, DeterministicSectionByteIdenticalAcrossJobCounts)
{
    harness::Workbench bench({"tomcatv", "hydro2d"});
    Registry::instance().enable();

    std::string reference;
    for (int jobs : JOB_COUNTS) {
        Registry::instance().reset();
        runInstrumentedSweep(bench, jobs);
        const std::string det =
            Registry::instance().deterministicReport();
        if (reference.empty())
            reference = det;
        else
            EXPECT_EQ(det, reference)
                << "deterministic metrics diverged at jobs=" << jobs;
    }

    // The report that was byte-compared must also be substantive:
    // search, prune, heuristic and pool counters all nonzero.
    const auto counter = [&](const char *name) {
        const std::string needle = std::string("counter ") + name + " = ";
        const std::size_t at = reference.find(needle);
        EXPECT_NE(at, std::string::npos)
            << "missing '" << name << "' in:\n"
            << reference;
        return at == std::string::npos
                   ? std::int64_t{-1}
                   : std::atoll(reference.c_str() + at + needle.size());
    };
    for (const char *name :
         {"exact.searches", "exact.nodes", "exact.prune_fu",
          "exact.leaves", "exact.ii_attempts", "sched.rmca.runs",
          "pool.items", "pool.sweeps", "harness.loops_scheduled"})
        EXPECT_GT(counter(name), 0) << name << " stayed zero";
    EXPECT_NE(reference.find("hist exact.backjump_depth"),
              std::string::npos);
}

TEST_F(ObsTest, SchedulingUnperturbedByMetricsAndTrace)
{
    harness::Workbench bench({"tomcatv"});
    harness::RunConfig config;
    config.machine = makeFourCluster();
    config.backend = "rmca";
    config.threshold = 0.25;
    sim::SimParams params;
    params.maxExecutions = 2;
    harness::ParallelDriver driver(8);

    const std::string off = harness::formatSuiteResult(
        harness::runSuite(bench, config, params, driver));

    const std::string trace_path =
        ::testing::TempDir() + "obs_test_perturb_trace.json";
    Registry::instance().enable();
    traceInit(trace_path);
    const std::string on = harness::formatSuiteResult(
        harness::runSuite(bench, config, params, driver));
    traceFinish();
    std::remove(trace_path.c_str());

    EXPECT_EQ(on, off)
        << "observability changed a scheduling/simulation outcome";
}

/**
 * Minimal structural JSON scan: brace/bracket balance outside string
 * literals. Not a parser — the CI smoke step runs the real
 * `python3 -m json.tool` — but enough to catch an unbalanced or
 * truncated emission, and it keeps the test dependency-free.
 */
bool
balancedJson(const std::string &s)
{
    int depth = 0;
    bool in_str = false;
    bool esc = false;
    for (char c : s) {
        if (esc) {
            esc = false;
            continue;
        }
        if (in_str) {
            if (c == '\\')
                esc = true;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_str;
}

std::string
slurp(const std::string &path)
{
    std::string text;
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    return text;
}

TEST_F(ObsTest, TraceIsWellFormedWithPerWorkerTracks)
{
    const std::string path =
        ::testing::TempDir() + "obs_test_trace.json";
    traceInit(path);

    harness::Workbench bench({"tomcatv", "hydro2d"});
    runInstrumentedSweep(bench, 8);

    traceFinish();
    const std::string text = slurp(path);
    std::remove(path.c_str());

    ASSERT_FALSE(text.empty()) << "trace file missing or empty";
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_TRUE(balancedJson(text));
    // Complete spans, worker-track metadata, and the B&B spans the
    // gap study's exact searches must have emitted.
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(text.find("\"worker-0\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"exact\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"exact-ii\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"item\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"sweep\""), std::string::npos);
}

TEST_F(ObsTest, JsonReportIsBalancedAndSplitsSections)
{
    harness::Workbench bench({"tomcatv"});
    Registry::instance().enable();
    runInstrumentedSweep(bench, 2);

    const std::string json = Registry::instance().jsonReport();
    EXPECT_TRUE(balancedJson(json));
    EXPECT_NE(json.find("\"deterministic\""), std::string::npos);
    EXPECT_NE(json.find("\"runtime\""), std::string::npos);
    EXPECT_NE(json.find("\"exact.nodes\""), std::string::npos);
    EXPECT_NE(json.find("\"pool.busy_ms\""), std::string::npos);

    // Runtime pool-utilisation facts exist without leaking into the
    // byte-compared half (pool.workers is jobs-dependent).
    const std::string det = Registry::instance().deterministicReport();
    EXPECT_EQ(det.find("pool.workers"), std::string::npos);
    const std::string text = Registry::instance().textReport();
    EXPECT_NE(text.find("gauge pool.workers = 2"), std::string::npos);
}

TEST_F(ObsTest, ShardMergeAddsMaxesAndFolds)
{
    MetricShard a;
    MetricShard b;
    a.det("n") += 3;
    b.det("n") += 4;
    a.detMax("hw", 7);
    b.detMax("hw", 5);
    a.detHist("h", 0.0, 10.0, 10).add(1.0);
    b.detHist("h", 0.0, 10.0, 10).add(2.0);
    b.rt("r") += 1;
    b.timer("t").add(2.5);

    a.merge(b);
    Registry::instance().reset();
    Registry::instance().fold(a);
    EXPECT_TRUE(a.empty()) << "fold() must clear the shard";

    const std::string text = Registry::instance().textReport();
    EXPECT_NE(text.find("counter n = 7"), std::string::npos);
    EXPECT_NE(text.find("gauge hw = 7"), std::string::npos);
    EXPECT_NE(text.find("hist h count=2"), std::string::npos);
    EXPECT_NE(text.find("counter r = 1"), std::string::npos);
    EXPECT_NE(text.find("timer t count=1"), std::string::npos);
}

TEST(HistogramStats, PercentileInterpolatesAndClamps)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.percentile(50.0), 50.0, 1.5);
    EXPECT_NEAR(h.percentile(90.0), 90.0, 1.5);
    EXPECT_NEAR(h.percentile(99.0), 99.0, 1.5);
    EXPECT_NEAR(h.mean(), 50.0, 0.01);

    Histogram clamp(0.0, 10.0, 10);
    clamp.add(-5.0);
    clamp.add(50.0);
    EXPECT_EQ(clamp.underflow(), 1u);
    EXPECT_EQ(clamp.overflow(), 1u);
    EXPECT_EQ(clamp.percentile(0.0), 0.0);     // underflow clamps to lo
    EXPECT_EQ(clamp.percentile(100.0), 10.0);  // overflow clamps to hi

    EXPECT_EQ(Histogram(0.0, 1.0, 4).percentile(50.0), 0.0);
}

TEST(HistogramStats, MergeMatchesSingleAccumulator)
{
    Histogram a(0.0, 8.0, 8);
    Histogram b(0.0, 8.0, 8);
    Histogram both(0.0, 8.0, 8);
    for (int i = 0; i < 16; ++i) {
        const double x = static_cast<double>(i % 9) - 0.5;
        ((i & 1) ? a : b).add(x);
        both.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.underflow(), both.underflow());
    EXPECT_EQ(a.overflow(), both.overflow());
    for (std::size_t i = 0; i < both.buckets(); ++i)
        EXPECT_EQ(a.bucketCount(i), both.bucketCount(i)) << "bucket " << i;
    EXPECT_EQ(a.dump(), both.dump());
}

/** Grouping numpunct that would corrupt reports if locale leaked in. */
struct NoisyPunct : std::numpunct<char>
{
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
    char do_decimal_point() const override { return ','; }
};

TEST(StatGroupStats, DumpIsLocaleIndependent)
{
    StatGroup g;
    g.counter("big") += 1234567;
    g.set("gauge", 7654321);
    Histogram h(0.0, 2000000.0, 10);
    h.add(1234567.0);

    const std::string plain_group = g.dump();
    const std::string plain_hist = h.dump();

    const std::locale saved = std::locale::global(
        std::locale(std::locale::classic(), new NoisyPunct));
    const std::string noisy_group = g.dump();
    const std::string noisy_hist = h.dump();
    std::locale::global(saved);

    EXPECT_EQ(noisy_group, plain_group);
    EXPECT_EQ(noisy_hist, plain_hist);
    EXPECT_EQ(noisy_group.find(','), std::string::npos);
    EXPECT_NE(plain_group.find("big = 1234567"), std::string::npos);
}

} // namespace
} // namespace mvp::obs
