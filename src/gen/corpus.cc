#include "gen/corpus.hh"

#include <filesystem>

#include "common/logging.hh"
#include "text/format.hh"

namespace mvp::gen
{

std::vector<std::string>
writeCorpus(const CorpusSpec &spec, const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        mvp_fatal("cannot create corpus directory '", dir, "': ",
                  ec.message());

    const std::string stem =
        dir + "/gen" + std::to_string(spec.seed);
    std::vector<std::string> paths;

    text::LoopFile file;
    file.suite = "gen" + std::to_string(spec.seed);
    file.loops = generateSuite(spec.seed, spec.loops, spec.params);
    text::saveLoopFile(file, stem + ".loops");
    paths.push_back(stem + ".loops");

    for (int m = 0; m < spec.machines; ++m) {
        const std::string path =
            stem + ".m" + std::to_string(m) + ".machine";
        text::saveMachineFile(
            generateMachine(
                deriveSeed(spec.seed, 0x4d000000ULL +
                                          static_cast<std::uint64_t>(m)),
                spec.params),
            path);
        paths.push_back(path);
    }
    return paths;
}

std::vector<std::string>
writeScenario(const Scenario &scenario, const std::string &stem)
{
    text::LoopFile file;
    file.suite = scenario.nest.name();
    file.loops.push_back(scenario.nest);
    text::saveLoopFile(file, stem + ".loops");
    text::saveMachineFile(scenario.machine, stem + ".machine");
    return {stem + ".loops", stem + ".machine"};
}

} // namespace mvp::gen
