#include "ir/affine.hh"

#include <sstream>

#include "common/logging.hh"

namespace mvp::ir
{

std::int64_t
AffineExpr::eval(const std::vector<std::int64_t> &ivs) const
{
    mvp_assert(coeffs.size() <= ivs.size(),
               "affine expression refers to loop depth ", coeffs.size() - 1,
               " but only ", ivs.size(), " induction variables given");
    std::int64_t acc = constant;
    for (std::size_t d = 0; d < coeffs.size(); ++d)
        acc += coeffs[d] * ivs[d];
    return acc;
}

bool
AffineExpr::isConstant() const
{
    for (auto c : coeffs)
        if (c != 0)
            return false;
    return true;
}

std::int64_t
AffineExpr::coeff(std::size_t depth) const
{
    return depth < coeffs.size() ? coeffs[depth] : 0;
}

std::string
AffineExpr::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (std::size_t d = 0; d < coeffs.size(); ++d) {
        if (coeffs[d] == 0)
            continue;
        if (!first)
            os << " + ";
        if (coeffs[d] != 1)
            os << coeffs[d] << "*";
        os << "i" << d;
        first = false;
    }
    if (constant != 0 || first) {
        if (!first)
            os << " + ";
        os << constant;
    }
    return os.str();
}

bool
AffineExpr::operator==(const AffineExpr &other) const
{
    const std::size_t n = std::max(coeffs.size(), other.coeffs.size());
    for (std::size_t d = 0; d < n; ++d)
        if (coeff(d) != other.coeff(d))
            return false;
    return constant == other.constant;
}

AffineExpr
affineVar(std::size_t depth, std::int64_t coeff, std::int64_t constant)
{
    AffineExpr e;
    e.coeffs.assign(depth + 1, 0);
    e.coeffs[depth] = coeff;
    e.constant = constant;
    return e;
}

AffineExpr
affineConst(std::int64_t constant)
{
    AffineExpr e;
    e.constant = constant;
    return e;
}

bool
AffineRef::uniformlyGeneratedWith(const AffineRef &other) const
{
    if (array != other.array || index.size() != other.index.size())
        return false;
    for (std::size_t d = 0; d < index.size(); ++d) {
        const std::size_t n = std::max(index[d].coeffs.size(),
                                       other.index[d].coeffs.size());
        for (std::size_t k = 0; k < n; ++k)
            if (index[d].coeff(k) != other.index[d].coeff(k))
                return false;
    }
    return true;
}

bool
AffineRef::operator==(const AffineRef &other) const
{
    return array == other.array && index == other.index;
}

} // namespace mvp::ir
