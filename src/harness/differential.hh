/**
 * @file
 * Differential validation pipeline over generated scenarios.
 *
 * The credibility of exact-scheduling work (Roorda's SMT software
 * pipelining, SAT-MapIt) comes from validating heuristics against
 * exact results over broad generated instance sets. This pipeline does
 * the same for the whole stack: for every scenario the generator draws
 * (a loop nest plus a machine), it
 *
 *  1. round-trips the loop and the machine through the text format
 *     (parse(print(x)) must reprint byte-identically),
 *  2. schedules with the rmca heuristic and fully validates the
 *     schedule against the DDG and the machine,
 *  3. cross-checks the exact branch-and-bound backend: on every
 *     scenario whose search settles within its node budget,
 *     exact II <= rmca II must hold (and the certified lower bound
 *     must not exceed the exact II),
 *  4. expands the kernel image (vliw/) and checks its structural
 *     contract (II kernel instructions, (SC-1)*II prologue/epilogue),
 *  5. runs the lockstep simulator and asserts the §2.2 compute-cycle
 *     identity NCYCLE_compute = NTIMES * (NITER + SC - 1) * II with
 *     SC re-derived from the kernel image, and
 *  6. compares the CME solver against the exact cache oracle: bitwise
 *     equality where the solver ran exhaustively (small iteration
 *     spaces — the generator's default regime), CI-derived tolerance
 *     where it sampled.
 *
 * Scenarios are independent work items sharded across a ParallelDriver
 * pool; every row is a pure function of (base seed, index), so reports
 * are byte-identical at any --jobs and every failure is reproducible
 * from its printed seed alone.
 */

#ifndef MVP_HARNESS_DIFFERENTIAL_HH
#define MVP_HARNESS_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generator.hh"
#include "harness/driver.hh"
#include "sched/scheduler.hh"

namespace mvp::harness
{

/** What to run and how hard. */
struct DiffOptions
{
    /** Base seed; scenario i uses gen::deriveSeed(seed, i). */
    std::uint64_t seed = 0xd1ffULL;

    /** Number of generated scenarios. */
    int scenarios = 200;

    /** Generator distributions. */
    gen::GenParams gen;

    /** rmca miss-latency threshold. */
    double threshold = 0.25;

    /**
     * Locality provider bound per scenario for the rmca scheduler
     * ("cme", "oracle", "hybrid", "hybrid:<N>", ...). The CME-vs-
     * oracle agreement check always compares the plain solver against
     * the oracle, independent of this choice.
     */
    std::string locality = "cme";

    /**
     * Exact-backend node budget per II attempt. Scenarios the search
     * cannot settle within it are reported (not failed): the II
     * cross-check applies only where the exact result is certified.
     */
    std::int64_t exactBudget = 200'000;

    /**
     * Wall-clock budget of each scenario's exact search, in
     * milliseconds (negative = no deadline). The node budget above is
     * the deterministic cap; this is the machine-meaningful one.
     */
    std::int64_t timeBudgetMs = sched::DEFAULT_TIME_BUDGET_MS;

    /**
     * Certifying engine of the cross-check: "exact" (serial) or
     * "portfolio" (raced on the worker pool). Empty is read as
     * "exact".
     */
    std::string exactBackend = "exact";

    /** Skip the exact cross-check entirely (pure heuristic sweeps). */
    bool checkExact = true;

    /**
     * Engine cross-check: also run the CDCL `sat` backend on every
     * scenario and require it to certify the same minimal II as the
     * branch and bound (and the same infeasibility verdicts) wherever
     * both engines settle within budget. A divergence is a hard
     * failure that dumps the scenario's loop and machine text for
     * standalone reproduction. Requires checkExact.
     */
    bool checkSat = true;
};

/** One scenario's outcome. */
struct ScenarioOutcome
{
    std::uint64_t seed = 0;    ///< reproduces the scenario exactly
    std::string loop;          ///< generated nest name
    std::string machine;      ///< generated machine name
    int ops = 0;
    int clusters = 0;
    Cycle mii = 0;
    Cycle rmcaII = 0;
    Cycle exactII = 0;         ///< 0 when unsettled or skipped
    bool exactSettled = false; ///< exact II carries a certificate
    int stages = 0;            ///< SC from the kernel image
    Cycle simCompute = 0;
    Cycle simStall = 0;
    double cmeMisses = 0.0;    ///< solver misses/iteration, full set
    double oracleMisses = 0.0; ///< oracle misses/iteration, full set

    /** First failed check ("" = scenario passed). */
    std::string failure;
};

/** Whole-sweep outcome. */
struct DiffReport
{
    std::vector<ScenarioOutcome> rows;

    /** The options the sweep ran under (for summary(), not part of
     * the canonical serialisation). */
    DiffOptions options;

    int passed() const;
    int failed() const;

    /** Scenarios with a certified exact II. */
    int exactSettled() const;

    /** Scenarios where rmca matched the certified exact II. */
    int rmcaOptimal() const;

    /**
     * Canonical serialisation: one line per scenario in index order
     * plus the aggregate line. Byte-identical at any job count; its
     * fnv1a hash is the sweep fingerprint run_bench.sh records.
     */
    std::string serialise() const;

    /** Human summary (aggregates plus every failure's detail). */
    std::string summary() const;
};

/** Run the pipeline, sharding scenarios across @p driver. */
DiffReport runDifferential(const DiffOptions &options,
                           ParallelDriver &driver);

/** runDifferential on a default-sized driver (MVP_JOBS / hardware). */
DiffReport runDifferential(const DiffOptions &options = {});

} // namespace mvp::harness

#endif // MVP_HARNESS_DIFFERENTIAL_HH
