/**
 * @file
 * Unit tests for DDG construction: register and memory dependence
 * edges, RecMII, SCCs, latency overrides and time bounds.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ddg/ddg.hh"
#include "ddg/memdep.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"

namespace mvp::ddg
{
namespace
{

using namespace mvp::ir;

const MachineConfig kMachine = makeUnified();

/** Count edges matching a predicate. */
template <typename Pred>
int
countEdges(const Ddg &g, Pred pred)
{
    return static_cast<int>(
        std::count_if(g.edges().begin(), g.edges().end(), pred));
}

const DdgEdge *
findEdge(const Ddg &g, OpId src, OpId dst)
{
    for (const auto &e : g.edges())
        if (e.src == src && e.dst == dst)
            return &e;
    return nullptr;
}

// -------------------------------------------------------- register edges

TEST(DdgBuild, RegisterEdgesFollowOperands)
{
    LoopNestBuilder b("reg");
    b.loop("i", 0, 16);
    const auto A = b.array("A", {16});
    const auto l = b.load(A, {affineVar(0)});
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    const auto s = b.op(Opcode::FAdd, {use(m), use(l)});
    b.store(A, {affineVar(0)}, use(s));
    const auto nest = b.build();
    const auto g = Ddg::build(nest, kMachine);

    const auto *lm = findEdge(g, l, m);
    ASSERT_NE(lm, nullptr);
    EXPECT_EQ(lm->latency, kMachine.latCacheHit);
    EXPECT_EQ(lm->distance, 0);
    EXPECT_TRUE(lm->isRegFlow());
    ASSERT_NE(findEdge(g, l, s), nullptr);
    ASSERT_NE(findEdge(g, m, s), nullptr);
}

TEST(DdgBuild, LiveInsCreateNoEdges)
{
    LoopNestBuilder b("livein");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    b.op(Opcode::FMul, {use(l), liveIn()});
    const auto g = Ddg::build(b.build(), kMachine);
    EXPECT_EQ(g.edges().size(), 1u);
}

TEST(DdgBuild, LoopCarriedOperandDistance)
{
    LoopNestBuilder b("acc");
    b.loop("i", 0, 16);
    const auto A = b.array("A", {16});
    const auto l = b.load(A, {affineVar(0)});
    const auto acc = b.op(Opcode::FAdd, {use(l), use(b.nextOpId(), 1)});
    const auto g = Ddg::build(b.build(), kMachine);
    const auto *self = findEdge(g, acc, acc);
    ASSERT_NE(self, nullptr);
    EXPECT_EQ(self->distance, 1);
    EXPECT_TRUE(g.inRecurrence(acc));
    EXPECT_FALSE(g.inRecurrence(l));
}

// ----------------------------------------------------------- memdep unit

TEST(MemDep, UniformPairExactDistance)
{
    // A(i, j-1) written, A(i, j) read: the read at iteration j touches
    // what was written at j+1 -> dependence read->write? Check both
    // directions through the raw test.
    LoopNestBuilder b("md");
    b.loop("i", 0, 4);
    b.loop("j", 1, 17);
    const auto A = b.array("A", {4, 18});
    const auto ld = b.load(A, {affineVar(0), affineVar(1, 1, -1)});
    const auto m = b.op(Opcode::FMul, {use(ld), liveIn()});
    b.store(A, {affineVar(0), affineVar(1)}, use(m));
    const auto nest = b.build();

    const auto &ld_ref = *nest.op(0).memRef;
    const auto &st_ref = *nest.op(2).memRef;
    // store at iteration j writes A(i,j); load at j' reads A(i,j'-1):
    // same element when j' = j + 1 -> store -> load, distance +1.
    const auto res = testMemoryDependence(nest, st_ref, ld_ref);
    EXPECT_EQ(res.kind, MemDepResult::Kind::Exact);
    EXPECT_EQ(res.distance, 1);
    EXPECT_FALSE(res.everyIteration);
}

TEST(MemDep, IndependentWhenOffsetNotMultipleOfStride)
{
    LoopNestBuilder b("md2");
    b.loop("i", 0, 32);
    const auto A = b.array("A", {70});
    const auto l = b.load(A, {affineVar(0, 2, 0)});
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    b.store(A, {affineVar(0, 2, 1)}, use(m));
    const auto nest = b.build();
    const auto res = testMemoryDependence(nest, *nest.op(0).memRef,
                                          *nest.op(2).memRef);
    EXPECT_EQ(res.kind, MemDepResult::Kind::Independent);
}

TEST(MemDep, EveryIterationCollision)
{
    LoopNestBuilder b("md3");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineConst(3)});
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    b.store(A, {affineConst(3)}, use(m));
    const auto nest = b.build();
    const auto res = testMemoryDependence(nest, *nest.op(0).memRef,
                                          *nest.op(2).memRef);
    EXPECT_EQ(res.kind, MemDepResult::Kind::Exact);
    EXPECT_TRUE(res.everyIteration);
}

TEST(MemDep, DisjointRangesIndependent)
{
    LoopNestBuilder b("md4");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {32});
    const auto l = b.load(A, {affineVar(0)});               // [0, 7]
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    b.store(A, {affineVar(0, 2, 16)}, use(m));              // [16, 30]
    const auto nest = b.build();
    const auto res = testMemoryDependence(nest, *nest.op(0).memRef,
                                          *nest.op(2).memRef);
    EXPECT_EQ(res.kind, MemDepResult::Kind::Independent);
}

TEST(MemDep, NonUniformOverlapIsUnknown)
{
    LoopNestBuilder b("md5");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {32});
    const auto l = b.load(A, {affineVar(0)});
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    b.store(A, {affineVar(0, 3, 1)}, use(m));
    const auto nest = b.build();
    const auto res = testMemoryDependence(nest, *nest.op(0).memRef,
                                          *nest.op(2).memRef);
    EXPECT_EQ(res.kind, MemDepResult::Kind::Unknown);
}

// -------------------------------------------------------- memory edges

TEST(DdgBuild, StoreLoadFlowEdgeAcrossIterations)
{
    // The applu.blts pattern: v(j) stored, v(j-1) loaded next iteration.
    LoopNestBuilder b("blts");
    b.loop("i", 0, 4);
    b.loop("j", 1, 33);
    const auto V = b.array("V", {4, 34});
    const auto vw = b.load(V, {affineVar(0), affineVar(1, 1, -1)}, "vw");
    const auto v = b.op(Opcode::FMul, {use(vw), liveIn()}, "v");
    const auto st = b.store(V, {affineVar(0), affineVar(1)}, use(v), "sv");
    const auto g = Ddg::build(b.build(), kMachine);

    const auto *flow = findEdge(g, st, vw);
    ASSERT_NE(flow, nullptr);
    EXPECT_EQ(flow->kind, EdgeKind::MemFlow);
    EXPECT_EQ(flow->distance, 1);
    // This creates a genuine memory recurrence: vw -> v -> st -> vw.
    EXPECT_TRUE(g.inRecurrence(vw));
    EXPECT_TRUE(g.inRecurrence(st));
    EXPECT_GE(g.recMii(), 2);
}

TEST(DdgBuild, LoadLoadPairsUnordered)
{
    LoopNestBuilder b("ll");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {9});
    const auto l1 = b.load(A, {affineVar(0)});
    const auto l2 = b.load(A, {affineVar(0, 1, 1)});
    b.op(Opcode::FAdd, {use(l1), use(l2)});
    const auto g = Ddg::build(b.build(), kMachine);
    EXPECT_EQ(countEdges(g, [](const DdgEdge &e) {
                  return e.kind != EdgeKind::RegFlow;
              }),
              0);
}

TEST(DdgBuild, SameLocationStoreLoadSameIteration)
{
    LoopNestBuilder b("rmw");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    const auto st = b.store(A, {affineVar(0)}, use(m));
    const auto g = Ddg::build(b.build(), kMachine);
    // Anti edge load -> store at distance 0.
    const auto *anti = findEdge(g, l, st);
    ASSERT_NE(anti, nullptr);
    EXPECT_EQ(anti->kind, EdgeKind::MemAnti);
    EXPECT_EQ(anti->distance, 0);
}

TEST(DdgBuild, UnknownPairSerialisedBothWays)
{
    LoopNestBuilder b("unk");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {32});
    const auto l = b.load(A, {affineVar(0)});
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    const auto st = b.store(A, {affineVar(0, 3, 1)}, use(m));
    const auto g = Ddg::build(b.build(), kMachine);
    ASSERT_NE(findEdge(g, l, st), nullptr);    // program order
    ASSERT_NE(findEdge(g, st, l), nullptr);    // distance-1 back edge
    EXPECT_EQ(findEdge(g, st, l)->distance, 1);
}

// ------------------------------------------------------------- recMii

TEST(RecMii, AcyclicIsOne)
{
    LoopNestBuilder b("acyc");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    b.op(Opcode::FMul, {use(l), liveIn()});
    const auto g = Ddg::build(b.build(), kMachine);
    EXPECT_EQ(g.recMii(), 1);
}

TEST(RecMii, SelfLoopAccumulator)
{
    LoopNestBuilder b("acc");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    b.op(Opcode::FAdd, {use(l), use(b.nextOpId(), 1)});
    const auto g = Ddg::build(b.build(), kMachine);
    // One FAdd of latency 2 per iteration distance 1.
    EXPECT_EQ(g.recMii(), kMachine.latFp);
}

TEST(RecMii, TwoOpCycleDistanceOne)
{
    LoopNestBuilder b("cyc2");
    b.loop("i", 0, 8);
    // r = a * d@-1 ; d = r - c  => cycle latency 4, distance 1.
    const auto r = b.op(Opcode::FMul, {liveIn(), use(1, 1)});
    b.op(Opcode::FSub, {use(r), liveIn()});
    const auto g = Ddg::build(b.build(), kMachine);
    EXPECT_EQ(g.recMii(), 2 * kMachine.latFp);
}

TEST(RecMii, DistanceTwoHalvesTheBound)
{
    LoopNestBuilder b("cyc3");
    b.loop("i", 0, 8);
    const auto r = b.op(Opcode::FMul, {liveIn(), use(1, 2)});
    b.op(Opcode::FSub, {use(r), liveIn()});
    const auto g = Ddg::build(b.build(), kMachine);
    EXPECT_EQ(g.recMii(), 2);   // ceil(4 / 2)
}

TEST(FeasibleII, OverrideRaisesRequiredII)
{
    LoopNestBuilder b("ovr");
    b.loop("i", 0, 16);
    const auto A = b.array("A", {17});
    // load feeds an accumulator through a recurrence that includes it:
    // acc = (load + acc@-1); load reads A(i) but the recurrence is only
    // through acc, so build a cycle through the load explicitly:
    // x = load; y = x * z@-1; z = y + c.
    const auto x = b.load(A, {affineVar(0)});
    const auto y = b.op(Opcode::FMul, {use(x), use(b.nextOpId() + 1, 1)});
    b.op(Opcode::FAdd, {use(y), liveIn()});
    const auto g = Ddg::build(b.build(), kMachine);
    const Cycle rec = g.recMii();
    EXPECT_TRUE(g.feasibleII(rec));
    EXPECT_FALSE(g.feasibleII(rec - 1));
    // The load is not on the cycle; overriding its latency leaves the
    // recurrence intact but lengthens the x->y edge, which is acyclic.
    LatencyOverrides ov{{x, 50}};
    EXPECT_TRUE(g.feasibleII(rec, ov));
    // Overriding an op on the cycle (y) does raise the bound.
    LatencyOverrides ov2{{y, 50}};
    EXPECT_FALSE(g.feasibleII(rec, ov2));
}

// ---------------------------------------------------------------- sccs

TEST(Sccs, PartitionAndRecurrenceFlags)
{
    LoopNestBuilder b("scc");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    const auto y = b.op(Opcode::FMul, {use(l), use(b.nextOpId() + 1, 1)});
    const auto z = b.op(Opcode::FAdd, {use(y), liveIn()});
    b.store(A, {affineVar(0)}, use(z));
    const auto g = Ddg::build(b.build(), kMachine);

    // {y, z} form one SCC; l and the store are trivial.
    int cyclic = 0;
    for (std::size_t s = 0; s < g.sccs().size(); ++s)
        if (g.sccs()[s].size() > 1)
            ++cyclic;
    EXPECT_EQ(cyclic, 1);
    EXPECT_EQ(g.sccOf(y), g.sccOf(z));
    EXPECT_NE(g.sccOf(l), g.sccOf(y));
    EXPECT_GE(g.sccRecMii(g.sccOf(y)), 2 * kMachine.latFp);
    EXPECT_EQ(g.sccRecMii(g.sccOf(l)), 1);
}

// ---------------------------------------------------------- time bounds

TEST(TimeBounds, ChainAsapAlap)
{
    LoopNestBuilder b("chain");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});                   // lat 2
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});      // lat 2
    const auto s = b.op(Opcode::FAdd, {use(m), liveIn()});      // lat 2
    b.store(A, {affineVar(0)}, use(s));
    const auto g = Ddg::build(b.build(), kMachine);
    const auto tb = g.timeBounds(4);

    EXPECT_EQ(tb.asap[0], 0);
    EXPECT_EQ(tb.asap[1], 2);
    EXPECT_EQ(tb.asap[2], 4);
    EXPECT_EQ(tb.asap[3], 6);
    EXPECT_EQ(tb.criticalPath, 6);
    // A pure chain has zero mobility everywhere...
    for (OpId v = 0; v < 4; ++v)
        EXPECT_EQ(tb.mobility(v), 0) << "op " << v;
    // ...except nothing; heights decrease along the chain.
    EXPECT_GT(tb.height(0), tb.height(3));
}

TEST(TimeBounds, MobilityOfSideBranch)
{
    LoopNestBuilder b("diamond");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    const auto slow1 = b.op(Opcode::FMul, {use(l), liveIn()});
    const auto slow2 = b.op(Opcode::FMul, {use(slow1), liveIn()});
    const auto fast = b.op(Opcode::Copy, {use(l)});   // lat 1 branch
    const auto join = b.op(Opcode::FAdd, {use(slow2), use(fast)});
    b.store(A, {affineVar(0)}, use(join));
    const auto g = Ddg::build(b.build(), kMachine);
    const auto tb = g.timeBounds(3);
    EXPECT_GT(tb.mobility(fast), 0);
    EXPECT_EQ(tb.mobility(slow1), 0);
    EXPECT_EQ(tb.mobility(slow2), 0);
}

TEST(DdgDump, MentionsEdges)
{
    LoopNestBuilder b("dump");
    b.loop("i", 0, 8);
    const auto A = b.array("A", {8});
    const auto l = b.load(A, {affineVar(0)});
    b.op(Opcode::FMul, {use(l), liveIn()});
    const auto g = Ddg::build(b.build(), kMachine);
    EXPECT_NE(g.toString().find("recMII"), std::string::npos);
    EXPECT_NE(g.toString().find("[reg]"), std::string::npos);
}

} // namespace
} // namespace mvp::ddg
