/**
 * @file
 * Tests for the modulo-scheduling framework: MRT, MII bounds, the swing
 * ordering, lifetimes, and both schedulers (baseline and RMCA),
 * including the parameterized validity property over machines and
 * thresholds.
 */

#include <gtest/gtest.h>

#include "cme/solver.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"
#include "sched/lifetimes.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/ordering.hh"
#include "sched/scheduler.hh"

namespace mvp::sched
{
namespace
{

using namespace mvp::ir;

// ------------------------------------------------------------------ MRT

TEST(Mrt, FuCapacityPerSlot)
{
    const auto machine = makeFourCluster();   // 1 FU of each type
    Mrt mrt(machine, 4);
    EXPECT_TRUE(mrt.fuFree(0, 0, FuType::Mem));
    mrt.placeFu(0, 0, FuType::Mem);
    EXPECT_FALSE(mrt.fuFree(0, 0, FuType::Mem));
    EXPECT_TRUE(mrt.fuFree(1, 0, FuType::Mem));     // other slot
    EXPECT_TRUE(mrt.fuFree(0, 1, FuType::Mem));     // other cluster
    EXPECT_TRUE(mrt.fuFree(0, 0, FuType::Int));     // other class
    EXPECT_TRUE(mrt.fuFree(4, 0, FuType::Int));     // wraps mod II
    EXPECT_FALSE(mrt.fuFree(4, 0, FuType::Mem));
    mrt.removeFu(0, 0, FuType::Mem);
    EXPECT_TRUE(mrt.fuFree(0, 0, FuType::Mem));
}

TEST(Mrt, FuLoadTracksPerCluster)
{
    const auto machine = makeTwoCluster();
    Mrt mrt(machine, 3);
    mrt.placeFu(0, 1, FuType::Fp);
    mrt.placeFu(1, 1, FuType::Fp);
    EXPECT_EQ(mrt.fuLoad(1, FuType::Fp), 2);
    EXPECT_EQ(mrt.fuLoad(0, FuType::Fp), 0);
}

TEST(Mrt, BusReservationSpansLatency)
{
    auto machine = makeTwoCluster();
    machine.nRegBuses = 1;
    machine.regBusLatency = 2;
    Mrt mrt(machine, 4);
    const int bus = mrt.findFreeBus(1);
    ASSERT_EQ(bus, 0);
    mrt.reserveBus(bus, 1);   // occupies slots 1 and 2
    EXPECT_EQ(mrt.findFreeBus(1), BUS_NONE);
    EXPECT_EQ(mrt.findFreeBus(2), BUS_NONE);
    EXPECT_EQ(mrt.findFreeBus(0), BUS_NONE); // would cover slots 0,1
    EXPECT_EQ(mrt.findFreeBus(3), 0);    // slots 3,0 free
    mrt.releaseBus(bus, 1);
    EXPECT_EQ(mrt.findFreeBus(1), 0);
    EXPECT_EQ(mrt.busSlotsUsed(), 0);
}

TEST(Mrt, SecondBusUsedWhenFirstBusy)
{
    auto machine = makeTwoCluster();   // 2 buses, latency 1
    Mrt mrt(machine, 2);
    mrt.reserveBus(mrt.findFreeBus(0), 0);
    EXPECT_EQ(mrt.findFreeBus(0), 1);
    mrt.reserveBus(1, 0);
    EXPECT_EQ(mrt.findFreeBus(0), BUS_NONE);
    EXPECT_EQ(mrt.findFreeBus(1), 0);
}

TEST(Mrt, BusLatencyBeyondIiIsStructurallyInfeasible)
{
    auto machine = makeTwoCluster();
    machine.regBusLatency = 4;
    Mrt mrt(machine, 3);
    EXPECT_EQ(mrt.findFreeBus(0), BUS_NONE);
}

TEST(Mrt, UnboundedBusesAlwaysFree)
{
    auto machine = withUnboundedBuses(makeTwoCluster(), 2, 1);
    Mrt mrt(machine, 1);
    EXPECT_EQ(mrt.findFreeBus(0), BUS_UNBOUNDED);
    mrt.reserveBus(BUS_UNBOUNDED, 0);   // no-op
    EXPECT_EQ(mrt.findFreeBus(0), BUS_UNBOUNDED);
}

TEST(Mrt, SlotArithmeticMatchesModulo)
{
    const auto machine = makeTwoCluster();
    Mrt mrt(machine, 5);
    EXPECT_EQ(mrt.slot(0), 0u);
    EXPECT_EQ(mrt.slot(7), 2u);
    EXPECT_EQ(mrt.slot(-1), 4u);
    EXPECT_EQ(mrt.slot(-6), 4u);
    EXPECT_EQ(mrt.nextSlot(4), 0u);
    EXPECT_EQ(mrt.nextSlot(0), 1u);
    EXPECT_EQ(mrt.prevSlot(0), 4u);
    EXPECT_EQ(mrt.prevSlot(3), 2u);
}

TEST(Mrt, SlotVariantsAgreeWithCycleVariants)
{
    auto machine = makeTwoCluster();
    machine.nRegBuses = 2;
    machine.regBusLatency = 2;
    Mrt mrt(machine, 4);
    mrt.placeFu(6, 1, ir::FuType::Mem);   // slot 2
    for (Cycle t = 0; t < 8; ++t)
        EXPECT_EQ(mrt.fuFreeAt(mrt.slot(t), 1, ir::FuType::Mem),
                  mrt.fuFree(t, 1, ir::FuType::Mem));

    mrt.reserveBusAt(0, mrt.slot(3));     // occupies slots 3 and 0
    EXPECT_EQ(mrt.findFreeBusAt(mrt.slot(3)), mrt.findFreeBus(3));
    EXPECT_EQ(mrt.findFreeBusAt(mrt.slot(3)), 1);
    mrt.reserveBusAt(1, mrt.slot(3));
    EXPECT_EQ(mrt.findFreeBus(3), BUS_NONE);
    EXPECT_EQ(mrt.findFreeBus(0), BUS_NONE);   // covers slots 0,1
    EXPECT_EQ(mrt.findFreeBus(1), 0);          // slots 1,2 free
    mrt.releaseBusAt(0, mrt.slot(3));
    mrt.releaseBusAt(1, mrt.slot(3));
    EXPECT_EQ(mrt.busSlotsUsed(), 0);
}

TEST(Mrt, ResetClearsAndResizes)
{
    const auto machine = makeTwoCluster();
    Mrt mrt(machine, 3);
    mrt.placeFu(1, 0, ir::FuType::Int);
    mrt.reserveBus(0, 2);
    EXPECT_EQ(mrt.fuLoad(0, ir::FuType::Int), 1);
    mrt.reset(5);
    EXPECT_EQ(mrt.ii(), 5);
    EXPECT_EQ(mrt.fuLoad(0, ir::FuType::Int), 0);
    EXPECT_EQ(mrt.busSlotsUsed(), 0);
    for (Cycle t = 0; t < 5; ++t)
        EXPECT_TRUE(mrt.fuFree(t, 0, ir::FuType::Int));
}

TEST(Mrt, ManyBusesUseSecondMaskWord)
{
    // More than 64 buses exercises the multi-word occupancy path.
    auto machine = makeTwoCluster();
    machine.nRegBuses = 70;
    machine.regBusLatency = 1;
    Mrt mrt(machine, 2);
    for (int b = 0; b < 70; ++b) {
        EXPECT_EQ(mrt.findFreeBus(0), b);
        mrt.reserveBus(b, 0);
    }
    EXPECT_EQ(mrt.findFreeBus(0), BUS_NONE);
    EXPECT_EQ(mrt.findFreeBus(1), 0);
    mrt.releaseBus(67, 0);
    EXPECT_EQ(mrt.findFreeBus(0), 67);
}

// ------------------------------------------------------------------ MII

TEST(ResMii, BoundByBusiestFuClass)
{
    LoopNestBuilder b("res");
    b.loop("i", 0, 32);
    const auto A = b.array("A", {40});
    // 6 memory ops, 1 FP op: with 4 MEM units total, ResMII = 2.
    std::vector<OpId> loads;
    for (int k = 0; k < 6; ++k)
        loads.push_back(b.load(A, {affineVar(0, 1, k)}));
    b.op(Opcode::FAdd, {use(loads[0]), use(loads[1])});
    const auto nest = b.build();
    EXPECT_EQ(resMii(nest, makeUnified()), 2);
    EXPECT_EQ(resMii(nest, makeTwoCluster()), 2);
    EXPECT_EQ(resMii(nest, makeFourCluster()), 2);
}

TEST(MinII, TakesMaxOfBounds)
{
    LoopNestBuilder b("mix");
    b.loop("i", 0, 32);
    const auto A = b.array("A", {32});
    const auto l = b.load(A, {affineVar(0)});
    b.op(Opcode::FAdd, {use(l), use(b.nextOpId(), 1)});   // RecMII = 2
    const auto nest = b.build();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    EXPECT_EQ(resMii(nest, machine), 1);
    EXPECT_EQ(g.recMii(), 2);
    EXPECT_EQ(minII(g, machine), 2);
}

// ------------------------------------------------------------- ordering

TEST(Ordering, CoversAllNodesOnce)
{
    LoopNestBuilder b("cover");
    b.loop("i", 0, 16);
    const auto A = b.array("A", {17});
    const auto l1 = b.load(A, {affineVar(0)});
    const auto l2 = b.load(A, {affineVar(0, 1, 1)});
    const auto m = b.op(Opcode::FMul, {use(l1), use(l2)});
    const auto s = b.op(Opcode::FAdd, {use(m), use(b.nextOpId(), 1)});
    b.store(A, {affineVar(0)}, use(s));
    const auto g = ddg::Ddg::build(b.build(), makeUnified());
    const auto order = computeOrdering(g, g.recMii());
    ASSERT_EQ(order.size(), g.size());
    std::vector<char> seen(g.size(), 0);
    for (OpId v : order) {
        EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
        seen[static_cast<std::size_t>(v)] = 1;
    }
}

TEST(Ordering, DagNeverFacesBothSides)
{
    // On an acyclic graph the swing ordering must never append a node
    // with both a predecessor and a successor already ordered ([22]).
    LoopNestBuilder b("dag");
    b.loop("i", 0, 16);
    const auto A = b.array("A", {18});
    const auto l1 = b.load(A, {affineVar(0)});
    const auto l2 = b.load(A, {affineVar(0, 1, 1)});
    const auto l3 = b.load(A, {affineVar(0, 1, 2)});
    const auto m1 = b.op(Opcode::FMul, {use(l1), use(l2)});
    const auto m2 = b.op(Opcode::FMul, {use(l2), use(l3)});
    const auto s = b.op(Opcode::FAdd, {use(m1), use(m2)});
    const auto t = b.op(Opcode::FAdd, {use(s), use(l1)});
    b.store(A, {affineVar(0)}, use(t));
    const auto g = ddg::Ddg::build(b.build(), makeUnified());
    const auto order = computeOrdering(g, 2);
    EXPECT_EQ(bothNeighbourCount(g, order), 0);
}

TEST(Ordering, MostCriticalRecurrenceFirst)
{
    LoopNestBuilder b("crit");
    b.loop("i", 0, 16);
    // Slow cycle: fdiv (lat 6) + fadd (lat 2), distance 1 -> RecMII 8.
    const auto d = b.op(Opcode::FDiv, {liveIn(), use(1, 1)}, "d");
    b.op(Opcode::FAdd, {use(d), liveIn()}, "e");
    // Fast cycle: fadd self-loop -> RecMII 2.
    b.op(Opcode::FAdd, {liveIn(), use(b.nextOpId(), 1)}, "f");
    const auto g = ddg::Ddg::build(b.build(), makeUnified());
    const auto order = computeOrdering(g, g.recMii());
    // d or e must come before f.
    std::size_t pos_d = 99;
    std::size_t pos_f = 99;
    for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i] == 0)
            pos_d = i;
        if (order[i] == 2)
            pos_f = i;
    }
    EXPECT_LT(pos_d, pos_f);
}

// ---------------------------------------------------------- end-to-end

/** Ping-pong loop used across the scheduler tests. */
LoopNest
conflictLoop()
{
    LoopNestBuilder b("conflict");
    b.loop("r", 0, 8);
    b.loop("i", 0, 256);
    const auto B = b.arrayAt("B", {256}, 0x10000);
    const auto C = b.arrayAt("C", {256}, 0x10000 + 0x2000);
    // D is deliberately NOT set-aligned with B/C (offset 0x2480 is no
    // multiple of any cache size), so only the B/C pair ping-pongs.
    const auto D = b.arrayAt("D", {256}, 0x10000 + 0x2480);
    const auto lb = b.load(B, {affineVar(1)}, "lb");
    const auto lc = b.load(C, {affineVar(1)}, "lc");
    const auto m = b.op(Opcode::FMul, {use(lb), use(lc)}, "m");
    b.store(D, {affineVar(1)}, use(m), "sd");
    return b.build();
}

TEST(Scheduler, UnifiedNeedsNoComms)
{
    const auto nest = conflictLoop();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.schedule.numComms(), 0u);
    EXPECT_EQ(r.schedule.validate(g, machine), "");
    EXPECT_GE(r.schedule.ii(), r.stats.mii);
}

TEST(Scheduler, AchievesMiiOnSimpleLoop)
{
    const auto nest = conflictLoop();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.schedule.ii(), r.stats.mii);   // no recurrences, 4 mem ops
}

TEST(Scheduler, CrossClusterEdgesHaveComms)
{
    const auto nest = conflictLoop();
    const auto machine = makeTwoCluster();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.schedule.validate(g, machine), "");
}

TEST(Scheduler, RmcaSeparatesConflictingLoads)
{
    const auto nest = conflictLoop();
    const auto machine = makeTwoCluster();
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    const auto r = scheduleRmca(g, machine, 1.0, cme);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.schedule.validate(g, machine), "");
    // The two conflicting loads must land in different clusters.
    EXPECT_NE(r.schedule.placed(0).cluster, r.schedule.placed(1).cluster);
    // And the CME prediction for the final partition is nearly no misses
    // beyond the streaming minimum.
    EXPECT_LT(r.stats.predictedMissesPerIter, 0.6);
}

TEST(Scheduler, ThresholdZeroPromotesLikelyMisses)
{
    const auto nest = conflictLoop();
    const auto machine = withUnboundedBuses(makeTwoCluster(), 1, 1);
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    const auto strict = scheduleRmca(g, machine, 1.0, cme);
    const auto eager = scheduleRmca(g, machine, 0.0, cme);
    ASSERT_TRUE(strict.ok && eager.ok);
    EXPECT_EQ(strict.stats.missScheduledLoads, 0);
    EXPECT_GT(eager.stats.missScheduledLoads, 0);
    // Promotion uses the full miss latency on the promoted load.
    bool found = false;
    for (OpId v = 0; v < static_cast<OpId>(g.size()); ++v) {
        const auto &p = eager.schedule.placed(v);
        if (p.missScheduled) {
            EXPECT_EQ(p.outLatency, machine.missLatency());
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Scheduler, ThresholdRespectsRecurrenceConstraint)
{
    // A load inside a tight recurrence must not adopt the miss latency
    // when that would raise the II.
    LoopNestBuilder b("recload");
    b.loop("r", 0, 4);
    b.loop("i", 1, 129);
    const auto A = b.arrayAt("A", {4, 130}, 0x10000);
    const auto l = b.load(A, {affineVar(0), affineVar(1, 1, -1)}, "l");
    const auto v = b.op(Opcode::FAdd, {use(l), liveIn()}, "v");
    const auto st = b.store(A, {affineVar(0), affineVar(1)}, use(v), "s");
    (void)st;
    const auto nest = b.build();
    const auto machine = withUnboundedBuses(makeTwoCluster(), 1, 1);
    const auto g = ddg::Ddg::build(nest, machine);
    ASSERT_TRUE(g.inRecurrence(l));
    cme::CmeAnalysis cme(nest);
    const auto r = scheduleRmca(g, machine, 0.0, cme);
    ASSERT_TRUE(r.ok) << r.error;
    // The recurrence caps the II: lat(load)+lat(fadd)+lat(store) = 5.
    EXPECT_EQ(r.schedule.placed(l).missScheduled, false);
    EXPECT_LE(r.schedule.ii(), 8);
}

TEST(Scheduler, SingleRegBusSaturationRaisesII)
{
    // Many cross-cluster values with a single 4-cycle bus: the II must
    // grow past the bus occupancy (4 cycles per transfer).
    LoopNestBuilder b("buspressure");
    b.loop("i", 0, 64);
    const auto A = b.arrayAt("A", {70}, 0x10000);
    std::vector<OpId> loads;
    for (int k = 0; k < 4; ++k)
        loads.push_back(b.load(A, {affineVar(0, 1, k)}));
    // A reduction tree forcing values to meet.
    const auto m1 = b.op(Opcode::FMul, {use(loads[0]), use(loads[1])});
    const auto m2 = b.op(Opcode::FMul, {use(loads[2]), use(loads[3])});
    const auto s = b.op(Opcode::FAdd, {use(m1), use(m2)});
    b.store(A, {affineVar(0)}, use(s));
    const auto nest = b.build();

    auto machine = makeFourCluster();   // forces spreading (1 FU each)
    machine.nRegBuses = 1;
    machine.regBusLatency = 4;
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.schedule.validate(g, machine), "");
    // Structural floor: a transfer occupies the only bus for 4 cycles,
    // so with at least 2 transfers the II is at least 8... at minimum
    // the II must be >= bus latency.
    EXPECT_GE(r.schedule.ii(), 4);
    if (r.schedule.numComms() >= 2) {
        EXPECT_GE(r.schedule.ii(),
                  static_cast<Cycle>(4 * r.schedule.numComms()));
    }
}

TEST(Scheduler, RegisterPressureForcesHigherII)
{
    // Tiny register files force the scheduler to stretch the II until
    // MaxLive fits.
    LoopNestBuilder b("pressure");
    b.loop("i", 0, 64);
    const auto A = b.arrayAt("A", {80}, 0x10000);
    std::vector<OpId> vals;
    for (int k = 0; k < 6; ++k) {
        const auto l = b.load(A, {affineVar(0, 1, k)});
        vals.push_back(b.op(Opcode::FMul, {use(l), liveIn()}));
    }
    OpId acc = vals[0];
    for (int k = 1; k < 6; ++k)
        acc = b.op(Opcode::FAdd, {use(acc), use(vals[k])});
    b.store(A, {affineVar(0)}, use(acc));
    const auto nest = b.build();

    auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto normal = scheduleBaseline(g, machine);
    ASSERT_TRUE(normal.ok);

    auto tiny = machine;
    tiny.regsPerCluster = 6;
    const auto squeezed = scheduleBaseline(g, tiny);
    ASSERT_TRUE(squeezed.ok) << squeezed.error;
    EXPECT_EQ(squeezed.schedule.validate(g, tiny), "");
    EXPECT_GE(squeezed.schedule.ii(), normal.schedule.ii());
    for (int ml : squeezed.schedule.maxLive())
        EXPECT_LE(ml, 6);
}

TEST(Scheduler, FailsGracefullyWhenImpossible)
{
    // Two operands must be simultaneously live at their consumer, so one
    // register per cluster can never hold them: every II fails.
    LoopNestBuilder b("impossible");
    b.loop("i", 0, 8);
    const auto A = b.arrayAt("A", {9}, 0x1000);
    const auto l1 = b.load(A, {affineVar(0)});
    const auto l2 = b.load(A, {affineVar(0, 1, 1)});
    const auto s = b.op(Opcode::FAdd, {use(l1), use(l2)});
    b.store(A, {affineVar(0)}, use(s));
    const auto nest = b.build();
    auto machine = makeTwoCluster();
    machine.regsPerCluster = 1;   // hopeless
    const auto g = ddg::Ddg::build(nest, machine);
    SchedulerOptions opt;
    opt.maxII = 16;
    auto r = ClusteredModuloScheduler(g, machine, opt).run();
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("no feasible II"), std::string::npos);
}

// --------------------------------------------------------- lifetimes

TEST(Lifetimes, ChainLifetimeMatchesHandCount)
{
    LoopNestBuilder b("lt");
    b.loop("i", 0, 16);
    const auto A = b.arrayAt("A", {16}, 0x1000);
    const auto l = b.load(A, {affineVar(0)});
    const auto m = b.op(Opcode::FMul, {use(l), liveIn()});
    b.store(A, {affineVar(0)}, use(m));
    const auto nest = b.build();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto lt = computeLifetimes(g, r.schedule, machine);
    ASSERT_EQ(lt.maxLivePerCluster.size(), 1u);
    // II = 1; the load's value lives from t_l+2 to t_m, the mul's from
    // t_m+2 to t_store; at II=1 each overlapping cycle costs a register.
    EXPECT_GE(lt.maxLivePerCluster[0], 2);
    EXPECT_LE(lt.maxLivePerCluster[0], 8);
}

TEST(Lifetimes, RemoteValuesCostRegistersInBothClusters)
{
    const auto nest = conflictLoop();
    const auto machine = makeTwoCluster();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    if (r.schedule.numComms() > 0) {
        const auto lt = computeLifetimes(g, r.schedule, machine);
        EXPECT_GT(lt.maxLivePerCluster[0] + lt.maxLivePerCluster[1], 2);
    }
}

// ----------------------------------------------- parameterized validity

struct SchedCase
{
    const char *name;
    int clusters;
    bool rmca;
    double threshold;
    bool unbounded;
};

class ScheduleValidity : public ::testing::TestWithParam<SchedCase>
{
};

TEST_P(ScheduleValidity, ConflictLoopScheduleIsLegal)
{
    const auto &param = GetParam();
    const auto nest = conflictLoop();
    auto machine = makeConfig(param.clusters);
    if (param.unbounded)
        machine = withUnboundedBuses(machine, 2, 2);
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);

    SchedulerOptions opt;
    opt.memoryAware = param.rmca;
    opt.missThreshold = param.threshold;
    opt.locality = &cme;
    auto r = ClusteredModuloScheduler(g, machine, opt).run();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.schedule.validate(g, machine), "") << machine.summary();
    EXPECT_GE(r.schedule.ii(), r.stats.mii);
    for (int ml : r.schedule.maxLive())
        EXPECT_LE(ml, machine.regsPerCluster);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, ScheduleValidity,
    ::testing::Values(
        SchedCase{"unified_base", 1, false, 1.0, false},
        SchedCase{"unified_thr0", 1, true, 0.0, false},
        SchedCase{"two_base", 2, false, 1.0, false},
        SchedCase{"two_base_thr0", 2, false, 0.0, false},
        SchedCase{"two_rmca", 2, true, 1.0, false},
        SchedCase{"two_rmca_thr025", 2, true, 0.25, false},
        SchedCase{"two_rmca_thr0_unb", 2, true, 0.0, true},
        SchedCase{"four_base", 4, false, 1.0, false},
        SchedCase{"four_rmca", 4, true, 1.0, false},
        SchedCase{"four_rmca_thr0", 4, true, 0.0, false},
        SchedCase{"four_rmca_unb", 4, true, 0.75, true}),
    [](const auto &info) { return std::string(info.param.name); });

} // namespace
} // namespace mvp::sched
