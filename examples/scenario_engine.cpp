/**
 * @file
 * The scenario engine in four steps: write a loop and a machine in the
 * text format and parse them, generate synthetic scenarios from a
 * seed, dump a corpus that the `file:` workload scheme loads back, and
 * run the differential validation pipeline over generated scenarios.
 *
 * Usage: scenario_engine [--jobs N] [--scenarios N] [--seed S]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gen/corpus.hh"
#include "gen/generator.hh"
#include "harness/differential.hh"
#include "harness/experiment.hh"
#include "harness/flags.hh"
#include "text/format.hh"

using namespace mvp;

namespace
{

/** A hand-written loop in the text grammar of docs/scenarios.md. */
const char *const SAXPY_TEXT = R"(
# y[i] += a * x[i], with X and Y one cache period apart.
loop "text.saxpy" {
  for rep = 0 to 8
  for i = 0 to 256
  array X[256] elem=4 base=0x10000
  array Y[256] elem=4 base=0x12000
  %0 = load "x" X[i]
  %1 = load "y" Y[i]
  %2 = fmul "ax" %0 _
  %3 = fadd "s" %2 %1
  %4 = store "sy" %3 -> Y[i]
}
)";

const char *const MACHINE_TEXT = R"(
machine "text.twocluster" {
  clusters 2
  int_fus 2
  fp_fus 2
  mem_fus 2
  regs 32
  reg_buses 2
  cache_bytes 8192
}
)";

} // namespace

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    harness::DiffOptions options;
    options.scenarios = 32;
    options.timeBudgetMs = harness::parseTimeBudgetFlag(argc, argv);
    const std::string exact_backend =
        harness::parseExactBackendFlag(argc, argv);
    if (!exact_backend.empty())
        options.exactBackend = exact_backend;
    const std::string scenarios = harness::stripValueFlag(
        argc, argv, "--scenarios", "scenario count");
    if (!scenarios.empty())
        options.scenarios = std::atoi(scenarios.c_str());
    const std::string seed =
        harness::stripValueFlag(argc, argv, "--seed", "seed");
    if (!seed.empty())
        options.seed = std::strtoull(seed.c_str(), nullptr, 0);
    harness::rejectUnknownFlags(
        argc, argv,
        {"--jobs", "--time-budget-ms", "--exact-backend",
         "--scenarios", "--seed", "--log-level", "--metrics",
         "--trace"});

    // --- 1. The text frontend: loops and machines are data, not code.
    // parseLoop validates the nest; the canonical reprint round-trips. ---
    const ir::LoopNest nest = text::parseLoop(SAXPY_TEXT, "saxpy");
    const MachineConfig machine =
        text::parseMachine(MACHINE_TEXT, "twocluster");
    std::printf("parsed '%s' (%zu ops) for %s\n", nest.name().c_str(),
                nest.size(), machine.summary().c_str());
    std::printf("canonical form:\n%s\n",
                text::printLoop(nest).c_str());

    // --- 2. The generator: a scenario is a pure function of a 64-bit
    // seed — same seed, same loop and machine, forever. ---
    const gen::Scenario sc = gen::generateScenario(options.seed);
    std::printf("generated scenario %llu: '%s' (%zu ops, depth %zu) "
                "on '%s'\n",
                static_cast<unsigned long long>(sc.seed),
                sc.nest.name().c_str(), sc.nest.size(),
                sc.nest.depth(), sc.machine.name.c_str());

    // --- 3. A corpus on disk, loaded back through the `file:` scheme
    // exactly like a builtin suite. ---
    gen::CorpusSpec spec;
    spec.seed = options.seed;
    spec.loops = 4;
    spec.machines = 1;
    const auto paths = gen::writeCorpus(spec, "scenario_corpus");
    std::printf("corpus: wrote %zu files under scenario_corpus/\n",
                paths.size());
    harness::Workbench bench({"file:" + paths.front()});
    std::printf("workbench from '%s': %zu loops\n\n",
                paths.front().c_str(), bench.entries().size());

    // --- 4. The differential pipeline: schedule, cross-check against
    // the exact backend, expand the kernel, simulate, compare CME to
    // the oracle — on every generated scenario. ---
    const auto report = harness::runDifferential(options, driver);
    std::printf("%s", report.summary().c_str());
    return report.failed() == 0 ? 0 : 1;
}
