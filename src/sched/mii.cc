#include "sched/mii.hh"

#include <algorithm>

namespace mvp::sched
{

Cycle
resMii(const ir::LoopNest &nest, const MachineConfig &machine)
{
    int count[ir::NUM_FU_TYPES] = {0, 0, 0};
    for (const auto &op : nest.ops())
        ++count[static_cast<int>(op.fuType())];

    Cycle res = 1;
    for (int t = 0; t < ir::NUM_FU_TYPES; ++t) {
        const auto type = static_cast<ir::FuType>(t);
        const int units = machine.totalFus(type);
        const Cycle bound = (count[t] + units - 1) / units;
        res = std::max(res, bound);
    }
    return res;
}

Cycle
minII(const ddg::Ddg &graph, const MachineConfig &machine)
{
    return std::max(resMii(graph.loop(), machine), graph.recMii());
}

} // namespace mvp::sched
