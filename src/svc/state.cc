/**
 * @file
 * SchedService warm-state persistence (formats: svc/state.hh).
 *
 * Two codecs live here: the binary v2 writer/reader (the current
 * format — fixed-width little-endian, staged reject-whole decoding)
 * and the text v1 codec (legacy; still written by encodeStateTextV1
 * for old readers and still accepted by decodeState so existing
 * snapshots migrate to binary on their next SAVE).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cme/oracle.hh"
#include "cme/solver.hh"
#include "common/logging.hh"
#include "svc/service.hh"
#include "svc/state.hh"
#include "text/format.hh"

namespace mvp::svc
{
namespace
{

constexpr std::uint32_t TAG_CACHE = 1;
constexpr std::uint32_t TAG_LOOPS = 2;
constexpr std::uint32_t KIND_CME = 1;
constexpr std::uint32_t KIND_ORACLE = 2;

/** @name Binary v2 primitives (explicit little-endian byte order, so
 * snapshots are portable across hosts) */
/// @{

void
putU32(std::string &out, std::uint32_t v)
{
    char b[4];
    b[0] = static_cast<char>(v & 0xff);
    b[1] = static_cast<char>((v >> 8) & 0xff);
    b[2] = static_cast<char>((v >> 16) & 0xff);
    b[3] = static_cast<char>((v >> 24) & 0xff);
    out.append(b, 4);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    out.append(b, 8);
}

void
putI64(std::string &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

void
putBlob(std::string &out, const std::string &s)
{
    putU64(out, s.size());
    out += s;
}

/** Bounds-checked cursor over binary snapshot bytes. Every helper
 * fatals on overrun (callers hold a FatalScope when the bytes are
 * user input), so a truncated snapshot can never publish anything. */
class BinReader
{
  public:
    BinReader(const std::string &bytes, const std::string &origin)
        : bytes_(bytes), origin_(origin)
    {
    }

    std::size_t pos() const { return pos_; }
    bool atEnd() const { return pos_ >= bytes_.size(); }

    void bytes(void *dst, std::size_t n)
    {
        need(n);
        std::memcpy(dst, bytes_.data() + pos_, n);
        pos_ += n;
    }

    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string blob()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string out = bytes_.substr(pos_, n);
        pos_ += n;
        return out;
    }

    /** A count that will be used as a loop bound / reserve size:
     * bounded by the bytes that could plausibly back it. */
    std::uint64_t count()
    {
        const std::uint64_t n = u64();
        if (n > bytes_.size())
            mvp_fatal(origin_, ": snapshot count ", n,
                      " exceeds the snapshot size");
        return n;
    }

  private:
    void need(std::uint64_t n) const
    {
        if (n > bytes_.size() - pos_)
            mvp_fatal(origin_, ": truncated warm-state snapshot");
    }

    const std::string &bytes_;
    const std::string origin_;
    std::size_t pos_ = 0;
};

/// @}

/** @name Staging — the decoded-but-not-yet-published snapshot */
/// @{

struct StagedProvider
{
    std::string name;
    std::uint32_t kind = 0;
    std::vector<cme::CmeMemoEntry> cme;
    std::vector<cme::OracleMemoEntry> oracle;
};

struct StagedLoop
{
    std::string text;
    ir::LoopNest nest;
    std::vector<StagedProvider> providers;
};

struct StagedState
{
    std::vector<std::pair<std::string, std::string>> cache;
    std::vector<StagedLoop> loops;
};

/// @}

std::string
fmtG(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Token/raw-section reader over a text (v1) snapshot. Every helper
 * fatals on malformed input (callers hold a FatalScope when the bytes
 * are user input). */
class StateReader
{
  public:
    StateReader(const std::string &bytes, const std::string &origin)
        : bytes_(bytes), origin_(origin)
    {
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= bytes_.size();
    }

    std::string word()
    {
        skipSpace();
        std::size_t j = pos_;
        while (j < bytes_.size() && !isSpace(bytes_[j]))
            ++j;
        if (j == pos_)
            mvp_fatal(origin_, ": truncated warm-state snapshot");
        std::string out = bytes_.substr(pos_, j - pos_);
        pos_ = j;
        return out;
    }

    void expect(const std::string &w)
    {
        const std::string got = word();
        if (got != w)
            mvp_fatal(origin_, ": expected '", w, "', got '", got, "'");
    }

    std::int64_t int64()
    {
        const std::string w = word();
        char *end = nullptr;
        const std::int64_t v = std::strtoll(w.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            mvp_fatal(origin_, ": expected an integer, got '", w, "'");
        return v;
    }

    double dbl()
    {
        const std::string w = word();
        char *end = nullptr;
        const double v = std::strtod(w.c_str(), &end);
        if (end == nullptr || *end != '\0')
            mvp_fatal(origin_, ": expected a number, got '", w, "'");
        return v;
    }

    /** Raw section: one '\n' terminates the header line, then exactly
     * @p n bytes, then one '\n'. */
    std::string raw(std::int64_t n)
    {
        while (pos_ < bytes_.size() && bytes_[pos_] != '\n')
            ++pos_;
        if (pos_ >= bytes_.size())
            mvp_fatal(origin_, ": truncated warm-state snapshot");
        ++pos_;   // the header newline
        return rawHere(n);
    }

    /** A raw section that starts at the cursor (the second and later
     * sections under one header line, e.g. a cache entry's payload
     * right after its key). */
    std::string rawHere(std::int64_t n)
    {
        if (n < 0)
            mvp_fatal(origin_, ": negative section length");
        if (pos_ + static_cast<std::size_t>(n) > bytes_.size())
            mvp_fatal(origin_, ": raw section overruns the snapshot");
        std::string out = bytes_.substr(pos_, n);
        pos_ += static_cast<std::size_t>(n);
        if (pos_ >= bytes_.size() || bytes_[pos_] != '\n')
            mvp_fatal(origin_, ": raw section missing terminator");
        ++pos_;
        return out;
    }

  private:
    static bool isSpace(char c)
    {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    }

    void skipSpace()
    {
        while (pos_ < bytes_.size() && isSpace(bytes_[pos_]))
            ++pos_;
    }

    const std::string &bytes_;
    const std::string origin_;
    std::size_t pos_ = 0;
};

/** @name Text v1 provider sections */
/// @{

void
writeCmeEntries(std::string &out,
                const std::vector<cme::CmeMemoEntry> &entries)
{
    for (const auto &e : entries) {
        out += "geom " + std::to_string(e.geom.capacityBytes) + " " +
               std::to_string(e.geom.lineBytes) + " " +
               std::to_string(e.geom.assoc) + " op " +
               std::to_string(e.op) + " set " +
               std::to_string(e.set.size());
        for (const OpId id : e.set)
            out += " " + std::to_string(id);
        out += " value " + fmtG(e.value.ratio) + " " +
               fmtG(e.value.ciHalfWidth) + "\n";
    }
}

void
writeOracleEntries(std::string &out,
                   const std::vector<cme::OracleMemoEntry> &entries)
{
    for (const auto &e : entries) {
        out += "geom " + std::to_string(e.geom.capacityBytes) + " " +
               std::to_string(e.geom.lineBytes) + " " +
               std::to_string(e.geom.assoc) + " set " +
               std::to_string(e.set.size());
        for (const OpId id : e.set)
            out += " " + std::to_string(id);
        out += " points " + std::to_string(e.points) + " misses";
        for (const std::int64_t v : e.misses)
            out += " " + std::to_string(v);
        out += " psm " + std::to_string(e.perSetMisses.size());
        for (const std::int64_t v : e.perSetMisses)
            out += " " + std::to_string(v);
        out += " tags " + std::to_string(e.tags.size());
        for (const std::int64_t v : e.tags)
            out += " " + std::to_string(v);
        out += "\n";
    }
}

std::vector<cme::CmeMemoEntry>
readCmeEntries(StateReader &in, std::int64_t count)
{
    std::vector<cme::CmeMemoEntry> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        cme::CmeMemoEntry e;
        in.expect("geom");
        e.geom.capacityBytes = in.int64();
        e.geom.lineBytes = in.int64();
        e.geom.assoc = static_cast<int>(in.int64());
        in.expect("op");
        e.op = static_cast<OpId>(in.int64());
        in.expect("set");
        const std::int64_t n = in.int64();
        for (std::int64_t j = 0; j < n; ++j)
            e.set.push_back(static_cast<OpId>(in.int64()));
        in.expect("value");
        e.value.ratio = in.dbl();
        e.value.ciHalfWidth = in.dbl();
        out.push_back(std::move(e));
    }
    return out;
}

std::vector<cme::OracleMemoEntry>
readOracleEntries(StateReader &in, std::int64_t count)
{
    std::vector<cme::OracleMemoEntry> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        cme::OracleMemoEntry e;
        in.expect("geom");
        e.geom.capacityBytes = in.int64();
        e.geom.lineBytes = in.int64();
        e.geom.assoc = static_cast<int>(in.int64());
        in.expect("set");
        const std::int64_t n = in.int64();
        for (std::int64_t j = 0; j < n; ++j)
            e.set.push_back(static_cast<OpId>(in.int64()));
        in.expect("points");
        e.points = in.int64();
        in.expect("misses");
        for (std::int64_t j = 0; j < n; ++j)
            e.misses.push_back(in.int64());
        in.expect("psm");
        const std::int64_t npsm = in.int64();
        for (std::int64_t j = 0; j < npsm; ++j)
            e.perSetMisses.push_back(in.int64());
        in.expect("tags");
        const std::int64_t ntags = in.int64();
        for (std::int64_t j = 0; j < ntags; ++j)
            e.tags.push_back(in.int64());
        out.push_back(std::move(e));
    }
    return out;
}

/// @}

/** @name Binary v2 provider entry records */
/// @{

void
putCmeEntries(std::string &out,
              const std::vector<cme::CmeMemoEntry> &entries)
{
    putU64(out, entries.size());
    for (const auto &e : entries) {
        putI64(out, e.geom.capacityBytes);
        putI64(out, e.geom.lineBytes);
        putU32(out, static_cast<std::uint32_t>(e.geom.assoc));
        putU32(out, static_cast<std::uint32_t>(e.op));
        putU64(out, e.set.size());
        for (const OpId id : e.set)
            putU32(out, static_cast<std::uint32_t>(id));
        putF64(out, e.value.ratio);
        putF64(out, e.value.ciHalfWidth);
    }
}

void
putOracleEntries(std::string &out,
                 const std::vector<cme::OracleMemoEntry> &entries)
{
    putU64(out, entries.size());
    for (const auto &e : entries) {
        putI64(out, e.geom.capacityBytes);
        putI64(out, e.geom.lineBytes);
        putU32(out, static_cast<std::uint32_t>(e.geom.assoc));
        putU64(out, e.set.size());
        for (const OpId id : e.set)
            putU32(out, static_cast<std::uint32_t>(id));
        putI64(out, e.points);
        for (const std::int64_t v : e.misses)
            putI64(out, v);
        putU64(out, e.perSetMisses.size());
        for (const std::int64_t v : e.perSetMisses)
            putI64(out, v);
        putU64(out, e.tags.size());
        for (const std::int64_t v : e.tags)
            putI64(out, v);
    }
}

std::vector<cme::CmeMemoEntry>
takeCmeEntries(BinReader &in)
{
    const std::uint64_t count = in.count();
    std::vector<cme::CmeMemoEntry> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        cme::CmeMemoEntry e;
        e.geom.capacityBytes = in.i64();
        e.geom.lineBytes = in.i64();
        e.geom.assoc = static_cast<int>(in.u32());
        e.op = static_cast<OpId>(in.u32());
        const std::uint64_t n = in.count();
        e.set.reserve(n);
        for (std::uint64_t j = 0; j < n; ++j)
            e.set.push_back(static_cast<OpId>(in.u32()));
        e.value.ratio = in.f64();
        e.value.ciHalfWidth = in.f64();
        out.push_back(std::move(e));
    }
    return out;
}

std::vector<cme::OracleMemoEntry>
takeOracleEntries(BinReader &in)
{
    const std::uint64_t count = in.count();
    std::vector<cme::OracleMemoEntry> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        cme::OracleMemoEntry e;
        e.geom.capacityBytes = in.i64();
        e.geom.lineBytes = in.i64();
        e.geom.assoc = static_cast<int>(in.u32());
        const std::uint64_t n = in.count();
        e.set.reserve(n);
        for (std::uint64_t j = 0; j < n; ++j)
            e.set.push_back(static_cast<OpId>(in.u32()));
        e.points = in.i64();
        e.misses.reserve(n);
        for (std::uint64_t j = 0; j < n; ++j)
            e.misses.push_back(in.i64());
        const std::uint64_t npsm = in.count();
        e.perSetMisses.reserve(npsm);
        for (std::uint64_t j = 0; j < npsm; ++j)
            e.perSetMisses.push_back(in.i64());
        const std::uint64_t ntags = in.count();
        e.tags.reserve(ntags);
        for (std::uint64_t j = 0; j < ntags; ++j)
            e.tags.push_back(in.i64());
        out.push_back(std::move(e));
    }
    return out;
}

/// @}

} // namespace

std::string
SchedService::encodeStateTextV1() const
{
    std::string out;
    out += "mvp-warm-state " + std::to_string(WARM_STATE_VERSION) +
           "\n";

    // Schedule cache, sorted by key for byte-stable snapshots.
    std::vector<std::pair<std::string, std::string>> entries;
    cache_.forEach([&](const std::string &key,
                       const std::string &payload) {
        entries.emplace_back(key, payload);
    });
    std::sort(entries.begin(), entries.end());
    out += "cache " + std::to_string(entries.size()) + "\n";
    for (const auto &[key, payload] : entries) {
        out += "entry " + std::to_string(key.size()) + " " +
               std::to_string(payload.size()) + "\n";
        out += key + "\n";
        out += payload + "\n";
    }

    // Loop contexts (std::map — already sorted by canonical text).
    std::lock_guard<std::mutex> ctx_lock(ctx_mu_);
    out += "loops " + std::to_string(contexts_.size()) + "\n";
    for (const auto &[loopKey, lc] : contexts_) {
        out += "loop " + std::to_string(loopKey.size()) + "\n";
        out += loopKey + "\n";
        std::lock_guard<std::mutex> lock(lc->mu);
        // Only the concrete memoising analyses persist; wrappers
        // (hybrid) rewarm from scratch.
        std::vector<std::string> sections;
        for (const auto &[name, analysis] : lc->bound) {
            if (const auto *cme_a =
                    dynamic_cast<const cme::CmeAnalysis *>(
                        analysis.get())) {
                const auto memo = cme_a->exportMemo();
                std::string sec = "provider " + name + " cme " +
                                  std::to_string(memo.size()) + "\n";
                writeCmeEntries(sec, memo);
                sections.push_back(std::move(sec));
            } else if (const auto *oracle =
                           dynamic_cast<const cme::CacheOracle *>(
                               analysis.get())) {
                const auto memo = oracle->exportMemo();
                std::string sec = "provider " + name + " oracle " +
                                  std::to_string(memo.size()) + "\n";
                writeOracleEntries(sec, memo);
                sections.push_back(std::move(sec));
            }
        }
        out += "providers " + std::to_string(sections.size()) + "\n";
        for (const std::string &sec : sections)
            out += sec;
    }
    out += "end\n";
    return out;
}

std::string
SchedService::encodeState() const
{
    // Section bodies first; the header's table needs their sizes.
    std::string cache_body;
    {
        std::vector<std::pair<std::string, std::string>> entries;
        cache_.forEach([&](const std::string &key,
                           const std::string &payload) {
            entries.emplace_back(key, payload);
        });
        std::sort(entries.begin(), entries.end());
        std::size_t want = 8;
        for (const auto &[key, payload] : entries)
            want += 16 + key.size() + payload.size();
        cache_body.reserve(want);
        putU64(cache_body, entries.size());
        for (const auto &[key, payload] : entries) {
            putBlob(cache_body, key);
            putBlob(cache_body, payload);
        }
    }

    std::string loops_body;
    {
        std::lock_guard<std::mutex> ctx_lock(ctx_mu_);
        putU64(loops_body, contexts_.size());
        for (const auto &[loopKey, lc] : contexts_) {
            putBlob(loops_body, loopKey);
            std::lock_guard<std::mutex> lock(lc->mu);
            // Only the concrete memoising analyses persist; wrappers
            // (hybrid) rewarm from scratch.
            std::vector<std::pair<std::string, std::string>> sections;
            for (const auto &[name, analysis] : lc->bound) {
                if (const auto *cme_a =
                        dynamic_cast<const cme::CmeAnalysis *>(
                            analysis.get())) {
                    std::string sec;
                    putU32(sec, KIND_CME);
                    putBlob(sec, name);
                    putCmeEntries(sec, cme_a->exportMemo());
                    sections.emplace_back(name, std::move(sec));
                } else if (const auto *oracle =
                               dynamic_cast<const cme::CacheOracle *>(
                                   analysis.get())) {
                    std::string sec;
                    putU32(sec, KIND_ORACLE);
                    putBlob(sec, name);
                    putOracleEntries(sec, oracle->exportMemo());
                    sections.emplace_back(name, std::move(sec));
                }
            }
            putU64(loops_body, sections.size());
            for (const auto &[name, sec] : sections)
                loops_body += sec;
        }
    }

    std::string out;
    out.reserve(8 + 8 + 2 * 12 + cache_body.size() +
                loops_body.size());
    out.append(WARM_STATE_MAGIC, sizeof WARM_STATE_MAGIC);
    putU32(out, WARM_STATE_VERSION_BINARY);
    putU32(out, 2);   // section count
    putU32(out, TAG_CACHE);
    putU64(out, cache_body.size());
    putU32(out, TAG_LOOPS);
    putU64(out, loops_body.size());
    out += cache_body;
    out += loops_body;
    return out;
}

void
SchedService::decodeState(const std::string &bytes,
                          const std::string &origin)
{
    StagedState staged;

    if (bytes.size() >= sizeof WARM_STATE_MAGIC &&
        std::memcmp(bytes.data(), WARM_STATE_MAGIC,
                    sizeof WARM_STATE_MAGIC) == 0) {
        // Binary v2: stage the whole snapshot, publish only at the
        // end — a bad byte anywhere rejects everything.
        BinReader in(bytes, origin);
        char magic[sizeof WARM_STATE_MAGIC];
        in.bytes(magic, sizeof magic);
        const std::uint32_t version = in.u32();
        if (version !=
            static_cast<std::uint32_t>(WARM_STATE_VERSION_BINARY))
            mvp_fatal(origin, ": warm-state version ", version,
                      " (this build reads ", WARM_STATE_VERSION_BINARY,
                      "); start cold instead");
        const std::uint32_t nsections = in.u32();
        std::vector<std::pair<std::uint32_t, std::uint64_t>> table;
        table.reserve(nsections);
        for (std::uint32_t s = 0; s < nsections; ++s) {
            const std::uint32_t tag = in.u32();
            const std::uint64_t len = in.u64();
            table.emplace_back(tag, len);
        }
        for (const auto &[tag, len] : table) {
            const std::size_t body_end = in.pos() + len;
            if (body_end > bytes.size())
                mvp_fatal(origin,
                          ": section overruns the snapshot");
            if (tag == TAG_CACHE) {
                const std::uint64_t count = in.count();
                staged.cache.reserve(count);
                for (std::uint64_t i = 0; i < count; ++i) {
                    std::string key = in.blob();
                    std::string payload = in.blob();
                    staged.cache.emplace_back(std::move(key),
                                              std::move(payload));
                }
            } else if (tag == TAG_LOOPS) {
                const std::uint64_t count = in.count();
                staged.loops.reserve(count);
                for (std::uint64_t i = 0; i < count; ++i) {
                    StagedLoop loop;
                    loop.text = in.blob();
                    loop.nest = text::parseLoop(loop.text, origin);
                    const std::uint64_t nprov = in.count();
                    loop.providers.reserve(nprov);
                    for (std::uint64_t p = 0; p < nprov; ++p) {
                        StagedProvider prov;
                        prov.kind = in.u32();
                        prov.name = in.blob();
                        if (prov.kind == KIND_CME)
                            prov.cme = takeCmeEntries(in);
                        else if (prov.kind == KIND_ORACLE)
                            prov.oracle = takeOracleEntries(in);
                        else
                            mvp_fatal(origin,
                                      ": unknown provider kind ",
                                      prov.kind,
                                      " (known: cme=1, oracle=2)");
                        loop.providers.push_back(std::move(prov));
                    }
                    staged.loops.push_back(std::move(loop));
                }
            } else {
                mvp_fatal(origin, ": unknown section tag ", tag,
                          " (known: cache=1, loops=2)");
            }
            if (in.pos() != body_end)
                mvp_fatal(origin, ": section body size mismatch ",
                          "(table says ", len, " bytes)");
        }
        if (!in.atEnd())
            mvp_fatal(origin,
                      ": trailing bytes after the last section");
    } else {
        // Text v1 (legacy): same staging discipline so a malformed
        // tail can't leave a half-published load behind.
        StateReader in(bytes, origin);
        in.expect("mvp-warm-state");
        const std::int64_t version = in.int64();
        if (version != WARM_STATE_VERSION)
            mvp_fatal(origin, ": warm-state version ", version,
                      " (this build reads ", WARM_STATE_VERSION,
                      " as text, ", WARM_STATE_VERSION_BINARY,
                      " as binary); start cold instead");

        in.expect("cache");
        const std::int64_t n_cache = in.int64();
        staged.cache.reserve(static_cast<std::size_t>(n_cache));
        for (std::int64_t i = 0; i < n_cache; ++i) {
            in.expect("entry");
            const std::int64_t key_bytes = in.int64();
            const std::int64_t payload_bytes = in.int64();
            std::string key = in.raw(key_bytes);
            std::string payload = in.rawHere(payload_bytes);
            staged.cache.emplace_back(std::move(key),
                                      std::move(payload));
        }

        in.expect("loops");
        const std::int64_t n_loops = in.int64();
        for (std::int64_t i = 0; i < n_loops; ++i) {
            in.expect("loop");
            const std::int64_t text_bytes = in.int64();
            StagedLoop loop;
            loop.text = in.raw(text_bytes);
            loop.nest = text::parseLoop(loop.text, origin);
            in.expect("providers");
            const std::int64_t n_providers = in.int64();
            for (std::int64_t p = 0; p < n_providers; ++p) {
                in.expect("provider");
                StagedProvider prov;
                prov.name = in.word();
                const std::string kind = in.word();
                const std::int64_t count = in.int64();
                if (kind == "cme") {
                    prov.kind = KIND_CME;
                    prov.cme = readCmeEntries(in, count);
                } else if (kind == "oracle") {
                    prov.kind = KIND_ORACLE;
                    prov.oracle = readOracleEntries(in, count);
                } else {
                    mvp_fatal(origin, ": unknown provider kind '",
                              kind, "' (known: cme, oracle)");
                }
                loop.providers.push_back(std::move(prov));
            }
            staged.loops.push_back(std::move(loop));
        }
        in.expect("end");
    }

    // Publish. Everything below is keep-the-winner, so loading into a
    // non-empty service merges instead of clobbering.
    for (auto &[key, payload] : staged.cache)
        cache_.tryInsert(key, std::move(payload));
    for (StagedLoop &loop : staged.loops) {
        LoopContext &lc =
            contextFor(text::printLoop(loop.nest), loop.nest);
        for (StagedProvider &prov : loop.providers) {
            if (prov.kind == KIND_CME) {
                auto *analysis = dynamic_cast<cme::CmeAnalysis *>(
                    &lc.localityFor(prov.name));
                if (analysis == nullptr)
                    mvp_fatal(origin, ": provider '", prov.name,
                              "' no longer binds a CME analysis");
                analysis->importMemo(prov.cme);
            } else {
                auto *analysis = dynamic_cast<cme::CacheOracle *>(
                    &lc.localityFor(prov.name));
                if (analysis == nullptr)
                    mvp_fatal(origin, ": provider '", prov.name,
                              "' no longer binds a cache oracle");
                analysis->importMemo(prov.oracle);
            }
        }
    }
}

bool
SchedService::saveStateFile(const std::string &path,
                            std::string *error) const
{
    const std::string bytes = encodeState();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error != nullptr)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
SchedService::loadStateFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();

    FatalScope guard;
    try {
        decodeState(bytes, path);
    } catch (const FatalError &e) {
        if (error != nullptr)
            *error = e.what();
        return false;
    }
    return true;
}

} // namespace mvp::svc
