/**
 * @file
 * Tests for the Cache Miss Equations framework: reuse analysis, the
 * sampling solver, and agreement between the solver and the exact
 * trace-driven oracle (the property the paper relies on when it lets
 * CME guide cluster selection).
 */

#include <gtest/gtest.h>

#include "cme/oracle.hh"
#include "cme/reuse.hh"
#include "cme/solver.hh"
#include "ir/builder.hh"

namespace mvp::cme
{
namespace
{

using namespace mvp::ir;

const CacheGeom GEOM_4K{4096, 32, 1};
const CacheGeom GEOM_2K{2048, 32, 1};
const CacheGeom GEOM_8K{8192, 32, 1};

/** Unit-stride streaming loop over one array. */
LoopNest
streamingLoop(std::int64_t n = 512)
{
    LoopNestBuilder b("stream");
    b.loop("r", 0, 8);
    b.loop("i", 0, n);
    const auto A = b.arrayAt("A", {n}, 0x10000);
    const auto l = b.load(A, {affineVar(1)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()});
    return b.build();
}

/** The motivating example's ping-pong pair: same set in every config. */
LoopNest
pingPongLoop()
{
    LoopNestBuilder b("pingpong");
    b.loop("r", 0, 8);
    b.loop("i", 0, 512);
    const auto B = b.arrayAt("B", {512}, 0x10000);
    const auto C = b.arrayAt("C", {512}, 0x10000 + 0x2000);   // 8KB apart
    const auto lb = b.load(B, {affineVar(1)}, "lb");
    const auto lc = b.load(C, {affineVar(1)}, "lc");
    b.op(Opcode::FMul, {use(lb), use(lc)});
    return b.build();
}

/** Small loop so the solver runs in exhaustive mode. */
LoopNest
tinyLoop()
{
    LoopNestBuilder b("tiny");
    b.loop("i", 0, 64);
    const auto A = b.arrayAt("A", {64}, 0x10000);
    const auto l = b.load(A, {affineVar(0)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()});
    return b.build();
}

// ---------------------------------------------------------------- reuse

TEST(Reuse, InnerStride)
{
    const auto nest = streamingLoop();
    const ReuseAnalysis ra(nest);
    EXPECT_EQ(ra.innerStrideBytes(0), 4);
    EXPECT_EQ(ra.selfReuse(0, 32), ReuseKind::SelfSpatial);
}

TEST(Reuse, ColumnWalkHasNoSpatialReuse)
{
    LoopNestBuilder b("col");
    b.loop("c", 0, 4);
    b.loop("l", 0, 16);
    const auto A = b.arrayAt("A", {16, 64}, 0x1000);
    const auto l = b.load(A, {affineVar(1), affineVar(0)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()});
    const auto nest = b.build();
    const ReuseAnalysis ra(nest);
    EXPECT_EQ(ra.innerStrideBytes(l), 64 * 4);
    EXPECT_EQ(ra.selfReuse(l, 32), ReuseKind::None);
}

TEST(Reuse, TemporalWhenInnerInvariant)
{
    LoopNestBuilder b("inv");
    b.loop("i", 0, 4);
    b.loop("j", 0, 16);
    const auto A = b.arrayAt("A", {4}, 0x1000);
    const auto l = b.load(A, {affineVar(0)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()});
    const auto nest = b.build();
    const ReuseAnalysis ra(nest);
    EXPECT_EQ(ra.innerStrideBytes(l), 0);
    EXPECT_EQ(ra.selfReuse(l, 32), ReuseKind::SelfTemporal);
}

TEST(Reuse, GroupTemporalPair)
{
    LoopNestBuilder b("grp");
    b.loop("i", 0, 4);
    b.loop("j", 1, 33);
    const auto A = b.arrayAt("A", {4, 34}, 0x1000);
    const auto lead = b.load(A, {affineVar(0), affineVar(1)}, "lead");
    const auto trail =
        b.load(A, {affineVar(0), affineVar(1, 1, -1)}, "trail");
    b.op(Opcode::FAdd, {use(lead), use(trail)});
    const auto nest = b.build();
    const ReuseAnalysis ra(nest);
    ASSERT_TRUE(ra.byteDelta(lead, trail).has_value());
    EXPECT_EQ(*ra.byteDelta(lead, trail), 4);
    const auto pairs = ra.groupPairs({lead, trail}, 32);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0].kind, ReuseKind::GroupTemporal);
    EXPECT_EQ(pairs[0].from, lead);    // lead touches the element first
    EXPECT_EQ(pairs[0].to, trail);
    EXPECT_EQ(pairs[0].distance, 1);
}

TEST(Reuse, NonUniformPairHasNoByteDelta)
{
    LoopNestBuilder b("nug");
    b.loop("j", 0, 16);
    const auto A = b.arrayAt("A", {64}, 0x1000);
    const auto a = b.load(A, {affineVar(0)}, "a");
    const auto c = b.load(A, {affineVar(0, 2, 0)}, "c");
    b.op(Opcode::FAdd, {use(a), use(c)});
    const auto nest = b.build();
    const ReuseAnalysis ra(nest);
    EXPECT_FALSE(ra.byteDelta(a, c).has_value());
}

// --------------------------------------------------------------- solver

TEST(CmeSolver, StreamingMissRatioIsOneEighth)
{
    // An 8KB array swept through a 4KB cache: every line is evicted
    // before its next sweep, so with 8 elements per 32B line the miss
    // ratio is 1/8.
    const auto nest = streamingLoop(2048);
    CmeAnalysis cme(nest);
    const double ratio = cme.missRatio({}, 0, GEOM_4K);
    EXPECT_NEAR(ratio, 0.125, 0.05);
}

TEST(CmeSolver, ResidentArrayOnlyColdMisses)
{
    // A 2KB array is resident in a 4KB cache: after the first of the 8
    // outer sweeps every access hits, so the ratio is ~ 64/4096.
    const auto nest = streamingLoop(512);
    CmeAnalysis cme(nest);
    EXPECT_LT(cme.missRatio({}, 0, GEOM_4K), 0.07);
}

TEST(CmeSolver, TemporalReuseHitsAlways)
{
    LoopNestBuilder b("inv");
    b.loop("i", 0, 8);
    b.loop("j", 0, 64);
    const auto A = b.arrayAt("A", {8}, 0x1000);
    const auto l = b.load(A, {affineVar(0)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()});
    const auto nest = b.build();
    CmeAnalysis cme(nest);
    // Only cold misses on a handful of sampled boundary points.
    EXPECT_LT(cme.missRatio({}, l, GEOM_4K), 0.05);
}

TEST(CmeSolver, PingPongPairAlwaysMissesTogether)
{
    const auto nest = pingPongLoop();
    CmeAnalysis cme(nest);
    // Together in one 4KB cache: the 8KB-apart arrays share every set.
    EXPECT_GT(cme.missRatio({0, 1}, 0, GEOM_4K), 0.9);
    EXPECT_GT(cme.missRatio({0, 1}, 1, GEOM_4K), 0.9);
    // Separated (each alone), both stream with spatial reuse.
    EXPECT_LT(cme.missRatio({}, 0, GEOM_4K), 0.2);
    EXPECT_LT(cme.missRatio({}, 1, GEOM_4K), 0.2);
}

TEST(CmeSolver, MissesPerIterationIsSumOfRatios)
{
    const auto nest = pingPongLoop();
    CmeAnalysis cme(nest);
    const double together = cme.missesPerIteration({0, 1}, GEOM_4K);
    EXPECT_GT(together, 1.8);   // both references miss nearly always
    const double split = cme.missesPerIteration({0}, GEOM_4K) +
                         cme.missesPerIteration({1}, GEOM_4K);
    EXPECT_LT(split, 0.4);      // ~ 0.125 each
}

TEST(CmeSolver, EmptySetHasNoMisses)
{
    const auto nest = tinyLoop();
    CmeAnalysis cme(nest);
    EXPECT_DOUBLE_EQ(cme.missesPerIteration({}, GEOM_4K), 0.0);
}

TEST(CmeSolver, ExhaustiveModeMatchesOracleExactly)
{
    // 64 points < maxSamples: the solver evaluates every point, so it
    // must agree with the oracle to the last digit.
    const auto nest = tinyLoop();
    CmeAnalysis cme(nest);
    CacheOracle oracle(nest);
    EXPECT_DOUBLE_EQ(cme.missRatio({}, 0, GEOM_4K),
                     oracle.missRatio({}, 0, GEOM_4K));
}

TEST(CmeSolver, DeterministicAcrossInstances)
{
    const auto nest = pingPongLoop();
    CmeAnalysis a(nest);
    CmeAnalysis b(nest);
    EXPECT_DOUBLE_EQ(a.missRatio({0, 1}, 0, GEOM_2K),
                     b.missRatio({0, 1}, 0, GEOM_2K));
}

TEST(CmeSolver, MemoisationCountsQueries)
{
    const auto nest = pingPongLoop();
    CmeAnalysis cme(nest);
    (void)cme.missRatio({0, 1}, 0, GEOM_4K);
    const auto solved = cme.queriesSolved();
    (void)cme.missRatio({0, 1}, 0, GEOM_4K);   // memoised
    EXPECT_EQ(cme.queriesSolved(), solved);
    (void)cme.missRatio({0, 1}, 0, GEOM_2K);   // new geometry
    EXPECT_GT(cme.queriesSolved(), solved);
}

TEST(CmeSolver, AssociativityRemovesPingPong)
{
    const auto nest = pingPongLoop();
    CmeAnalysis cme(nest);
    const CacheGeom two_way{4096, 32, 2};
    // A 2-way cache holds both streams: only cold/capacity misses.
    EXPECT_LT(cme.missRatio({0, 1}, 0, two_way), 0.3);
}

// --------------------------------------------- solver vs oracle property

struct GeomCase
{
    const char *name;
    CacheGeom geom;
};

class SolverVsOracle : public ::testing::TestWithParam<GeomCase>
{
};

TEST_P(SolverVsOracle, AgreesWithinTolerance)
{
    // Property: on a mixed loop (streaming + stencil + conflicts), the
    // sampled CME estimate tracks the exact trace simulation within the
    // CI target plus sampling noise.
    LoopNestBuilder b("mixed");
    b.loop("i", 1, 13);
    b.loop("j", 1, 63);
    const auto A = b.arrayAt("A", {14, 64}, 0x10000);
    const auto B = b.arrayAt("B", {14, 64}, 0x10000 + 0x2000);
    const auto a0 = b.load(A, {affineVar(0), affineVar(1)}, "a0");
    const auto a1 = b.load(A, {affineVar(0), affineVar(1, 1, -1)}, "a1");
    const auto bb = b.load(B, {affineVar(0), affineVar(1)}, "b");
    const auto s = b.op(Opcode::FAdd, {use(a0), use(a1)});
    const auto m = b.op(Opcode::FMul, {use(s), use(bb)});
    b.store(B, {affineVar(0), affineVar(1)}, use(m), "sb");
    const auto nest = b.build();

    CmeParams params;
    params.maxSamples = 480;
    params.ciTarget = 0.03;
    CmeAnalysis cme(nest, params);
    CacheOracle oracle(nest);

    const auto &geom = GetParam().geom;
    const std::vector<OpId> set = {a0, a1, bb, 5};
    for (OpId op : set) {
        const double est = cme.missRatio(set, op, geom);
        const double exact = oracle.missRatio(set, op, geom);
        EXPECT_NEAR(est, exact, 0.12)
            << "op " << op << " geom " << GetParam().name;
    }
    EXPECT_NEAR(cme.missesPerIteration(set, geom),
                oracle.missesPerIteration(set, geom), 0.3)
        << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SolverVsOracle,
    ::testing::Values(GeomCase{"2k_dm", GEOM_2K},
                      GeomCase{"4k_dm", GEOM_4K},
                      GeomCase{"8k_dm", GEOM_8K},
                      GeomCase{"4k_2way", CacheGeom{4096, 32, 2}},
                      GeomCase{"2k_64b", CacheGeom{2048, 64, 1}}),
    [](const auto &info) { return info.param.name; });

// --------------------------------------------------------------- oracle

TEST(Oracle, ExactStreamingCounts)
{
    // 512 elements, 8 per line, 8 outer reps with cache large enough for
    // the whole array after the first sweep? 512*4 = 2KB exactly fills
    // the 2KB cache -> after the first rep everything hits.
    const auto nest = streamingLoop(512);
    CacheOracle oracle(nest);
    const auto counts = oracle.missCounts({0}, GEOM_2K);
    EXPECT_EQ(counts.at(0), 64);   // one cold miss per line, then resident
}

TEST(Oracle, ConflictEviction)
{
    const auto nest = pingPongLoop();
    CacheOracle oracle(nest);
    const auto counts = oracle.missCounts({0, 1}, GEOM_4K);
    // Both references evict each other every iteration.
    EXPECT_EQ(counts.at(0), 8 * 512);
    EXPECT_EQ(counts.at(1), 8 * 512);
}

TEST(Oracle, MissRatioAddsOpToSet)
{
    const auto nest = pingPongLoop();
    CacheOracle oracle(nest);
    // Asking for op 0's ratio "in the set {1}" must include op 0 itself.
    EXPECT_GT(oracle.missRatio({1}, 0, GEOM_4K), 0.9);
}

} // namespace
} // namespace mvp::cme
