/**
 * @file
 * Operation opcodes and the functional-unit classes of the
 * multiVLIWprocessor (integer, floating-point, memory).
 */

#ifndef MVP_IR_OPCODE_HH
#define MVP_IR_OPCODE_HH

#include <string_view>

namespace mvp::ir
{

/**
 * Functional-unit classes. Every cluster owns a fixed number of units of
 * each class (Table 1 of the paper).
 */
enum class FuType { Int = 0, Fp = 1, Mem = 2 };

/** Number of functional-unit classes. */
constexpr int NUM_FU_TYPES = 3;

/** Printable name of a functional-unit class. */
std::string_view fuTypeName(FuType type);

/**
 * Operation opcodes.
 *
 * The ISA is deliberately small: the modulo scheduler only cares about an
 * operation's FU class, its latency and its dependences. Address
 * arithmetic of memory operations is folded into their affine reference
 * (the ICTINEO front-end the paper uses does the same before scheduling);
 * explicit IAdd/IMul operations model whatever integer work remains.
 */
enum class Opcode
{
    IAdd,   ///< integer add/sub/logical
    ISub,   ///< integer subtract
    IMul,   ///< integer multiply
    IDiv,   ///< integer divide
    Copy,   ///< register move (executes on an integer unit)
    FAdd,   ///< floating-point add
    FSub,   ///< floating-point subtract
    FMul,   ///< floating-point multiply
    FDiv,   ///< floating-point divide
    FMadd,  ///< fused multiply-add (single FP operation)
    Load,   ///< memory load (has an affine reference)
    Store,  ///< memory store (has an affine reference)
};

/** Printable mnemonic. */
std::string_view opcodeName(Opcode op);

/** FU class executing the opcode. */
FuType fuTypeOf(Opcode op);

/** True for Load and Store. */
bool isMemory(Opcode op);

/** True for Load. */
bool isLoad(Opcode op);

/** True for Store. */
bool isStore(Opcode op);

/**
 * True when the operation defines a register value consumers can read
 * (everything except Store).
 */
bool producesValue(Opcode op);

} // namespace mvp::ir

#endif // MVP_IR_OPCODE_HH
