/**
 * @file
 * Tests for the distributed memory system: hit/miss timing per the §2.2
 * latency formula, MSI coherence transitions, MSHR merging and full-MSHR
 * stalls, memory-bus arbitration and coherence traffic.
 */

#include <gtest/gtest.h>

#include "cache/memsys.hh"
#include "machine/presets.hh"

namespace mvp::cache
{
namespace
{

MachineConfig
twoClusterUnbounded()
{
    auto m = withUnboundedBuses(makeTwoCluster(), 1, 1);
    return m;
}

// ----------------------------------------------------------- basic timing

TEST(MemSys, ColdMissThenHit)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    // Miss: LAT_cache + LAT_bus + LAT_mainmemory = 2 + 1 + 10.
    const auto miss = sys.access(0, 0x1000, false, 100);
    EXPECT_FALSE(miss.localHit);
    EXPECT_EQ(miss.completion, 100 + 2 + 1 + 10);
    EXPECT_EQ(miss.issueStall, 0);
    // Second access to the same line: local hit at LAT_cache.
    const auto hit = sys.access(0, 0x101c, false, 200);
    EXPECT_TRUE(hit.localHit);
    EXPECT_EQ(hit.completion, 200 + 2);
    EXPECT_EQ(sys.stats().value("local_hits"), 1);
    EXPECT_EQ(sys.stats().value("local_misses"), 1);
    EXPECT_EQ(sys.stats().value("memory_fills"), 1);
}

TEST(MemSys, RemoteCacheHitIsFasterThanMemory)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    (void)sys.access(0, 0x1000, false, 0);
    // Cluster 1 misses locally but finds the line in cluster 0:
    // LAT_cache + bus + remote LAT_cache.
    const auto remote = sys.access(1, 0x1000, false, 100);
    EXPECT_TRUE(remote.remoteHit);
    EXPECT_EQ(remote.completion, 100 + 2 + 1 + 2);
    EXPECT_LT(remote.completion, 100 + m.missLatency());
    EXPECT_EQ(sys.stats().value("remote_hits"), 1);
}

TEST(MemSys, DifferentLinesDifferentSets)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    (void)sys.access(0, 0x1000, false, 0);
    const auto other = sys.access(0, 0x1020, false, 100);   // next line
    EXPECT_FALSE(other.localHit);
}

// ------------------------------------------------------------- coherence

TEST(MemSys, MsiStates)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Invalid);
    (void)sys.access(0, 0x1000, false, 0);
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Shared);
    (void)sys.access(0, 0x1000, true, 100);
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Modified);
}

TEST(MemSys, StoreInvalidatesRemoteCopies)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    (void)sys.access(0, 0x1000, false, 0);
    (void)sys.access(1, 0x1000, false, 50);
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Shared);
    EXPECT_EQ(sys.probe(1, 0x1000), LineState::Shared);
    // Cluster 1 writes: cluster 0's copy must be invalidated.
    (void)sys.access(1, 0x1000, true, 100);
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Invalid);
    EXPECT_EQ(sys.probe(1, 0x1000), LineState::Modified);
    EXPECT_GE(sys.stats().value("invalidations"), 1);
}

TEST(MemSys, UpgradeOnSharedStorePaysBusTransaction)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    (void)sys.access(0, 0x1000, false, 0);
    const auto up = sys.access(0, 0x1000, true, 100);
    // Upgrade: local tag check + invalidation transaction on the bus.
    EXPECT_TRUE(up.localHit);
    EXPECT_EQ(up.completion, 100 + 2 + 1);
    EXPECT_EQ(sys.stats().value("upgrades"), 1);
}

TEST(MemSys, DirtyRemoteLineIsSupplied)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    (void)sys.access(0, 0x1000, true, 0);   // cluster 0 owns it dirty
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Modified);
    const auto r = sys.access(1, 0x1000, false, 100);
    EXPECT_TRUE(r.remoteHit);
    EXPECT_EQ(sys.stats().value("dirty_supplies"), 1);
    // Supplier downgrades to Shared.
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Shared);
    EXPECT_EQ(sys.probe(1, 0x1000), LineState::Shared);
}

TEST(MemSys, ModifiedVictimWritesBack)
{
    auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    (void)sys.access(0, 0x1000, true, 0);
    // Same set, different line (4KB per-cluster cache).
    (void)sys.access(0, 0x1000 + 4096, false, 100);
    EXPECT_EQ(sys.stats().value("writebacks"), 1);
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Invalid);
}

// ----------------------------------------------------------------- MSHR

TEST(MemSys, InFlightMergeCompletesWithTheFill)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    const auto first = sys.access(0, 0x1000, false, 0);
    // Second access to the same line while the fill is in flight.
    const auto merged = sys.access(0, 0x1008, false, 2);
    EXPECT_TRUE(merged.mergedInFlight);
    EXPECT_EQ(merged.completion, first.completion);
    EXPECT_EQ(sys.stats().value("mshr_merges"), 1);
    // Only one memory fill was issued.
    EXPECT_EQ(sys.stats().value("memory_fills"), 1);
}

TEST(MemSys, FullMshrStallsAtIssue)
{
    auto m = twoClusterUnbounded();
    m.mshrEntries = 2;
    MemorySystem sys(m);
    // Three distinct-line misses at the same cycle: the third has no
    // MSHR entry until one of the first two completes.
    const auto a = sys.access(0, 0x0000, false, 0);
    (void)sys.access(0, 0x1000, false, 0);
    const auto c = sys.access(0, 0x2000, false, 0);
    EXPECT_GT(c.issueStall, 0);
    EXPECT_GE(c.issueStall, a.completion - 0);
    EXPECT_GT(sys.stats().value("mshr_full_stall_cycles"), 0);
}

// ------------------------------------------------------------------ bus

TEST(MemSys, SingleBusSerialisesMisses)
{
    auto m = makeTwoCluster();   // 1 memory bus @ 1 cycle
    m.unboundedMemBuses = false;
    m.nMemBuses = 1;
    m.memBusLatency = 4;
    MemorySystem sys(m);
    const auto a = sys.access(0, 0x0000, false, 0);
    const auto b = sys.access(1, 0x4000, false, 0);
    // Second request waits for the bus: completions are staggered by
    // the bus latency.
    EXPECT_EQ(a.completion, 0 + 2 + 4 + 10);
    EXPECT_EQ(b.completion, a.completion + 4);
    EXPECT_GT(sys.stats().value("bus_wait_cycles"), 0);
}

TEST(MemSys, TwoBusesRemoveTheWait)
{
    auto m = makeTwoCluster();
    m.unboundedMemBuses = false;
    m.nMemBuses = 2;
    m.memBusLatency = 4;
    MemorySystem sys(m);
    const auto a = sys.access(0, 0x0000, false, 0);
    const auto b = sys.access(1, 0x4000, false, 0);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(sys.stats().value("bus_wait_cycles"), 0);
}

TEST(MemSys, ResetClearsEverything)
{
    const auto m = twoClusterUnbounded();
    MemorySystem sys(m);
    (void)sys.access(0, 0x1000, true, 0);
    sys.reset();
    EXPECT_EQ(sys.probe(0, 0x1000), LineState::Invalid);
    EXPECT_EQ(sys.stats().value("stores"), 0);
    const auto again = sys.access(0, 0x1000, false, 0);
    EXPECT_FALSE(again.localHit);
}

TEST(MemSys, AssociativityKeepsConflictingLines)
{
    auto m = twoClusterUnbounded();
    m.cacheAssoc = 2;
    MemorySystem sys(m);
    // Two lines mapping to the same set coexist in a 2-way cache
    // (per-cluster capacity 4KB -> 64 sets of 2 ways).
    (void)sys.access(0, 0x0000, false, 0);
    (void)sys.access(0, 0x0000 + 2048, false, 10);
    const auto a = sys.access(0, 0x0000, false, 100);
    const auto b = sys.access(0, 0x0000 + 2048, false, 110);
    EXPECT_TRUE(a.localHit);
    EXPECT_TRUE(b.localHit);
}

} // namespace
} // namespace mvp::cache
