/**
 * @file
 * The result of modulo scheduling: operation placements (cluster +
 * cycle), inter-cluster register communications, and the derived static
 * quantities (II, stage count, MaxLive, NCYCLE_compute).
 */

#ifndef MVP_SCHED_SCHEDULE_HH
#define MVP_SCHED_SCHEDULE_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/sentinels.hh"

namespace mvp::sched
{

/** Placement of one operation. */
struct PlacedOp
{
    ClusterId cluster = INVALID_ID;

    /** Flat schedule cycle (stage * II + slot). */
    Cycle time = TIME_UNPLACED;

    /**
     * Effective result latency the schedule guarantees: the hit latency
     * normally, the miss latency when the RMCA threshold promoted the
     * load (binding prefetching).
     */
    Cycle outLatency = 0;

    /** True when outLatency is the cache-miss latency. */
    bool missScheduled = false;
};

/**
 * One inter-cluster register communication: the producer's value is put
 * on a register bus at xferStart (occupying it for the full bus latency)
 * and latched by the destination cluster's IRV at xferStart + latency.
 */
struct Comm
{
    OpId producer = INVALID_ID;
    ClusterId from = INVALID_ID;
    ClusterId to = INVALID_ID;

    /** Flat cycle (relative to the producer's iteration) of the OUT BUS. */
    Cycle xferStart = TIME_UNPLACED;

    /** Bus index, or BUS_UNBOUNDED when the machine has unbounded buses. */
    int bus = BUS_UNBOUNDED;
};

/**
 * A complete modulo schedule for one loop.
 */
class ModuloSchedule
{
  public:
    ModuloSchedule() = default;
    ModuloSchedule(Cycle ii, std::size_t n_ops, int n_clusters);

    /**
     * Re-initialise for a fresh II attempt, reusing the placement and
     * communication buffers (the scheduler resets one schedule across
     * II bumps instead of reallocating).
     */
    void reset(Cycle ii, std::size_t n_ops, int n_clusters);

    /** Initiation interval. */
    Cycle ii() const { return ii_; }

    /** Number of overlapped iterations (prologue/epilogue length). */
    int stageCount() const;

    /** Placement of @p op. */
    const PlacedOp &placed(OpId op) const;

    /** Mutable placement (used by the scheduler). */
    PlacedOp &placed(OpId op);

    /** All placements, indexed by OpId. */
    const std::vector<PlacedOp> &placements() const { return placed_; }

    /** Modulo slot of @p op (time mod II). */
    Cycle slot(OpId op) const { return placed(op).time % ii_; }

    /** Stage of @p op (time div II). */
    int stage(OpId op) const
    {
        return static_cast<int>(placed(op).time / ii_);
    }

    /** All register communications. */
    const std::vector<Comm> &comms() const { return comms_; }

    /** Mutable communication list (used by the scheduler). */
    std::vector<Comm> &comms() { return comms_; }

    /** Communications per kernel iteration (== comms().size()). */
    std::size_t numComms() const { return comms_.size(); }

    /** Number of clusters the schedule targets. */
    int numClusters() const { return n_clusters_; }

    /** Ops assigned to @p cluster, in OpId order. */
    std::vector<OpId> opsInCluster(ClusterId cluster) const;

    /** MaxLive per cluster (filled by computeLifetimes()). */
    const std::vector<int> &maxLive() const { return max_live_; }

    /** Set the MaxLive vector. */
    void setMaxLive(std::vector<int> ml) { max_live_ = std::move(ml); }

    /** Loads scheduled with the miss latency. */
    int missScheduledLoads() const;

    /**
     * NCYCLE_compute for one execution of the loop with @p n_iter
     * iterations: (NITER + SC - 1) * II  (§2.2).
     */
    Cycle computeCycles(std::int64_t n_iter) const;

    /**
     * Verify every static constraint against the DDG and machine:
     * dependences (with bus latency on cross-cluster register edges),
     * FU capacity per modulo slot, bus capacity and occupancy, one
     * communication per (value, destination cluster), and register
     * pressure. Returns an empty string when legal, else a diagnostic.
     */
    std::string validate(const ddg::Ddg &graph,
                         const MachineConfig &machine) const;

    /**
     * Render the modulo reservation table like Figure 3 of the paper:
     * one row per slot, one column per (cluster, FU) plus the buses,
     * entries "name(stage)".
     */
    std::string toString(const ddg::Ddg &graph,
                         const MachineConfig &machine) const;

  private:
    Cycle ii_ = 0;
    int n_clusters_ = 0;
    std::vector<PlacedOp> placed_;
    std::vector<Comm> comms_;
    std::vector<int> max_live_;
};

} // namespace mvp::sched

#endif // MVP_SCHED_SCHEDULE_HH
