/**
 * @file
 * The parallel experiment driver's determinism contract: every output —
 * suite-sweep serialisations, gap tables, the 288 golden schedule
 * fingerprints — must be byte-identical at jobs=1, 2 and 8, and the
 * shared CME analyses must answer concurrent queries with bit-identical
 * values. Also covers the driver plumbing itself (every item claimed
 * exactly once, --jobs parsing).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cme/oracle.hh"
#include "cme/solver.hh"
#include "cme/stream.hh"
#include "ddg/ddg.hh"
#include "harness/experiment.hh"
#include "harness/gapstudy.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "sched_fingerprint.hh"
#include "workloads/workloads.hh"

namespace mvp::harness
{
namespace
{

const int JOB_COUNTS[] = {1, 2, 8};

/** The full Table-1 configuration grid (every machine and scheduler,
 * the outer thresholds). */
std::vector<RunConfig>
table1Grid()
{
    std::vector<RunConfig> configs;
    for (const MachineConfig &machine :
         {makeUnified(), makeTwoCluster(), makeFourCluster()}) {
        for (const char *backend : {"baseline", "rmca"}) {
            for (double thr : {1.0, 0.0}) {
                RunConfig cfg;
                cfg.machine = machine;
                cfg.backend = backend;
                cfg.threshold = thr;
                configs.push_back(cfg);
            }
        }
    }
    return configs;
}

TEST(ParallelDriver, SuiteSweepByteIdenticalAcrossJobCounts)
{
    Workbench bench;
    const auto configs = table1Grid();
    sim::SimParams params;
    params.maxExecutions = 2;

    std::vector<std::string> reference;
    for (int jobs : JOB_COUNTS) {
        ParallelDriver driver(jobs);
        ASSERT_EQ(driver.jobs(), jobs);
        const auto results =
            runSuiteSweep(bench, configs, params, driver);
        ASSERT_EQ(results.size(), configs.size());
        if (reference.empty()) {
            for (const auto &suite : results)
                reference.push_back(formatSuiteResult(suite));
            continue;
        }
        for (std::size_t c = 0; c < configs.size(); ++c)
            EXPECT_EQ(formatSuiteResult(results[c]), reference[c])
                << "config " << c << " diverged at jobs=" << jobs;
    }
}

TEST(ParallelDriver, RunSuiteMatchesSweepAndSerialRun)
{
    Workbench bench({"tomcatv", "hydro2d"});
    RunConfig config;
    config.machine = makeFourCluster();
    config.backend = "rmca";
    config.threshold = 0.25;
    sim::SimParams params;
    params.maxExecutions = 2;

    ParallelDriver sharded(8);
    ParallelDriver serial(1);
    const std::string a =
        formatSuiteResult(runSuite(bench, config, params, sharded));
    const std::string b =
        formatSuiteResult(runSuite(bench, config, params, serial));
    const std::string c = formatSuiteResult(
        runSuiteSweep(bench, {config}, params, sharded).at(0));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
}

TEST(ParallelDriver, GapTablesByteIdenticalAcrossJobCounts)
{
    Workbench bench;
    const MachineConfig machine = makeTwoCluster();

    // Default budget: the study settles on every loop. The starved
    // budget exercises the "gap unknown" degradation path, whose
    // trigger node count must also be sharding-independent (the exact
    // backend charges pruned children deterministically).
    for (std::int64_t budget : {sched::DEFAULT_SEARCH_BUDGET,
                                std::int64_t{20000}}) {
        std::string reference;
        for (int jobs : JOB_COUNTS) {
            ParallelDriver driver(jobs);
            const auto study =
                runGapStudy(bench, machine, 0.25, budget, driver);
            ASSERT_EQ(study.rows.size(), bench.entries().size());
            const std::string table = formatGapTable(study);
            if (reference.empty())
                reference = table;
            else
                EXPECT_EQ(table, reference)
                    << "gap table diverged at jobs=" << jobs
                    << " budget=" << budget;
        }
    }
}

/**
 * The 288 golden fingerprints of tests/golden_schedules.inc, computed
 * through the driver at jobs=8: one work item per workload loop, each
 * item scheduling its loop under every machine and scheduler variant
 * with the worker's SchedContext and a loop-local CME analysis —
 * exactly the sharding pattern of a production sweep.
 */
struct GoldenEntry
{
    const char *key;
    std::uint64_t hash;
};

const GoldenEntry GOLDEN[] = {
#include "golden_schedules.inc"
};

TEST(ParallelDriver, GoldenFingerprintsThroughDriver)
{
    const auto loops = workloads::allLoops();
    std::vector<std::map<std::string, std::uint64_t>> per_item(
        loops.size());

    ParallelDriver driver(8);
    driver.run(loops.size(), [&](std::size_t i,
                                 sched::SchedContext &ctx) {
        const auto &wl = loops[i];
        cme::CmeAnalysis cme(wl.nest);
        const std::string prefix =
            wl.benchmark + "/" + std::to_string(wl.index) + "/c";
        for (int nc : {1, 2, 4}) {
            const auto machine = makeConfig(nc);
            const auto graph = ddg::Ddg::build(wl.nest, machine);
            const std::string base = prefix + std::to_string(nc);

            sched::SchedulerOptions opt;
            opt.locality = &cme;
            opt.missThreshold = 1.0;
            per_item[i][base + "/baseline"] = sched::fingerprintResult(
                sched::scheduleWithBackend("baseline", graph, machine,
                                           opt, ctx));
            opt.missThreshold = 0.25;
            per_item[i][base + "/rmca_t0.25"] = sched::fingerprintResult(
                sched::scheduleWithBackend("rmca", graph, machine, opt,
                                           ctx));
            opt.missThreshold = 0.0;
            per_item[i][base + "/rmca_t0"] = sched::fingerprintResult(
                sched::scheduleWithBackend("rmca", graph, machine, opt,
                                           ctx));
        }
    });

    std::map<std::string, std::uint64_t> fp;
    for (const auto &m : per_item)
        fp.insert(m.begin(), m.end());

    std::map<std::string, std::uint64_t> golden;
    for (const auto &e : GOLDEN)
        golden.emplace(e.key, e.hash);

    ASSERT_EQ(fp.size(), golden.size());
    for (const auto &[key, hash] : fp) {
        const auto it = golden.find(key);
        ASSERT_NE(it, golden.end()) << "no golden entry for " << key;
        EXPECT_EQ(hash, it->second)
            << "sharded schedule diverged from golden for " << key;
    }
}

/**
 * One CmeAnalysis hammered from eight workers must return bit-identical
 * ratios to a fresh serial instance — sampling seeds derive from query
 * keys, and the sharded memo keeps whichever of two racing identical
 * answers lands first.
 */
TEST(SharedCmeAnalysis, ConcurrentQueriesBitIdentical)
{
    const auto bench = workloads::makeTomcatv();
    const auto &nest = bench.loops[0];
    const auto mem = nest.memoryOps();
    const CacheGeom geoms[] = {{2048, 32, 1}, {4096, 32, 1}};

    // Serial reference: every (op, geometry) ratio plus per-prefix
    // whole-set queries, from a private instance.
    cme::CmeAnalysis serial(nest);
    std::map<std::string, double> expected;
    for (const auto &geom : geoms) {
        for (std::size_t i = 0; i < mem.size(); ++i) {
            const std::string key = std::to_string(geom.capacityBytes) +
                                    "/" + std::to_string(mem[i]);
            expected["ratio/" + key] = serial.missRatio(mem, mem[i], geom);
            const std::vector<OpId> prefix(mem.begin(),
                                           mem.begin() +
                                               static_cast<long>(i) + 1);
            expected["set/" + key] =
                serial.missesPerIteration(prefix, geom);
        }
    }

    // Shared instance, every query issued from every worker (maximum
    // contention on the memo shards), repeated to hit both the
    // fresh-compute and the memoised paths.
    cme::CmeAnalysis shared(nest);
    const int workers = 8;
    std::vector<std::map<std::string, double>> got(
        static_cast<std::size_t>(workers));
    ParallelDriver driver(workers);
    for (int round = 0; round < 2; ++round) {
        driver.run(static_cast<std::size_t>(workers),
                   [&](std::size_t w, sched::SchedContext &) {
                       for (const auto &geom : geoms) {
                           for (std::size_t i = 0; i < mem.size(); ++i) {
                               const std::string key =
                                   std::to_string(geom.capacityBytes) +
                                   "/" + std::to_string(mem[i]);
                               got[w]["ratio/" + key] =
                                   shared.missRatio(mem, mem[i], geom);
                               const std::vector<OpId> prefix(
                                   mem.begin(),
                                   mem.begin() + static_cast<long>(i) +
                                       1);
                               got[w]["set/" + key] =
                                   shared.missesPerIteration(prefix,
                                                             geom);
                           }
                       }
                   });
        for (int w = 0; w < workers; ++w)
            for (const auto &[key, value] : expected)
                EXPECT_EQ(got[static_cast<std::size_t>(w)].at(key), value)
                    << key << " diverged (worker " << w << ", round "
                    << round << ")";
    }
}

/**
 * One StreamCache shared by solver and oracle instances created inside
 * eight concurrent workers: every worker races the others on the lazy
 * stream/bucket builds (the TSan job runs this), and every answer must
 * be bit-identical to a serial reference — streams are pure functions
 * of (nest, op, geometry), so whichever racing build wins is
 * indistinguishable. The oracle side grows sets one op at a time, so
 * the incremental-extension path runs under contention too.
 */
TEST(SharedStreamCache, ConcurrentQueriesBitIdentical)
{
    const auto bench = workloads::makeTomcatv();
    const auto &nest = bench.loops[0];
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};

    // Serial reference with a private cache.
    std::map<std::string, double> expected;
    {
        cme::CmeAnalysis cme(nest);
        cme::CacheOracle oracle(nest);
        std::vector<OpId> prefix;
        for (std::size_t i = 0; i < mem.size(); ++i) {
            prefix.push_back(mem[i]);
            const std::string key = std::to_string(mem[i]);
            expected["cme/" + key] = cme.missRatio(mem, mem[i], geom);
            expected["oracle/" + key] =
                oracle.missesPerIteration(prefix, geom);
        }
    }

    auto shared = std::make_shared<cme::StreamCache>(nest);
    const int workers = 8;
    std::vector<std::map<std::string, double>> got(
        static_cast<std::size_t>(workers));
    ParallelDriver driver(workers);
    driver.run(static_cast<std::size_t>(workers),
               [&](std::size_t w, sched::SchedContext &) {
                   // Fresh analyses per worker, all drawing from the
                   // one shared cache — the Workbench sharing shape.
                   cme::CmeAnalysis cme(nest, {}, shared);
                   cme::CacheOracle oracle(nest, shared);
                   std::vector<OpId> prefix;
                   for (std::size_t i = 0; i < mem.size(); ++i) {
                       prefix.push_back(mem[i]);
                       const std::string key = std::to_string(mem[i]);
                       got[w]["cme/" + key] =
                           cme.missRatio(mem, mem[i], geom);
                       got[w]["oracle/" + key] =
                           oracle.missesPerIteration(prefix, geom);
                   }
               });
    for (int w = 0; w < workers; ++w)
        for (const auto &[key, value] : expected)
            EXPECT_EQ(got[static_cast<std::size_t>(w)].at(key), value)
                << key << " diverged (worker " << w << ")";
    EXPECT_GT(shared->streamsBuilt(), 0u);
}

/**
 * The pool (and each worker's SchedContext) must persist across run()
 * calls: over any number of sweeps, the number of distinct contexts
 * ever handed to work items cannot exceed the pool size. A driver that
 * respawned threads (and thus contexts) per sweep would hand out fresh,
 * unmarked contexts every run and blow through the bound.
 */
TEST(ParallelDriver, WorkerPoolPersistsAcrossRuns)
{
    constexpr std::size_t N = 64;
    constexpr int JOBS = 4;
    constexpr int SWEEPS = 6;
    ParallelDriver driver(JOBS);
    std::atomic<int> distinct_contexts{0};
    for (int sweep = 0; sweep < SWEEPS; ++sweep) {
        driver.run(N, [&](std::size_t, sched::SchedContext &ctx) {
            if (ctx.order.empty()) {   // first item this context ever ran
                ctx.order.push_back(42);
                distinct_contexts.fetch_add(1);
            }
        });
    }
    EXPECT_GE(distinct_contexts.load(), 1);
    EXPECT_LE(distinct_contexts.load(), JOBS);
}

TEST(ParallelDriver, SerialContextPersistsAcrossRuns)
{
    ParallelDriver driver(1);
    driver.run(1, [&](std::size_t, sched::SchedContext &ctx) {
        ctx.order.push_back(7);
    });
    bool still_marked = false;
    driver.run(1, [&](std::size_t, sched::SchedContext &ctx) {
        still_marked = !ctx.order.empty() && ctx.order.back() == 7;
    });
    EXPECT_TRUE(still_marked);
}

TEST(ParseLocalityFlag, StripsTheFlagAndParses)
{
    char a0[] = "prog";
    char a1[] = "--locality";
    char a2[] = "oracle";
    char a3[] = "positional";
    char *argv[] = {a0, a1, a2, a3};
    int argc = 4;
    EXPECT_EQ(parseLocalityFlag(argc, argv), "oracle");
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "positional");

    char b0[] = "prog";
    char b1[] = "--locality=hybrid";
    char *argv2[] = {b0, b1};
    int argc2 = 2;
    EXPECT_EQ(parseLocalityFlag(argc2, argv2), "hybrid");
    EXPECT_EQ(argc2, 1);

    char c0[] = "prog";
    char *argv3[] = {c0};
    int argc3 = 1;
    EXPECT_EQ(parseLocalityFlag(argc3, argv3), "");
}

TEST(ParallelDriver, EveryItemClaimedExactlyOnce)
{
    constexpr std::size_t N = 1000;
    std::vector<std::atomic<int>> claimed(N);
    std::atomic<int> distinct_contexts{0};
    ParallelDriver driver(8);
    driver.run(N, [&](std::size_t i, sched::SchedContext &ctx) {
        claimed[i].fetch_add(1);
        // First item a worker runs: count its context once.
        if (ctx.order.empty()) {
            ctx.order.push_back(0);   // mark the context as seen
            distinct_contexts.fetch_add(1);
        }
    });
    for (std::size_t i = 0; i < N; ++i)
        EXPECT_EQ(claimed[i].load(), 1) << "item " << i;
    EXPECT_GE(distinct_contexts.load(), 1);
    EXPECT_LE(distinct_contexts.load(), 8);
}

TEST(ParallelDriver, JobsDefaultsArePositive)
{
    EXPECT_GE(defaultJobs(), 1);
    ParallelDriver dflt;
    EXPECT_GE(dflt.jobs(), 1);
    ParallelDriver five(5);
    EXPECT_EQ(five.jobs(), 5);
}

TEST(ParseJobsFlag, StripsTheFlagAndParses)
{
    char a0[] = "prog";
    char a1[] = "--jobs";
    char a2[] = "7";
    char a3[] = "positional";
    char *argv[] = {a0, a1, a2, a3};
    int argc = 4;
    EXPECT_EQ(parseJobsFlag(argc, argv), 7);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "positional");

    char b0[] = "prog";
    char b1[] = "--jobs=3";
    char *argv2[] = {b0, b1};
    int argc2 = 2;
    EXPECT_EQ(parseJobsFlag(argc2, argv2), 3);
    EXPECT_EQ(argc2, 1);

    char c0[] = "prog";
    char *argv3[] = {c0};
    int argc3 = 1;
    EXPECT_EQ(parseJobsFlag(argc3, argv3), 0);
}

} // namespace
} // namespace mvp::harness
