#include "sched/mrt.hh"

#include "common/logging.hh"

namespace mvp::sched
{

Mrt::Mrt(const MachineConfig &machine, Cycle ii)
    : machine_(machine), ii_(ii)
{
    mvp_assert(ii >= 1, "II must be positive");
    fu_used_.assign(static_cast<std::size_t>(ii) *
                        static_cast<std::size_t>(machine.nClusters) *
                        ir::NUM_FU_TYPES,
                    0);
    fu_load_.assign(
        static_cast<std::size_t>(machine.nClusters) * ir::NUM_FU_TYPES, 0);
    if (!machine.unboundedRegBuses)
        bus_busy_.assign(static_cast<std::size_t>(ii) *
                             static_cast<std::size_t>(machine.nRegBuses),
                         0);
}

std::size_t
Mrt::fuIndex(Cycle time, ClusterId cluster, ir::FuType type) const
{
    const auto slot = static_cast<std::size_t>(((time % ii_) + ii_) % ii_);
    return (slot * static_cast<std::size_t>(machine_.nClusters) +
            static_cast<std::size_t>(cluster)) *
               ir::NUM_FU_TYPES +
           static_cast<std::size_t>(type);
}

bool
Mrt::fuFree(Cycle time, ClusterId cluster, ir::FuType type) const
{
    return fu_used_[fuIndex(time, cluster, type)] <
           machine_.fusPerCluster(type);
}

void
Mrt::placeFu(Cycle time, ClusterId cluster, ir::FuType type)
{
    auto &used = fu_used_[fuIndex(time, cluster, type)];
    mvp_assert(used < machine_.fusPerCluster(type),
               "placing into a full FU slot");
    ++used;
    ++fu_load_[static_cast<std::size_t>(cluster) * ir::NUM_FU_TYPES +
               static_cast<std::size_t>(type)];
}

void
Mrt::removeFu(Cycle time, ClusterId cluster, ir::FuType type)
{
    auto &used = fu_used_[fuIndex(time, cluster, type)];
    mvp_assert(used > 0, "removing from an empty FU slot");
    --used;
    --fu_load_[static_cast<std::size_t>(cluster) * ir::NUM_FU_TYPES +
               static_cast<std::size_t>(type)];
}

int
Mrt::fuLoad(ClusterId cluster, ir::FuType type) const
{
    return fu_load_[static_cast<std::size_t>(cluster) * ir::NUM_FU_TYPES +
                    static_cast<std::size_t>(type)];
}

int
Mrt::findFreeBus(Cycle start) const
{
    if (machine_.unboundedRegBuses)
        return BUS_UNBOUNDED;
    if (machine_.regBusLatency > ii_)
        return -2;   // the transfer would collide with its next instance
    for (int b = 0; b < machine_.nRegBuses; ++b) {
        bool free = true;
        for (Cycle k = 0; k < machine_.regBusLatency && free; ++k) {
            const auto slot = static_cast<std::size_t>(
                (((start + k) % ii_) + ii_) % ii_);
            free = !bus_busy_[slot * static_cast<std::size_t>(
                                         machine_.nRegBuses) +
                              static_cast<std::size_t>(b)];
        }
        if (free)
            return b;
    }
    return -2;
}

void
Mrt::reserveBus(int bus, Cycle start)
{
    if (bus == BUS_UNBOUNDED)
        return;
    mvp_assert(bus >= 0 && bus < machine_.nRegBuses, "bad bus index");
    for (Cycle k = 0; k < machine_.regBusLatency; ++k) {
        const auto slot = static_cast<std::size_t>(
            (((start + k) % ii_) + ii_) % ii_);
        auto &busy = bus_busy_[slot * static_cast<std::size_t>(
                                          machine_.nRegBuses) +
                               static_cast<std::size_t>(bus)];
        mvp_assert(!busy, "bus already reserved");
        busy = 1;
    }
}

void
Mrt::releaseBus(int bus, Cycle start)
{
    if (bus == BUS_UNBOUNDED)
        return;
    mvp_assert(bus >= 0 && bus < machine_.nRegBuses, "bad bus index");
    for (Cycle k = 0; k < machine_.regBusLatency; ++k) {
        const auto slot = static_cast<std::size_t>(
            (((start + k) % ii_) + ii_) % ii_);
        auto &busy = bus_busy_[slot * static_cast<std::size_t>(
                                          machine_.nRegBuses) +
                               static_cast<std::size_t>(bus)];
        mvp_assert(busy, "releasing a free bus slot");
        busy = 0;
    }
}

int
Mrt::busSlotsUsed() const
{
    int n = 0;
    for (char b : bus_busy_)
        n += b ? 1 : 0;
    return n;
}

} // namespace mvp::sched
