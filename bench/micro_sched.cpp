/**
 * @file
 * google-benchmark microbenchmarks (experiment E7): the compile-time
 * cost of the pieces the paper claims are cheap — CME queries ("a few
 * seconds per loop" in 2000; microseconds here), full scheduling runs,
 * and the lockstep simulator's cycle throughput.
 */

#include <benchmark/benchmark.h>

#include "cme/oracle.hh"
#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "harness/motivating.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "sched/exact/bnb.hh"
#include "sched/ordering.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace mvp;

namespace
{

const ir::LoopNest &
bigLoop()
{
    static const auto bench = workloads::makeTomcatv();
    return bench.loops[0];   // the 10-op stencil loop
}

void
BM_DdgBuild(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeFourCluster();
    for (auto _ : state)
        benchmark::DoNotOptimize(ddg::Ddg::build(nest, machine));
}
BENCHMARK(BM_DdgBuild);

void
BM_RecMii(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeFourCluster();
    for (auto _ : state) {
        const auto g = ddg::Ddg::build(nest, machine);
        benchmark::DoNotOptimize(g.recMii());
    }
}
BENCHMARK(BM_RecMii);

void
BM_Ordering(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeFourCluster();
    const auto g = ddg::Ddg::build(nest, machine);
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::computeOrdering(g, g.recMii()));
}
BENCHMARK(BM_Ordering);

void
BM_CmeMissRatio_Fresh(benchmark::State &state)
{
    // Un-memoised CME query cost (new analysis each iteration).
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};
    for (auto _ : state) {
        cme::CmeAnalysis cme(nest);
        benchmark::DoNotOptimize(cme.missRatio(mem, mem[0], geom));
    }
}
BENCHMARK(BM_CmeMissRatio_Fresh);

void
BM_CmeMissRatio_Memoised(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};
    cme::CmeAnalysis cme(nest);
    (void)cme.missRatio(mem, mem[0], geom);
    for (auto _ : state)
        benchmark::DoNotOptimize(cme.missRatio(mem, mem[0], geom));
}
BENCHMARK(BM_CmeMissRatio_Memoised);

void
BM_OracleExact(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};
    for (auto _ : state) {
        cme::CacheOracle oracle(nest);
        benchmark::DoNotOptimize(oracle.missRatio(mem, mem[0], geom));
    }
}
BENCHMARK(BM_OracleExact);

void
BM_ScheduleBaseline(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::scheduleBaseline(g, machine));
}
BENCHMARK(BM_ScheduleBaseline)->Arg(1)->Arg(2)->Arg(4);

void
BM_ScheduleRmca(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::scheduleRmca(g, machine, 0.0, cme));
}
BENCHMARK(BM_ScheduleRmca)->Arg(2)->Arg(4);

/**
 * The same schedule through the backend registry with an explicitly
 * reused SchedContext — the steady state of a driver worker, where the
 * scratch buffers stay warm across loops (BM_ScheduleRmca above pays a
 * transient context per run).
 */
void
BM_ScheduleRmcaWarmContext(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    sched::SchedulerOptions opt;
    opt.missThreshold = 0.0;
    opt.locality = &cme;
    sched::SchedContext ctx;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::scheduleWithBackend("rmca", g, machine, opt, ctx));
}
BENCHMARK(BM_ScheduleRmcaWarmContext)->Arg(2)->Arg(4);

/**
 * The exact branch-and-bound backend on the same loop: first feasible
 * schedule only (the pressure tiebreak is a budgeted anytime search
 * whose cost is the budget, not a property of the loop).
 */
void
BM_ScheduleExact(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    sched::exact::BnbOptions opt;
    opt.tiebreakPressure = false;
    std::int64_t nodes = 0;
    for (auto _ : state) {
        const auto r = sched::exact::scheduleExact(g, machine, opt);
        nodes += r.stats.searchNodes;
        benchmark::DoNotOptimize(r);
    }
    state.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScheduleExact)->Arg(2)->Arg(4);

/** Full verify mode (rmca + exact + gap) — the per-loop cost of the
 * optimality-gap study. */
void
BM_ScheduleVerify(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    sched::SchedulerOptions opt;
    opt.missThreshold = 0.25;
    opt.locality = &cme;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::scheduleWithBackend("verify", g, machine, opt));
}
BENCHMARK(BM_ScheduleVerify)->Arg(2)->Arg(4);

void
BM_SimulateLoop(benchmark::State &state)
{
    const auto nest = harness::motivatingLoop(256, 2);
    const auto machine = harness::motivatingMachine();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    std::int64_t cycles = 0;
    for (auto _ : state) {
        const auto res = sim::simulateLoop(g, r.schedule, machine);
        cycles += res.totalCycles();
        benchmark::DoNotOptimize(res);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateLoop);

} // namespace

BENCHMARK_MAIN();
