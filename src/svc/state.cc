/**
 * @file
 * SchedService warm-state persistence (format: svc/state.hh).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cme/oracle.hh"
#include "cme/solver.hh"
#include "common/logging.hh"
#include "svc/service.hh"
#include "svc/state.hh"
#include "text/format.hh"

namespace mvp::svc
{
namespace
{

std::string
fmtG(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Token/raw-section reader over a snapshot. Every helper fatals on
 * malformed input (callers hold a FatalScope when the bytes are user
 * input). */
class StateReader
{
  public:
    StateReader(const std::string &bytes, const std::string &origin)
        : bytes_(bytes), origin_(origin)
    {
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ >= bytes_.size();
    }

    std::string word()
    {
        skipSpace();
        std::size_t j = pos_;
        while (j < bytes_.size() && !isSpace(bytes_[j]))
            ++j;
        if (j == pos_)
            mvp_fatal(origin_, ": truncated warm-state snapshot");
        std::string out = bytes_.substr(pos_, j - pos_);
        pos_ = j;
        return out;
    }

    void expect(const std::string &w)
    {
        const std::string got = word();
        if (got != w)
            mvp_fatal(origin_, ": expected '", w, "', got '", got, "'");
    }

    std::int64_t int64()
    {
        const std::string w = word();
        char *end = nullptr;
        const std::int64_t v = std::strtoll(w.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            mvp_fatal(origin_, ": expected an integer, got '", w, "'");
        return v;
    }

    double dbl()
    {
        const std::string w = word();
        char *end = nullptr;
        const double v = std::strtod(w.c_str(), &end);
        if (end == nullptr || *end != '\0')
            mvp_fatal(origin_, ": expected a number, got '", w, "'");
        return v;
    }

    /** Raw section: one '\n' terminates the header line, then exactly
     * @p n bytes, then one '\n'. */
    std::string raw(std::int64_t n)
    {
        while (pos_ < bytes_.size() && bytes_[pos_] != '\n')
            ++pos_;
        if (pos_ >= bytes_.size())
            mvp_fatal(origin_, ": truncated warm-state snapshot");
        ++pos_;   // the header newline
        return rawHere(n);
    }

    /** A raw section that starts at the cursor (the second and later
     * sections under one header line, e.g. a cache entry's payload
     * right after its key). */
    std::string rawHere(std::int64_t n)
    {
        if (n < 0)
            mvp_fatal(origin_, ": negative section length");
        if (pos_ + static_cast<std::size_t>(n) > bytes_.size())
            mvp_fatal(origin_, ": raw section overruns the snapshot");
        std::string out = bytes_.substr(pos_, n);
        pos_ += static_cast<std::size_t>(n);
        if (pos_ >= bytes_.size() || bytes_[pos_] != '\n')
            mvp_fatal(origin_, ": raw section missing terminator");
        ++pos_;
        return out;
    }

  private:
    static bool isSpace(char c)
    {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    }

    void skipSpace()
    {
        while (pos_ < bytes_.size() && isSpace(bytes_[pos_]))
            ++pos_;
    }

    const std::string &bytes_;
    const std::string origin_;
    std::size_t pos_ = 0;
};

void
writeCmeEntries(std::string &out,
                const std::vector<cme::CmeMemoEntry> &entries)
{
    for (const auto &e : entries) {
        out += "geom " + std::to_string(e.geom.capacityBytes) + " " +
               std::to_string(e.geom.lineBytes) + " " +
               std::to_string(e.geom.assoc) + " op " +
               std::to_string(e.op) + " set " +
               std::to_string(e.set.size());
        for (const OpId id : e.set)
            out += " " + std::to_string(id);
        out += " value " + fmtG(e.value.ratio) + " " +
               fmtG(e.value.ciHalfWidth) + "\n";
    }
}

void
writeOracleEntries(std::string &out,
                   const std::vector<cme::OracleMemoEntry> &entries)
{
    for (const auto &e : entries) {
        out += "geom " + std::to_string(e.geom.capacityBytes) + " " +
               std::to_string(e.geom.lineBytes) + " " +
               std::to_string(e.geom.assoc) + " set " +
               std::to_string(e.set.size());
        for (const OpId id : e.set)
            out += " " + std::to_string(id);
        out += " points " + std::to_string(e.points) + " misses";
        for (const std::int64_t v : e.misses)
            out += " " + std::to_string(v);
        out += " psm " + std::to_string(e.perSetMisses.size());
        for (const std::int64_t v : e.perSetMisses)
            out += " " + std::to_string(v);
        out += " tags " + std::to_string(e.tags.size());
        for (const std::int64_t v : e.tags)
            out += " " + std::to_string(v);
        out += "\n";
    }
}

std::vector<cme::CmeMemoEntry>
readCmeEntries(StateReader &in, std::int64_t count)
{
    std::vector<cme::CmeMemoEntry> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        cme::CmeMemoEntry e;
        in.expect("geom");
        e.geom.capacityBytes = in.int64();
        e.geom.lineBytes = in.int64();
        e.geom.assoc = static_cast<int>(in.int64());
        in.expect("op");
        e.op = static_cast<OpId>(in.int64());
        in.expect("set");
        const std::int64_t n = in.int64();
        for (std::int64_t j = 0; j < n; ++j)
            e.set.push_back(static_cast<OpId>(in.int64()));
        in.expect("value");
        e.value.ratio = in.dbl();
        e.value.ciHalfWidth = in.dbl();
        out.push_back(std::move(e));
    }
    return out;
}

std::vector<cme::OracleMemoEntry>
readOracleEntries(StateReader &in, std::int64_t count)
{
    std::vector<cme::OracleMemoEntry> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        cme::OracleMemoEntry e;
        in.expect("geom");
        e.geom.capacityBytes = in.int64();
        e.geom.lineBytes = in.int64();
        e.geom.assoc = static_cast<int>(in.int64());
        in.expect("set");
        const std::int64_t n = in.int64();
        for (std::int64_t j = 0; j < n; ++j)
            e.set.push_back(static_cast<OpId>(in.int64()));
        in.expect("points");
        e.points = in.int64();
        in.expect("misses");
        for (std::int64_t j = 0; j < n; ++j)
            e.misses.push_back(in.int64());
        in.expect("psm");
        const std::int64_t npsm = in.int64();
        for (std::int64_t j = 0; j < npsm; ++j)
            e.perSetMisses.push_back(in.int64());
        in.expect("tags");
        const std::int64_t ntags = in.int64();
        for (std::int64_t j = 0; j < ntags; ++j)
            e.tags.push_back(in.int64());
        out.push_back(std::move(e));
    }
    return out;
}

} // namespace

std::string
SchedService::encodeState() const
{
    std::string out;
    out += "mvp-warm-state " + std::to_string(WARM_STATE_VERSION) +
           "\n";

    // Schedule cache, sorted by key for byte-stable snapshots.
    std::vector<std::pair<std::string, std::string>> entries;
    cache_.forEach([&](const std::string &key,
                       const std::string &payload) {
        entries.emplace_back(key, payload);
    });
    std::sort(entries.begin(), entries.end());
    out += "cache " + std::to_string(entries.size()) + "\n";
    for (const auto &[key, payload] : entries) {
        out += "entry " + std::to_string(key.size()) + " " +
               std::to_string(payload.size()) + "\n";
        out += key + "\n";
        out += payload + "\n";
    }

    // Loop contexts (std::map — already sorted by canonical text).
    std::lock_guard<std::mutex> ctx_lock(ctx_mu_);
    out += "loops " + std::to_string(contexts_.size()) + "\n";
    for (const auto &[loopKey, lc] : contexts_) {
        out += "loop " + std::to_string(loopKey.size()) + "\n";
        out += loopKey + "\n";
        std::lock_guard<std::mutex> lock(lc->mu);
        // Only the concrete memoising analyses persist; wrappers
        // (hybrid) rewarm from scratch.
        std::vector<std::string> sections;
        for (const auto &[name, analysis] : lc->bound) {
            if (const auto *cme_a =
                    dynamic_cast<const cme::CmeAnalysis *>(
                        analysis.get())) {
                const auto memo = cme_a->exportMemo();
                std::string sec = "provider " + name + " cme " +
                                  std::to_string(memo.size()) + "\n";
                writeCmeEntries(sec, memo);
                sections.push_back(std::move(sec));
            } else if (const auto *oracle =
                           dynamic_cast<const cme::CacheOracle *>(
                               analysis.get())) {
                const auto memo = oracle->exportMemo();
                std::string sec = "provider " + name + " oracle " +
                                  std::to_string(memo.size()) + "\n";
                writeOracleEntries(sec, memo);
                sections.push_back(std::move(sec));
            }
        }
        out += "providers " + std::to_string(sections.size()) + "\n";
        for (const std::string &sec : sections)
            out += sec;
    }
    out += "end\n";
    return out;
}

void
SchedService::decodeState(const std::string &bytes,
                          const std::string &origin)
{
    StateReader in(bytes, origin);
    in.expect("mvp-warm-state");
    const std::int64_t version = in.int64();
    if (version != WARM_STATE_VERSION)
        mvp_fatal(origin, ": warm-state version ", version,
                  " (this build reads ", WARM_STATE_VERSION,
                  "); start cold instead");

    in.expect("cache");
    const std::int64_t n_cache = in.int64();
    for (std::int64_t i = 0; i < n_cache; ++i) {
        in.expect("entry");
        const std::int64_t key_bytes = in.int64();
        const std::int64_t payload_bytes = in.int64();
        std::string key = in.raw(key_bytes);
        std::string payload = in.rawHere(payload_bytes);
        cache_.tryInsert(key, std::move(payload));
    }

    in.expect("loops");
    const std::int64_t n_loops = in.int64();
    for (std::int64_t i = 0; i < n_loops; ++i) {
        in.expect("loop");
        const std::int64_t text_bytes = in.int64();
        const std::string loop_text = in.raw(text_bytes);
        const ir::LoopNest nest = text::parseLoop(loop_text, origin);
        LoopContext &lc = contextFor(text::printLoop(nest), nest);
        in.expect("providers");
        const std::int64_t n_providers = in.int64();
        for (std::int64_t p = 0; p < n_providers; ++p) {
            in.expect("provider");
            const std::string name = in.word();
            const std::string kind = in.word();
            const std::int64_t count = in.int64();
            if (kind == "cme") {
                const auto entries = readCmeEntries(in, count);
                auto *analysis = dynamic_cast<cme::CmeAnalysis *>(
                    &lc.localityFor(name));
                if (analysis == nullptr)
                    mvp_fatal(origin, ": provider '", name,
                              "' no longer binds a CME analysis");
                analysis->importMemo(entries);
            } else if (kind == "oracle") {
                const auto entries = readOracleEntries(in, count);
                auto *analysis = dynamic_cast<cme::CacheOracle *>(
                    &lc.localityFor(name));
                if (analysis == nullptr)
                    mvp_fatal(origin, ": provider '", name,
                              "' no longer binds a cache oracle");
                analysis->importMemo(entries);
            } else {
                mvp_fatal(origin, ": unknown provider kind '", kind,
                          "' (known: cme, oracle)");
            }
        }
    }
    in.expect("end");
}

bool
SchedService::saveStateFile(const std::string &path,
                            std::string *error) const
{
    const std::string bytes = encodeState();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error != nullptr)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
SchedService::loadStateFile(const std::string &path, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();

    FatalScope guard;
    try {
        decodeState(bytes, path);
    } catch (const FatalError &e) {
        if (error != nullptr)
            *error = e.what();
        return false;
    }
    return true;
}

} // namespace mvp::svc
