#!/usr/bin/env bash
# Run the scheduler/CME microbenchmarks and emit BENCH_sched.json at the
# repo root so successive PRs can track the performance trajectory.
#
# Usage:
#   bench/run_bench.sh [--filter REGEX] [--jobs N] [--sweep|--no-sweep]
#                      [--fuzz|--no-fuzz] [--metrics] [--serve]
#                      [extra google-benchmark flags]
#
# --filter REGEX limits the run to matching benchmarks (and merges only
# their numbers into BENCH_sched.json), e.g.
#
#   bench/run_bench.sh --filter 'BM_Schedule(Exact|Verify)'
#
# runs and gates the exact-backend benches in isolation.
#
# --jobs N sets the worker count forwarded to the suite-sweep binary
# (default: nproc); the job count and both wall-clock numbers (jobs=1
# and jobs=N) are recorded under "parallel_sweep" in BENCH_sched.json.
# The sweep runs by default on a full benchmark pass and is skipped on
# --filter runs (pass --sweep to force, --no-sweep to suppress).
#
# Environment:
#   BUILD_DIR       build tree (default: <repo>/build)
#   BENCH_FILTER    --benchmark_filter regex (default: all benchmarks;
#                   --filter wins when both are given)
#   BENCH_MIN_TIME  --benchmark_min_time seconds (default: 2)
#   SWEEP_BUDGET    exact-search node budget for the sweep timing
#                   (default: the library default)
#   FUZZ_SCENARIOS  differential fuzz-sweep scenario count (default 200)
#   FUZZ_SEED       differential fuzz-sweep base seed (default: the
#                   library's fixed seed)
#   SAT_LOOPS       engine-comparison corpus size (default 200): the
#                   generated loops the bnb/sat/portfolio certifying
#                   engines are compared on; the per-engine
#                   certified/unknown counts and wall clocks land
#                   under "sat" in BENCH_sched.json
#
# --metrics runs the jobs=N suite sweep with the obs registry enabled
# (sweep_bench --metrics=FILE) and distils the report into a "metrics"
# section of BENCH_sched.json: search-health rates (nodes per search,
# prunes, backjumps), locality-cache hit rates (RatioMemo,
# StreamCache) and pool utilisation. Off by default — the
# instrumented run is a second sweep pass — and merged like every
# other section: keys a run does not remeasure survive from the
# previous record.
#
# --serve runs the scheduling-service load generator (bench/serve_bench
# with --check --gate: every reply byte-compared against the offline
# pipeline, warm/cold throughput gated at 5x) and records a "service"
# section: schedules/sec cold and warm, the speedup, the cache hit
# rate, request-latency p50/p99 and the reply fingerprint. Off by
# default, preserved across re-runs like every other section.
#
# Like the suite sweep, the differential fuzz sweep (bench/fuzz_sweep:
# generated scenarios through schedule validation, exact-II
# cross-check, kernel expansion, lockstep simulation and CME-vs-oracle
# agreement) runs on full benchmark passes and is skipped on --filter
# runs; its scenario count, wall clock and output fingerprint land
# under "fuzz_sweep" in BENCH_sched.json. A failing scenario fails the
# whole benchmark run.
#
# The output is standard google-benchmark JSON plus four extra
# top-level keys: "seed_baseline", carrying the pre-optimisation
# reference numbers of the benchmarks the build is gated on;
# "parallel_sweep" with the sharded-driver wall-clock record; "cme",
# the locality-layer section — the latest BM_StreamMaterialise /
# BM_CmeMissRatio_* / BM_Oracle* times plus speedups against the
# recorded "pre_overhaul" reference (the PR-3 numbers, preserved
# across re-runs); and "exact", the exact-engine section — the
# BM_ScheduleExact / BM_ScheduleVerify times and node throughput,
# speedups against the recorded pre-overhaul reference (the PR-5-era
# numbers, seeded automatically from the record the first time the
# section is built and preserved afterwards), and the fuzz sweep's
# certified rate. Quick single-layer refreshes:
#
#   bench/run_bench.sh --filter 'BM_Cme|BM_Oracle|BM_Stream'
#   bench/run_bench.sh --filter 'BM_Schedule(Exact|Verify)'
#
# Existing values of all four keys are preserved across re-runs that
# do not remeasure them.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
OUT="$ROOT/BENCH_sched.json"

JOBS="$(nproc 2>/dev/null || echo 1)"
SWEEP=auto
FUZZ=auto
METRICS=no
SERVE=no
ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
      --filter)
        [ $# -ge 2 ] || { echo "--filter needs a regex" >&2; exit 2; }
        BENCH_FILTER="$2"
        shift 2
        ;;
      --filter=*)
        BENCH_FILTER="${1#--filter=}"
        shift
        ;;
      --jobs)
        [ $# -ge 2 ] || { echo "--jobs needs a count" >&2; exit 2; }
        JOBS="$2"
        shift 2
        ;;
      --jobs=*)
        JOBS="${1#--jobs=}"
        shift
        ;;
      --sweep)
        SWEEP=yes
        shift
        ;;
      --no-sweep)
        SWEEP=no
        shift
        ;;
      --fuzz)
        FUZZ=yes
        shift
        ;;
      --no-fuzz)
        FUZZ=no
        shift
        ;;
      --metrics)
        METRICS=yes
        shift
        ;;
      --serve)
        SERVE=yes
        shift
        ;;
      *)
        ARGS+=("$1")
        shift
        ;;
    esac
done
set -- ${ARGS+"${ARGS[@]}"}

# A filtered run is a targeted micro probe: skip the multi-second suite
# and fuzz sweeps unless explicitly requested.
if [ "$SWEEP" = auto ]; then
    if [ -n "${BENCH_FILTER:-}" ]; then SWEEP=no; else SWEEP=yes; fi
fi
if [ "$FUZZ" = auto ]; then
    if [ -n "${BENCH_FILTER:-}" ]; then FUZZ=no; else FUZZ=yes; fi
fi

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S "$ROOT" -DMVP_BENCH=ON
fi
# Always rebuild so the numbers describe the checked-out tree, never a
# stale binary.
TARGETS=(micro_sched sweep_bench fuzz_sweep table_gap)
[ "$SERVE" = yes ] && TARGETS+=(serve_bench)
cmake --build "$BUILD_DIR" -j --target "${TARGETS[@]}"

TMP="$(mktemp)"
SWEEP_TMP="$(mktemp)"
FUZZ_TMP="$(mktemp)"
METRICS_TMP="$(mktemp)"
SERVE_TMP="$(mktemp)"
SAT_TMP="$(mktemp)"
trap 'rm -f "$TMP" "$SWEEP_TMP" "$FUZZ_TMP" "$METRICS_TMP" "$SERVE_TMP" "$SAT_TMP"' EXIT
: > "$METRICS_TMP"

"$BUILD_DIR/micro_sched" \
    --benchmark_filter="${BENCH_FILTER:-.*}" \
    --benchmark_min_time="${BENCH_MIN_TIME:-2}" \
    --benchmark_out="$TMP" \
    --benchmark_out_format=json \
    "$@"

# Suite-sweep wall clock: jobs=1 vs jobs=N through the same sharded
# driver (the acceptance number for the parallel pipeline).
if [ "$SWEEP" = yes ]; then
    SWEEP_ARGS=(--exact)
    [ -n "${SWEEP_BUDGET:-}" ] && SWEEP_ARGS+=(--budget "$SWEEP_BUDGET")
    echo "suite sweep at jobs=1 and jobs=$JOBS ..."
    M1=()
    [ "$JOBS" = 1 ] && [ "$METRICS" = yes ] && M1=("--metrics=$METRICS_TMP")
    "$BUILD_DIR/sweep_bench" --jobs 1 "${SWEEP_ARGS[@]}" \
        ${M1[@]+"${M1[@]}"} | tee -a "$SWEEP_TMP"
    if [ "$JOBS" != 1 ]; then
        # The jobs=N pass doubles as the instrumented run on --metrics
        # (the registry costs one predictable branch when disabled, so
        # the timing stays comparable either way).
        [ "$METRICS" = yes ] && SWEEP_ARGS+=("--metrics=$METRICS_TMP")
        "$BUILD_DIR/sweep_bench" --jobs "$JOBS" "${SWEEP_ARGS[@]}" \
            | tee -a "$SWEEP_TMP"
    fi
fi

# Differential fuzz sweep: generated scenarios through the full
# validation pipeline; any scenario failure fails the benchmark run
# (fuzz_sweep's exit status is its failure count).
if [ "$FUZZ" = yes ]; then
    echo "differential fuzz sweep (${FUZZ_SCENARIOS:-200} scenarios, jobs=$JOBS) ..."
    FUZZ_ARGS=(--scenarios "${FUZZ_SCENARIOS:-200}" --jobs "$JOBS")
    [ -n "${FUZZ_SEED:-}" ] && FUZZ_ARGS+=(--seed "$FUZZ_SEED")
    "$BUILD_DIR/fuzz_sweep" "${FUZZ_ARGS[@]}" | tee "$FUZZ_TMP"
fi

# Certifying-engine comparison: the branch and bound, the CDCL engine
# and the portfolio racing both, over a generated corpus at the fuzz
# sweep's fixed seed — certified/unknown counts, charged work and wall
# clock per engine. Runs on full passes like the fuzz sweep; the
# engine= lines land under "sat" in BENCH_sched.json.
if [ "$FUZZ" = yes ]; then
    echo "certifying-engine comparison over ${SAT_LOOPS:-200} generated loops (jobs=$JOBS) ..."
    "$BUILD_DIR/table_gap" --jobs "$JOBS" --engines bnb,sat,portfolio \
        --workloads "gen:seed=0xd1ff+loops=${SAT_LOOPS:-200}" \
        | tee "$SAT_TMP"
fi

# The scheduling service: checked + gated load-generator run; the
# printed summary line lands in the "service" section.
if [ "$SERVE" = yes ]; then
    echo "service load run (jobs=$JOBS, checked against the offline pipeline) ..."
    "$BUILD_DIR/serve_bench" --jobs "$JOBS" --clients 4 --rounds 3 \
        --check --gate --sessions 1,2,4,8 | tee "$SERVE_TMP"
fi

python3 - "$TMP" "$OUT" "$SWEEP_TMP" "$JOBS" "$FUZZ_TMP" "$METRICS_TMP" \
    "$SERVE_TMP" "$SAT_TMP" <<'EOF'
import json
import sys

(fresh_path, out_path, sweep_path, jobs, fuzz_path,
 metrics_path, serve_path, sat_path) = sys.argv[1:9]
# A filter that matches no benchmark leaves the output file empty
# (google-benchmark writes nothing); treat it as "measured nothing" so
# sweep-only refreshes still merge.
try:
    with open(fresh_path) as f:
        fresh = json.load(f)
except ValueError:
    fresh = {}

# Merge into the existing record: a filtered run updates only the
# benchmarks it measured, and the recorded pre-optimisation baseline
# survives every re-run.
try:
    with open(out_path) as f:
        prev = json.load(f)
except (OSError, ValueError):
    prev = {}

if "seed_baseline" in prev:
    fresh["seed_baseline"] = prev["seed_baseline"]
# Keys this run did not produce (e.g. the google-benchmark "context"
# on a measure-nothing run) survive from the previous record.
for key, value in prev.items():
    fresh.setdefault(key, value)
measured = {b["name"] for b in fresh.get("benchmarks", [])}
kept = [b for b in prev.get("benchmarks", [])
        if b.get("name") not in measured]
fresh["benchmarks"] = kept + fresh.get("benchmarks", [])

# Parse the sweep_bench lines into {"jobs": N, "<sweep>": {...}}.
sweep = prev.get("parallel_sweep", {})
try:
    with open(sweep_path) as f:
        lines = [l.split() for l in f if l.startswith("sweep=")]
except OSError:
    lines = []
for fields in lines:
    kv = dict(field.split("=", 1) for field in fields)
    name = kv["sweep"]
    entry = sweep.setdefault(name, {})
    entry["items"] = int(kv["items"])
    entry["fingerprint"] = kv["fingerprint"]
    entry["wall_ms_jobs%s" % kv["jobs"]] = float(kv["wall_ms"])
if lines:
    sweep["jobs"] = int(jobs)
    for entry in sweep.values():
        if not isinstance(entry, dict):
            continue
        one = entry.get("wall_ms_jobs1")
        n = entry.get("wall_ms_jobs%s" % jobs)
        if one and n:
            entry["speedup_jobs%s" % jobs] = round(one / n, 2)
if sweep:
    fresh["parallel_sweep"] = sweep

# The locality-layer section: record the CME/oracle microbenchmark
# times that gate the locality stack, and their speedup against the
# recorded pre-overhaul reference (preserved across re-runs like
# seed_baseline).
CME_BENCHES = [
    "BM_StreamMaterialise",
    "BM_CmeMissRatio_Fresh",
    "BM_CmeMissRatio_Memoised",
    "BM_OracleExact",
    "BM_OracleIncremental",
]
cme = prev.get("cme", {})
times = {b["name"]: b["real_time"] for b in fresh.get("benchmarks", [])
         if b.get("name") in CME_BENCHES}
if times:
    for name, ns in times.items():
        cme[name + "_ns"] = round(ns, 1)
    baseline = cme.get("pre_overhaul", {})
    for name, ns in times.items():
        ref = baseline.get(name + "_ns")
        if ref and ns:
            cme["speedup_" + name] = round(ref / ns, 2)
if cme:
    fresh["cme"] = cme

# The differential fuzz sweep: scenario count, pass/fail split, wall
# clock and the report fingerprint (preserved across runs that skip
# the sweep).
fuzz = prev.get("fuzz_sweep", {})
try:
    with open(fuzz_path) as f:
        fuzz_lines = [l.split() for l in f if l.startswith("fuzz ")]
except OSError:
    fuzz_lines = []
for fields in fuzz_lines:
    kv = dict(field.split("=", 1) for field in fields[1:])
    fuzz = {
        "jobs": int(kv["jobs"]),
        "scenarios": int(kv["scenarios"]),
        "passed": int(kv["passed"]),
        "failed": int(kv["failed"]),
        "exact_settled": int(kv["exact_settled"]),
        "rmca_optimal": int(kv["rmca_optimal"]),
        "wall_ms": float(kv["wall_ms"]),
        "fingerprint": kv["fingerprint"],
    }
if fuzz:
    fresh["fuzz_sweep"] = fuzz

# The certifying-engine comparison: per engine (bnb, sat, portfolio),
# certified/unknown counts, charged work and wall clock, summed over
# the two clustered machines of the comparison run.
sat_section = prev.get("sat", {})
try:
    with open(sat_path) as f:
        engine_lines = [l.split() for l in f if l.startswith("engine=")]
except OSError:
    engine_lines = []
if engine_lines:
    engines = {}
    for fields in engine_lines:
        kv = dict(field.split("=", 1) for field in fields)
        e = engines.setdefault(kv["engine"], {
            "loops": 0, "certified": 0, "unknown": 0,
            "total_gap": 0, "work": 0, "wall_ms": 0.0,
        })
        e["loops"] += int(kv["loops"])
        e["certified"] += int(kv["certified"])
        e["unknown"] += int(kv["unknown"])
        e["total_gap"] += int(kv["gap"])
        e["work"] += int(kv["nodes"])
        e["wall_ms"] = round(e["wall_ms"] + float(kv["wall_ms"]), 1)
    sat_section = {"jobs": int(jobs), "engines": engines}
    for name, e in engines.items():
        if e["loops"]:
            e["certified_rate"] = round(e["certified"] / e["loops"], 4)
if sat_section:
    fresh["sat"] = sat_section

# The scheduling-service section: serve_bench's summary line —
# sustained schedules/sec cold vs warm, the gated speedup, canonical
# and raw-lane hit rates, warm-only request-latency percentiles, the
# per-round/per-phase latency split, the --sessions scaling sweep and
# the reply fingerprint (preserved across runs that skip --serve).
service = prev.get("service", {})
try:
    with open(serve_path) as f:
        raw_serve = [l.split() for l in f if l.startswith("serve")]
except OSError:
    raw_serve = []
serve_lines = [l[1:] for l in raw_serve if l and l[0] == "serve"]
phase_lines = [l[1:] for l in raw_serve if l and l[0] == "serve_phase"]
scale_lines = [l[1:] for l in raw_serve if l and l[0] == "serve_scale"]
for fields in serve_lines:
    kv = dict(field.split("=", 1) for field in fields)
    service = {
        "jobs": int(kv["jobs"]),
        "clients": int(kv["clients"]),
        "requests": int(kv["requests"]),
        "rounds": int(kv["rounds"]),
        "cold_schedules_per_s": float(kv["cold_sps"]),
        "warm_schedules_per_s": float(kv["warm_sps"]),
        "warm_speedup": float(kv["speedup"]),
        "cache_hit_rate": float(kv["hit_rate"]),
        "raw_lane_hit_rate": float(kv["raw_hit_rate"]),
        "latency_p50_us": float(kv["p50_us"]),
        "latency_p99_us": float(kv["p99_us"]),
        "warm_latency_p50_us": float(kv["warm_p50_us"]),
        "warm_latency_p99_us": float(kv["warm_p99_us"]),
        "fingerprint": kv["fingerprint"],
    }
if serve_lines:
    phases = {}
    for fields in phase_lines:
        kv = dict(field.split("=", 1) for field in fields)
        phases["%s_%s" % (kv["round"], kv["phase"])] = {
            "p50_us": float(kv["p50_us"]),
            "p99_us": float(kv["p99_us"]),
            "mean_us": float(kv["mean_us"]),
        }
    if phases:
        service["phases"] = phases
    scaling = {}
    for fields in scale_lines:
        kv = dict(field.split("=", 1) for field in fields)
        scaling["sessions_%s" % kv["sessions"]] = {
            "warm_schedules_per_s": float(kv["warm_sps"]),
            "p99_us": float(kv["p99_us"]),
        }
    if scaling:
        service["scaling"] = scaling
if service:
    fresh["service"] = service

# The exact-engine section: the BM_ScheduleExact / BM_ScheduleVerify
# times and node throughput that gate the exact-search overhaul, their
# speedup against the recorded pre-overhaul reference, and the fuzz
# sweep's certified rate (scenarios the engine settled / scenarios).
# The reference is seeded from the benchmark record the first time
# this section is built — i.e. from the last pre-overhaul run — and
# preserved across re-runs like seed_baseline.
EXACT_BENCHES = [
    "BM_ScheduleExact/2",
    "BM_ScheduleExact/4",
    "BM_ScheduleVerify/2",
    "BM_ScheduleVerify/4",
]

def exact_key(name):
    return name.replace("/", "_")

exact = prev.get("exact", {})
exact_times = {b["name"]: b for b in fresh.get("benchmarks", [])
               if b.get("name") in EXACT_BENCHES
               and b.get("name") in measured}
if exact_times:
    baseline = exact.setdefault("pre_overhaul", {})
    if not baseline:
        for b in prev.get("benchmarks", []):
            if b.get("name") in EXACT_BENCHES:
                baseline[exact_key(b["name"]) + "_ns"] = round(
                    b["real_time"], 1)
    for name, b in exact_times.items():
        k = exact_key(name)
        exact[k + "_ns"] = round(b["real_time"], 1)
        if "nodes/s" in b:
            exact[k + "_nodes_per_s"] = round(b["nodes/s"])
        ref = baseline.get(k + "_ns")
        if ref and b["real_time"]:
            exact["speedup_" + k] = round(ref / b["real_time"], 2)
if fuzz and fuzz.get("scenarios"):
    exact["certified_rate"] = round(
        fuzz["exact_settled"] / fuzz["scenarios"], 4)
if exact:
    fresh["exact"] = exact

# The observability section (--metrics runs only): distil the
# obs::Registry report of the instrumented sweep into the health rates
# worth tracking across PRs — search effort and prune/backjump
# behaviour, locality-cache hit rates, pool utilisation. Preserved
# across re-runs that skip the instrumented sweep, like every other
# section.
try:
    with open(metrics_path) as f:
        report = json.load(f)
except (OSError, ValueError):
    report = {}
if report:
    det = report.get("deterministic", {}).get("counters", {})
    rt = report.get("runtime", {})
    rtc = rt.get("counters", {})
    rtg = rt.get("gauges", {})
    metrics = prev.get("metrics", {})
    # The dominance memo is retired; scrub its stat from old records.
    metrics.pop("exact_memo_hit_rate", None)

    def rate(num, den):
        return round(num / den, 4) if den else None

    searches = det.get("exact.searches", 0)
    metrics.update({
        "exact_searches": searches,
        "exact_nodes": det.get("exact.nodes", 0),
        "exact_nodes_per_search": rate(det.get("exact.nodes", 0),
                                       searches),
        "exact_prune_fu": det.get("exact.prune_fu", 0),
        "exact_prune_pressure": det.get("exact.prune_pressure", 0),
        "exact_backjumps": det.get("exact.backjumps", 0),
        "ratio_memo_hit_rate": rate(
            rtg.get("cme.ratio_lookups", 0)
            - rtg.get("cme.ratio_queries_solved", 0),
            rtg.get("cme.ratio_lookups", 0)),
        "stream_cache_hit_rate": rate(
            rtg.get("cme.stream_requests", 0)
            - rtg.get("cme.streams_built", 0),
            rtg.get("cme.stream_requests", 0)),
        "oracle_incremental_rate": rate(
            rtg.get("oracle.incremental_extensions", 0),
            rtg.get("oracle.incremental_extensions", 0)
            + rtg.get("oracle.full_simulations", 0)),
        "pool_workers": rtg.get("pool.workers", 0),
        "pool_items": det.get("pool.items", 0),
        "pool_busy_ms": rtc.get("pool.busy_ms", 0),
    })
    metrics = {k: v for k, v in metrics.items() if v is not None}
    fresh["metrics"] = metrics

with open(out_path, "w") as f:
    json.dump(fresh, f, indent=2)
    f.write("\n")
EOF

echo "wrote $OUT"
