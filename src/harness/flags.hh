/**
 * @file
 * Command-line flags shared by every suite binary (bench/ and
 * examples/): one strip-and-parse helper plus the typed parsers built
 * on it. Each parser removes its flag from argv (compacting in place)
 * so a binary can layer its own argument handling after the shared
 * ones; an ill-formed value is fatal with a uniform message.
 *
 * Formerly these lived in harness/driver.{hh,cc}; they moved here when
 * the budget and backend flags joined, so binaries that only parse
 * flags stop pulling in the thread-pool header.
 */

#ifndef MVP_HARNESS_FLAGS_HH
#define MVP_HARNESS_FLAGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mvp::harness
{

/**
 * Strip every `FLAG VALUE` / `FLAG=VALUE` occurrence from @p argv,
 * compacting the remaining arguments in place. Returns the last value
 * seen ("" when the flag is absent); a flag with no value is fatal,
 * with @p value_desc naming what it wanted.
 */
std::string stripValueFlag(int &argc, char **argv,
                           const std::string &flag,
                           const char *value_desc);

/**
 * Strip every occurrence of the valueless flag @p flag from @p argv,
 * compacting in place. Returns true when it appeared at least once.
 */
bool stripBoolFlag(int &argc, char **argv, const std::string &flag);

/**
 * Parse and strip a `--jobs N` / `--jobs=N` flag. Returns 0 when the
 * flag is absent — the ParallelDriver constructor maps 0 to
 * defaultJobs().
 */
int parseJobsFlag(int &argc, char **argv);

/**
 * Parse and strip a `--locality NAME` / `--locality=NAME` flag (the
 * locality-provider registry name the suite binaries forward into
 * RunConfig::locality). Returns "" when the flag is absent — the
 * harness reads that as the default "cme" provider.
 */
std::string parseLocalityFlag(int &argc, char **argv);

/**
 * Parse and strip a `--workloads A,B,...` / `--workloads=A,B,...`
 * flag: the comma-separated workload names a suite binary forwards
 * into the Workbench `only` selection. Every form
 * workloads::benchmarkByName accepts works here — builtin suites,
 * `file:<path>` loop files, `gen:<spec>` generated suites. Returns an
 * empty vector when the flag is absent (= all builtin suites).
 */
std::vector<std::string> parseWorkloadsFlag(int &argc, char **argv);

/**
 * Parse and strip a `--time-budget-ms N` / `--time-budget-ms=N` flag:
 * the wall-clock budget of the exact search per loop, in
 * milliseconds (SchedulerOptions::timeBudgetMs). Negative disables
 * the deadline, 0 expires it on entry. Returns
 * sched::DEFAULT_TIME_BUDGET_MS when the flag is absent.
 */
std::int64_t parseTimeBudgetFlag(int &argc, char **argv);

/**
 * Parse and strip an `--exact-backend NAME` / `--exact-backend=NAME`
 * flag: the certifying engine verify-mode sweeps run ("exact"/"bnb"
 * serial branch and bound, "sat" CDCL search, or "portfolio" racing
 * both on the worker pool; SchedulerOptions::exactBackend). A name not
 * in the backend registry is fatal, with the registered names listed.
 * Returns "" when the flag is absent — downstream reads that as
 * "exact".
 */
std::string parseExactBackendFlag(int &argc, char **argv);

/**
 * Parse and strip a `--sat-conflicts N` / `--sat-conflicts=N` flag:
 * the deterministic per-II conflict cap of the sat backend
 * (SchedulerOptions::satConflictBudget); 0 = uncapped. Returns 0 when
 * the flag is absent. Suite binaries only run this parser when the
 * selected exact backend is SAT-based ("sat" or "portfolio"), so on
 * any other engine the flag survives to rejectUnknownFlags and is
 * refused instead of silently ignored.
 */
std::int64_t parseSatConflictsFlag(int &argc, char **argv);

/**
 * Parse and strip a `--log-level LEVEL` / `--log-level=LEVEL` flag
 * (quiet|normal|verbose|debug) and apply it via setLogLevel().
 * Returns true when the flag was given; anything but the four names
 * is fatal.
 */
bool parseLogLevelFlag(int &argc, char **argv);

/**
 * Parse and strip the observability flags every suite binary shares:
 *
 *  - `--log-level=LEVEL` (see parseLogLevelFlag);
 *  - `--metrics[=FILE]`: enable the obs::Registry; the report goes to
 *    FILE as JSON, or to stdout as text with the bare form;
 *  - `--trace=FILE`: record Chrome trace-event JSON into FILE.
 *
 * The reports are written by an atexit hook (obs::metricsFinish /
 * obs::traceFinish), so binaries need no explicit teardown call.
 */
void parseObservabilityFlags(int &argc, char **argv);

/**
 * Fatal on any `--flag` still left in argv after a binary has run all
 * of its parsers, listing the flags it does accept (same shape as the
 * registries' unknown-name errors). Every parse*Flag helper strips the
 * flags it consumed from argv, so whatever still looks like a flag is
 * a typo — `--localty=oracle` must not silently run the default
 * provider. @p known is the binary's full flag list for the message.
 */
void rejectUnknownFlags(int argc, char **argv,
                        const std::vector<std::string> &known);

} // namespace mvp::harness

#endif // MVP_HARNESS_FLAGS_HH
