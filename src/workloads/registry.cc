#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace mvp::workloads
{

std::vector<Benchmark>
allBenchmarks()
{
    std::vector<Benchmark> all;
    all.push_back(makeTomcatv());
    all.push_back(makeSwim());
    all.push_back(makeSu2cor());
    all.push_back(makeHydro2d());
    all.push_back(makeMgrid());
    all.push_back(makeApplu());
    all.push_back(makeTurb3d());
    all.push_back(makeApsi());
    return all;
}

std::vector<NamedLoop>
allLoops()
{
    std::vector<NamedLoop> out;
    for (auto &bench : allBenchmarks()) {
        std::size_t index = 0;
        for (auto &nest : bench.loops)
            out.push_back({bench.name, index++, std::move(nest)});
    }
    return out;
}

Benchmark
benchmarkByName(const std::string &name)
{
    for (auto &b : allBenchmarks())
        if (b.name == name)
            return b;
    mvp_fatal("unknown benchmark '", name, "'");
}

std::vector<std::string>
benchmarkNames()
{
    return {"tomcatv", "swim",  "su2cor", "hydro2d",
            "mgrid",   "applu", "turb3d", "apsi"};
}

} // namespace mvp::workloads
