#include "cme/provider.hh"

#include "cme/oracle.hh"
#include "cme/setkey.hh"
#include "cme/solver.hh"
#include "common/logging.hh"

namespace mvp::cme
{

namespace
{

/**
 * Sampling solver with an exact fallback: a query whose 95% CI stop
 * rule never reached the solver's target (the sampler ran out of its
 * sample budget on a high-variance query) is answered by the oracle
 * instead. The choice is a pure function of the (set, op, geometry)
 * key — the memoised CI half-width decides — so hybrid answers are as
 * interleaving-independent as the providers underneath.
 *
 * The confidence budget (`hybrid:<N>`) buys high-variance queries up
 * to N extra batches of minSamples samples before the fallback fires:
 * the solver's sample cap grows by N batches, so a query that would
 * have fallen back may now converge — cutting oracle traffic on loops
 * whose ratios are noisy but not pathological. Budget 0 is the plain
 * "hybrid" provider. Determinism is unaffected: the sample stream of
 * a query is a pure function of its key, and a longer prefix of the
 * same stream is still a pure function of the key.
 */
class HybridAnalysis : public LocalityAnalysis
{
  public:
    HybridAnalysis(const ir::LoopNest &nest,
                   std::shared_ptr<StreamCache> streams, int budget = 0)
        : solver_(nest, budgetedParams(budget), std::move(streams)),
          oracle_(nest, solver_.streams())
    {
    }

    const ir::LoopNest &loop() const override { return solver_.loop(); }

    double missRatio(const std::vector<OpId> &set, OpId op,
                     const CacheGeom &geom) override
    {
        const RatioEstimate est = solver_.estimateRatio(set, op, geom);
        if (estimateConverged(est, solver_.params()))
            return est.ratio;
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return oracle_.missRatio(set, op, geom);
    }

    double missesPerIteration(const std::vector<OpId> &set,
                              const CacheGeom &geom) override
    {
        // Per-op choices over the canonical set, summed: each term uses
        // the sampled estimate when it converged and the exact ratio
        // when it did not, so the whole-set number is consistent with
        // the per-op queries (and duplicates never double-count).
        static thread_local std::vector<OpId> scratch;
        const std::vector<OpId> &s = detail::canonicalInto(scratch, set);
        double total = 0.0;
        for (std::size_t i = 0; i < s.size(); ++i)
            total += missRatio(s, s[i], geom);
        return total;
    }

    /** Queries answered by the oracle (monotone; for tests). */
    std::size_t fallbacks() const
    {
        return fallbacks_.load(std::memory_order_relaxed);
    }

  private:
    static CmeParams budgetedParams(int budget)
    {
        CmeParams params;
        params.maxSamples += budget * params.minSamples;
        return params;
    }

    CmeAnalysis solver_;
    CacheOracle oracle_;
    std::atomic<std::size_t> fallbacks_{0};
};

/** The built-ins share one provider template. */
template <typename MakeFn>
class SimpleProvider : public LocalityProvider
{
  public:
    SimpleProvider(std::string name, MakeFn make)
        : name_(std::move(name)), make_(std::move(make))
    {
    }

    std::string_view name() const override { return name_; }

    std::unique_ptr<LocalityAnalysis>
    bind(const ir::LoopNest &nest,
         std::shared_ptr<StreamCache> streams) const override
    {
        return make_(nest, std::move(streams));
    }

  private:
    std::string name_;
    MakeFn make_;
};

template <typename MakeFn>
LocalityProviderFactory
providerFactory(std::string name, MakeFn make)
{
    return [name = std::move(name), make = std::move(make)] {
        return std::make_unique<SimpleProvider<MakeFn>>(name, make);
    };
}

constexpr std::string_view HYBRID_PREFIX = "hybrid:";

/**
 * Parse the budget of a `hybrid:<N>` provider name. Returns false for
 * names that do not start with "hybrid:" and for malformed budgets —
 * never fatal, so has() can answer for any name. create() upgrades a
 * malformed budget to a fatal with the scheme's own diagnostic.
 */
bool
tryParseHybridBudget(const std::string &name, int *budget)
{
    if (name.rfind(HYBRID_PREFIX, 0) != 0)
        return false;
    const std::string payload = name.substr(HYBRID_PREFIX.size());
    std::size_t used = 0;
    long value = -1;
    try {
        value = std::stol(payload, &used);
    } catch (...) {
        used = std::string::npos;
    }
    if (used != payload.size() || value < 0 || value > 1000)
        return false;
    *budget = static_cast<int>(value);
    return true;
}

/** The provider behind one `hybrid:<budget>` name. */
std::unique_ptr<LocalityProvider>
makeBudgetedHybrid(const std::string &name, int budget)
{
    return std::make_unique<SimpleProvider<
        std::function<std::unique_ptr<LocalityAnalysis>(
            const ir::LoopNest &, std::shared_ptr<StreamCache>)>>>(
        name, [budget](const ir::LoopNest &nest,
                       std::shared_ptr<StreamCache> s) {
            return std::make_unique<HybridAnalysis>(nest, std::move(s),
                                                    budget);
        });
}

} // namespace

LocalityRegistry::LocalityRegistry()
{
    add("cme", providerFactory("cme", [](const ir::LoopNest &nest,
                                         std::shared_ptr<StreamCache> s) {
            return std::make_unique<CmeAnalysis>(nest, CmeParams{},
                                                 std::move(s));
        }));
    add("oracle",
        providerFactory("oracle", [](const ir::LoopNest &nest,
                                     std::shared_ptr<StreamCache> s) {
            return std::make_unique<CacheOracle>(nest, std::move(s));
        }));
    add("hybrid",
        providerFactory("hybrid", [](const ir::LoopNest &nest,
                                     std::shared_ptr<StreamCache> s) {
            return std::make_unique<HybridAnalysis>(nest, std::move(s));
        }));
}

LocalityRegistry &
LocalityRegistry::instance()
{
    static LocalityRegistry registry;
    return registry;
}

void
LocalityRegistry::add(std::string name, LocalityProviderFactory factory)
{
    table_.add(std::move(name), std::move(factory));
}

bool
LocalityRegistry::has(const std::string &name) const
{
    if (table_.has(name))
        return true;
    // `hybrid:<budget>` is a scheme, not a registered name: any
    // well-formed budget resolves (and only those — has() and
    // create() must agree). An explicitly-registered name of the
    // same spelling (above) wins.
    int budget = 0;
    return tryParseHybridBudget(name, &budget);
}

std::unique_ptr<LocalityProvider>
LocalityRegistry::create(const std::string &name) const
{
    if (!table_.has(name) && name.rfind(HYBRID_PREFIX, 0) == 0) {
        int budget = 0;
        if (!tryParseHybridBudget(name, &budget))
            mvp_fatal("bad hybrid budget '",
                      name.substr(HYBRID_PREFIX.size()), "' in '", name,
                      "' (want an integer 0..1000: extra sample "
                      "batches before the oracle fallback)");
        return makeBudgetedHybrid(name, budget);
    }
    return table_.get(name, "locality provider")();
}

std::unique_ptr<LocalityAnalysis>
LocalityRegistry::bind(const std::string &name, const ir::LoopNest &nest,
                       std::shared_ptr<StreamCache> streams) const
{
    return create(name)->bind(nest, std::move(streams));
}

std::vector<std::string>
LocalityRegistry::names() const
{
    return table_.names();
}

} // namespace mvp::cme
