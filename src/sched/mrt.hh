/**
 * @file
 * Modulo reservation table: tracks functional-unit slots per cluster and
 * register-bus occupancy at each of the II modulo slots. Buses are
 * ordinary resources (§2.1): a transfer holds its bus for the entire bus
 * latency.
 */

#ifndef MVP_SCHED_MRT_HH
#define MVP_SCHED_MRT_HH

#include <vector>

#include "common/types.hh"
#include "ir/opcode.hh"
#include "machine/machine.hh"
#include "sched/sentinels.hh"

namespace mvp::sched
{

/**
 * Reservation table for one II attempt.
 */
class Mrt
{
  public:
    Mrt(const MachineConfig &machine, Cycle ii);

    /** Empty the table for a new II attempt, reusing its buffers. */
    void reset(Cycle ii);

    /** The II this table was built for. */
    Cycle ii() const { return ii_; }

    /** True when a @p type slot is free at flat cycle @p time. */
    bool fuFree(Cycle time, ClusterId cluster, ir::FuType type) const;

    /**
     * @name Division-free slot arithmetic
     * The placement loop scans windows of consecutive cycles; converting
     * each cycle with the modulo (an integer division) dominates the
     * query cost. Callers convert the first cycle once with slot() and
     * step with nextSlot()/prevSlot().
     */
    /// @{
    std::size_t slot(Cycle time) const
    {
        Cycle m = time % ii_;
        if (m < 0)
            m += ii_;
        return static_cast<std::size_t>(m);
    }
    std::size_t nextSlot(std::size_t s) const
    {
        return s + 1 == static_cast<std::size_t>(ii_) ? 0 : s + 1;
    }
    std::size_t prevSlot(std::size_t s) const
    {
        return s == 0 ? static_cast<std::size_t>(ii_) - 1 : s - 1;
    }

    /** fuFree with a precomputed modulo slot. */
    bool fuFreeAt(std::size_t slot, ClusterId cluster,
                  ir::FuType type) const
    {
        return fu_used_[fuIndexAt(slot, cluster, type)] <
               machine_.fusPerCluster(type);
    }

    /** findFreeBus with a precomputed modulo slot. */
    int findFreeBusAt(std::size_t slot) const;

    /** reserveBus with the transfer's precomputed start slot. */
    void reserveBusAt(int bus, std::size_t slot);

    /** releaseBus with the transfer's precomputed start slot. */
    void releaseBusAt(int bus, std::size_t slot);
    /// @}

    /** Reserve a @p type slot (must be free). */
    void placeFu(Cycle time, ClusterId cluster, ir::FuType type);

    /** Release a @p type slot (must be occupied). */
    void removeFu(Cycle time, ClusterId cluster, ir::FuType type);

    /** Number of @p type ops currently placed in @p cluster. */
    int fuLoad(ClusterId cluster, ir::FuType type) const;

    /**
     * Find a register bus free for the whole window [start, start +
     * busLatency). Returns the lowest free bus index, BUS_UNBOUNDED for
     * unbounded-bus machines, or BUS_NONE when no bus is free (including
     * the structural case busLatency > II, where a transfer would
     * overlap its own next instance).
     */
    int findFreeBus(Cycle start) const;

    /** Reserve @p bus over [start, start + busLatency). */
    void reserveBus(int bus, Cycle start);

    /** Release @p bus over [start, start + busLatency). */
    void releaseBus(int bus, Cycle start);

    /** Total bus-slot occupancy (for stats). */
    int busSlotsUsed() const;

  private:
    std::size_t fuIndex(Cycle time, ClusterId cluster,
                        ir::FuType type) const;

    std::size_t fuIndexAt(std::size_t slot, ClusterId cluster,
                          ir::FuType type) const
    {
        return (slot * static_cast<std::size_t>(machine_.nClusters) +
                static_cast<std::size_t>(cluster)) *
                   ir::NUM_FU_TYPES +
               static_cast<std::size_t>(type);
    }

    const MachineConfig &machine_;
    Cycle ii_;
    std::vector<int> fu_used_;       ///< [slot][cluster][type] counts
    std::vector<int> fu_load_;       ///< [cluster][type] totals

    /**
     * Bus occupancy as bitmasks: bus_mask_[slot * words_ + w] holds bit
     * b set iff bus w*64+b is busy at that modulo slot. findFreeBus ORs
     * the window's masks and takes the lowest clear bit, replacing the
     * per-bus-per-cycle rescan with one pass over the window.
     */
    std::vector<std::uint64_t> bus_mask_;
    std::size_t words_ = 0;          ///< 64-bit words per slot
};

} // namespace mvp::sched

#endif // MVP_SCHED_MRT_HH
