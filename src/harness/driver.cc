#include "harness/driver.hh"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace mvp::harness
{

int
defaultJobs()
{
    if (const char *env = std::getenv("MVP_JOBS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
        mvp_warn("ignoring MVP_JOBS='", env, "' (want an integer >= 1)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

int
parseJobsFlag(int &argc, char **argv)
{
    int jobs = 0;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--jobs") {
            if (i + 1 >= argc)
                mvp_fatal("--jobs needs a worker count");
            value = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else {
            argv[out++] = argv[i];
            continue;
        }
        jobs = std::atoi(value.c_str());
        if (jobs < 1)
            mvp_fatal("--jobs wants an integer >= 1, got '", value, "'");
    }
    argc = out;
    return jobs;
}

ParallelDriver::ParallelDriver(int jobs)
    : jobs_(jobs >= 1 ? jobs : defaultJobs())
{
}

void
ParallelDriver::run(
    std::size_t n,
    const std::function<void(std::size_t, sched::SchedContext &)> &work)
    const
{
    if (n == 0)
        return;

    const auto workers =
        static_cast<std::size_t>(jobs_) < n
            ? static_cast<std::size_t>(jobs_)
            : n;
    if (workers <= 1) {
        // Serial fast path: same code path as a one-worker pool, minus
        // the thread. The determinism tests compare this against the
        // sharded runs.
        sched::SchedContext ctx;
        for (std::size_t i = 0; i < n; ++i)
            work(i, ctx);
        return;
    }

    // Dynamic self-scheduling: each idle worker claims (steals) the
    // next unclaimed item, so the pool load-balances itself around
    // expensive items — exact-backend loops cost up to ~10^3x a
    // heuristic one, which static round-robin sharding would serialise
    // behind the unluckiest worker.
    std::atomic<std::size_t> next{0};
    auto worker_main = [&]() {
        sched::SchedContext ctx;
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            work(i, ctx);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker_main);
    for (auto &t : pool)
        t.join();
}

} // namespace mvp::harness
