/**
 * @file
 * Load generator and correctness harness for the scheduling service:
 * sustained schedules/sec, cold vs warm, with per-phase latency.
 *
 * Builds a mixed request stream (builtin suites plus a `gen:` suite,
 * two machines, rmca plus a few verify-backend requests), partitions
 * it across N in-process protocol sessions (one per simulated client,
 * each on its own thread), and drives the same SchedService through
 * R rounds: round 0 is cold (every key misses), rounds 1+ are warm
 * (round 1 hits the canonical cache, rounds 2+ resolve in the
 * zero-parse raw lane, since round 1's byte-identical payloads were
 * published there after round 0 computed them... in fact round 1
 * already raw-hits: the cold round primed both lanes).
 *
 * Frames are fed to each session one at a time so latency splits by
 * phase, client-side:
 *
 *   queue     consuming one REQ frame — raw-lane probe, or parse on
 *             a raw miss
 *   schedule  consuming a FLUSH — batch scheduling plus rendering
 *             the REP burst into the session's output buffer
 *   flush     draining the emitted bytes back out of the session
 *             (one sample per client per round)
 *
 * and per-request latency is queue time plus an amortised share of
 * the batch's schedule time. Histograms are kept separately for the
 * cold round and the warm rounds — a mixed histogram lets the cold
 * tail masquerade as warm jitter, which is exactly how the old
 * p99 looked 14x worse than the warm path really is.
 *
 * What it asserts, independent of what it measures:
 *
 *  - every warm reply is byte-identical to the cold reply of the same
 *    request — neither cache lane is visible in the bytes;
 *  - with --check, every service reply is byte-identical to an
 *    offline pipeline that parses the same payload and schedules it
 *    directly (no service, no cache, fresh DDG and locality) — the
 *    batched path adds nothing and loses nothing;
 *  - with --gate, warm throughput must be >= 5x cold throughput and
 *    warm per-request p99 must be <= 500 us (the CI bars).
 *
 * Prints one machine-readable summary line:
 *
 *   serve jobs=J clients=C requests=N rounds=R cold_sps=X warm_sps=Y
 *         speedup=S hit_rate=H raw_hit_rate=RH p50_us=A p99_us=B
 *         warm_p50_us=WA warm_p99_us=WB fingerprint=0x...
 *
 * plus one `serve_phase round=<cold|warm> phase=<queue|schedule|flush>
 * p50_us=... p99_us=... mean_us=...` line per round/phase pair, and —
 * with --sessions L1,L2,... — one
 * `serve_scale sessions=S warm_sps=Y p99_us=B` line per requested
 * session count, measured against the already-warm service.
 *
 * The fingerprint folds every cold reply payload in request order, so
 * a service change that alters any reply byte is visible in
 * BENCH_sched.json history.
 *
 * Usage: serve_bench [--jobs N] [--clients N] [--rounds N] [--check]
 *                    [--gate] [--sessions LIST] [--dump-requests FILE]
 *
 * --dump-requests writes the framed request stream (batches, FLUSH,
 * QUIT) to FILE and exits — CI pipes it into mvp_served to exercise
 * the stdio transport and warm-state persistence end to end.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cme/provider.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "ddg/ddg.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "svc/protocol.hh"
#include "svc/service.hh"
#include "svc/session.hh"
#include "text/format.hh"
#include "workloads/workloads.hh"

using namespace mvp;

namespace
{

constexpr std::size_t BATCH_SIZE = 8;
constexpr double WARM_P99_GATE_US = 500.0;

/** One benchmark request: the raw payload plus its frame id. */
struct BenchRequest
{
    std::string id;
    std::string payload;
};

/** The mixed workload: every loop of three builtin suites and one
 * generated suite on two machines under rmca, plus verify-backend
 * requests for the first tomcatv loops (so the cold round pays real
 * exact-search time, like a client asking for certificates). */
std::vector<BenchRequest>
buildRequests()
{
    const char *suites[] = {"tomcatv", "swim", "hydro2d",
                            "gen:seed=11,loops=4"};
    const MachineConfig machines[] = {makeTwoCluster(),
                                      makeFourCluster()};

    std::vector<BenchRequest> out;
    int next_id = 0;
    for (const char *suite : suites) {
        const auto bench = workloads::benchmarkByName(suite);
        for (const auto &nest : bench.loops) {
            for (const auto &machine : machines) {
                text::ScenarioText scenario{nest, machine};
                BenchRequest req;
                req.id = "r" + std::to_string(next_id++);
                req.payload = "# serve_bench request\n"
                              "config backend rmca\n"
                              "config threshold 0.25\n\n" +
                              text::printScenario(scenario);
                out.push_back(std::move(req));
            }
        }
    }

    const auto tomcatv = workloads::benchmarkByName("tomcatv");
    const std::size_t n_verify =
        tomcatv.loops.size() < 2 ? tomcatv.loops.size() : 2;
    for (std::size_t i = 0; i < n_verify; ++i) {
        for (const auto &machine : machines) {
            text::ScenarioText scenario{tomcatv.loops[i], machine};
            BenchRequest req;
            req.id = "r" + std::to_string(next_id++);
            req.payload = "config backend verify\n"
                          "config threshold 0.25\n\n" +
                          text::printScenario(scenario);
            out.push_back(std::move(req));
        }
    }
    return out;
}

/** Frame a request list into one protocol byte stream: batches of
 * @p batch_size, each closed by FLUSH (the --dump-requests shape). */
std::string
frameRequests(const std::vector<const BenchRequest *> &requests,
              std::size_t batch_size)
{
    std::string out;
    std::size_t in_batch = 0;
    for (const BenchRequest *req : requests) {
        out += "REQ " + req->id + " " +
               std::to_string(req->payload.size()) + "\n";
        out += req->payload;
        out += "\n";
        if (++in_batch == batch_size) {
            out += "FLUSH\n";
            in_batch = 0;
        }
    }
    if (in_batch > 0)
        out += "FLUSH\n";
    return out;
}

/** One client's frame list: each element is fed to the session in one
 * consume() call so the bench can time it. batch[i] is the number of
 * REQs a FLUSH frame serves (0 for REQ frames). */
struct ClientFrames
{
    std::vector<std::string> frames;
    std::vector<std::size_t> batch;
};

ClientFrames
splitFrames(const std::vector<const BenchRequest *> &requests,
            std::size_t batch_size)
{
    ClientFrames out;
    std::size_t in_batch = 0;
    for (const BenchRequest *req : requests) {
        out.frames.push_back("REQ " + req->id + " " +
                             std::to_string(req->payload.size()) +
                             "\n" + req->payload + "\n");
        out.batch.push_back(0);
        if (++in_batch == batch_size) {
            out.frames.push_back("FLUSH\n");
            out.batch.push_back(in_batch);
            in_batch = 0;
        }
    }
    if (in_batch > 0) {
        out.frames.push_back("FLUSH\n");
        out.batch.push_back(in_batch);
    }
    return out;
}

/** Parse REP frames out of a session's emitted bytes. Exits loudly on
 * anything that is not a REP — the bench speaks the protocol
 * correctly, so an ERR here is a real bug. */
void
collectReplies(const std::string &emitted,
               std::map<std::string, std::string> &replies)
{
    std::size_t pos = 0;
    while (pos < emitted.size()) {
        const std::size_t eol = emitted.find('\n', pos);
        if (eol == std::string::npos)
            mvp_fatal("serve_bench: truncated frame header");
        const std::string head = emitted.substr(pos, eol - pos);
        std::size_t sp1 = head.find(' ');
        std::size_t sp2 =
            sp1 == std::string::npos ? sp1 : head.find(' ', sp1 + 1);
        if (head.compare(0, 4, "REP ") != 0 ||
            sp2 == std::string::npos)
            mvp_fatal("serve_bench: unexpected frame '", head, "'");
        const std::string id = head.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t nbytes = static_cast<std::size_t>(
            std::strtoll(head.c_str() + sp2 + 1, nullptr, 10));
        const std::size_t body = eol + 1;
        if (body + nbytes + 1 > emitted.size())
            mvp_fatal("serve_bench: truncated REP payload");
        replies[id] = emitted.substr(body, nbytes);
        pos = body + nbytes + 1;   // payload newline
    }
}

/** Client-side timing of one round: phase samples in microseconds. */
struct RoundResult
{
    double seconds = 0.0;
    std::map<std::string, std::string> replies;
    std::vector<double> queue_us;     ///< one per REQ frame
    std::vector<double> sched_us;     ///< one per FLUSH frame
    std::vector<double> flush_us;     ///< one per client (drain)
    std::vector<double> per_req_us;   ///< queue + amortised schedule
};

/** Run one round: every client session on its own thread, frames fed
 * one consume() at a time so each phase is timed. */
RoundResult
runRound(svc::SchedService &service,
         const std::vector<ClientFrames> &clients)
{
    const std::size_t n = clients.size();
    std::vector<RoundResult> per_client(n);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t c = 0; c < n; ++c)
        threads.emplace_back([&service, &clients, &per_client, c] {
            const ClientFrames &cf = clients[c];
            RoundResult &r = per_client[c];
            svc::ServiceSession session(service);
            std::string emitted;
            std::vector<double> batch_queue;
            for (std::size_t f = 0; f < cf.frames.size(); ++f) {
                const auto t0 = std::chrono::steady_clock::now();
                session.consume(cf.frames[f], emitted);
                const double us =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                if (cf.batch[f] == 0) {
                    r.queue_us.push_back(us);
                    batch_queue.push_back(us);
                } else {
                    r.sched_us.push_back(us);
                    const double share =
                        us / static_cast<double>(cf.batch[f]);
                    for (const double q : batch_queue)
                        r.per_req_us.push_back(q + share);
                    batch_queue.clear();
                }
            }
            const auto t0 = std::chrono::steady_clock::now();
            collectReplies(emitted, r.replies);
            r.flush_us.push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        });
    for (auto &t : threads)
        t.join();

    RoundResult merged;
    merged.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    for (RoundResult &r : per_client) {
        merged.replies.insert(r.replies.begin(), r.replies.end());
        auto append = [](std::vector<double> &dst,
                         std::vector<double> &src) {
            dst.insert(dst.end(), src.begin(), src.end());
        };
        append(merged.queue_us, r.queue_us);
        append(merged.sched_us, r.sched_us);
        append(merged.flush_us, r.flush_us);
        append(merged.per_req_us, r.per_req_us);
    }
    return merged;
}

/** Exact percentile of a sample vector (copy sorts; samples are few). */
double
pct(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = lo + 1 < v.size() ? lo + 1 : lo;
    const double frac = rank - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (const double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

void
printPhase(const char *round, const char *phase,
           const std::vector<double> &samples)
{
    std::printf("serve_phase round=%s phase=%s p50_us=%.1f "
                "p99_us=%.1f mean_us=%.1f\n",
                round, phase, pct(samples, 50.0), pct(samples, 99.0),
                mean(samples));
}

/** Partition requests round-robin across @p n sessions. */
std::vector<ClientFrames>
partition(const std::vector<BenchRequest> &requests, std::size_t n)
{
    std::vector<ClientFrames> out;
    out.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        std::vector<const BenchRequest *> mine;
        for (std::size_t i = c; i < requests.size(); i += n)
            mine.push_back(&requests[i]);
        out.push_back(splitFrames(mine, BATCH_SIZE));
    }
    return out;
}

/** The offline pipeline: parse the payload and schedule it directly —
 * no service, no cache, fresh DDG and locality — rendering the reply
 * through the same functions. This is what the service's replies must
 * match byte for byte. */
std::string
offlineReply(const std::string &payload)
{
    svc::Request req = svc::parseRequest(payload, "<offline>");
    if (!req.error.empty())
        return svc::renderErrorReply(req.error);
    const auto graph =
        ddg::Ddg::build(req.scenario.loop, req.scenario.machine);
    const auto locality = cme::LocalityRegistry::instance().bind(
        req.options.locality, req.scenario.loop);
    sched::SchedulerOptions opt;
    opt.missThreshold = req.options.threshold;
    opt.locality = locality.get();
    opt.localityProvider = req.options.locality;
    opt.searchBudget = req.options.nodeBudget;
    opt.timeBudgetMs = req.options.timeBudgetMs;
    opt.exactBackend = req.options.exactBackend;
    opt.searchJobs = 1;
    const auto result = sched::scheduleWithBackend(
        req.options.backend, graph, req.scenario.machine, opt);
    if (!result.ok)
        return svc::renderErrorReply(result.error);
    return svc::renderReply(req, result);
}

} // namespace

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    const int jobs = harness::parseJobsFlag(argc, argv);

    int clients = 4;
    int rounds = 3;
    bool check = false;
    bool gate = false;
    const std::string clients_s =
        harness::stripValueFlag(argc, argv, "--clients", "client count");
    if (!clients_s.empty())
        clients = std::atoi(clients_s.c_str());
    const std::string rounds_s =
        harness::stripValueFlag(argc, argv, "--rounds", "round count");
    if (!rounds_s.empty())
        rounds = std::atoi(rounds_s.c_str());
    const std::string dump = harness::stripValueFlag(
        argc, argv, "--dump-requests", "output file");
    const std::string sessions_s = harness::stripValueFlag(
        argc, argv, "--sessions", "session-count list");
    check = harness::stripBoolFlag(argc, argv, "--check");
    gate = harness::stripBoolFlag(argc, argv, "--gate");
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--clients", "--rounds",
                                 "--check", "--gate", "--sessions",
                                 "--dump-requests", "--log-level",
                                 "--metrics", "--trace"});
    if (clients < 1 || rounds < 2)
        mvp_fatal("serve_bench wants --clients >= 1 and --rounds >= 2 "
                  "(one cold round plus warm rounds)");

    std::vector<std::size_t> scale_sessions;
    for (std::size_t pos = 0; pos < sessions_s.size();) {
        const std::size_t comma = sessions_s.find(',', pos);
        const std::string tok = sessions_s.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        const int v = std::atoi(tok.c_str());
        if (v < 1)
            mvp_fatal("--sessions wants positive counts, got '", tok,
                      "'");
        scale_sessions.push_back(static_cast<std::size_t>(v));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }

    const std::vector<BenchRequest> requests = buildRequests();

    if (!dump.empty()) {
        std::vector<const BenchRequest *> all;
        for (const auto &req : requests)
            all.push_back(&req);
        std::ofstream out(dump, std::ios::binary | std::ios::trunc);
        if (!out)
            mvp_fatal("cannot write '", dump, "'");
        const std::string stream =
            frameRequests(all, BATCH_SIZE) + "QUIT\n";
        out.write(stream.data(),
                  static_cast<std::streamsize>(stream.size()));
        std::printf("dumped %zu requests to %s\n", requests.size(),
                    dump.c_str());
        return 0;
    }

    svc::SchedService service(jobs);

    // Partition requests across clients once; every round replays the
    // same per-client frame lists.
    const std::vector<ClientFrames> client_frames =
        partition(requests, static_cast<std::size_t>(clients));

    std::map<std::string, std::string> cold_replies;
    double cold_sps = 0.0;
    double warm_seconds = 0.0;
    std::int64_t warm_requests = 0;
    RoundResult cold;
    RoundResult warm;   // phase samples accumulated over warm rounds

    for (int round = 0; round < rounds; ++round) {
        RoundResult r = runRound(service, client_frames);
        if (r.replies.size() != requests.size())
            mvp_fatal("round ", round, " returned ", r.replies.size(),
                      " replies for ", requests.size(), " requests");
        if (round == 0) {
            cold_sps =
                static_cast<double>(requests.size()) / r.seconds;
            cold = std::move(r);
            cold_replies = cold.replies;
        } else {
            for (const auto &[id, payload] : r.replies)
                if (payload != cold_replies.at(id))
                    mvp_fatal("warm reply for ", id,
                              " differs from its cold reply — the "
                              "cache leaked into the bytes");
            warm_seconds += r.seconds;
            warm_requests +=
                static_cast<std::int64_t>(requests.size());
            auto append = [](std::vector<double> &dst,
                             const std::vector<double> &src) {
                dst.insert(dst.end(), src.begin(), src.end());
            };
            append(warm.queue_us, r.queue_us);
            append(warm.sched_us, r.sched_us);
            append(warm.flush_us, r.flush_us);
            append(warm.per_req_us, r.per_req_us);
        }
    }

    if (check) {
        for (const auto &req : requests)
            if (offlineReply(req.payload) != cold_replies.at(req.id))
                mvp_fatal("service reply for ", req.id,
                          " differs from the offline pipeline");
        std::printf("check: %zu replies match the offline pipeline\n",
                    requests.size());
    }

    std::string fold;
    for (const auto &req : requests)
        fold += cold_replies.at(req.id);
    const std::uint64_t fingerprint = fnv1a(fold);

    const double warm_sps =
        warm_seconds > 0.0
            ? static_cast<double>(warm_requests) / warm_seconds
            : 0.0;
    const double speedup = cold_sps > 0.0 ? warm_sps / cold_sps : 0.0;
    const auto st = service.stats();
    const double hit_rate =
        st.requests > 0 ? static_cast<double>(st.cacheHits) /
                              static_cast<double>(st.requests)
                        : 0.0;
    const double raw_hit_rate =
        st.requests > 0 ? static_cast<double>(st.rawHits) /
                              static_cast<double>(st.requests)
                        : 0.0;
    const double warm_p50 = pct(warm.per_req_us, 50.0);
    const double warm_p99 = pct(warm.per_req_us, 99.0);

    std::printf("serve jobs=%d clients=%d requests=%zu rounds=%d "
                "cold_sps=%.1f warm_sps=%.1f speedup=%.1f "
                "hit_rate=%.3f raw_hit_rate=%.3f "
                "p50_us=%.1f p99_us=%.1f "
                "warm_p50_us=%.1f warm_p99_us=%.1f "
                "fingerprint=0x%016llx\n",
                service.jobs(), clients, requests.size(), rounds,
                cold_sps, warm_sps, speedup, hit_rate, raw_hit_rate,
                st.latencyP50Us, st.latencyP99Us, warm_p50, warm_p99,
                static_cast<unsigned long long>(fingerprint));

    printPhase("cold", "queue", cold.queue_us);
    printPhase("cold", "schedule", cold.sched_us);
    printPhase("cold", "flush", cold.flush_us);
    printPhase("warm", "queue", warm.queue_us);
    printPhase("warm", "schedule", warm.sched_us);
    printPhase("warm", "flush", warm.flush_us);

    // Scaling sweep against the now-warm service: how does warm
    // throughput hold up as session counts grow?
    for (const std::size_t s : scale_sessions) {
        const auto frames = partition(requests, s);
        RoundResult r = runRound(service, frames);
        if (r.replies.size() != requests.size())
            mvp_fatal("scale round at ", s, " sessions returned ",
                      r.replies.size(), " replies");
        for (const auto &[id, payload] : r.replies)
            if (payload != cold_replies.at(id))
                mvp_fatal("scale reply for ", id,
                          " differs from its cold reply");
        std::printf("serve_scale sessions=%zu warm_sps=%.1f "
                    "p99_us=%.1f\n",
                    s,
                    static_cast<double>(requests.size()) / r.seconds,
                    pct(r.per_req_us, 99.0));
    }

    bool failed = false;
    if (gate && speedup < 5.0) {
        std::fprintf(stderr,
                     "serve_bench: warm/cold speedup %.1f is below "
                     "the 5x gate\n",
                     speedup);
        failed = true;
    }
    if (gate && warm_p99 > WARM_P99_GATE_US) {
        std::fprintf(stderr,
                     "serve_bench: warm per-request p99 %.1f us is "
                     "above the %.0f us gate\n",
                     warm_p99, WARM_P99_GATE_US);
        failed = true;
    }
    return failed ? 1 : 0;
}
