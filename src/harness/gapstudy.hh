/**
 * @file
 * Optimality-gap study: schedule every workbench loop with the rmca
 * heuristic and the exact branch-and-bound backend and tabulate the II
 * gap — the repo's analogue of the heuristic-vs-exact comparisons in
 * the SMT/SAT exact-modulo-scheduling literature (Roorda; Tirelli et
 * al.). Loops the exact search cannot settle within its node budget
 * are reported as "gap unknown" rather than guessed.
 */

#ifndef MVP_HARNESS_GAPSTUDY_HH
#define MVP_HARNESS_GAPSTUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace mvp::harness
{

/** Per-loop outcome of the gap study. */
struct GapRow
{
    std::string benchmark;
    std::string loop;
    Cycle mii = 0;
    Cycle heuristicII = 0;
    Cycle exactII = 0;        ///< 0 when the exact search did not settle
    Cycle gap = 0;            ///< heuristicII - exactII (when known)
    bool gapKnown = false;    ///< exact solved within budget
    bool provenOptimal = false;   ///< exact II carries a certificate
    std::int64_t searchNodes = 0;
};

/** Whole-suite outcome plus per-benchmark aggregates. */
struct GapStudy
{
    std::vector<GapRow> rows;

    /** Rows with a known gap. */
    int known() const;

    /** Rows where the heuristic was optimal (gap == 0, known). */
    int tight() const;

    /** Sum of known gaps (cycles of II lost by the heuristic). */
    Cycle totalGap() const;
};

/**
 * Run the study over every loop of @p bench on @p machine, with the
 * rmca heuristic at @p threshold and the exact backend under
 * @p search_budget nodes per loop, sharding loops across @p driver.
 * The exact search is the workload this sharding was built for: a
 * single hard loop can cost ~10^3x an easy one, and the driver's
 * dynamic item claiming keeps the pool busy around it. Rows come back
 * in workbench order regardless of the job count. The heuristic's
 * cluster assignment consults the locality provider named by
 * @p locality (cme/provider.hh; empty is read as "cme").
 */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     double threshold, std::int64_t search_budget,
                     ParallelDriver &driver,
                     const std::string &locality = "cme");

/** runGapStudy on a default-sized driver (MVP_JOBS / hardware size). */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     double threshold = 0.25,
                     std::int64_t search_budget =
                         sched::DEFAULT_SEARCH_BUDGET,
                     const std::string &locality = "cme");

/**
 * Render the study: one row per loop plus a per-benchmark aggregate
 * block (loops, gaps known, heuristic-optimal count, total gap).
 */
std::string formatGapTable(const GapStudy &study);

} // namespace mvp::harness

#endif // MVP_HARNESS_GAPSTUDY_HH
