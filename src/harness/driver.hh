/**
 * @file
 * Sharded deterministic experiment driver.
 *
 * The paper's results are whole-suite sweeps — every (loop, machine,
 * scheduler, threshold) point over eight benchmark suites — and each
 * point is independent of every other: the scheduler takes an explicit
 * SchedContext (sched/context.hh) and the per-loop CME analysis answers
 * concurrent queries deterministically. The ParallelDriver exploits
 * that: work items are claimed dynamically from a shared queue by a
 * --jobs-sized pool (an idle worker steals the next unclaimed item, so
 * an expensive loop never serialises the sweep behind it), each worker
 * owns one SchedContext for its whole lifetime (warm buffers across
 * items), and results land in their item's slot so callers merge them
 * in canonical (benchmark, loop, config) order.
 *
 * Determinism contract: every output — suite tables, gap tables, golden
 * schedule fingerprints — is byte-identical for jobs=1 and jobs=N,
 * enforced by tests/driver_test.cc. The pieces that make this true:
 * per-item results are pure functions of the item (no cross-item
 * state), CME sampling seeds derive from query keys rather than query
 * order, and the merge step runs in item order on one thread.
 */

#ifndef MVP_HARNESS_DRIVER_HH
#define MVP_HARNESS_DRIVER_HH

#include <cstddef>
#include <functional>

#include "sched/context.hh"

namespace mvp::harness
{

/**
 * Worker count to use when the caller does not say: the MVP_JOBS
 * environment variable when set (>= 1), otherwise the hardware
 * concurrency, always at least 1.
 */
int defaultJobs();

/**
 * Parse and strip a `--jobs N` / `--jobs=N` flag from an argv vector
 * (the bench and example binaries all share this). Returns 0 when the
 * flag is absent — the ParallelDriver constructor maps 0 to
 * defaultJobs().
 */
int parseJobsFlag(int &argc, char **argv);

/**
 * A fixed-size worker pool that shards independent work items.
 *
 * One driver may run any number of sweeps; threads are spawned per
 * run() call (a sweep runs for seconds — thread startup is noise) and
 * joined before it returns. Item indices are claimed atomically, so
 * scheduling is dynamic: workers that finish early steal the remaining
 * items of slower ones.
 */
class ParallelDriver
{
  public:
    /** @p jobs <= 0 means defaultJobs(). */
    explicit ParallelDriver(int jobs = 0);

    /** The worker count run() will use. */
    int jobs() const { return jobs_; }

    /**
     * Run @p work(item, ctx) for every item index in [0, n). @p ctx is
     * the claiming worker's private SchedContext — reused across all
     * items that worker claims, never shared between workers. Blocks
     * until every item has completed. @p work must not touch shared
     * mutable state other than its own item's result slot (and the
     * thread-safe analyses).
     */
    void run(std::size_t n,
             const std::function<void(std::size_t, sched::SchedContext &)>
                 &work) const;

  private:
    int jobs_;
};

} // namespace mvp::harness

#endif // MVP_HARNESS_DRIVER_HH
