/**
 * @file
 * Reuse-vector analysis for affine references (Wolf & Lam style),
 * restricted to what the CME framework and the tests need: self reuse of
 * a single reference along the innermost loop, and group reuse between
 * uniformly generated reference pairs.
 */

#ifndef MVP_CME_REUSE_HH
#define MVP_CME_REUSE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "ir/loop.hh"

namespace mvp::cme
{

/** Kinds of reuse between or within references. */
enum class ReuseKind
{
    None,           ///< no reuse along the innermost loop
    SelfTemporal,   ///< same element revisited every iteration
    SelfSpatial,    ///< same line revisited in consecutive iterations
    GroupTemporal,  ///< another reference touches the same element
    GroupSpatial,   ///< another reference touches the same line
};

/** Printable name. */
std::string_view reuseKindName(ReuseKind kind);

/** A group-reuse relation between two references. */
struct GroupReuse
{
    OpId from = INVALID_ID;   ///< leading reference (touches data first)
    OpId to = INVALID_ID;     ///< trailing reference (reuses it)
    ReuseKind kind = ReuseKind::None;

    /**
     * Iteration distance of the reuse along the innermost loop
     * (0 = same iteration).
     */
    std::int64_t distance = 0;
};

/**
 * Reuse analysis bound to one loop nest.
 */
class ReuseAnalysis
{
  public:
    explicit ReuseAnalysis(const ir::LoopNest &nest);

    /**
     * Byte stride of @p op 's address per innermost-loop iteration
     * (constant because the reference is affine).
     */
    std::int64_t innerStrideBytes(OpId op) const;

    /**
     * Self reuse of @p op along the innermost loop for a given line
     * size: SelfTemporal when the stride is 0, SelfSpatial when
     * 0 < |stride| < line, otherwise None.
     */
    ReuseKind selfReuse(OpId op, int line_bytes) const;

    /**
     * Constant byte distance between two uniformly generated references
     * (addr(a) - addr(b) at equal iteration points); nullopt when the
     * pair is not uniformly generated.
     */
    std::optional<std::int64_t> byteDelta(OpId a, OpId b) const;

    /**
     * All group-reuse relations among @p set for the given line size.
     * Pairs must be uniformly generated; the leading reference is the
     * one that touches the line first in execution order.
     */
    std::vector<GroupReuse> groupPairs(const std::vector<OpId> &set,
                                       int line_bytes) const;

  private:
    const ir::LoopNest &nest_;
};

} // namespace mvp::cme

#endif // MVP_CME_REUSE_HH
