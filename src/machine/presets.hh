/**
 * @file
 * The three machine configurations of Table 1 plus helpers to apply the
 * bus sweeps of Figures 5 and 6.
 */

#ifndef MVP_MACHINE_PRESETS_HH
#define MVP_MACHINE_PRESETS_HH

#include "machine/machine.hh"

namespace mvp
{

/**
 * Unified: 1 cluster, 4 FUs of each class, 64 registers, 8KB L1.
 * The paper's normalisation baseline.
 */
MachineConfig makeUnified();

/** 2-cluster: 2 x (2 INT + 2 FP + 2 MEM), 32 regs/cluster, 4KB L1 each. */
MachineConfig makeTwoCluster();

/** 4-cluster: 4 x (1 INT + 1 FP + 1 MEM), 16 regs/cluster, 2KB L1 each. */
MachineConfig makeFourCluster();

/** Preset by cluster count (1, 2 or 4). */
MachineConfig makeConfig(int clusters);

/**
 * Apply the unbounded-bus study parameters of Figure 5: unbounded
 * register and memory buses with the given latencies.
 */
MachineConfig withUnboundedBuses(MachineConfig cfg, Cycle reg_bus_latency,
                                 Cycle mem_bus_latency);

/**
 * Apply the realistic-bus study parameters of Figure 6: 2 register buses
 * at 1-cycle latency, @p n_mem_buses memory buses at @p mem_bus_latency.
 */
MachineConfig withLimitedBuses(MachineConfig cfg, int n_mem_buses,
                               Cycle mem_bus_latency);

} // namespace mvp

#endif // MVP_MACHINE_PRESETS_HH
