#include "cme/oracle.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mvp::cme
{

namespace
{

/** Per-thread canonical-set buffer (the oracle is shared by workers). */
std::vector<OpId> &
canonicalScratch()
{
    static thread_local std::vector<OpId> scratch;
    return scratch;
}

} // namespace

CacheOracle::CacheOracle(const ir::LoopNest &nest) : nest_(nest) {}

const CacheOracle::SimResult &
CacheOracle::simulate(const std::vector<OpId> &set, const CacheGeom &geom)
{
    const detail::QueryKeyRef ref{
        detail::queryHash(geom, INVALID_ID, set), &geom, INVALID_ID, &set};
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto it = memo_.find(ref); it != memo_.end())
            return it->second;
    }

    const std::int64_t num_sets = geom.numSets();
    const auto assoc = static_cast<std::size_t>(geom.assoc);
    // tags[set * assoc + way], most-recently-used way first.
    std::vector<std::int64_t> tags(
        static_cast<std::size_t>(num_sets) * assoc, -1);

    SimResult res;
    for (OpId op : set)
        res.misses[op] = 0;

    const ir::IterationSpace space(nest_);
    res.points = space.points();
    std::vector<std::int64_t> ivs;
    for (std::int64_t p = 0; p < space.points(); ++p) {
        space.at(p, ivs);
        for (OpId op_id : set) {
            const auto &op = nest_.op(op_id);
            const Addr addr = nest_.addressOf(*op.memRef, ivs);
            const std::int64_t line = geom.lineOf(addr);
            const auto set_idx =
                static_cast<std::size_t>(line % num_sets) * assoc;

            bool hit = false;
            for (std::size_t w = 0; w < assoc; ++w) {
                if (tags[set_idx + w] == line) {
                    // Move to MRU position.
                    for (std::size_t k = w; k > 0; --k)
                        tags[set_idx + k] = tags[set_idx + k - 1];
                    tags[set_idx] = line;
                    hit = true;
                    break;
                }
            }
            if (!hit) {
                ++res.misses[op_id];
                for (std::size_t k = assoc - 1; k > 0; --k)
                    tags[set_idx + k] = tags[set_idx + k - 1];
                tags[set_idx] = line;
            }
        }
    }

    // A concurrent simulation of the same set may have inserted first;
    // emplace then keeps the winner. Both results are identical (the
    // trace simulation is deterministic), so callers cannot tell.
    std::lock_guard<std::mutex> lock(mu_);
    return memo_
        .emplace(detail::QueryKey{ref.hash, geom, INVALID_ID, set},
                 std::move(res))
        .first->second;
}

double
CacheOracle::missesPerIteration(const std::vector<OpId> &set,
                                const CacheGeom &geom)
{
    if (set.empty())
        return 0.0;
    const SimResult &res =
        simulate(detail::canonicalInto(canonicalScratch(), set), geom);
    std::int64_t total = 0;
    for (const auto &[op, misses] : res.misses)
        total += misses;
    return static_cast<double>(total) / static_cast<double>(res.points);
}

double
CacheOracle::missRatio(const std::vector<OpId> &set, OpId op,
                       const CacheGeom &geom)
{
    mvp_assert(nest_.op(op).isMemory(), "missRatio of a non-memory op");
    const SimResult &res =
        simulate(detail::canonicalInto(canonicalScratch(), set, op), geom);
    return static_cast<double>(res.misses.at(op)) /
           static_cast<double>(res.points);
}

std::unordered_map<OpId, std::int64_t>
CacheOracle::missCounts(const std::vector<OpId> &set, const CacheGeom &geom)
{
    return simulate(detail::canonicalInto(canonicalScratch(), set), geom).misses;
}

} // namespace mvp::cme
