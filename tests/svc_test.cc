/**
 * @file
 * The scheduling service: cache-key canonicalization, cold/warm byte
 * identity, warm-state persistence, batch determinism and the framed
 * protocol session.
 *
 *  - Textual request variants (whitespace, comments, block order,
 *    option order, redundant defaults) produce one canonical key and
 *    hit one cache entry, with byte-identical replies.
 *  - A warm service replays cold replies byte for byte, and a service
 *    rebuilt from encodeState() does the same — including the
 *    encode(decode(s)) == s round trip of the snapshot itself.
 *  - Batches are deterministic across --jobs and arrival order.
 *  - The session survives malformed payloads (error REP, not a dead
 *    server), keeps REP ids aligned with submission order, and the
 *    CME/oracle memo export/import APIs round-trip.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"
#include "svc/protocol.hh"
#include "svc/service.hh"
#include "svc/session.hh"
#include "text/format.hh"
#include "workloads/workloads.hh"

namespace mvp::svc
{
namespace
{

/** A small mixed request set: two suites, two machines, rmca. */
std::vector<std::string>
samplePayloads()
{
    std::vector<std::string> out;
    for (const char *suite : {"tomcatv", "swim"}) {
        const auto bench = workloads::benchmarkByName(suite);
        for (const auto &nest : bench.loops) {
            for (const auto &machine :
                 {makeTwoCluster(), makeFourCluster()}) {
                const text::ScenarioText scenario{nest, machine};
                out.push_back("config backend rmca\n"
                              "config threshold 0.25\n\n" +
                              text::printScenario(scenario));
            }
        }
    }
    return out;
}

std::vector<Request>
parseAll(const std::vector<std::string> &payloads)
{
    std::vector<Request> out;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        Request req = parseRequest(payloads[i]);
        req.id = "r" + std::to_string(i);
        EXPECT_EQ(req.error, "");
        out.push_back(std::move(req));
    }
    return out;
}

TEST(SvcProtocol, ScenarioPrintParseRoundTrips)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string printed = text::printScenario(scenario);
    const auto reparsed = text::parseScenario(printed, "round-trip");
    EXPECT_EQ(text::printScenario(reparsed), printed);
}

/** The canonicalization contract: every textual variant of one
 * request — comments, whitespace, block order, option order,
 * redundant defaults, equivalent number spellings — is one key. */
TEST(SvcProtocol, TextualVariantsShareOneCacheKey)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string loop_text = text::printLoop(scenario.loop);
    const std::string machine_text =
        text::printMachine(scenario.machine);

    const std::string plain = "config backend rmca\n"
                              "config threshold 0.25\n\n" +
                              loop_text + "\n" + machine_text;

    // Comments, blank lines, option order, explicit defaults, the
    // machine block before the loop block, a trailing-zero threshold.
    const std::string variant = "# a comment\n"
                                "\n"
                                "config threshold 0.250\n"
                                "config locality cme\n"
                                "config backend rmca\n"
                                "config exact-backend exact\n"
                                "# another comment\n" +
                                machine_text + "\n# between blocks\n" +
                                loop_text + "\n";

    const Request a = parseRequest(plain);
    const Request b = parseRequest(variant);
    ASSERT_EQ(a.error, "");
    ASSERT_EQ(b.error, "");
    EXPECT_EQ(a.key, b.key);

    // And a semantically different request must not collide.
    const std::string other = "config backend rmca\n"
                              "config threshold 0.75\n\n" +
                              loop_text + "\n" + machine_text;
    const Request c = parseRequest(other);
    ASSERT_EQ(c.error, "");
    EXPECT_NE(a.key, c.key);
}

TEST(SvcProtocol, MalformedPayloadsReportInsteadOfExiting)
{
    const Request bad = parseRequest("loop garbage {", "test");
    EXPECT_NE(bad.error, "");
    const Request empty = parseRequest("config backend rmca\n");
    EXPECT_NE(empty.error, "");
    const Request unknown =
        parseRequest("config frobnicate 3\nloop \"x\" {\n}\n");
    EXPECT_NE(unknown.error.find("unknown config key"),
              std::string::npos);
}

/** One service, same batch twice: the warm pass is all cache hits and
 * byte-identical; a canonical variant of a request also hits. */
TEST(SvcService, WarmRepliesAreByteIdenticalToCold)
{
    const auto payloads = samplePayloads();
    SchedService service(2);

    auto cold = service.processBatch(parseAll(payloads));
    auto warm = service.processBatch(parseAll(payloads));
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_FALSE(cold[i].cacheHit) << i;
        EXPECT_TRUE(warm[i].cacheHit) << i;
        EXPECT_EQ(cold[i].payload, warm[i].payload) << i;
    }

    const auto st = service.stats();
    EXPECT_EQ(st.requests,
              static_cast<std::int64_t>(2 * payloads.size()));
    EXPECT_EQ(st.cacheHits,
              static_cast<std::int64_t>(payloads.size()));
    EXPECT_EQ(st.cacheEntries,
              static_cast<std::int64_t>(payloads.size()));

    // A reordered textual variant of request 0 is a hit too.
    const Request plain = parseRequest(payloads[0]);
    std::string variant_payload =
        "# variant\nconfig threshold 0.250\nconfig backend rmca\n" +
        payloads[0].substr(payloads[0].find("\n\n") + 2);
    Request variant = parseRequest(variant_payload);
    ASSERT_EQ(variant.key, plain.key);
    const auto hit = service.processOne(std::move(variant));
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.payload, cold[0].payload);
}

/** Replies are a pure function of the request: job counts and arrival
 * order are invisible in the bytes. */
TEST(SvcService, BatchesAreDeterministicAcrossJobsAndOrder)
{
    const auto payloads = samplePayloads();

    SchedService serial(1);
    const auto a = serial.processBatch(parseAll(payloads));

    // Same requests, more workers, reversed arrival order.
    std::vector<std::string> reversed(payloads.rbegin(),
                                      payloads.rend());
    SchedService pooled(8);
    const auto b = pooled.processBatch(parseAll(reversed));

    ASSERT_EQ(a.size(), b.size());
    const std::size_t n = a.size();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i].payload, b[n - 1 - i].payload) << i;
}

/** Warm-state persistence: a service rebuilt from a snapshot replays
 * every reply byte-identically from its cache, and the snapshot
 * itself round-trips (encode(decode(s)) == s). */
TEST(SvcService, WarmStateRoundTripsAcrossServices)
{
    auto payloads = samplePayloads();
    // Add an oracle-provider request so the snapshot carries oracle
    // checkpoints alongside the CME memo.
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    payloads.push_back("config backend rmca\n"
                       "config locality oracle\n"
                       "config threshold 0.25\n\n" +
                       text::printScenario(scenario));

    SchedService first(2);
    const auto cold = first.processBatch(parseAll(payloads));
    const std::string snapshot = first.encodeState();

    // Deterministic encoding: same state, same bytes.
    EXPECT_EQ(first.encodeState(), snapshot);

    SchedService second(2);
    second.decodeState(snapshot, "test-snapshot");
    EXPECT_EQ(second.encodeState(), snapshot);

    const auto warm = second.processBatch(parseAll(payloads));
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].cacheHit) << i;
        EXPECT_EQ(warm[i].payload, cold[i].payload) << i;
    }
}

TEST(SvcService, DecodeRejectsVersionSkewInsideFatalScope)
{
    SchedService service(1);
    FatalScope guard;
    EXPECT_THROW(
        service.decodeState("mvp-warm-state 999\ncache 0\nloops 0\nend\n",
                            "skewed"),
        FatalError);
    EXPECT_THROW(service.decodeState("not a snapshot", "garbage"),
                 FatalError);
}

/** The framed protocol: byte-at-a-time feeding, malformed payloads
 * answered with error REPs (ids aligned, session alive), STATS, QUIT. */
TEST(SvcSession, ChunkedFramesMalformedPayloadsAndQuit)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string good = "config backend rmca\n"
                             "config threshold 0.25\n\n" +
                             text::printScenario(scenario);
    const std::string bad = "loop garbage {";

    std::string stream;
    stream += "REQ good " + std::to_string(good.size()) + "\n" + good +
              "\n";
    stream += "REQ bad " + std::to_string(bad.size()) + "\n" + bad +
              "\n";
    stream += "FLUSH\n";
    stream += "STATS\n";
    stream += "QUIT\n";

    SchedService service(2);
    ServiceSession session(service);
    std::string out;
    bool open = true;
    for (const char c : stream)
        open = session.consume(&c, 1, out);
    EXPECT_FALSE(open);
    EXPECT_TRUE(session.closed());

    // Two REPs in submission order, then STATS, then BYE.
    ASSERT_EQ(out.compare(0, 9, "REP good "), 0) << out.substr(0, 40);
    const std::size_t bad_at = out.find("REP bad ");
    ASSERT_NE(bad_at, std::string::npos);
    const std::size_t err_at = out.find("status error", bad_at);
    EXPECT_NE(err_at, std::string::npos);
    EXPECT_NE(out.find("\nSTATS "), std::string::npos);
    EXPECT_EQ(out.compare(out.size() - 4, 4, "BYE\n"), 0);

    // The good reply matches a direct computation of the same
    // request.
    const auto direct = SchedService(1).processOne(parseRequest(good));
    const std::size_t head_end = out.find('\n');
    const std::size_t nbytes = static_cast<std::size_t>(
        std::atoll(out.c_str() + 9));
    EXPECT_EQ(out.substr(head_end + 1, nbytes), direct.payload);
}

TEST(SvcSession, FramingErrorsCloseTheSession)
{
    SchedService service(1);
    ServiceSession session(service);
    std::string out;
    EXPECT_FALSE(session.consume(std::string("NONSENSE 3\n"), out));
    EXPECT_NE(out.find("unknown command"), std::string::npos);
    // Input after close is ignored.
    out.clear();
    EXPECT_FALSE(session.consume(std::string("STATS\n"), out));
    EXPECT_EQ(out, "");
}

TEST(SvcFlags, UnknownFlagsAreFatalWithTheKnownList)
{
    const char *argv_c[] = {"prog", "--localty=oracle"};
    char **argv = const_cast<char **>(argv_c);
    EXPECT_EXIT(harness::rejectUnknownFlags(2, argv,
                                            {"--jobs", "--locality"}),
                testing::ExitedWithCode(1),
                "unknown flag '--localty'");
}

} // namespace
} // namespace mvp::svc
