#include "cme/solver.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/strutil.hh"

namespace mvp::cme
{

namespace
{

/**
 * Per-thread working buffers of the solver. The analysis object is
 * shared by every worker of a parallel sweep, so the scratch cannot
 * live in the object; per-thread buffers keep the hot path
 * allocation-free exactly as the member buffers did single-threaded.
 */
struct SolverScratch
{
    std::vector<OpId> canonical;          ///< canonical-set buffer
    std::vector<std::int64_t> ivs;        ///< iteration-vector buffer
    std::vector<std::int64_t> conflicts;  ///< isMiss interference buffer
};

SolverScratch &
solverScratch()
{
    static thread_local SolverScratch scratch;
    return scratch;
}

} // namespace

CmeAnalysis::CmeAnalysis(const ir::LoopNest &nest, CmeParams params)
    : nest_(nest), params_(params), space_(nest)
{
    mvp_assert(params_.minSamples > 0 && params_.maxSamples >=
               params_.minSamples, "bad CME sampling parameters");
}

std::string
CmeAnalysis::samplingKey(const std::vector<OpId> &set, OpId op,
                         const CacheGeom &geom)
{
    std::string key;
    key.reserve(16 + set.size() * 4);
    key += std::to_string(geom.capacityBytes);
    key += '/';
    key += std::to_string(geom.lineBytes);
    key += '/';
    key += std::to_string(geom.assoc);
    key += ':';
    key += std::to_string(op);
    key += '|';
    for (OpId o : set) {
        key += std::to_string(o);
        key += ',';
    }
    return key;
}

bool
CmeAnalysis::isMiss(const std::vector<OpId> &set, std::size_t ref_pos,
                    std::int64_t point, const CacheGeom &geom,
                    std::vector<std::int64_t> &ivs,
                    std::vector<std::int64_t> &conflicts)
{
    points_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t num_sets = geom.numSets();
    mvp_assert(num_sets > 0, "cache with no sets");

    space_.at(point, ivs);

    const auto &target_op = nest_.op(set[ref_pos]);
    const Addr target_addr = nest_.addressOf(*target_op.memRef, ivs);
    const std::int64_t target_line = geom.lineOf(target_addr);
    const std::int64_t target_set = target_line % num_sets;

    // Distinct interfering lines seen so far in the target set.
    conflicts.clear();
    conflicts.reserve(static_cast<std::size_t>(geom.assoc));

    std::int64_t cur_point = point;
    auto cur_pos = static_cast<std::int64_t>(ref_pos);
    int walked = 0;

    auto step_back = [&]() -> bool {
        if (--cur_pos >= 0)
            return true;
        if (cur_point == 0)
            return false;   // start of the stream: cold equation fires
        --cur_point;
        cur_pos = static_cast<std::int64_t>(set.size()) - 1;
        // Decrement the IV vector in place (borrow from inner to outer).
        for (std::size_t d = nest_.depth(); d-- > 0;) {
            const auto &l = nest_.loops()[d];
            if (ivs[d] - l.step >= l.lower) {
                ivs[d] -= l.step;
                break;
            }
            ivs[d] = l.lower + (l.tripCount() - 1) * l.step;
        }
        return true;
    };

    while (step_back()) {
        if (++walked > params_.maxWalk)
            return true;   // reuse beyond the window: treat as miss
        const auto &op = nest_.op(set[static_cast<std::size_t>(cur_pos)]);
        const Addr addr = nest_.addressOf(*op.memRef, ivs);
        const std::int64_t line = geom.lineOf(addr);
        if (line == target_line) {
            // Reuse source found: the replacement equation fires iff the
            // interference already filled the set.
            return static_cast<int>(conflicts.size()) >= geom.assoc;
        }
        if (line % num_sets == target_set &&
            std::find(conflicts.begin(), conflicts.end(), line) ==
                conflicts.end()) {
            conflicts.push_back(line);
            if (static_cast<int>(conflicts.size()) >= geom.assoc)
                return true;   // set already refilled: guaranteed miss
        }
    }
    return true;   // no earlier access: cold miss
}

double
CmeAnalysis::solveRatio(const std::vector<OpId> &set, OpId op,
                        const CacheGeom &geom)
{
    const detail::QueryKeyRef ref{detail::queryHash(geom, op, set), &geom,
                                  op, &set};
    if (double hit; memo_.lookup(ref, &hit))
        return hit;
    queries_.fetch_add(1, std::memory_order_relaxed);

    const auto pos_it = std::find(set.begin(), set.end(), op);
    mvp_assert(pos_it != set.end(), "op not in reference set");
    const auto ref_pos =
        static_cast<std::size_t>(pos_it - set.begin());

    SolverScratch &scratch = solverScratch();
    double ratio;
    const std::int64_t points = space_.points();
    if (points <= params_.maxSamples) {
        // Exhaustive mode: evaluate every iteration point.
        std::int64_t misses = 0;
        for (std::int64_t p = 0; p < points; ++p)
            misses += isMiss(set, ref_pos, p, geom, scratch.ivs,
                             scratch.conflicts)
                          ? 1
                          : 0;
        ratio = static_cast<double>(misses) / static_cast<double>(points);
    } else {
        // The sampling seed is a pure function of the query key, so two
        // threads racing on the same fresh query draw identical sample
        // sequences and compute identical ratios.
        Rng rng(params_.seed ^ fnv1a(samplingKey(set, op, geom)));
        RunningStat stat;
        while (static_cast<int>(stat.count()) < params_.maxSamples) {
            const auto p = static_cast<std::int64_t>(
                rng.nextBounded(static_cast<std::uint64_t>(points)));
            stat.add(isMiss(set, ref_pos, p, geom, scratch.ivs,
                            scratch.conflicts)
                         ? 1.0
                         : 0.0);
            if (static_cast<int>(stat.count()) >= params_.minSamples &&
                stat.ciHalfWidth() <= params_.ciTarget)
                break;
        }
        ratio = stat.mean();
    }

    return memo_.tryInsert(ref, ratio);
}

double
CmeAnalysis::missRatio(const std::vector<OpId> &set, OpId op,
                       const CacheGeom &geom)
{
    mvp_assert(nest_.op(op).isMemory(), "missRatio of a non-memory op");
    return solveRatio(
        detail::canonicalInto(solverScratch().canonical, set, op), op,
        geom);
}

double
CmeAnalysis::missesPerIteration(const std::vector<OpId> &set,
                                const CacheGeom &geom)
{
    const std::vector<OpId> &s =
        detail::canonicalInto(solverScratch().canonical, set);
    double total = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i)
        total += solveRatio(s, s[i], geom);
    return total;
}

} // namespace mvp::cme
