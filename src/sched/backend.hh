/**
 * @file
 * Pluggable scheduler backends.
 *
 * A SchedulerBackend turns (DDG, machine, options) into a
 * ScheduleResult; the registry maps stable string names to factories so
 * the harness, benches, examples and tests select schedulers by name
 * instead of hard-wiring engine types. Built-in backends:
 *
 *  - "baseline"  the register-affinity heuristic of [22];
 *  - "rmca"      the paper's memory-aware heuristic;
 *  - "exact"     the branch-and-bound scheduler of sched/exact/ that
 *                provably minimises II (register pressure as tiebreak)
 *                within a node budget;
 *  - "verify"    runs the heuristic (rmca) and the exact backend on the
 *                same loop and reports the II optimality gap in the
 *                returned stats (gapKnown / exactII / iiGap), keeping
 *                the heuristic schedule as the result.
 *
 * Out-of-tree code can register additional backends through
 * BackendRegistry::add().
 */

#ifndef MVP_SCHED_BACKEND_HH
#define MVP_SCHED_BACKEND_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/registry.hh"
#include "sched/scheduler.hh"

namespace mvp::sched
{

/** One scheduling engine behind a stable name. */
class SchedulerBackend
{
  public:
    virtual ~SchedulerBackend() = default;

    /** The registry name this backend was created under. */
    virtual std::string_view name() const = 0;

    /**
     * Schedule the loop using the caller's scratch context; never
     * throws, reports failure in the result. Options the backend does
     * not understand are ignored (the exact backend reads
     * searchBudget/maxII but not missThreshold; the heuristics read
     * everything except searchBudget).
     *
     * The context makes reentrancy explicit: a backend instance holds
     * no mutable state, so any number of schedule() calls may run
     * concurrently as long as each supplies its own SchedContext (the
     * parallel experiment driver keeps one per worker thread).
     */
    virtual ScheduleResult schedule(const ddg::Ddg &graph,
                                    const MachineConfig &machine,
                                    const SchedulerOptions &options,
                                    SchedContext &ctx) const = 0;

    /** schedule() with a transient context. */
    ScheduleResult schedule(const ddg::Ddg &graph,
                            const MachineConfig &machine,
                            const SchedulerOptions &options) const
    {
        SchedContext ctx;
        return schedule(graph, machine, options, ctx);
    }
};

/** Factory of one backend kind. */
using BackendFactory =
    std::function<std::unique_ptr<SchedulerBackend>()>;

/**
 * Name -> factory registry. The built-in backends are registered on
 * first access; add() extends it at runtime.
 */
class BackendRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static BackendRegistry &instance();

    /** Register (or replace) a backend under @p name. */
    void add(std::string name, BackendFactory factory);

    /** True when @p name resolves to a backend. */
    bool has(const std::string &name) const;

    /** Instantiate @p name; fatal() on unknown names. */
    std::unique_ptr<SchedulerBackend> create(
        const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    BackendRegistry();

    NamedFactoryTable<BackendFactory> table_;
};

/**
 * Convenience: schedule @p graph with the backend registered under
 * @p backend_name, using the caller's scratch context.
 */
ScheduleResult scheduleWithBackend(const std::string &backend_name,
                                   const ddg::Ddg &graph,
                                   const MachineConfig &machine,
                                   const SchedulerOptions &options,
                                   SchedContext &ctx);

/** scheduleWithBackend with a transient context. */
ScheduleResult scheduleWithBackend(const std::string &backend_name,
                                   const ddg::Ddg &graph,
                                   const MachineConfig &machine,
                                   const SchedulerOptions &options);

} // namespace mvp::sched

#endif // MVP_SCHED_BACKEND_HH
