/**
 * @file
 * Shared access-stream cache for the locality analyses.
 *
 * Both locality providers — the CME sampling solver and the exact trace
 * oracle — spend their time answering the same underlying question:
 * which cache line does memory operation `op` touch at iteration point
 * `p`? Before this layer existed each of them re-derived that answer on
 * every query (the solver per sampled point of its backward walk, the
 * oracle per simulated access), walking the iteration space and
 * evaluating the affine reference from scratch.
 *
 * A StreamCache materialises the answer once per (op, line size): a
 * flat `lines[p]` array over the whole iteration space, in lexicographic
 * execution order. Any reference set's access stream is then just the
 * point-major interleave of its ops' line arrays, so
 *
 *  - a fresh CME query walks cached arrays instead of re-evaluating
 *    affine expressions per backward step, and
 *  - an oracle simulation reads one line per access instead of
 *    computing IV vectors and addresses.
 *
 * The cache additionally serves a bucketed *footprint* view per
 * (op, line size, cache-set count): the op's accesses grouped by the
 * cache set they map to (CSR layout, chronological within a set). The
 * oracle's incremental set extension uses it to re-simulate only the
 * cache sets a newly-added op actually touches.
 *
 * Thread-safe and interleaving-independent, in the same style as the
 * solver's ShardedRatioMemo: entries live behind lock-striped shards,
 * are built outside the lock, and are immutable once published; two
 * threads racing on the same key build identical values (a stream is a
 * pure function of (nest, op, geometry)) and the first insert wins.
 * One StreamCache per loop nest is meant to be shared by every analysis
 * bound to that nest — the harness Workbench keeps one per entry.
 */

#ifndef MVP_CME_STREAM_HH
#define MVP_CME_STREAM_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "ir/loop.hh"
#include "machine/machine.hh"

namespace mvp::cme
{

/**
 * Materialised line stream of one memory operation: the cache line it
 * touches at every iteration point. Immutable after construction.
 */
struct LineStream
{
    /** lines[p] = line touched at linear iteration index p. */
    std::vector<std::int64_t> lines;
};

/**
 * The same stream bucketed by cache set for one set count: CSR over
 * sets, entries chronological within each bucket. Immutable after
 * construction.
 */
struct SetBuckets
{
    struct Entry
    {
        std::int64_t point;   ///< linear iteration index
        std::int64_t line;
    };

    /** offsets[s] .. offsets[s + 1] delimit set s's entries. */
    std::vector<std::int64_t> offsets;
    std::vector<Entry> entries;

    /** True when the op maps at least one access into set @p s. */
    bool touches(std::int64_t s) const
    {
        return offsets[static_cast<std::size_t>(s) + 1] >
               offsets[static_cast<std::size_t>(s)];
    }
};

/**
 * Per-loop-nest cache of materialised access streams, shared by every
 * locality analysis bound to the nest.
 */
class StreamCache
{
  public:
    explicit StreamCache(const ir::LoopNest &nest);

    const ir::LoopNest &loop() const { return nest_; }

    /** Total iteration points of the nest. */
    std::int64_t points() const { return points_; }

    /**
     * The line stream of @p op under @p line_bytes, materialising it on
     * first use. The returned reference stays valid (and immutable) for
     * the cache's lifetime. @p op must be a memory operation.
     */
    const LineStream &lines(OpId op, int line_bytes);

    /**
     * The bucketed view of @p op's stream under @p geom (keyed on line
     * size and set count; associativity does not affect bucketing).
     */
    const SetBuckets &buckets(OpId op, const CacheGeom &geom);

    /** Streams materialised so far (monotone; for tests and reports). */
    std::size_t streamsBuilt() const
    {
        return built_.load(std::memory_order_relaxed);
    }

    /**
     * lines()/buckets() calls so far (monotone). Together with
     * streamsBuilt() this yields the cache hit rate; under concurrent
     * use two racing builders of one key both count a miss.
     */
    std::size_t streamRequests() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    struct Key
    {
        OpId op;
        std::int64_t lineBytes;
        std::int64_t numSets;   ///< 0 for plain line streams

        bool operator==(const Key &other) const = default;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            std::uint64_t h = 1469598103934665603ULL;
            auto mix = [&h](std::uint64_t x) {
                h ^= x;
                h *= 1099511628211ULL;
            };
            mix(static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(k.op)));
            mix(static_cast<std::uint64_t>(k.lineBytes));
            mix(static_cast<std::uint64_t>(k.numSets));
            return static_cast<std::size_t>(h);
        }
    };

    /**
     * One lock-striped shard. Values sit behind unique_ptr so a
     * published stream's address survives rehashing; entries are never
     * mutated after insertion.
     */
    struct Shard
    {
        std::mutex mu;
        std::unordered_map<Key, std::unique_ptr<LineStream>, KeyHash>
            lines;
        std::unordered_map<Key, std::unique_ptr<SetBuckets>, KeyHash>
            buckets;
    };

    static constexpr std::size_t NUM_SHARDS = 8;

    Shard &shardOf(const Key &key)
    {
        return shards_[KeyHash{}(key) % NUM_SHARDS];
    }

    /** Build the line stream of @p op (no locks held). */
    std::unique_ptr<LineStream> buildLines(OpId op,
                                           std::int64_t line_bytes) const;

    const ir::LoopNest &nest_;
    ir::IterationSpace space_;
    std::int64_t points_;
    std::array<Shard, NUM_SHARDS> shards_;
    std::atomic<std::size_t> built_{0};
    std::atomic<std::size_t> requests_{0};
};

} // namespace mvp::cme

#endif // MVP_CME_STREAM_HH
