#include "harness/gapstudy.hh"

#include <chrono>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "sched/backend.hh"

namespace mvp::harness
{

int
GapStudy::known() const
{
    int n = 0;
    for (const auto &r : rows)
        n += r.gapKnown ? 1 : 0;
    return n;
}

int
GapStudy::unknown() const
{
    return static_cast<int>(rows.size()) - known();
}

int
GapStudy::tight() const
{
    int n = 0;
    for (const auto &r : rows)
        n += (r.gapKnown && r.gap == 0) ? 1 : 0;
    return n;
}

Cycle
GapStudy::totalGap() const
{
    Cycle g = 0;
    for (const auto &r : rows)
        if (r.gapKnown)
            g += r.gap;
    return g;
}

GapStudy
runGapStudy(Workbench &bench, const MachineConfig &machine,
            const GapOptions &options, ParallelDriver &driver)
{
    const std::string provider =
        options.locality.empty() ? "cme" : options.locality;
    bench.ensureLocality(provider);   // main thread, before fan-out
    const auto &entries = bench.entries();
    auto verify = sched::BackendRegistry::instance().create("verify");

    GapStudy study;
    study.options = options;
    study.rows.resize(entries.size());
    // Failures are recorded per item and reported after the pool
    // joins: a fatal inside a worker would std::exit() under the
    // feet of its siblings.
    std::vector<std::string> errors(entries.size());
    driver.run(entries.size(), [&](std::size_t i,
                                   sched::SchedContext &ctx) {
        auto &entry = *entries[i];
        sched::SchedulerOptions opt;
        opt.missThreshold = options.threshold;
        opt.locality = entry.locality(provider);
        opt.searchBudget = options.nodeBudget;
        opt.timeBudgetMs = options.timeBudgetMs;
        opt.exactBackend = options.exactBackend.empty()
                               ? "exact"
                               : options.exactBackend;
        opt.searchJobs = options.searchJobs;
        opt.satConflictBudget = options.satConflictBudget;
        const auto res =
            verify->schedule(*entry.ddg, machine, opt, ctx);
        if (!res.ok) {
            errors[i] = "gap study: heuristic failed for '" +
                        entry.nest.name() + "': " + res.error;
            return;
        }

        GapRow &row = study.rows[i];
        row.benchmark = entry.benchmark;
        row.loop = entry.nest.name();
        row.mii = res.stats.mii;
        row.heuristicII = res.schedule.ii();
        row.gapKnown = res.stats.gapKnown;
        row.exactII = res.stats.exactII;
        row.gap = res.stats.iiGap;
        row.provenOptimal = res.stats.provenOptimal;
        row.searchNodes = res.stats.searchNodes;
    });
    for (const std::string &err : errors)
        if (!err.empty())
            mvp_fatal(err);
    harvestLocalityMetrics(bench);
    return study;
}

GapStudy
runGapStudy(Workbench &bench, const MachineConfig &machine,
            double threshold, std::int64_t search_budget,
            ParallelDriver &driver, const std::string &locality)
{
    GapOptions options;
    options.threshold = threshold;
    options.nodeBudget = search_budget;
    options.locality = locality;
    return runGapStudy(bench, machine, options, driver);
}

GapStudy
runGapStudy(Workbench &bench, const MachineConfig &machine,
            double threshold, std::int64_t search_budget,
            const std::string &locality)
{
    ParallelDriver driver;
    return runGapStudy(bench, machine, threshold, search_budget, driver,
                       locality);
}

std::vector<EngineOutcome>
runEngineComparison(Workbench &bench, const MachineConfig &machine,
                    const GapOptions &options,
                    const std::vector<std::string> &engines,
                    ParallelDriver &driver)
{
    std::vector<EngineOutcome> outcomes;
    for (const std::string &engine : engines) {
        // Unknown names fail here, on the main thread, with the
        // registry's own name-listing diagnostic.
        (void)sched::BackendRegistry::instance().create(engine);
        GapOptions opt = options;
        opt.exactBackend = engine;
        const auto start = std::chrono::steady_clock::now();
        const GapStudy study =
            runGapStudy(bench, machine, opt, driver);
        EngineOutcome out;
        out.engine = engine;
        out.loops = static_cast<int>(study.rows.size());
        out.certified = study.known();
        out.unknown = study.unknown();
        out.totalGap = study.totalGap();
        for (const GapRow &r : study.rows)
            out.searchNodes += r.searchNodes;
        out.wallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        outcomes.push_back(out);
    }
    return outcomes;
}

std::string
formatEngineComparison(const std::vector<EngineOutcome> &outcomes)
{
    TextTable table({"engine", "loops", "certified", "unknown",
                     "total gap", "work (nodes/conflicts)",
                     "wall (ms)"});
    table.setTitle("Certifying-engine comparison");
    for (const EngineOutcome &o : outcomes)
        table.addRow({o.engine, std::to_string(o.loops),
                      std::to_string(o.certified),
                      std::to_string(o.unknown),
                      std::to_string(o.totalGap),
                      std::to_string(o.searchNodes),
                      strprintf("%.1f", o.wallMs)});
    std::string out = table.render() + "\n";
    for (const EngineOutcome &o : outcomes)
        out += strprintf(
            "engine=%s loops=%d certified=%d unknown=%d gap=%lld "
            "nodes=%lld wall_ms=%.1f\n",
            o.engine.c_str(), o.loops, o.certified, o.unknown,
            static_cast<long long>(o.totalGap),
            static_cast<long long>(o.searchNodes), o.wallMs);
    return out;
}

std::string
formatGapTable(const GapStudy &study)
{
    TextTable table({"benchmark", "loop", "MII", "rmca II", "exact II",
                     "gap", "certificate"});
    table.setTitle("RMCA optimality gap (exact = branch-and-bound)");
    std::string last_bench;
    for (const auto &r : study.rows) {
        if (!last_bench.empty() && r.benchmark != last_bench)
            table.addRule();
        last_bench = r.benchmark;
        table.addRow(
            {r.benchmark, r.loop, std::to_string(r.mii),
             std::to_string(r.heuristicII),
             r.gapKnown ? std::to_string(r.exactII) : "?",
             r.gapKnown ? std::to_string(r.gap) : "unknown",
             !r.gapKnown        ? "budget exhausted"
             : r.provenOptimal  ? "proven (II == lower bound)"
                                : "best found in budget"});
    }

    // Per-benchmark aggregates.
    struct Agg
    {
        int loops = 0;
        int known = 0;
        int tight = 0;
        Cycle gap = 0;
    };
    std::map<std::string, Agg> aggs;
    std::vector<std::string> bench_order;
    for (const auto &r : study.rows) {
        if (!aggs.count(r.benchmark))
            bench_order.push_back(r.benchmark);
        auto &a = aggs[r.benchmark];
        ++a.loops;
        if (r.gapKnown) {
            ++a.known;
            a.gap += r.gap;
            if (r.gap == 0)
                ++a.tight;
        }
    }
    TextTable sum({"benchmark", "loops", "gap known", "rmca optimal",
                   "total gap (II cycles)"});
    sum.setTitle("Per-workload summary");
    for (const auto &name : bench_order) {
        const Agg &a = aggs.at(name);
        sum.addRow({name, std::to_string(a.loops),
                    std::to_string(a.known), std::to_string(a.tight),
                    std::to_string(a.gap)});
    }
    sum.addRule();
    sum.addRow({"all", std::to_string(study.rows.size()),
                std::to_string(study.known()),
                std::to_string(study.tight()),
                std::to_string(study.totalGap())});

    // The "gap unknown" count and the budget that produced it belong
    // in the report: a table where every gap is known under a 10 ms
    // clock and one where half are unknown under 10 s are different
    // results, not different renderings.
    const GapOptions &o = study.options;
    std::string budget =
        o.timeBudgetMs < 0
            ? "no deadline"
            : std::to_string(o.timeBudgetMs) + " ms wall-clock/loop";
    if (o.nodeBudget > 0)
        budget += ", " + std::to_string(o.nodeBudget) +
                  " nodes/II attempt";
    const std::string backend =
        o.exactBackend.empty() ? "exact" : o.exactBackend;
    std::string tail = strprintf(
        "gap unknown on %d of %zu loops (certifying engine: %s; "
        "budget: %s)\n",
        study.unknown(), study.rows.size(), backend.c_str(),
        budget.c_str());

    return table.render() + "\n" + sum.render() + "\n" + tail;
}

} // namespace mvp::harness
