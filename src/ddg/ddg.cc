#include "ddg/ddg.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace mvp::ddg
{

std::string_view
edgeKindName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::RegFlow: return "reg";
      case EdgeKind::MemFlow: return "mem-flow";
      case EdgeKind::MemAnti: return "mem-anti";
      case EdgeKind::MemOutput: return "mem-out";
    }
    mvp_panic("unknown EdgeKind");
}

Ddg
Ddg::build(const ir::LoopNest &nest, const MachineConfig &machine)
{
    Ddg g;
    g.nest_ = &nest;
    g.n_ = nest.size();
    g.out_.resize(g.n_);
    g.in_.resize(g.n_);
    g.op_latency_.resize(g.n_);
    for (const auto &op : nest.ops())
        g.op_latency_[static_cast<std::size_t>(op.id)] =
            machine.opLatency(op.opcode);

    // Register dataflow edges from the operand lists.
    for (const auto &op : nest.ops()) {
        for (const auto &operand : op.inputs) {
            if (operand.isLiveIn())
                continue;
            DdgEdge e;
            e.src = operand.producer;
            e.dst = op.id;
            e.latency = g.op_latency_[static_cast<std::size_t>(e.src)];
            e.distance = operand.distance;
            e.kind = EdgeKind::RegFlow;
            g.addEdge(e);
        }
    }

    // Memory ordering edges from the affine dependence test.
    const auto mem_ops = nest.memoryOps();
    auto mem_edge_kind = [&](OpId a, OpId b) {
        const bool sa = nest.op(a).isStore();
        const bool sb = nest.op(b).isStore();
        if (sa && sb)
            return EdgeKind::MemOutput;
        return sa ? EdgeKind::MemFlow : EdgeKind::MemAnti;
    };
    auto mem_edge_latency = [&](EdgeKind kind) -> Cycle {
        switch (kind) {
          case EdgeKind::MemFlow: return machine.latStore;
          case EdgeKind::MemAnti: return 0;
          case EdgeKind::MemOutput: return 1;
          default: mvp_panic("not a memory edge kind");
        }
    };
    auto add_mem_edge = [&](OpId a, OpId b, int distance) {
        const EdgeKind kind = mem_edge_kind(a, b);
        DdgEdge e;
        e.src = a;
        e.dst = b;
        e.latency = mem_edge_latency(kind);
        e.distance = distance;
        e.kind = kind;
        g.addEdge(e);
    };

    for (std::size_t x = 0; x < mem_ops.size(); ++x) {
        for (std::size_t y = x; y < mem_ops.size(); ++y) {
            const OpId a = mem_ops[x];   // earlier in program order
            const OpId b = mem_ops[y];
            const auto &ra = *nest.op(a).memRef;
            const auto &rb = *nest.op(b).memRef;
            const bool any_store =
                nest.op(a).isStore() || nest.op(b).isStore();
            if (!any_store)
                continue;   // load-load pairs never constrain the order

            const MemDepResult res = testMemoryDependence(nest, ra, rb);
            switch (res.kind) {
              case MemDepResult::Kind::Independent:
                break;
              case MemDepResult::Kind::Exact:
                if (res.everyIteration) {
                    // Collision in every pair of iterations: program
                    // order within the iteration plus a distance-1 back
                    // edge.
                    if (a != b)
                        add_mem_edge(a, b, 0);
                    add_mem_edge(b, a, 1);
                } else if (a == b) {
                    // A reference only collides with itself at shift 0,
                    // which is not a dependence.
                } else if (res.distance >= 0) {
                    add_mem_edge(a, b, res.distance);
                } else {
                    add_mem_edge(b, a, -res.distance);
                }
                break;
              case MemDepResult::Kind::Unknown:
                // Conservative serialisation: program order inside the
                // iteration and a distance-1 back edge across iterations.
                if (a != b)
                    add_mem_edge(a, b, 0);
                add_mem_edge(b, a, 1);
                break;
            }
        }
    }

    return g;
}

void
Ddg::addEdge(DdgEdge edge)
{
    mvp_assert(edge.src >= 0 &&
               static_cast<std::size_t>(edge.src) < n_ &&
               edge.dst >= 0 && static_cast<std::size_t>(edge.dst) < n_,
               "edge endpoints out of range");
    mvp_assert(edge.distance >= 0, "edge distance must be >= 0");
    const int idx = static_cast<int>(edges_.size());
    edges_.push_back(edge);
    out_[static_cast<std::size_t>(edge.src)].push_back(idx);
    in_[static_cast<std::size_t>(edge.dst)].push_back(idx);
    sccs_valid_ = false;
}

const std::vector<int> &
Ddg::outEdges(OpId op) const
{
    mvp_assert(op >= 0 && static_cast<std::size_t>(op) < n_, "bad op id");
    return out_[static_cast<std::size_t>(op)];
}

const std::vector<int> &
Ddg::inEdges(OpId op) const
{
    mvp_assert(op >= 0 && static_cast<std::size_t>(op) < n_, "bad op id");
    return in_[static_cast<std::size_t>(op)];
}

Cycle
Ddg::opLatency(OpId op) const
{
    mvp_assert(op >= 0 && static_cast<std::size_t>(op) < n_, "bad op id");
    return op_latency_[static_cast<std::size_t>(op)];
}

namespace
{

/**
 * Bellman-Ford longest-path relaxation; a positive cycle exists iff
 * some distance still relaxes after n rounds. @p edge_weight maps a
 * DdgEdge to its (possibly overridden) weight latency - II*distance.
 */
template <typename WeightFn>
bool
feasibleCore(std::size_t n, const std::vector<DdgEdge> &edges,
             WeightFn &&edge_weight)
{
    // Reused across calls: the scheduler probes feasibility once per
    // miss-promoted load per II attempt.
    static thread_local std::vector<Cycle> dist;
    dist.assign(n, 0);
    for (std::size_t round = 0; round < n; ++round) {
        bool changed = false;
        for (const auto &e : edges) {
            const Cycle cand =
                dist[static_cast<std::size_t>(e.src)] + edge_weight(e);
            if (cand > dist[static_cast<std::size_t>(e.dst)]) {
                dist[static_cast<std::size_t>(e.dst)] = cand;
                changed = true;
            }
        }
        if (!changed)
            return true;
    }
    // One more round: any further relaxation proves a positive cycle.
    for (const auto &e : edges) {
        if (dist[static_cast<std::size_t>(e.src)] + edge_weight(e) >
            dist[static_cast<std::size_t>(e.dst)])
            return false;
    }
    return true;
}

} // namespace

bool
Ddg::feasibleII(Cycle ii, const LatencyOverrides &overrides) const
{
    mvp_assert(ii >= 1, "II must be positive");
    return feasibleCore(n_, edges_, [&](const DdgEdge &e) -> Cycle {
        Cycle lat = e.latency;
        if (e.isRegFlow()) {
            auto it = overrides.find(e.src);
            if (it != overrides.end())
                lat = it->second;
        }
        return lat - ii * e.distance;
    });
}

bool
Ddg::feasibleII(Cycle ii, const std::vector<Cycle> &override_lat) const
{
    mvp_assert(ii >= 1, "II must be positive");
    mvp_assert(override_lat.size() == n_,
               "override table size mismatch");
    return feasibleCore(n_, edges_, [&](const DdgEdge &e) -> Cycle {
        Cycle lat = e.latency;
        if (e.isRegFlow()) {
            const Cycle o =
                override_lat[static_cast<std::size_t>(e.src)];
            if (o >= 0)
                lat = o;
        }
        return lat - ii * e.distance;
    });
}

Cycle
Ddg::recMii() const
{
    // Feasibility is monotone in II (every cycle carries distance >= 1,
    // since the distance-0 subgraph follows program order), so binary
    // search the smallest feasible II.
    Cycle lo = 1;
    Cycle hi = 1;
    for (const auto &e : edges_)
        hi += std::max<Cycle>(e.latency, 0);
    if (feasibleII(lo))
        return lo;
    while (lo + 1 < hi) {
        const Cycle mid = lo + (hi - lo) / 2;
        if (feasibleII(mid))
            hi = mid;
        else
            lo = mid;
    }
    mvp_assert(feasibleII(hi), "recMii upper bound infeasible");
    return hi;
}

void
Ddg::computeSccs() const
{
    if (sccs_valid_)
        return;
    sccs_.clear();
    scc_of_.assign(n_, -1);
    in_recurrence_.assign(n_, false);

    // Iterative Tarjan.
    std::vector<int> index(n_, -1);
    std::vector<int> lowlink(n_, 0);
    std::vector<bool> on_stack(n_, false);
    std::vector<OpId> stack;
    int next_index = 0;

    struct Frame
    {
        OpId node;
        std::size_t edge_pos;
    };

    for (std::size_t start = 0; start < n_; ++start) {
        if (index[start] != -1)
            continue;
        std::vector<Frame> frames;
        frames.push_back({static_cast<OpId>(start), 0});
        index[start] = lowlink[start] = next_index++;
        stack.push_back(static_cast<OpId>(start));
        on_stack[start] = true;

        while (!frames.empty()) {
            Frame &f = frames.back();
            const auto u = static_cast<std::size_t>(f.node);
            if (f.edge_pos < out_[u].size()) {
                const DdgEdge &e = edges_[static_cast<std::size_t>(
                    out_[u][f.edge_pos++])];
                const auto v = static_cast<std::size_t>(e.dst);
                if (index[v] == -1) {
                    index[v] = lowlink[v] = next_index++;
                    stack.push_back(e.dst);
                    on_stack[v] = true;
                    frames.push_back({e.dst, 0});
                } else if (on_stack[v]) {
                    lowlink[u] = std::min(lowlink[u], index[v]);
                }
            } else {
                if (frames.size() > 1) {
                    const auto parent = static_cast<std::size_t>(
                        frames[frames.size() - 2].node);
                    lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
                }
                if (lowlink[u] == index[u]) {
                    std::vector<OpId> comp;
                    OpId w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(w)] = false;
                        scc_of_[static_cast<std::size_t>(w)] =
                            static_cast<int>(sccs_.size());
                        comp.push_back(w);
                    } while (w != f.node);
                    std::sort(comp.begin(), comp.end());
                    sccs_.push_back(std::move(comp));
                }
                frames.pop_back();
            }
        }
    }

    // A node is on a recurrence iff its SCC has >1 node or a self-loop.
    for (const auto &comp : sccs_) {
        bool cyclic = comp.size() > 1;
        if (!cyclic) {
            for (int ei : out_[static_cast<std::size_t>(comp[0])])
                if (edges_[static_cast<std::size_t>(ei)].dst == comp[0])
                    cyclic = true;
        }
        if (cyclic)
            for (OpId v : comp)
                in_recurrence_[static_cast<std::size_t>(v)] = true;
    }
    sccs_valid_ = true;
}

const std::vector<std::vector<OpId>> &
Ddg::sccs() const
{
    computeSccs();
    return sccs_;
}

int
Ddg::sccOf(OpId op) const
{
    computeSccs();
    return scc_of_[static_cast<std::size_t>(op)];
}

bool
Ddg::inRecurrence(OpId op) const
{
    computeSccs();
    return in_recurrence_[static_cast<std::size_t>(op)];
}

Cycle
Ddg::sccRecMii(int scc_index) const
{
    computeSccs();
    const auto &comp = sccs_[static_cast<std::size_t>(scc_index)];
    if (comp.size() == 1 && !in_recurrence_[static_cast<std::size_t>(
                                comp[0])])
        return 1;

    // Feasibility check restricted to edges inside the component.
    std::vector<char> in_comp(n_, 0);
    for (OpId v : comp)
        in_comp[static_cast<std::size_t>(v)] = 1;
    auto feasible = [&](Cycle ii) {
        std::vector<Cycle> dist(n_, 0);
        for (std::size_t round = 0; round <= comp.size(); ++round) {
            bool changed = false;
            for (const auto &e : edges_) {
                if (!in_comp[static_cast<std::size_t>(e.src)] ||
                    !in_comp[static_cast<std::size_t>(e.dst)])
                    continue;
                const Cycle cand = dist[static_cast<std::size_t>(e.src)] +
                                   e.latency - ii * e.distance;
                if (cand > dist[static_cast<std::size_t>(e.dst)]) {
                    if (round == comp.size())
                        return false;
                    dist[static_cast<std::size_t>(e.dst)] = cand;
                    changed = true;
                }
            }
            if (!changed)
                return true;
        }
        return true;
    };

    Cycle lo = 1;
    Cycle hi = 1;
    for (const auto &e : edges_)
        if (in_comp[static_cast<std::size_t>(e.src)] &&
            in_comp[static_cast<std::size_t>(e.dst)])
            hi += std::max<Cycle>(e.latency, 0);
    if (feasible(lo))
        return lo;
    while (lo + 1 < hi) {
        const Cycle mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

Ddg::TimeBounds
Ddg::timeBounds(Cycle ii) const
{
    TimeBounds tb;
    timeBounds(ii, tb);
    return tb;
}

void
Ddg::timeBounds(Cycle ii, TimeBounds &tb) const
{
    mvp_assert(feasibleII(ii), "timeBounds at infeasible II");
    tb.asap.assign(n_, 0);

    // Longest path from sources (Bellman-Ford to fixpoint).
    for (std::size_t round = 0; round < n_; ++round) {
        bool changed = false;
        for (const auto &e : edges_) {
            const Cycle cand = tb.asap[static_cast<std::size_t>(e.src)] +
                               e.latency - ii * e.distance;
            if (cand > tb.asap[static_cast<std::size_t>(e.dst)]) {
                tb.asap[static_cast<std::size_t>(e.dst)] = cand;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    tb.criticalPath = 0;
    for (std::size_t v = 0; v < n_; ++v)
        tb.criticalPath = std::max(tb.criticalPath, tb.asap[v]);

    tb.alap.assign(n_, tb.criticalPath);
    for (std::size_t round = 0; round < n_; ++round) {
        bool changed = false;
        for (const auto &e : edges_) {
            const Cycle cand = tb.alap[static_cast<std::size_t>(e.dst)] -
                               (e.latency - ii * e.distance);
            if (cand < tb.alap[static_cast<std::size_t>(e.src)]) {
                tb.alap[static_cast<std::size_t>(e.src)] = cand;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
}

std::string
Ddg::toString() const
{
    std::ostringstream os;
    os << "ddg of '" << nest_->name() << "': " << n_ << " nodes, "
       << edges_.size() << " edges, recMII=" << recMii() << "\n";
    for (const auto &e : edges_) {
        os << "  %" << e.src << " -> %" << e.dst << "  lat=" << e.latency
           << " dist=" << e.distance << " [" << edgeKindName(e.kind)
           << "]\n";
    }
    return os.str();
}

} // namespace mvp::ddg
