/**
 * @file
 * Content-addressed schedule cache and the zero-parse raw-bytes lane.
 *
 * The scheduling service memoises whole reply payloads under the
 * canonical printed form of (options, loop, machine) — see
 * svc/protocol.hh for the key definition. Because the key is the
 * *canonical* rendering, textual variants of the same request
 * (whitespace, comments, block order, option order, redundant
 * defaults) all address one entry, and a hit returns bytes that are
 * identical to what the cold computation produced — the warm path is
 * invisible in the replies.
 *
 * Stored payloads are shared_ptr<const string>: a hit hands back a
 * reference to the published bytes instead of copying a multi-KB
 * reply per request — part of the reply-path allocation diet.
 *
 * The RawReplyLane sits *in front* of the canonical cache: it maps
 * the verbatim request payload bytes — exactly as they arrived on the
 * wire, before any parsing — to the canonical stored reply. A raw hit
 * skips parse and canonical re-print entirely (the zero-parse warm
 * lane). Entries are published on first canonicalization and alias
 * the canonical cache's shared payload pointer, so a raw hit is
 * *structurally* byte-identical to the canonical reply: there is one
 * copy of the bytes, not two that could drift. Textual variants that
 * have not been seen verbatim fall through to the canonical key.
 * Replies whose bytes depend on anything beyond the payload (parse
 * errors quote the frame id) must never be published here.
 *
 * Both stores are sharded exactly like cme::detail::ShardedRatioMemo:
 * 16 shards selected by the top FNV-1a hash bits, one mutex each, so
 * concurrent pool workers rarely contend. Publication is
 * keep-the-winner: when two workers race the same fresh key, the
 * first insert sticks and the loser adopts the stored bytes — both
 * computed the same deterministic payload, so which one wins is
 * unobservable.
 */

#ifndef MVP_SVC_CACHE_HH
#define MVP_SVC_CACHE_HH

#include <array>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/strutil.hh"

namespace mvp::svc
{

/** Shared, immutable reply bytes (one copy across all cache lanes). */
using ReplyBytes = std::shared_ptr<const std::string>;

/** Canonical-key -> reply-payload store (thread-safe). */
class ScheduleCache
{
  public:
    /** The payload stored under @p key, or nullptr on a miss. */
    ReplyBytes lookup(const std::string &key) const
    {
        const Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.map.find(key);
        return it == shard.map.end() ? nullptr : it->second;
    }

    /**
     * Publish @p payload under @p key unless the key is already
     * present (keep-the-winner). Returns the stored bytes either way,
     * so racing computers converge on one published reply.
     */
    ReplyBytes tryInsert(const std::string &key, std::string payload)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.map.find(key);
        if (it != shard.map.end())
            return it->second;
        ReplyBytes stored =
            std::make_shared<const std::string>(std::move(payload));
        shard.map.emplace(key, stored);
        return stored;
    }

    /** Number of cached replies. */
    std::size_t size() const
    {
        std::size_t n = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            n += shard.map.size();
        }
        return n;
    }

    /**
     * Visit every (key, payload) pair, one shard lock at a time (the
     * persistence writer sorts the snapshot afterwards — shard order
     * is hash order, not canonical order).
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            for (const auto &[key, payload] : shard.map)
                fn(key, *payload);
        }
    }

  private:
    static constexpr std::size_t N_SHARDS = 16;

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, ReplyBytes> map;
    };

    const Shard &shardFor(const std::string &key) const
    {
        return shards_[fnv1a(key) >> 60];
    }

    Shard &shardFor(const std::string &key)
    {
        return shards_[fnv1a(key) >> 60];
    }

    std::array<Shard, N_SHARDS> shards_;
};

/**
 * Verbatim-payload-bytes -> canonical reply (thread-safe). The
 * second-level lane of the warm path: entries alias the canonical
 * cache's published bytes (see the file comment for why that makes
 * raw hits byte-identical by construction).
 */
class RawReplyLane
{
  public:
    /** The reply published for these verbatim bytes, or nullptr. */
    ReplyBytes lookup(const std::string &raw) const
    {
        const Shard &shard = shardFor(raw);
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.map.find(raw);
        return it == shard.map.end() ? nullptr : it->second;
    }

    /**
     * Map @p raw to the canonical @p reply (keep-the-winner; both
     * racers hold the same canonical pointer, so the winner is
     * unobservable). @p reply must be canonical-cache-published
     * bytes — never an id-dependent error reply.
     */
    void publish(const std::string &raw, ReplyBytes reply)
    {
        Shard &shard = shardFor(raw);
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.emplace(raw, std::move(reply));
    }

    /** Number of raw aliases published. */
    std::size_t size() const
    {
        std::size_t n = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            n += shard.map.size();
        }
        return n;
    }

  private:
    static constexpr std::size_t N_SHARDS = 16;

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, ReplyBytes> map;
    };

    const Shard &shardFor(const std::string &key) const
    {
        return shards_[fnv1a(key) >> 60];
    }

    Shard &shardFor(const std::string &key)
    {
        return shards_[fnv1a(key) >> 60];
    }

    std::array<Shard, N_SHARDS> shards_;
};

} // namespace mvp::svc

#endif // MVP_SVC_CACHE_HH
