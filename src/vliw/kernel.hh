/**
 * @file
 * Explicit VLIW code for a modulo-scheduled loop.
 *
 * Expands a ModuloSchedule into the instruction format of Figure 2: per
 * cluster, one operation field per functional unit plus IN BUS / OUT BUS
 * fields per register bus. The kernel is II instructions long; the
 * prologue and epilogue ramp the SC overlapped stages up and down. The
 * lockstep simulator executes the schedule directly; this layer exists
 * to materialise (and let tests verify) the ISA-level encoding the
 * compiler would emit, and to report code-size statistics.
 */

#ifndef MVP_VLIW_KERNEL_HH
#define MVP_VLIW_KERNEL_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace mvp::vliw
{

/** One occupied FU slot: the operation and the stage it belongs to. */
struct SlotOp
{
    OpId op = INVALID_ID;
    int stage = -1;

    bool isNop() const { return op == INVALID_ID; }
};

/** IN/OUT bus fields of one cluster word for one bus. */
struct BusField
{
    /** Producer whose value this cluster drives onto the bus (OUT BUS). */
    OpId out = INVALID_ID;

    /** Producer whose value is latched from the bus into the RF (IN BUS). */
    OpId in = INVALID_ID;
};

/** The part of a VLIW instruction executed by one cluster. */
struct ClusterWord
{
    /** FU slots indexed [fuType][unit]. */
    std::vector<std::vector<SlotOp>> fu;

    /** One field pair per register bus (empty on unbounded-bus machines). */
    std::vector<BusField> buses;
};

/** One full VLIW instruction (all clusters, lockstep). */
struct VliwInstr
{
    std::vector<ClusterWord> clusters;
};

/**
 * Complete code image of one modulo-scheduled loop.
 */
class KernelImage
{
  public:
    /** Expand a (valid) schedule into explicit code. */
    static KernelImage generate(const ddg::Ddg &graph,
                                const sched::ModuloSchedule &sched,
                                const MachineConfig &machine);

    Cycle ii() const { return ii_; }
    int stageCount() const { return sc_; }

    /** Kernel body: exactly II instructions. */
    const std::vector<VliwInstr> &kernel() const { return kernel_; }

    /** Prologue: (SC-1)*II instructions filling the pipeline. */
    const std::vector<VliwInstr> &prologue() const { return prologue_; }

    /** Epilogue: (SC-1)*II instructions draining the pipeline. */
    const std::vector<VliwInstr> &epilogue() const { return epilogue_; }

    /** Fraction of FU slots in the kernel occupied by real operations. */
    double kernelUtilisation() const;

    /** Total instruction count (prologue + kernel + epilogue). */
    std::size_t codeSizeInstrs() const
    {
        return prologue_.size() + kernel_.size() + epilogue_.size();
    }

    /** Assembly-style listing. */
    std::string render(const ddg::Ddg &graph,
                       const MachineConfig &machine) const;

  private:
    Cycle ii_ = 0;
    int sc_ = 0;
    std::vector<VliwInstr> kernel_;
    std::vector<VliwInstr> prologue_;
    std::vector<VliwInstr> epilogue_;
};

} // namespace mvp::vliw

#endif // MVP_VLIW_KERNEL_HH
