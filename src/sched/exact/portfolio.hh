/**
 * @file
 * Portfolio exact scheduling: the serial branch-and-bound engine
 * (exact/bnb.hh) raced and sharded across the harness's persistent
 * worker pool.
 *
 * The portfolio parallelises the part of the exact search that
 * dominates hard loops — refuting the IIs below the optimum — along
 * two axes at once:
 *
 *  - **II-probe racing**: consecutive candidate IIs are searched
 *    concurrently (each with ExactOptions::onlyII), so the refutation
 *    of II = k and the feasibility probe of II = k+1 overlap instead
 *    of serialising.
 *  - **Subtree splitting**: each II probe is partitioned into
 *    depth-1 shards (ExactOptions::shardIndex / shardCount); the union
 *    of the shards' trees is the full tree, so "every shard refuted"
 *    is a complete refutation of that II, and any shard finding a
 *    schedule settles feasibility.
 *
 * Probes share one wall-clock deadline and one atomic incumbent II
 * (ExactOptions::sharedBestII): a probe at or above a known-feasible
 * II cancels itself on the node-charging path, since its outcome can
 * no longer change the answer.
 *
 * Determinism contract: feasibility and refutation of an II are pure
 * functions of (loop, machine, II) — every shard runs to completion or
 * is cancelled only when the answer is already decided — so the
 * minimal II and its certificate are interleaving-independent. The
 * *returned placements* are made byte-identical across job counts by a
 * final serial re-derivation: once the minimal II is known, the
 * schedule is recomputed single-threaded at exactly that II with the
 * caller's tiebreak options and a fresh budget. Racing probes run with
 * the pressure tiebreak off (first feasible leaf settles the probe);
 * only the re-derivation pays the tiebreak.
 *
 * Budget degradation mirrors the serial engine: on deadline expiry (or
 * per-shard node-cap aborts) the best schedule found so far is
 * returned with provenOptimal == false ("gap unknown") and the lower
 * bound reflects only the gapless prefix of refuted IIs.
 */

#ifndef MVP_SCHED_EXACT_PORTFOLIO_HH
#define MVP_SCHED_EXACT_PORTFOLIO_HH

#include "sched/exact/bnb.hh"

namespace mvp::harness
{
class ParallelDriver;
}

namespace mvp::sched::exact
{

/**
 * Schedule @p graph exactly on @p pool's workers. @p options carries
 * the user-facing knobs (maxII, budgets, tiebreak*); the
 * portfolio-shard plumbing fields (onlyII, shardIndex/Count,
 * sharedBestII, deadline) are owned by the portfolio itself and
 * ignored on input, except `deadline`/`hasDeadline` which override
 * timeBudgetMs as in the serial engine. @p ctx serves the final serial
 * re-derivation; the pool workers use their own contexts.
 *
 * Never throws; failure (no feasible II within maxII, or the budget
 * exhausted first) is reported in the result exactly like
 * scheduleExact. pool.run() is not reentrant, so neither is this
 * function on one pool.
 */
ScheduleResult scheduleExactPortfolio(const ddg::Ddg &graph,
                                      const MachineConfig &machine,
                                      const ExactOptions &options,
                                      harness::ParallelDriver &pool,
                                      SchedContext &ctx);

} // namespace mvp::sched::exact

#endif // MVP_SCHED_EXACT_PORTFOLIO_HH
