#include "sched/scheduler.hh"

#include <algorithm>
#include <optional>

#include "cme/reuse.hh"
#include "common/logging.hh"
#include "obs/trace.hh"
#include "sched/lifetimes.hh"
#include "sched/mii.hh"
#include "sched/mrt.hh"
#include "sched/ordering.hh"

namespace mvp::sched
{

namespace
{

constexpr double EPS = 1e-9;
constexpr Cycle NO_BOUND = CYCLE_MAX / 4;

using detail::InNb;
using detail::NewComm;
using detail::OutNb;
using detail::Placement;

/**
 * State of one II attempt.
 *
 * Constructed once per scheduler run and re-armed with reset() for every
 * II bump, so the II search loop performs no per-attempt allocation. All
 * placement-loop scratch state lives in the caller's SchedContext (flat,
 * reusable buffers; no per-candidate maps or vectors): cross-cluster
 * communication starts are a dense [op x cluster] table, the inbound /
 * outbound transfer books of one trySlot() call are sparse arrays with
 * an explicit id list, the placed neighbourhood of the op being placed
 * is snapshotted once per place() instead of being re-walked per
 * candidate cluster, and the per-cluster locality base is cached
 * incrementally so the CME layer is queried once per (cluster,
 * candidate) instead of twice.
 */
class Attempt
{
  public:
    Attempt(const ddg::Ddg &graph, const MachineConfig &machine,
            const SchedulerOptions &options,
            detail::PlacementScratch &scratch)
        : graph_(graph), machine_(machine), options_(options),
          s_(scratch), ii_(1), mrt_(machine, 1),
          sched_(1, graph.size(), machine.nClusters),
          geom_(machine.clusterCacheGeom()),
          reuse_(graph.loop())
    {
        // Size the context's buffers for this graph/machine; assign()
        // reuses the capacity left by earlier scheduler runs, so a warm
        // context schedules without heap traffic.
        const auto n = graph.size();
        const auto nc = static_cast<std::size_t>(machine.nClusters);
        s_.isPlaced.assign(n, false);
        if (s_.memSet.size() < nc)
            s_.memSet.resize(nc);
        s_.overrideLat.assign(n, LAT_NO_OVERRIDE);
        s_.commStart.assign(n * nc, CYCLE_MAX);
        s_.inMinDist.assign(n, DIST_UNSET);
        s_.inNeedIds.clear();
        s_.outBudget.assign(nc, CYCLE_MAX);
        s_.baseMiss.assign(nc, 0.0);
        s_.baseMissValid.assign(nc, false);
        s_.affinity.assign(nc, 0);
    }

    /** Re-arm for a fresh II attempt, reusing every buffer. */
    void reset(Cycle ii)
    {
        ii_ = ii;
        mrt_.reset(ii);
        sched_.reset(ii, graph_.size(), machine_.nClusters);
        std::fill(s_.isPlaced.begin(), s_.isPlaced.end(), false);
        for (auto &set : s_.memSet)
            set.clear();
        std::fill(s_.overrideLat.begin(), s_.overrideLat.end(),
                  LAT_NO_OVERRIDE);
        std::fill(s_.commStart.begin(), s_.commStart.end(), CYCLE_MAX);
        std::fill(s_.inMinDist.begin(), s_.inMinDist.end(), DIST_UNSET);
        s_.inNeedIds.clear();
        std::fill(s_.baseMissValid.begin(), s_.baseMissValid.end(),
                  false);
    }

    /** Place one op; false aborts the attempt (II must grow). */
    bool place(OpId v);

    /**
     * Shift the whole schedule by a multiple of II so that every time
     * is non-negative (placement may have gone below zero; the modulo
     * structure is shift-invariant).
     */
    void normalize();

    /** Final register-pressure check; false aborts the attempt. */
    bool checkRegisters(LifetimeScratch &lifetimes);

    ModuloSchedule takeSchedule() { return std::move(sched_); }

    const std::vector<std::vector<OpId>> &memSets() const
    {
        return s_.memSet;
    }

  private:
    void snapshotNeighbours(OpId v);
    bool trySlot(OpId v, ClusterId c, Cycle out_lat, Placement &out);
    bool tryCandidate(OpId v, ClusterId c, Cycle t, std::size_t slot,
                      Cycle out_lat, Placement &out);
    void commit(OpId v, ClusterId c, const Placement &p, bool miss);
    double addedMisses(OpId v, ClusterId c);
    void computeAffinities(OpId v);
    int cachedAffinity(OpId v, ClusterId c);
    bool betterCluster(OpId v, ClusterId cand, ClusterId best,
                       double cand_miss, double best_miss, bool use_miss);

    /** Start cycle of the committed transfer of @p u to cluster @p c. */
    Cycle &commStart(OpId u, ClusterId c)
    {
        return s_.commStart[static_cast<std::size_t>(u) *
                                static_cast<std::size_t>(
                                    machine_.nClusters) +
                            static_cast<std::size_t>(c)];
    }

    const ddg::Ddg &graph_;
    const MachineConfig &machine_;
    const SchedulerOptions &options_;
    detail::PlacementScratch &s_;    ///< caller-owned scratch buffers
    Cycle ii_;
    Mrt mrt_;
    ModuloSchedule sched_;
    CacheGeom geom_;                           ///< per-cluster cache
    cme::ReuseAnalysis reuse_;                 ///< hoisted out of place()
    ir::FuType fu_ = ir::FuType::Int;          ///< FU class of current op
    int out_needed_ = 0;              ///< clusters with an out budget
    bool affinity_valid_ = false;     ///< per-sweep affinity memo flag
};

/**
 * Capture the placed neighbourhood of @p v once per place() call. The
 * cluster sweep evaluates the same op against every cluster (and again
 * for the miss-latency probe); walking the edge table and the placement
 * array once instead of per candidate keeps trySlot() touching only the
 * compact snapshot.
 */
void
Attempt::snapshotNeighbours(OpId v)
{
    s_.inNbs.clear();
    s_.outNbs.clear();
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.src == v || !s_.isPlaced[static_cast<std::size_t>(e.src)])
            continue;
        const auto &pu = sched_.placed(e.src);
        const Cycle ii_dist = ii_ * e.distance;
        const Cycle ready = pu.time + pu.outLatency;
        const Cycle base_early =
            (e.isRegFlow() ? ready : pu.time + e.latency) - ii_dist;
        s_.inNbs.push_back({e.src, e.distance, e.isRegFlow(), pu.cluster,
                            ii_dist, ready, base_early});
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.dst == v || !s_.isPlaced[static_cast<std::size_t>(e.dst)])
            continue;
        const auto &pw = sched_.placed(e.dst);
        const Cycle budget = pw.time + ii_ * e.distance;
        s_.outNbs.push_back({e.dst, e.isRegFlow(), pw.cluster, budget,
                             budget - e.latency});
    }
}

bool
Attempt::trySlot(OpId v, ClusterId c, Cycle out_lat, Placement &out)
{
    const Cycle lrb = machine_.regBusLatency;

    // --- Reset the scratch books (cheap: only touched entries). ---
    for (OpId u : s_.inNeedIds)
        s_.inMinDist[static_cast<std::size_t>(u)] = DIST_UNSET;
    s_.inNeedIds.clear();
    std::fill(s_.outBudget.begin(), s_.outBudget.end(), CYCLE_MAX);
    out_needed_ = 0;

    // --- Collect window bounds from the snapshotted neighbours. ---
    Cycle early = 0;
    Cycle late = NO_BOUND;
    const bool has_pred = !s_.inNbs.empty();
    const bool has_succ = !s_.outNbs.empty();

    // Inbound cross-cluster register values that need a *new* transfer:
    // producer -> tightest arrival budget (t_v + II*min_dist).
    for (const InNb &nb : s_.inNbs) {
        if (nb.isReg && nb.cluster != c) {
            if (const Cycle cs = commStart(nb.src, c); cs != CYCLE_MAX) {
                early = std::max(early, cs + lrb - nb.iiDist);
            } else {
                early = std::max(early, nb.ready + lrb - nb.iiDist);
                auto &min_dist =
                    s_.inMinDist[static_cast<std::size_t>(nb.src)];
                if (min_dist == DIST_UNSET) {
                    s_.inNeedIds.push_back(nb.src);
                    min_dist = nb.distance;
                } else {
                    min_dist = std::min(min_dist, nb.distance);
                }
            }
        } else {
            early = std::max(early, nb.baseEarly);
        }
    }
    // Bus reservation order must not depend on edge-visit order.
    if (s_.inNeedIds.size() > 1)
        std::sort(s_.inNeedIds.begin(), s_.inNeedIds.end());

    // Outbound cross-cluster transfers to placed consumers: destination
    // cluster -> tightest consumption budget min(t_w + II*dist).
    for (const OutNb &nb : s_.outNbs) {
        if (nb.isReg && nb.cluster != c) {
            auto &b = s_.outBudget[static_cast<std::size_t>(nb.cluster)];
            if (b == CYCLE_MAX)
                ++out_needed_;
            b = std::min(b, nb.budget);
        } else {
            late = std::min(late,
                            nb.isReg ? nb.budget - out_lat : nb.lateNonReg);
        }
    }
    for (Cycle budget : s_.outBudget)
        if (budget != CYCLE_MAX)
            late = std::min(late, budget - lrb - out_lat);

    // With placed neighbours on both sides the window [early, late]
    // must be non-empty; one-sided windows are never empty (the scan
    // direction follows the constrained side, times may go negative).
    if (has_pred && has_succ && late < early)
        return false;

    // --- Scan the window in place (at most II slots; SMS direction
    // rule). Times may go negative while scheduling: modulo schedules
    // are shift-invariant, and the attempt normalises by a multiple of
    // II once every node is placed. ---
    if (has_succ && !has_pred) {
        const Cycle hi = std::min(late, NO_BOUND);
        const Cycle lo = hi - ii_ + 1;
        std::size_t s = mrt_.slot(hi);
        for (Cycle t = hi; t >= lo; --t) {
            if (tryCandidate(v, c, t, s, out_lat, out))
                return true;
            s = mrt_.prevSlot(s);
        }
    } else {
        const Cycle hi = std::min(late, early + ii_ - 1);
        if (early <= hi) {
            std::size_t s = mrt_.slot(early);
            for (Cycle t = early; t <= hi; ++t) {
                if (tryCandidate(v, c, t, s, out_lat, out))
                    return true;
                s = mrt_.nextSlot(s);
            }
        }
    }
    return false;
}

/**
 * Evaluate one candidate cycle: FU slot plus tentative bus reservations
 * for every transfer trySlot() booked in the scratch arrays. The
 * reservations are always rolled back — the caller re-applies them on
 * commit; evaluation of other clusters must not hold them.
 */
bool
Attempt::tryCandidate(OpId v, ClusterId c, Cycle t, std::size_t slot,
                      Cycle out_lat, Placement &out)
{
    if (!mrt_.fuFreeAt(slot, c, fu_))
        return false;

    // Fast path: no bus transfer to book, the FU slot alone decides.
    if (s_.inNeedIds.empty() && out_needed_ == 0) {
        out.time = t;
        out.outLatency = out_lat;
        out.newComms.clear();
        return true;
    }

    const Cycle lrb = machine_.regBusLatency;
    s_.reserved.clear();
    auto rollback = [&]() {
        for (const auto &nc : s_.reserved)
            mrt_.releaseBusAt(nc.bus, nc.xferSlot);
        s_.reserved.clear();
    };
    bool ok = true;

    // Inbound transfers (value of u must reach cluster c).
    for (OpId u : s_.inNeedIds) {
        const int min_dist = s_.inMinDist[static_cast<std::size_t>(u)];
        const auto &pu = sched_.placed(u);
        const Cycle x_min = pu.time + pu.outLatency;
        const Cycle x_max = t + ii_ * min_dist - lrb;
        bool found = false;
        const Cycle hi = std::min(x_max, x_min + ii_ - 1);
        if (x_min <= hi) {
            std::size_t sx = mrt_.slot(x_min);
            for (Cycle x = x_min; x <= hi; ++x) {
                const int bus = mrt_.findFreeBusAt(sx);
                if (bus != BUS_NONE) {
                    mrt_.reserveBusAt(bus, sx);
                    s_.reserved.push_back({u, pu.cluster, c, x, sx, bus});
                    found = true;
                    break;
                }
                sx = mrt_.nextSlot(sx);
            }
        }
        if (!found) {
            ok = false;
            break;
        }
    }

    // Outbound transfers (v's value must reach consumer clusters).
    if (ok) {
        for (ClusterId dest = 0; dest < machine_.nClusters; ++dest) {
            const Cycle budget =
                s_.outBudget[static_cast<std::size_t>(dest)];
            if (budget == CYCLE_MAX)
                continue;
            const Cycle x_min = t + out_lat;
            const Cycle x_max = budget - lrb;
            bool found = false;
            const Cycle hi = std::min(x_max, x_min + ii_ - 1);
            if (x_min <= hi) {
                std::size_t sx = mrt_.slot(x_min);
                for (Cycle x = x_min; x <= hi; ++x) {
                    const int bus = mrt_.findFreeBusAt(sx);
                    if (bus != BUS_NONE) {
                        mrt_.reserveBusAt(bus, sx);
                        s_.reserved.push_back({v, c, dest, x, sx, bus});
                        found = true;
                        break;
                    }
                    sx = mrt_.nextSlot(sx);
                }
            }
            if (!found) {
                ok = false;
                break;
            }
        }
    }

    if (!ok) {
        rollback();
        return false;
    }

    out.time = t;
    out.outLatency = out_lat;
    out.newComms.assign(s_.reserved.begin(), s_.reserved.end());
    rollback();
    return true;
}

void
Attempt::commit(OpId v, ClusterId c, const Placement &p, bool miss)
{
    auto &slot = sched_.placed(v);
    slot.cluster = c;
    slot.time = p.time;
    slot.outLatency = p.outLatency;
    slot.missScheduled = miss;
    s_.isPlaced[static_cast<std::size_t>(v)] = true;
    mrt_.placeFu(p.time, c, graph_.loop().op(v).fuType());
    for (const auto &nc : p.newComms) {
        mrt_.reserveBusAt(nc.bus, nc.xferSlot);
        sched_.comms().push_back(
            {nc.producer, nc.from, nc.to, nc.xferStart, nc.bus});
        commStart(nc.producer, nc.to) = nc.xferStart;
    }
    if (graph_.loop().op(v).isMemory()) {
        s_.memSet[static_cast<std::size_t>(c)].push_back(v);
        s_.baseMissValid[static_cast<std::size_t>(c)] = false;
    }
    if (miss)
        s_.overrideLat[static_cast<std::size_t>(v)] = p.outLatency;
}

double
Attempt::addedMisses(OpId v, ClusterId c)
{
    auto *loc = options_.locality;
    const auto &set = s_.memSet[static_cast<std::size_t>(c)];
    // The base set only changes when a memory op is committed to this
    // cluster, so its miss count is computed once per commit, not per
    // candidate evaluated against it.
    if (!s_.baseMissValid[static_cast<std::size_t>(c)]) {
        s_.baseMiss[static_cast<std::size_t>(c)] =
            loc->missesPerIteration(set, geom_);
        s_.baseMissValid[static_cast<std::size_t>(c)] = true;
    }
    s_.withScratch.assign(set.begin(), set.end());
    s_.withScratch.push_back(v);
    return loc->missesPerIteration(s_.withScratch, geom_) -
           s_.baseMiss[static_cast<std::size_t>(c)];
}

void
Attempt::computeAffinities(OpId v)
{
    // Output-edge profit of [22]: register edges between v and the ops
    // already placed in a cluster count double; additionally, a
    // *sibling* bond counts once — a placed node adjacent to an
    // unscheduled neighbour of v (e.g. the other operand of v's future
    // consumer). Joining that cluster lets the shared neighbour be
    // placed without any edge leaving the cluster's subgraph, which is
    // exactly the exit-edge quantity the heuristic minimises.
    //
    // One walk accumulates the profit of every cluster at once: each
    // placed neighbour contributes to its own cluster's bucket, so the
    // sweep never re-traverses the two-level neighbourhood per cluster.
    std::fill(s_.affinity.begin(), s_.affinity.end(), 0);
    auto neighbour_cluster_bonus = [&](OpId other) {
        if (other == v)
            return;
        if (s_.isPlaced[static_cast<std::size_t>(other)]) {
            s_.affinity[static_cast<std::size_t>(
                sched_.placed(other).cluster)] += 2;
            return;
        }
        // Unscheduled neighbour: look one level further.
        auto sibling = [&](OpId w) {
            if (w != v && w != other &&
                s_.isPlaced[static_cast<std::size_t>(w)])
                ++s_.affinity[static_cast<std::size_t>(
                    sched_.placed(w).cluster)];
        };
        for (int ei : graph_.inEdges(other)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.isRegFlow())
                sibling(e.src);
        }
        for (int ei : graph_.outEdges(other)) {
            const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
            if (e.isRegFlow())
                sibling(e.dst);
        }
    };
    for (int ei : graph_.inEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.isRegFlow())
            neighbour_cluster_bonus(e.src);
    }
    for (int ei : graph_.outEdges(v)) {
        const auto &e = graph_.edges()[static_cast<std::size_t>(ei)];
        if (e.isRegFlow())
            neighbour_cluster_bonus(e.dst);
    }
}

/**
 * Affinities are invariant during one cluster sweep (no placement
 * changes mid-sweep), so the one-walk computation runs lazily on the
 * first tie-break of a sweep; place() invalidates it per op.
 */
int
Attempt::cachedAffinity(OpId v, ClusterId c)
{
    if (!affinity_valid_) {
        computeAffinities(v);
        affinity_valid_ = true;
    }
    return s_.affinity[static_cast<std::size_t>(c)];
}

bool
Attempt::betterCluster(OpId v, ClusterId cand, ClusterId best,
                       double cand_miss, double best_miss,
                       bool use_miss)
{
    if (use_miss) {
        if (cand_miss < best_miss - EPS)
            return true;
        if (cand_miss > best_miss + EPS)
            return false;
    }
    const int a_cand = cachedAffinity(v, cand);
    const int a_best = cachedAffinity(v, best);
    if (a_cand != a_best)
        return a_cand > a_best;
    // Workload balance: fewer ops of this FU class already placed.
    const int l_cand = mrt_.fuLoad(cand, fu_);
    const int l_best = mrt_.fuLoad(best, fu_);
    if (l_cand != l_best)
        return l_cand < l_best;
    return cand < best;
}

bool
Attempt::place(OpId v)
{
    const auto &op = graph_.loop().op(v);
    const Cycle hit_lat = graph_.opLatency(v);
    const bool mem_select = options_.memoryAware && op.isMemory() &&
                            options_.locality != nullptr;
    fu_ = op.fuType();
    snapshotNeighbours(v);

    // Evaluate every cluster with the hit latency.
    affinity_valid_ = false;
    ClusterId best = INVALID_ID;
    double best_miss = 0.0;
    for (ClusterId c = 0; c < machine_.nClusters; ++c) {
        if (!trySlot(v, c, hit_lat, s_.curPlacement))
            continue;
        const double miss = mem_select ? addedMisses(v, c) : 0.0;
        if (best == INVALID_ID ||
            betterCluster(v, c, best, miss, best_miss, mem_select)) {
            best = c;
            std::swap(s_.bestPlacement, s_.curPlacement);
            best_miss = miss;
        }
    }
    if (best == INVALID_ID)
        return false;

    // Binding prefetching: promote likely-missing loads to the miss
    // latency in their chosen cluster (§4.3). A load whose CME miss
    // ratio exceeds the threshold is promoted; so is a load with
    // same-line (spatial group) reuse of an already-promoted leader in
    // the same cluster — its data rides the leader's outstanding fill,
    // so its consumers face the same worst-case latency (the spatial-
    // locality case §4.3 calls out).
    bool promoted = false;
    if (op.isLoad() && options_.missThreshold < 1.0 - EPS &&
        options_.locality != nullptr) {
        const double ratio = options_.locality->missRatio(
            s_.memSet[static_cast<std::size_t>(best)], v, geom_);
        bool rides_promoted_fill = false;
        if (ratio <= options_.missThreshold + EPS) {
            for (OpId u : s_.memSet[static_cast<std::size_t>(best)]) {
                if (!sched_.placed(u).missScheduled)
                    continue;
                const auto delta = reuse_.byteDelta(v, u);
                if (delta && std::llabs(*delta) <
                                 machine_.cacheLineBytes) {
                    rides_promoted_fill = true;
                    break;
                }
            }
        }
        const Cycle miss_lat = machine_.missLatency();
        if ((ratio > options_.missThreshold + EPS ||
             rides_promoted_fill) &&
            miss_lat > hit_lat) {
            // Probe in place: v is unplaced, so its override slot is
            // free; restore it unless the promotion actually commits.
            bool allowed = true;
            if (graph_.inRecurrence(v)) {
                s_.overrideLat[static_cast<std::size_t>(v)] = miss_lat;
                allowed = graph_.feasibleII(ii_, s_.overrideLat);
                if (!allowed)
                    s_.overrideLat[static_cast<std::size_t>(v)] =
                        LAT_NO_OVERRIDE;
            }
            if (allowed) {
                if (trySlot(v, best, miss_lat, s_.curPlacement)) {
                    commit(v, best, s_.curPlacement, true);
                    promoted = true;
                } else {
                    s_.overrideLat[static_cast<std::size_t>(v)] =
                        LAT_NO_OVERRIDE;
                }
            }
        }
    }
    if (!promoted)
        commit(v, best, s_.bestPlacement, false);
    return true;
}

void
Attempt::normalize()
{
    Cycle min_time = 0;
    for (const auto &p : sched_.placements())
        min_time = std::min(min_time, p.time);
    if (min_time >= 0)
        return;
    const Cycle shift = ((-min_time + ii_ - 1) / ii_) * ii_;
    for (std::size_t v = 0; v < graph_.size(); ++v)
        sched_.placed(static_cast<OpId>(v)).time += shift;
    for (auto &c : sched_.comms())
        c.xferStart += shift;
}

bool
Attempt::checkRegisters(LifetimeScratch &lifetimes)
{
    const LifetimeStats lt =
        computeLifetimes(graph_, sched_, machine_, lifetimes);
    sched_.setMaxLive(lt.maxLivePerCluster);
    for (int ml : lt.maxLivePerCluster)
        if (ml > machine_.regsPerCluster)
            return false;
    return true;
}

} // namespace

ClusteredModuloScheduler::ClusteredModuloScheduler(
    const ddg::Ddg &graph, const MachineConfig &machine,
    SchedulerOptions options)
    : graph_(graph), machine_(machine), options_(options)
{
    if ((options_.memoryAware ||
         options_.missThreshold < 1.0 - EPS) &&
        options_.locality == nullptr)
        mvp_fatal("scheduler options require a locality analysis");
    if (options_.locality &&
        &options_.locality->loop() != &graph.loop())
        mvp_fatal("locality analysis bound to a different loop");
}

ScheduleResult
ClusteredModuloScheduler::run(SchedContext &ctx)
{
    MVP_TRACE_SPAN("heuristic", graph_.loop().name());
    // Metric names carry the flavour so the A/B question ("does RMCA
    // retry IIs more often than the baseline?") reads off the report.
    const bool mets = obs::metricsOn();
    const std::string prefix =
        options_.memoryAware ? "sched.rmca." : "sched.baseline.";
    std::int64_t place_failures = 0;
    std::int64_t register_overflows = 0;

    ScheduleResult result;
    result.stats.resMii = resMii(graph_.loop(), machine_);
    result.stats.recMii = graph_.recMii();
    result.stats.mii =
        std::max(result.stats.resMii, result.stats.recMii);

    // The ordering is computed once at mII and kept across II bumps in
    // the context's order buffer.
    {
        MVP_TRACE_SPAN("ordering");
        computeOrdering(graph_, result.stats.mii, ctx.order,
                        ctx.ordering);
        result.stats.orderingBothNeighbours =
            bothNeighbourCount(graph_, ctx.order, ctx.ordering);
    }

    // One attempt object reused across II bumps (reset() re-arms it
    // without reallocating any buffer).
    Attempt attempt(graph_, machine_, options_, ctx.placement);
    for (Cycle ii = result.stats.mii; ii <= options_.maxII; ++ii) {
        MVP_TRACE_SPAN("place-ii", graph_.loop().name(),
                       static_cast<std::int64_t>(ii));
        ++result.stats.iiAttempts;
        attempt.reset(ii);
        bool ok = true;
        for (OpId v : ctx.order) {
            if (!attempt.place(v)) {
                mvp_verbose("loop '", graph_.loop().name(), "' II=", ii,
                            ": op ", v, " unplaceable");
                ok = false;
                ++place_failures;
                break;
            }
        }
        if (!ok)
            continue;
        attempt.normalize();
        if (!attempt.checkRegisters(ctx.lifetimes)) {
            mvp_verbose("loop '", graph_.loop().name(), "' II=", ii,
                        ": register pressure exceeded");
            ++register_overflows;
            continue;
        }

        if (options_.locality) {
            const CacheGeom geom = machine_.clusterCacheGeom();
            for (const auto &set : attempt.memSets())
                result.stats.predictedMissesPerIter +=
                    options_.locality->missesPerIteration(set, geom);
        }
        result.ok = true;
        result.schedule = attempt.takeSchedule();
        result.stats.comms =
            static_cast<int>(result.schedule.numComms());
        result.stats.missScheduledLoads =
            result.schedule.missScheduledLoads();
        if (mets) {
            ctx.metrics.det(prefix + "runs") += 1;
            ctx.metrics.det(prefix + "ii_attempts") +=
                result.stats.iiAttempts;
            ctx.metrics.det(prefix + "place_failures") += place_failures;
            ctx.metrics.det(prefix + "register_overflows") +=
                register_overflows;
            ctx.metrics.det(prefix + "promoted_loads") +=
                result.stats.missScheduledLoads;
        }
        return result;
    }

    result.error = "no feasible II up to " +
                   std::to_string(options_.maxII) + " for loop '" +
                   graph_.loop().name() + "'";
    if (mets) {
        ctx.metrics.det(prefix + "runs") += 1;
        ctx.metrics.det(prefix + "failed_runs") += 1;
        ctx.metrics.det(prefix + "ii_attempts") +=
            result.stats.iiAttempts;
        ctx.metrics.det(prefix + "place_failures") += place_failures;
        ctx.metrics.det(prefix + "register_overflows") +=
            register_overflows;
    }
    return result;
}

ScheduleResult
ClusteredModuloScheduler::run()
{
    SchedContext ctx;
    return run(ctx);
}

ScheduleResult
scheduleBaseline(const ddg::Ddg &graph, const MachineConfig &machine,
                 double miss_threshold, cme::LocalityAnalysis *locality)
{
    SchedulerOptions opt;
    opt.memoryAware = false;
    opt.missThreshold = miss_threshold;
    opt.locality = locality;
    return ClusteredModuloScheduler(graph, machine, opt).run();
}

ScheduleResult
scheduleRmca(const ddg::Ddg &graph, const MachineConfig &machine,
             double miss_threshold, cme::LocalityAnalysis &locality)
{
    SchedulerOptions opt;
    opt.memoryAware = true;
    opt.missThreshold = miss_threshold;
    opt.locality = &locality;
    return ClusteredModuloScheduler(graph, machine, opt).run();
}

} // namespace mvp::sched
