/**
 * @file
 * Corpus helpers: dump generated scenarios to the text format.
 *
 * A corpus is a directory of `.loops` / `.machine` files produced by
 * the generator and readable back through text::loadLoopFile /
 * text::loadMachineFile — and therefore through the `file:<path>`
 * workload scheme. Regression corpora pin interesting generated
 * scenarios to files that survive generator evolution: a failure found
 * by the differential pipeline can be dumped once and replayed forever
 * even when the distributions that produced it change.
 */

#ifndef MVP_GEN_CORPUS_HH
#define MVP_GEN_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generator.hh"

namespace mvp::gen
{

/** What writeCorpus() should generate. */
struct CorpusSpec
{
    std::uint64_t seed = 1;
    int loops = 8;       ///< nests in the suite file
    int machines = 2;    ///< machine configs, one file each
    GenParams params;
};

/**
 * Generate and write a corpus into @p dir (created when missing):
 * one `gen<seed>.loops` suite file plus `gen<seed>.m<i>.machine`
 * files. Returns the written paths, the loop file first.
 */
std::vector<std::string> writeCorpus(const CorpusSpec &spec,
                                     const std::string &dir);

/**
 * Dump one scenario (loop + machine) for replay: writes
 * `<stem>.loops` and `<stem>.machine` and returns the two paths.
 */
std::vector<std::string> writeScenario(const Scenario &scenario,
                                       const std::string &stem);

} // namespace mvp::gen

#endif // MVP_GEN_CORPUS_HH
