/**
 * @file
 * Wall-clock benchmark of the sharded experiment driver: the full
 * Table-1 suite sweep (3 machines x {baseline, rmca} x 4 thresholds
 * over every workload loop) and, with --exact, the 96-combo exact
 * sweep (verify backend over every loop of the three machines).
 *
 * Prints one machine-readable line per sweep:
 *
 *   sweep=table1 jobs=4 items=768 wall_ms=1234 fingerprint=0x...
 *
 * run_bench.sh runs this at jobs=1 and jobs=N and records both in
 * BENCH_sched.json so the speedup trajectory is tracked alongside the
 * microbenchmarks. The fingerprint folds every emitted table, so a
 * speedup that changes results cannot slip through.
 *
 * Usage: sweep_bench [--jobs N] [--exact] [--budget B]
 *                    [--time-budget-ms MS] [--exact-backend NAME]
 *                    [--workloads A,B,...]
 *
 * --workloads accepts every workload form the registry resolves:
 * builtin suite names, `file:<path>` loop files and `gen:<spec>`
 * generated suites (default: all eight builtin suites).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/strutil.hh"
#include "harness/experiment.hh"
#include "harness/flags.hh"
#include "harness/gapstudy.hh"
#include "machine/presets.hh"

using namespace mvp;
using harness::RunConfig;

namespace
{

double
wallMs(std::chrono::steady_clock::time_point from)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - from)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    const std::vector<std::string> workloads =
        harness::parseWorkloadsFlag(argc, argv);
    harness::GapOptions gap_options;
    if (!locality.empty())
        gap_options.locality = locality;
    gap_options.timeBudgetMs = harness::parseTimeBudgetFlag(argc, argv);
    const std::string exact_backend =
        harness::parseExactBackendFlag(argc, argv);
    if (!exact_backend.empty())
        gap_options.exactBackend = exact_backend;
    const bool exact = harness::stripBoolFlag(argc, argv, "--exact");
    const std::string budget =
        harness::stripValueFlag(argc, argv, "--budget", "node budget");
    if (!budget.empty())
        gap_options.nodeBudget = std::atoll(budget.c_str());
    harness::rejectUnknownFlags(
        argc, argv,
        {"--jobs", "--locality", "--workloads", "--time-budget-ms",
         "--exact-backend", "--exact", "--budget", "--log-level",
         "--metrics", "--trace"});

    harness::Workbench bench(workloads);
    const MachineConfig machines[] = {makeUnified(), makeTwoCluster(),
                                      makeFourCluster()};

    // --- Table-1 sweep: every (machine, scheduler, threshold) point
    // of the paper's headline figures over the whole workbench. ---
    {
        std::vector<RunConfig> configs;
        for (const auto &machine : machines) {
            for (const char *backend : {"baseline", "rmca"}) {
                for (double thr : {1.00, 0.75, 0.25, 0.00}) {
                    RunConfig cfg;
                    cfg.machine = machine;
                    cfg.backend = backend;
                    cfg.locality = locality;
                    cfg.threshold = thr;
                    configs.push_back(cfg);
                }
            }
        }
        const auto start = std::chrono::steady_clock::now();
        const auto results =
            harness::runSuiteSweep(bench, configs, {}, driver);
        const double ms = wallMs(start);

        std::string all;
        for (const auto &suite : results)
            all += harness::formatSuiteResult(suite);
        std::printf("sweep=table1 jobs=%d items=%zu wall_ms=%.1f "
                    "fingerprint=0x%016llx\n",
                    driver.jobs(),
                    configs.size() * bench.entries().size(), ms,
                    static_cast<unsigned long long>(fnv1a(all)));
    }

    // --- 96-combo exact sweep: the optimality-gap study over every
    // loop of every machine (the workload the sharding exists for:
    // single loops cost up to ~10^3x the median). ---
    if (exact) {
        const auto start = std::chrono::steady_clock::now();
        std::string all;
        for (const auto &machine : machines)
            all += harness::formatGapTable(harness::runGapStudy(
                bench, machine, gap_options, driver));
        const double ms = wallMs(start);
        std::printf("sweep=exact jobs=%d items=%zu wall_ms=%.1f "
                    "fingerprint=0x%016llx\n",
                    driver.jobs(),
                    std::size(machines) * bench.entries().size(), ms,
                    static_cast<unsigned long long>(fnv1a(all)));
    }
    return 0;
}
