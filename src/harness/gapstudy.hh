/**
 * @file
 * Optimality-gap study: schedule every workbench loop with the rmca
 * heuristic and the exact branch-and-bound backend and tabulate the II
 * gap — the repo's analogue of the heuristic-vs-exact comparisons in
 * the SMT/SAT exact-modulo-scheduling literature (Roorda; Tirelli et
 * al.). Loops the exact search cannot settle within its budget — the
 * wall clock, or the deprecated node cap — are reported as "gap
 * unknown" rather than guessed, and the report states both the
 * unknown count and the budget that was in force.
 */

#ifndef MVP_HARNESS_GAPSTUDY_HH
#define MVP_HARNESS_GAPSTUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace mvp::harness
{

/** How hard the certifying engine tries, and which engine it is. */
struct GapOptions
{
    /** rmca miss-latency threshold. */
    double threshold = 0.25;

    /**
     * Deprecated node cap per II attempt (0 = uncapped, leaving the
     * wall clock in charge). Kept for deterministic-starvation tests:
     * under a pure node cap the set of "gap unknown" rows is a pure
     * function of (workbench, machine, options).
     */
    std::int64_t nodeBudget = 0;

    /**
     * Wall-clock budget per loop, in milliseconds (negative = no
     * deadline, 0 = expired on entry). The budget the table reports
     * as in force.
     */
    std::int64_t timeBudgetMs = sched::DEFAULT_TIME_BUDGET_MS;

    /** Locality provider for the heuristic (empty = "cme"). */
    std::string locality = "cme";

    /**
     * Certifying engine: "exact"/"bnb" (serial branch and bound),
     * "sat" (CDCL), or "portfolio" (racing both on the worker pool).
     * Empty is read as "exact".
     */
    std::string exactBackend = "exact";

    /** Worker count of the portfolio backend (0 = default). */
    int searchJobs = 0;

    /**
     * Deterministic per-II conflict cap of the sat engine (0 =
     * uncapped); the CDCL analogue of nodeBudget. Ignored by the
     * branch and bound.
     */
    std::int64_t satConflictBudget = 0;
};

/** Per-loop outcome of the gap study. */
struct GapRow
{
    std::string benchmark;
    std::string loop;
    Cycle mii = 0;
    Cycle heuristicII = 0;
    Cycle exactII = 0;        ///< 0 when the exact search did not settle
    Cycle gap = 0;            ///< heuristicII - exactII (when known)
    bool gapKnown = false;    ///< exact solved within budget
    bool provenOptimal = false;   ///< exact II carries a certificate
    std::int64_t searchNodes = 0;
};

/** Whole-suite outcome plus per-benchmark aggregates. */
struct GapStudy
{
    std::vector<GapRow> rows;

    /** The budgets/engine the study ran under (for the report). */
    GapOptions options;

    /** Rows with a known gap. */
    int known() const;

    /** Rows without one — the "gap unknown" count of the report. */
    int unknown() const;

    /** Rows where the heuristic was optimal (gap == 0, known). */
    int tight() const;

    /** Sum of known gaps (cycles of II lost by the heuristic). */
    Cycle totalGap() const;
};

/**
 * Run the study over every loop of @p bench on @p machine under
 * @p options, sharding loops across @p driver. The exact search is the
 * workload this sharding was built for: a single hard loop can cost
 * ~10^3x an easy one, and the driver's dynamic item claiming keeps the
 * pool busy around it. Rows come back in workbench order regardless of
 * the job count.
 */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     const GapOptions &options, ParallelDriver &driver);

/**
 * Historical signature: rmca at @p threshold against the serial exact
 * backend under @p search_budget nodes per attempt (plus the default
 * wall clock). Forwards to the GapOptions overload.
 */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     double threshold, std::int64_t search_budget,
                     ParallelDriver &driver,
                     const std::string &locality = "cme");

/** runGapStudy on a default-sized driver (MVP_JOBS / hardware size). */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     double threshold = 0.25,
                     std::int64_t search_budget =
                         sched::DEFAULT_SEARCH_BUDGET,
                     const std::string &locality = "cme");

/**
 * Render the study: one row per loop plus a per-benchmark aggregate
 * block (loops, gaps known, heuristic-optimal count, total gap).
 */
std::string formatGapTable(const GapStudy &study);

/**
 * One certifying engine's aggregate over a corpus — the
 * refutation-throughput comparison of the exact-engine families
 * (branch and bound vs. CDCL vs. the portfolio racing both).
 */
struct EngineOutcome
{
    std::string engine;          ///< registry name ("bnb", "sat", ...)
    int loops = 0;               ///< corpus size
    int certified = 0;           ///< loops settled within budget
    int unknown = 0;             ///< loops the engine could not settle
    Cycle totalGap = 0;          ///< summed known heuristic gap
    /** Work charged: B&B candidate placements, or CDCL conflicts. */
    std::int64_t searchNodes = 0;
    double wallMs = 0.0;         ///< whole-corpus wall clock
};

/**
 * Run the gap study once per engine in @p engines (each a registered
 * backend name) over the same corpus and report each engine's
 * certified/unknown split and wall clock. The per-loop gap *tables*
 * of the engines are required to agree wherever both certify (the
 * differential pipeline enforces this); what differs — and what this
 * comparison measures — is how much of the corpus each engine settles
 * within the budget and at what cost.
 */
std::vector<EngineOutcome> runEngineComparison(
    Workbench &bench, const MachineConfig &machine,
    const GapOptions &options, const std::vector<std::string> &engines,
    ParallelDriver &driver);

/**
 * Render the comparison: a table plus one machine-readable line per
 * engine (`engine=sat loops=... certified=... unknown=... gap=...
 * nodes=... wall_ms=...`) that run_bench.sh scrapes into the "sat"
 * section of BENCH_sched.json.
 */
std::string formatEngineComparison(
    const std::vector<EngineOutcome> &outcomes);

} // namespace mvp::harness

#endif // MVP_HARNESS_GAPSTUDY_HH
