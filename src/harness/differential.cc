#include "harness/differential.hh"

#include <algorithm>
#include <cmath>

#include "cme/oracle.hh"
#include "cme/provider.hh"
#include "cme/solver.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "ddg/ddg.hh"
#include "sched/backend.hh"
#include "sim/simulator.hh"
#include "text/format.hh"
#include "vliw/kernel.hh"

namespace mvp::harness
{

namespace
{

/**
 * Run every check of one scenario. Pure function of (seed, options);
 * the first failed check wins and later (dependent) checks are
 * skipped. Library bugs that trip mvp_fatal/mvp_assert inside a check
 * still abort the whole sweep with their own diagnostic — this
 * function only *reports* contract violations the stack is expected
 * to catch gracefully.
 */
ScenarioOutcome
runScenario(std::uint64_t seed, const DiffOptions &options,
            sched::SchedContext &ctx)
{
    ScenarioOutcome out;
    out.seed = seed;

    const gen::Scenario sc = gen::generateScenario(seed, options.gen);
    out.loop = sc.nest.name();
    out.machine = sc.machine.name;
    out.ops = static_cast<int>(sc.nest.size());
    out.clusters = sc.machine.nClusters;

    // --- 1. text round trip: parse(print(x)) reprints byte-identically
    // (a parse failure on printed text is a frontend bug and fatals
    // with the grammar diagnostic). ---
    const std::string loop_text = text::printLoop(sc.nest);
    if (text::printLoop(text::parseLoop(loop_text, out.loop)) !=
        loop_text) {
        out.failure = "text round-trip mismatch (loop)";
        return out;
    }
    const std::string mach_text = text::printMachine(sc.machine);
    if (text::printMachine(text::parseMachine(mach_text, out.machine)) !=
        mach_text) {
        out.failure = "text round-trip mismatch (machine)";
        return out;
    }

    // --- 2. rmca schedule + full validation ---
    const ddg::Ddg graph = ddg::Ddg::build(sc.nest, sc.machine);
    auto streams = std::make_shared<cme::StreamCache>(sc.nest);
    const auto locality = cme::LocalityRegistry::instance().bind(
        options.locality, sc.nest, streams);

    sched::SchedulerOptions sopt;
    sopt.missThreshold = options.threshold;
    sopt.locality = locality.get();
    const auto rmca = sched::scheduleWithBackend("rmca", graph,
                                                 sc.machine, sopt, ctx);
    if (!rmca.ok) {
        out.failure = "rmca scheduling failed: " + rmca.error;
        return out;
    }
    out.mii = rmca.stats.mii;
    out.rmcaII = rmca.schedule.ii();
    const std::string err = rmca.schedule.validate(graph, sc.machine);
    if (!err.empty()) {
        out.failure = "invalid rmca schedule: " + err;
        return out;
    }

    // --- 3. exact cross-check: on budget-converged scenarios the
    // certified minimal II can never exceed the heuristic's. ---
    if (options.checkExact) {
        sched::SchedulerOptions eopt = sopt;
        eopt.searchBudget = options.exactBudget;
        eopt.timeBudgetMs = options.timeBudgetMs;
        const auto exact = sched::scheduleWithBackend(
            options.exactBackend.empty() ? "exact"
                                         : options.exactBackend,
            graph, sc.machine, eopt, ctx);
        if (exact.ok && exact.stats.provenOptimal) {
            out.exactSettled = true;
            out.exactII = exact.schedule.ii();
            const std::string exact_err =
                exact.schedule.validate(graph, sc.machine);
            if (!exact_err.empty()) {
                out.failure = "invalid exact schedule: " + exact_err;
                return out;
            }
            if (out.exactII > out.rmcaII) {
                out.failure = strprintf(
                    "exact II %lld exceeds rmca II %lld",
                    static_cast<long long>(out.exactII),
                    static_cast<long long>(out.rmcaII));
                return out;
            }
            if (exact.stats.iiLowerBound > out.exactII) {
                out.failure = strprintf(
                    "exact lower bound %lld exceeds its own II %lld",
                    static_cast<long long>(exact.stats.iiLowerBound),
                    static_cast<long long>(out.exactII));
                return out;
            }
        }

        // --- 3b. engine cross-check: the CDCL backend and the branch
        // and bound search entirely different spaces (learned clauses
        // vs. enumeration with pruning), so agreement is strong
        // evidence both certify the true minimum. Wherever both settle
        // they must report the same II; a certificate on one side and
        // an infeasibility verdict on the other is the worst possible
        // divergence. Budget-starved runs on either side are skipped,
        // not failed — absence of an answer is not a wrong answer. ---
        if (options.checkSat) {
            const auto satr = sched::scheduleWithBackend(
                "sat", graph, sc.machine, eopt, ctx);
            const bool bnb_cert = exact.ok && exact.stats.provenOptimal;
            const bool sat_cert = satr.ok && satr.stats.provenOptimal;
            const bool bnb_infeas =
                !exact.ok && !exact.stats.budgetExhausted;
            const bool sat_infeas =
                !satr.ok && !satr.stats.budgetExhausted;
            std::string diverged;
            if (bnb_cert && sat_infeas)
                diverged = strprintf(
                    "exact certified II %lld but sat proved "
                    "infeasibility",
                    static_cast<long long>(exact.schedule.ii()));
            else if (bnb_infeas && sat_cert)
                diverged = strprintf(
                    "exact proved infeasibility but sat certified "
                    "II %lld",
                    static_cast<long long>(satr.schedule.ii()));
            else if (bnb_cert && sat_cert &&
                     satr.schedule.ii() != exact.schedule.ii())
                diverged = strprintf(
                    "sat II %lld != exact II %lld",
                    static_cast<long long>(satr.schedule.ii()),
                    static_cast<long long>(exact.schedule.ii()));
            else if (sat_cert) {
                const std::string sat_err =
                    satr.schedule.validate(graph, sc.machine);
                if (!sat_err.empty())
                    diverged = "invalid sat schedule: " + sat_err;
            }
            if (!diverged.empty()) {
                // Dump the scenario verbatim: the text round-trip of
                // stage 1 guarantees these strings reproduce the
                // instance exactly, independent of the generator.
                out.failure = "sat/exact divergence: " + diverged +
                              "\n--- loop ---\n" + loop_text +
                              "--- machine ---\n" + mach_text;
                return out;
            }
        }
    }

    // --- 4. kernel image: II body, (SC-1)*II ramps ---
    const auto image =
        vliw::KernelImage::generate(graph, rmca.schedule, sc.machine);
    out.stages = image.stageCount();
    const auto ii = static_cast<std::size_t>(out.rmcaII);
    const auto ramp = static_cast<std::size_t>(out.stages - 1) * ii;
    if (image.ii() != out.rmcaII || image.kernel().size() != ii ||
        image.prologue().size() != ramp ||
        image.epilogue().size() != ramp ||
        image.stageCount() != rmca.schedule.stageCount()) {
        out.failure = strprintf(
            "kernel image shape mismatch: ii=%lld sc=%d kernel=%zu "
            "prologue=%zu epilogue=%zu",
            static_cast<long long>(image.ii()), image.stageCount(),
            image.kernel().size(), image.prologue().size(),
            image.epilogue().size());
        return out;
    }

    // --- 5. lockstep simulation: the §2.2 compute-cycle identity,
    // with NTIMES/NITER from the nest and SC from the kernel image ---
    const auto sim =
        sim::simulateLoop(graph, rmca.schedule, sc.machine);
    out.simCompute = sim.computeCycles;
    out.simStall = sim.stallCycles;
    const Cycle expected =
        sc.nest.outerExecutions() *
        ((sc.nest.innerTripCount() + out.stages - 1) * out.rmcaII);
    if (sim.computeCycles != expected) {
        out.failure = strprintf(
            "compute cycles %lld != NTIMES*(NITER+SC-1)*II = %lld",
            static_cast<long long>(sim.computeCycles),
            static_cast<long long>(expected));
        return out;
    }
    if (sim.iterations !=
        sc.nest.outerExecutions() * sc.nest.innerTripCount()) {
        out.failure = "simulator iteration count mismatch";
        return out;
    }

    // --- 6. CME solver vs exact oracle over the full memory set on
    // the scenario's per-cluster cache: bitwise where the solver is
    // exhaustive, CI-bounded where it sampled. ---
    cme::CmeAnalysis solver(sc.nest, {}, streams);
    cme::CacheOracle oracle(sc.nest, streams);
    const std::vector<OpId> mem = sc.nest.memoryOps();
    const CacheGeom geom = sc.machine.clusterCacheGeom();
    const bool exhaustive =
        ir::IterationSpace(sc.nest).points() <=
        solver.params().maxSamples;
    for (const OpId op : mem) {
        const auto est = solver.estimateRatio(mem, op, geom);
        const double exact = oracle.missRatio(mem, op, geom);
        const double tol =
            exhaustive ? 1e-12
                       : std::max(0.15, 4.0 * est.ciHalfWidth);
        if (std::fabs(est.ratio - exact) > tol) {
            out.failure = strprintf(
                "CME/oracle divergence on op %d: %.6f vs %.6f "
                "(tol %.6f, %s)",
                op, est.ratio, exact, tol,
                exhaustive ? "exhaustive" : "sampled");
            return out;
        }
    }
    out.cmeMisses = solver.missesPerIteration(mem, geom);
    out.oracleMisses = oracle.missesPerIteration(mem, geom);
    const double set_tol =
        exhaustive ? 1e-9 : 0.15 * static_cast<double>(mem.size());
    if (std::fabs(out.cmeMisses - out.oracleMisses) > set_tol) {
        out.failure = strprintf(
            "CME/oracle set divergence: %.6f vs %.6f misses/iter",
            out.cmeMisses, out.oracleMisses);
        return out;
    }
    return out;
}

} // namespace

int
DiffReport::passed() const
{
    return static_cast<int>(std::count_if(
        rows.begin(), rows.end(),
        [](const ScenarioOutcome &r) { return r.failure.empty(); }));
}

int
DiffReport::failed() const
{
    return static_cast<int>(rows.size()) - passed();
}

int
DiffReport::exactSettled() const
{
    return static_cast<int>(std::count_if(
        rows.begin(), rows.end(),
        [](const ScenarioOutcome &r) { return r.exactSettled; }));
}

int
DiffReport::rmcaOptimal() const
{
    return static_cast<int>(std::count_if(
        rows.begin(), rows.end(), [](const ScenarioOutcome &r) {
            return r.exactSettled && r.rmcaII == r.exactII;
        }));
}

std::string
DiffReport::serialise() const
{
    std::string out;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScenarioOutcome &r = rows[i];
        out += strprintf(
            "scenario=%zu seed=%llu loop=%s machine=%s ops=%d "
            "clusters=%d mii=%lld rmca_ii=%lld exact_ii=%lld "
            "settled=%d stages=%d compute=%lld stall=%lld "
            "cme=%.6f oracle=%.6f status=%s\n",
            i, static_cast<unsigned long long>(r.seed), r.loop.c_str(),
            r.machine.c_str(), r.ops, r.clusters,
            static_cast<long long>(r.mii),
            static_cast<long long>(r.rmcaII),
            static_cast<long long>(r.exactII), r.exactSettled ? 1 : 0,
            r.stages, static_cast<long long>(r.simCompute),
            static_cast<long long>(r.simStall), r.cmeMisses,
            r.oracleMisses,
            r.failure.empty() ? "ok" : r.failure.c_str());
    }
    out += strprintf("total scenarios=%zu passed=%d failed=%d "
                     "exact_settled=%d rmca_optimal=%d\n",
                     rows.size(), passed(), failed(), exactSettled(),
                     rmcaOptimal());
    return out;
}

std::string
DiffReport::summary() const
{
    std::string out = strprintf(
        "differential sweep: %zu scenarios, %d passed, %d failed; "
        "exact settled on %d (rmca II-optimal on %d)\n",
        rows.size(), passed(), failed(), exactSettled(), rmcaOptimal());
    if (options.checkExact) {
        const std::string clock =
            options.timeBudgetMs < 0
                ? std::string("no deadline")
                : strprintf("%lld ms wall-clock/scenario",
                            static_cast<long long>(
                                options.timeBudgetMs));
        out += strprintf(
            "gap unknown on %d scenarios (certifying engine: %s; "
            "budget: %s, %lld nodes/II attempt)\n",
            static_cast<int>(rows.size()) - exactSettled(),
            options.exactBackend.empty() ? "exact"
                                         : options.exactBackend.c_str(),
            clock.c_str(),
            static_cast<long long>(options.exactBudget));
    }
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (!rows[i].failure.empty())
            out += strprintf("  FAIL scenario %zu (seed %llu, %s on "
                             "%s): %s\n",
                             i,
                             static_cast<unsigned long long>(
                                 rows[i].seed),
                             rows[i].loop.c_str(),
                             rows[i].machine.c_str(),
                             rows[i].failure.c_str());
    return out;
}

DiffReport
runDifferential(const DiffOptions &options, ParallelDriver &driver)
{
    mvp_assert(options.scenarios >= 1, "differential sweep wants >= 1 "
               "scenario");
    // Resolve the provider on the main thread: an unknown name is a
    // configuration error whose fatal must not fire inside a worker.
    (void)cme::LocalityRegistry::instance().create(options.locality);

    DiffReport report;
    report.options = options;
    report.rows.resize(static_cast<std::size_t>(options.scenarios));
    driver.run(report.rows.size(),
               [&](std::size_t i, sched::SchedContext &ctx) {
                   report.rows[i] = runScenario(
                       gen::deriveSeed(options.seed, i), options, ctx);
               });
    return report;
}

DiffReport
runDifferential(const DiffOptions &options)
{
    ParallelDriver driver;
    return runDifferential(options, driver);
}

} // namespace mvp::harness
