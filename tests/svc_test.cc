/**
 * @file
 * The scheduling service: cache-key canonicalization, cold/warm byte
 * identity, warm-state persistence, batch determinism and the framed
 * protocol session.
 *
 *  - Textual request variants (whitespace, comments, block order,
 *    option order, redundant defaults) produce one canonical key and
 *    hit one cache entry, with byte-identical replies.
 *  - The zero-parse raw lane aliases canonical entries: byte-repeat
 *    payloads resolve without parsing, textual variants fall through
 *    to the canonical key and then prime their own raw entry, error
 *    replies never enter either lane, and a raw hit after FLUSH is
 *    byte-identical to the cold reply.
 *  - A warm service replays cold replies byte for byte, and a service
 *    rebuilt from encodeState() does the same — including the
 *    encode(decode(s)) == s round trip of the binary v2 snapshot,
 *    whole-snapshot rejection of version skew and truncation, the
 *    text-v1 -> binary-v2 migration path and merge-on-LOAD.
 *  - Batches are deterministic across --jobs and arrival order.
 *  - The session survives malformed payloads (error REP, not a dead
 *    server), keeps REP ids aligned with submission order, and the
 *    CME/oracle memo export/import APIs round-trip.
 *  - The TCP reactor serves interleaved connections whose frames
 *    arrive in tiny chunks split across reads (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"
#include "svc/protocol.hh"
#include "svc/server.hh"
#include "svc/service.hh"
#include "svc/session.hh"
#include "svc/state.hh"
#include "text/format.hh"
#include "workloads/workloads.hh"

namespace mvp::svc
{
namespace
{

/** A small mixed request set: two suites, two machines, rmca. */
std::vector<std::string>
samplePayloads()
{
    std::vector<std::string> out;
    for (const char *suite : {"tomcatv", "swim"}) {
        const auto bench = workloads::benchmarkByName(suite);
        for (const auto &nest : bench.loops) {
            for (const auto &machine :
                 {makeTwoCluster(), makeFourCluster()}) {
                const text::ScenarioText scenario{nest, machine};
                out.push_back("config backend rmca\n"
                              "config threshold 0.25\n\n" +
                              text::printScenario(scenario));
            }
        }
    }
    return out;
}

std::vector<Request>
parseAll(const std::vector<std::string> &payloads)
{
    std::vector<Request> out;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
        Request req = parseRequest(payloads[i]);
        req.id = "r" + std::to_string(i);
        EXPECT_EQ(req.error, "");
        out.push_back(std::move(req));
    }
    return out;
}

TEST(SvcProtocol, ScenarioPrintParseRoundTrips)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string printed = text::printScenario(scenario);
    const auto reparsed = text::parseScenario(printed, "round-trip");
    EXPECT_EQ(text::printScenario(reparsed), printed);
}

/** The canonicalization contract: every textual variant of one
 * request — comments, whitespace, block order, option order,
 * redundant defaults, equivalent number spellings — is one key. */
TEST(SvcProtocol, TextualVariantsShareOneCacheKey)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string loop_text = text::printLoop(scenario.loop);
    const std::string machine_text =
        text::printMachine(scenario.machine);

    const std::string plain = "config backend rmca\n"
                              "config threshold 0.25\n\n" +
                              loop_text + "\n" + machine_text;

    // Comments, blank lines, option order, explicit defaults, the
    // machine block before the loop block, a trailing-zero threshold.
    const std::string variant = "# a comment\n"
                                "\n"
                                "config threshold 0.250\n"
                                "config locality cme\n"
                                "config backend rmca\n"
                                "config exact-backend exact\n"
                                "# another comment\n" +
                                machine_text + "\n# between blocks\n" +
                                loop_text + "\n";

    const Request a = parseRequest(plain);
    const Request b = parseRequest(variant);
    ASSERT_EQ(a.error, "");
    ASSERT_EQ(b.error, "");
    EXPECT_EQ(a.key, b.key);

    // And a semantically different request must not collide.
    const std::string other = "config backend rmca\n"
                              "config threshold 0.75\n\n" +
                              loop_text + "\n" + machine_text;
    const Request c = parseRequest(other);
    ASSERT_EQ(c.error, "");
    EXPECT_NE(a.key, c.key);
}

TEST(SvcProtocol, MalformedPayloadsReportInsteadOfExiting)
{
    const Request bad = parseRequest("loop garbage {", "test");
    EXPECT_NE(bad.error, "");
    const Request empty = parseRequest("config backend rmca\n");
    EXPECT_NE(empty.error, "");
    const Request unknown =
        parseRequest("config frobnicate 3\nloop \"x\" {\n}\n");
    EXPECT_NE(unknown.error.find("unknown config key"),
              std::string::npos);
}

/** One service, same batch twice: the warm pass is all cache hits and
 * byte-identical; a canonical variant of a request also hits. */
TEST(SvcService, WarmRepliesAreByteIdenticalToCold)
{
    const auto payloads = samplePayloads();
    SchedService service(2);

    auto cold = service.processBatch(parseAll(payloads));
    auto warm = service.processBatch(parseAll(payloads));
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_FALSE(cold[i].cacheHit) << i;
        EXPECT_TRUE(warm[i].cacheHit) << i;
        EXPECT_EQ(cold[i].bytes(), warm[i].bytes()) << i;
    }

    const auto st = service.stats();
    EXPECT_EQ(st.requests,
              static_cast<std::int64_t>(2 * payloads.size()));
    EXPECT_EQ(st.cacheHits,
              static_cast<std::int64_t>(payloads.size()));
    EXPECT_EQ(st.cacheEntries,
              static_cast<std::int64_t>(payloads.size()));

    // A reordered textual variant of request 0 is a hit too.
    const Request plain = parseRequest(payloads[0]);
    std::string variant_payload =
        "# variant\nconfig threshold 0.250\nconfig backend rmca\n" +
        payloads[0].substr(payloads[0].find("\n\n") + 2);
    Request variant = parseRequest(variant_payload);
    ASSERT_EQ(variant.key, plain.key);
    const auto hit = service.processOne(std::move(variant));
    EXPECT_TRUE(hit.cacheHit);
    EXPECT_EQ(hit.bytes(), cold[0].bytes());
}

/** The zero-parse lane: a byte-identical repeat resolves via
 * rawProbe() with the *same* stored bytes as the canonical entry; a
 * textual variant misses the raw lane, falls through to the canonical
 * key, and then primes its own raw entry; parse errors never enter
 * either lane. */
TEST(SvcService, RawLaneAliasesCanonicalEntries)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string payload = "config backend rmca\n"
                                "config threshold 0.25\n\n" +
                                text::printScenario(scenario);
    const std::string variant =
        "# variant spelling\nconfig threshold 0.250\n"
        "config backend rmca\n\n" +
        text::printScenario(scenario);

    SchedService service(1);
    EXPECT_EQ(service.rawProbe(payload), nullptr);

    const auto cold = service.processOne(parseRequest(payload));
    ASSERT_FALSE(cold.cacheHit);

    // The exact bytes now resolve without parsing — and alias the
    // canonical entry (same shared payload, not a copy).
    const ReplyBytes raw_hit = service.rawProbe(payload);
    ASSERT_NE(raw_hit, nullptr);
    EXPECT_EQ(raw_hit.get(), cold.payload.get());

    // A different spelling is a raw miss but a canonical hit; the
    // serve publishes its raw entry for next time.
    EXPECT_EQ(service.rawProbe(variant), nullptr);
    const auto via_key = service.processOne(parseRequest(variant));
    EXPECT_TRUE(via_key.cacheHit);
    EXPECT_EQ(via_key.bytes(), cold.bytes());
    const ReplyBytes variant_hit = service.rawProbe(variant);
    ASSERT_NE(variant_hit, nullptr);
    EXPECT_EQ(variant_hit.get(), cold.payload.get());

    // Parse errors quote the frame id: never cached, never raw.
    const std::string bad = "loop garbage {";
    const auto err = service.processOne(parseRequest(bad, "test"));
    EXPECT_FALSE(err.cacheHit);
    EXPECT_EQ(service.rawProbe(bad), nullptr);

    const auto st = service.stats();
    EXPECT_EQ(st.rawHits, 2);
    EXPECT_EQ(st.rawEntries, 2);
    EXPECT_EQ(st.cacheEntries, 1);
}

/** Through the session: the second identical REQ is answered from the
 * raw lane (no parse), across a FLUSH boundary, byte-identically. */
TEST(SvcSession, RawLaneHitsAcrossFlushesStayByteIdentical)
{
    const auto bench = workloads::benchmarkByName("swim");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string payload = "config backend rmca\n\n" +
                                text::printScenario(scenario);

    std::string stream;
    for (int round = 0; round < 3; ++round)
        stream += "REQ r" + std::to_string(round) + " " +
                  std::to_string(payload.size()) + "\n" + payload +
                  "\nFLUSH\n";
    stream += "QUIT\n";

    SchedService service(1);
    ServiceSession session(service);
    std::string out;
    session.consume(stream, out);

    // Three byte-identical REP payloads.
    std::vector<std::string> reps;
    std::size_t pos = 0;
    while ((pos = out.find("REP r", pos)) != std::string::npos) {
        const std::size_t head_end = out.find('\n', pos);
        const std::size_t nbytes = static_cast<std::size_t>(
            std::atoll(out.c_str() + pos + 7));
        reps.push_back(out.substr(head_end + 1, nbytes));
        pos = head_end + 1 + nbytes;
    }
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], reps[1]);
    EXPECT_EQ(reps[0], reps[2]);
    EXPECT_NE(reps[0].find("status ok"), std::string::npos);

    // Rounds 2 and 3 were raw-lane resolutions.
    EXPECT_EQ(service.stats().rawHits, 2);
}

/** Replies are a pure function of the request: job counts and arrival
 * order are invisible in the bytes. */
TEST(SvcService, BatchesAreDeterministicAcrossJobsAndOrder)
{
    const auto payloads = samplePayloads();

    SchedService serial(1);
    const auto a = serial.processBatch(parseAll(payloads));

    // Same requests, more workers, reversed arrival order.
    std::vector<std::string> reversed(payloads.rbegin(),
                                      payloads.rend());
    SchedService pooled(8);
    const auto b = pooled.processBatch(parseAll(reversed));

    ASSERT_EQ(a.size(), b.size());
    const std::size_t n = a.size();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i].bytes(), b[n - 1 - i].bytes()) << i;
}

/** Warm-state persistence: a service rebuilt from a snapshot replays
 * every reply byte-identically from its cache, and the snapshot
 * itself round-trips (encode(decode(s)) == s). */
TEST(SvcService, WarmStateRoundTripsAcrossServices)
{
    auto payloads = samplePayloads();
    // Add an oracle-provider request so the snapshot carries oracle
    // checkpoints alongside the CME memo.
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    payloads.push_back("config backend rmca\n"
                       "config locality oracle\n"
                       "config threshold 0.25\n\n" +
                       text::printScenario(scenario));

    SchedService first(2);
    const auto cold = first.processBatch(parseAll(payloads));
    const std::string snapshot = first.encodeState();

    // Deterministic encoding: same state, same bytes.
    EXPECT_EQ(first.encodeState(), snapshot);

    SchedService second(2);
    second.decodeState(snapshot, "test-snapshot");
    EXPECT_EQ(second.encodeState(), snapshot);

    const auto warm = second.processBatch(parseAll(payloads));
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].cacheHit) << i;
        EXPECT_EQ(warm[i].bytes(), cold[i].bytes()) << i;
    }

    // The snapshot is the binary v2 format, not text.
    ASSERT_GE(snapshot.size(), sizeof WARM_STATE_MAGIC);
    EXPECT_EQ(std::memcmp(snapshot.data(), WARM_STATE_MAGIC,
                          sizeof WARM_STATE_MAGIC),
              0);
}

/** The migration path: a legacy text-v1 snapshot loads into a fresh
 * service and re-encodes as the byte-identical binary v2 snapshot —
 * old warm state survives the format change with nothing lost. */
TEST(SvcService, TextV1SnapshotsMigrateToBinaryV2)
{
    const auto payloads = samplePayloads();
    SchedService first(2);
    first.processBatch(parseAll(payloads));

    const std::string text_v1 = first.encodeStateTextV1();
    EXPECT_EQ(text_v1.compare(0, 14, "mvp-warm-state"), 0);

    SchedService from_text(1);
    from_text.decodeState(text_v1, "text-v1");
    SchedService from_binary(1);
    from_binary.decodeState(first.encodeState(), "binary-v2");

    // Both load paths reconstruct the same state.
    EXPECT_EQ(from_text.encodeState(), first.encodeState());
    EXPECT_EQ(from_text.encodeState(), from_binary.encodeState());
}

/** LOAD merges: two half-snapshots loaded into one service equal one
 * service that computed everything itself. */
TEST(SvcService, LoadingTwoSnapshotsMergesKeepTheWinner)
{
    const auto payloads = samplePayloads();
    const std::size_t half = payloads.size() / 2;
    const std::vector<std::string> lo(payloads.begin(),
                                      payloads.begin() + half);
    const std::vector<std::string> hi(payloads.begin() + half,
                                      payloads.end());

    SchedService a(1), b(1), all(1);
    a.processBatch(parseAll(lo));
    b.processBatch(parseAll(hi));
    all.processBatch(parseAll(payloads));

    SchedService merged(1);
    merged.decodeState(a.encodeState(), "half-a");
    merged.decodeState(b.encodeState(), "half-b");
    EXPECT_EQ(merged.encodeState(), all.encodeState());

    // Re-loading what's already present changes nothing.
    merged.decodeState(a.encodeState(), "half-a-again");
    EXPECT_EQ(merged.encodeState(), all.encodeState());
}

/** Version skew and truncation reject the *whole* snapshot: the
 * service is untouched, not half-loaded. */
TEST(SvcService, CorruptSnapshotsAreRejectedWhole)
{
    const auto payloads = samplePayloads();
    SchedService donor(2);
    donor.processBatch(parseAll(payloads));
    const std::string good = donor.encodeState();

    // Binary with a skewed version word.
    std::string skewed(WARM_STATE_MAGIC, sizeof WARM_STATE_MAGIC);
    skewed += std::string("\xe7\x03\x00\x00", 4);   // version 999
    skewed += good.substr(sizeof WARM_STATE_MAGIC + 4);

    // Truncated mid-payload.
    const std::string truncated = good.substr(0, good.size() / 2);

    SchedService victim(1);
    FatalScope guard;
    EXPECT_THROW(victim.decodeState(skewed, "skewed"), FatalError);
    EXPECT_THROW(victim.decodeState(truncated, "truncated"),
                 FatalError);
    const auto st = victim.stats();
    EXPECT_EQ(st.cacheEntries, 0);
    EXPECT_EQ(st.loopContexts, 0);
    EXPECT_EQ(victim.encodeState(), SchedService(1).encodeState());
}

TEST(SvcService, DecodeRejectsVersionSkewInsideFatalScope)
{
    SchedService service(1);
    FatalScope guard;
    EXPECT_THROW(
        service.decodeState("mvp-warm-state 999\ncache 0\nloops 0\nend\n",
                            "skewed"),
        FatalError);
    EXPECT_THROW(service.decodeState("not a snapshot", "garbage"),
                 FatalError);
}

/** The framed protocol: byte-at-a-time feeding, malformed payloads
 * answered with error REPs (ids aligned, session alive), STATS, QUIT. */
TEST(SvcSession, ChunkedFramesMalformedPayloadsAndQuit)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText scenario{bench.loops[0],
                                      makeTwoCluster()};
    const std::string good = "config backend rmca\n"
                             "config threshold 0.25\n\n" +
                             text::printScenario(scenario);
    const std::string bad = "loop garbage {";

    std::string stream;
    stream += "REQ good " + std::to_string(good.size()) + "\n" + good +
              "\n";
    stream += "REQ bad " + std::to_string(bad.size()) + "\n" + bad +
              "\n";
    stream += "FLUSH\n";
    stream += "STATS\n";
    stream += "QUIT\n";

    SchedService service(2);
    ServiceSession session(service);
    std::string out;
    bool open = true;
    for (const char c : stream)
        open = session.consume(&c, 1, out);
    EXPECT_FALSE(open);
    EXPECT_TRUE(session.closed());

    // Two REPs in submission order, then STATS, then BYE.
    ASSERT_EQ(out.compare(0, 9, "REP good "), 0) << out.substr(0, 40);
    const std::size_t bad_at = out.find("REP bad ");
    ASSERT_NE(bad_at, std::string::npos);
    const std::size_t err_at = out.find("status error", bad_at);
    EXPECT_NE(err_at, std::string::npos);
    EXPECT_NE(out.find("\nSTATS "), std::string::npos);
    EXPECT_EQ(out.compare(out.size() - 4, 4, "BYE\n"), 0);

    // The good reply matches a direct computation of the same
    // request.
    const auto direct = SchedService(1).processOne(parseRequest(good));
    const std::size_t head_end = out.find('\n');
    const std::size_t nbytes = static_cast<std::size_t>(
        std::atoll(out.c_str() + 9));
    EXPECT_EQ(out.substr(head_end + 1, nbytes), direct.bytes());
}

TEST(SvcSession, FramingErrorsCloseTheSession)
{
    SchedService service(1);
    ServiceSession session(service);
    std::string out;
    EXPECT_FALSE(session.consume(std::string("NONSENSE 3\n"), out));
    EXPECT_NE(out.find("unknown command"), std::string::npos);
    // Input after close is ignored.
    out.clear();
    EXPECT_FALSE(session.consume(std::string("STATS\n"), out));
    EXPECT_EQ(out, "");
}

/** The poll() reactor: two concurrent connections whose frames arrive
 * in tiny chunks, interleaved byte-for-byte, still produce replies
 * byte-identical to direct computation. Run under TSan in CI — the
 * reactor thread and the main thread share the service. */
TEST(SvcServer, ReactorServesChunkedInterleavedConnections)
{
    const auto bench = workloads::benchmarkByName("tomcatv");
    const text::ScenarioText s1{bench.loops[0], makeTwoCluster()};
    const text::ScenarioText s2{bench.loops[0], makeFourCluster()};
    const std::string p1 = "config backend rmca\n\n" +
                           text::printScenario(s1);
    const std::string p2 = "config backend rmca\n\n" +
                           text::printScenario(s2);
    const std::string bad = "loop garbage {";

    std::string stream1 = "REQ a " + std::to_string(p1.size()) + "\n" +
                          p1 + "\nFLUSH\n" + "REQ a2 " +
                          std::to_string(p1.size()) + "\n" + p1 +
                          "\nQUIT\n";
    std::string stream2 = "REQ b " + std::to_string(p2.size()) + "\n" +
                          p2 + "\n" + "REQ oops " +
                          std::to_string(bad.size()) + "\n" + bad +
                          "\nQUIT\n";

    SchedService service(2);
    TcpReactor reactor(service, 0);
    ASSERT_TRUE(reactor.ok()) << reactor.error();
    std::thread loop([&] { reactor.run(); });

    const auto connect = [&]() {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(reactor.port()));
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<const sockaddr *>(&addr),
                            sizeof addr),
                  0);
        return fd;
    };
    const int c1 = connect();
    const int c2 = connect();

    // Drip the two streams alternately, 7 bytes at a time, so every
    // frame is split across many reads and the two sessions
    // interleave on the loop thread.
    std::size_t o1 = 0, o2 = 0;
    while (o1 < stream1.size() || o2 < stream2.size()) {
        if (o1 < stream1.size()) {
            const std::size_t n = std::min<std::size_t>(
                7, stream1.size() - o1);
            ASSERT_EQ(::send(c1, stream1.data() + o1, n, 0),
                      static_cast<ssize_t>(n));
            o1 += n;
        }
        if (o2 < stream2.size()) {
            const std::size_t n = std::min<std::size_t>(
                7, stream2.size() - o2);
            ASSERT_EQ(::send(c2, stream2.data() + o2, n, 0),
                      static_cast<ssize_t>(n));
            o2 += n;
        }
    }

    const auto drain = [](int fd) {
        std::string out;
        char buf[4096];
        for (;;) {
            const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
            if (got <= 0)
                break;
            out.append(buf, static_cast<std::size_t>(got));
            if (out.size() >= 4 &&
                out.compare(out.size() - 4, 4, "BYE\n") == 0)
                break;
        }
        return out;
    };
    const std::string out1 = drain(c1);
    const std::string out2 = drain(c2);
    ::close(c1);
    ::close(c2);
    reactor.stop();
    loop.join();

    // Extract one REP payload by id from a session's output.
    const auto rep = [](const std::string &out, const std::string &id) {
        const std::string head = "REP " + id + " ";
        const std::size_t at = out.find(head);
        if (at == std::string::npos)
            return std::string();
        const std::size_t nbytes = static_cast<std::size_t>(
            std::atoll(out.c_str() + at + head.size()));
        const std::size_t body = out.find('\n', at) + 1;
        return out.substr(body, nbytes);
    };

    SchedService direct(1);
    const std::string want1 =
        direct.processOne(parseRequest(p1)).bytes();
    const std::string want2 =
        direct.processOne(parseRequest(p2)).bytes();
    EXPECT_EQ(rep(out1, "a"), want1);
    // The repeat on connection 1 went through the raw lane (the FLUSH
    // published the entry) — still byte-identical.
    EXPECT_EQ(rep(out1, "a2"), want1);
    EXPECT_EQ(rep(out2, "b"), want2);
    EXPECT_NE(rep(out2, "oops").find("status error"),
              std::string::npos);
    EXPECT_EQ(out1.compare(out1.size() - 4, 4, "BYE\n"), 0);
    EXPECT_EQ(out2.compare(out2.size() - 4, 4, "BYE\n"), 0);
    EXPECT_GE(service.stats().rawHits, 1);
}

TEST(SvcFlags, UnknownFlagsAreFatalWithTheKnownList)
{
    const char *argv_c[] = {"prog", "--localty=oracle"};
    char **argv = const_cast<char **>(argv_c);
    EXPECT_EXIT(harness::rejectUnknownFlags(2, argv,
                                            {"--jobs", "--locality"}),
                testing::ExitedWithCode(1),
                "unknown flag '--localty'");
}

} // namespace
} // namespace mvp::svc
