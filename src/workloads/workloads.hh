/**
 * @file
 * Synthetic SPECfp95-like benchmark suites.
 *
 * The paper schedules the innermost loops of eight SPECfp95 programs
 * compiled by ICTINEO. Neither the benchmarks' Fortran sources nor the
 * compiler are reproducible here, so each suite below is a set of loop
 * nests modelled on the corresponding program's dominant innermost
 * loops: the same kind of array access patterns (stencils, shallow-water
 * updates, power-of-two strides, column sweeps), operation mixes and
 * recurrence structure. What the evaluation measures — group reuse
 * captured or broken by cluster assignment, ping-pong conflicts in
 * direct-mapped caches, bus pressure from inter-cluster traffic — is a
 * function of exactly these properties, which is why the substitution
 * preserves the paper's qualitative behaviour (see DESIGN.md).
 *
 * Array placement is deliberate: pairs that the original programs keep
 * in distinct memory regions are laid out at multiples of 8 KB so that
 * they conflict in every configuration's direct-mapped L1 (8 KB unified,
 * 4 KB and 2 KB per-cluster splits) unless the scheduler separates their
 * references into different clusters.
 */

#ifndef MVP_WORKLOADS_WORKLOADS_HH
#define MVP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "ir/loop.hh"

namespace mvp::workloads
{

/** One benchmark: a named set of modulo-schedulable loop nests. */
struct Benchmark
{
    std::string name;
    std::vector<ir::LoopNest> loops;
};

/** @name The eight SPECfp95-like suites (§5.1) */
/// @{
Benchmark makeTomcatv();
Benchmark makeSwim();
Benchmark makeSu2cor();
Benchmark makeHydro2d();
Benchmark makeMgrid();
Benchmark makeApplu();
Benchmark makeTurb3d();
Benchmark makeApsi();
/// @}

/** All eight suites, in the paper's order. */
std::vector<Benchmark> allBenchmarks();

/**
 * Resolve a list of workload names to benchmarks, in the given order.
 * Every name goes through the same resolution benchmarkByName()
 * performs (builtin registry, `file:` and `gen:` schemes); an empty
 * list resolves to all builtin suites in the paper's order. This is
 * what the harness Workbench feeds its `only` selection through, so
 * any experiment can mix compiled-in suites with loops loaded from
 * text files and generated instance sets.
 */
std::vector<Benchmark> resolveWorkloads(
    const std::vector<std::string> &names);

/** One loop with its suite attribution, for flat sweeps. */
struct NamedLoop
{
    std::string benchmark;
    std::size_t index = 0;   ///< position within the benchmark
    ir::LoopNest nest;
};

/**
 * Every loop of every suite as a flat list (paper order). The backend
 * sweeps — gap study, exact-vs-rmca tests, benches — iterate loops,
 * not suites; this saves each of them the same double loop.
 */
std::vector<NamedLoop> allLoops();

/**
 * Workload lookup. Three name forms resolve:
 *
 *  - a builtin suite name ("tomcatv", ..., "apsi");
 *  - `file:<path>` — a text-format loop file (text/format.hh), the
 *    benchmark named by its `suite` directive (else the path);
 *  - `gen:<spec>` — a generated suite (gen/generator.hh), e.g.
 *    "gen:seed=42,loops=8"; the spec string names the benchmark.
 *
 * Unknown names are fatal, listing the valid builtin names and the
 * schemes (the shared NamedFactoryTable error path).
 */
Benchmark benchmarkByName(const std::string &name);

/** Names of all builtin suites. */
std::vector<std::string> benchmarkNames();

} // namespace mvp::workloads

#endif // MVP_WORKLOADS_WORKLOADS_HH
