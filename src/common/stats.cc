#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace mvp
{

void
RunningStat::add(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::ciHalfWidth(double z) const
{
    if (n_ < 2)
        return 0.0;
    return z * stddev() / std::sqrt(static_cast<double>(n_));
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel combination of Welford states.
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    mean_ += delta * nb / nab;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

std::int64_t &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

std::int64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters_)
        os << prefix << name << " = " << value << '\n';
    return os.str();
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

void
StatGroup::reset()
{
    for (auto &[name, value] : counters_)
        value = 0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    mvp_assert(hi > lo, "histogram range must be non-empty");
    mvp_assert(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    ++count_;
    sum_ += x;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

std::size_t
Histogram::bucketCount(std::size_t i) const
{
    mvp_assert(i < counts_.size(), "bucket index out of range");
    return counts_[i];
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

} // namespace mvp
