/**
 * @file
 * Unit tests for the common infrastructure: statistics accumulators,
 * deterministic RNG, string helpers and the table renderer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace mvp
{
namespace
{

// ---------------------------------------------------------------- stats

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.ciHalfWidth(), 0.0);
}

TEST(RunningStat, SingleObservation)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVarianceMatchClosedForm)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic dataset: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential)
{
    RunningStat a;
    RunningStat b;
    RunningStat all;
    for (int i = 0; i < 100; ++i) {
        const double x = 0.37 * i - 3.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat a;
    RunningStat empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStat c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStat, CiShrinksWithSamples)
{
    Rng rng(7);
    RunningStat few;
    RunningStat many;
    for (int i = 0; i < 16; ++i)
        few.add(rng.nextDouble());
    for (int i = 0; i < 4096; ++i)
        many.add(rng.nextDouble());
    EXPECT_GT(few.ciHalfWidth(), many.ciHalfWidth());
    // A uniform(0,1) mean CI at n=4096 is ~ 1.96*0.2887/64 ~ 0.009.
    EXPECT_LT(many.ciHalfWidth(), 0.02);
}

TEST(StatGroup, CountersAutoCreateAndMerge)
{
    StatGroup g;
    EXPECT_EQ(g.value("never_touched"), 0);
    g.counter("hits") += 5;
    g.counter("misses") += 2;
    StatGroup h;
    h.counter("hits") += 1;
    g.merge(h);
    EXPECT_EQ(g.value("hits"), 6);
    EXPECT_EQ(g.value("misses"), 2);
    const std::string dump = g.dump("pre.");
    EXPECT_NE(dump.find("pre.hits = 6"), std::string::npos);
}

TEST(StatGroup, ResetKeepsNames)
{
    StatGroup g;
    g.counter("x") = 9;
    g.reset();
    EXPECT_EQ(g.value("x"), 0);
    EXPECT_EQ(g.all().size(), 1u);
}

TEST(Histogram, BucketsAndOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    for (double x : {-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 99.0})
        h.add(x);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 2u);   // 0.0 and 1.9
    EXPECT_EQ(h.bucketCount(1), 1u);   // 2.0
    EXPECT_EQ(h.bucketCount(4), 1u);   // 9.9
    EXPECT_NEAR(h.mean(), (-1.0 + 0.0 + 1.9 + 2.0 + 9.9 + 10.0 + 99.0) / 7,
                1e-12);
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool lo = false;
    bool hi = false;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(17);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

// -------------------------------------------------------------- strutil

TEST(Strutil, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "abc"), "x=3 y=abc");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strutil, JoinAndPad)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcdef", 4), "abcd");
}

TEST(Strutil, Percent)
{
    EXPECT_EQ(fmtPercent(0.25), "25.0%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
    EXPECT_EQ(fmtDouble(3.14159, 3), "3.142");
}

// ---------------------------------------------------------------- table

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.setTitle("demo");
    t.addRow({"x", "1"});
    t.addRule();
    t.addRow({"longer-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeath, WrongArityPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

} // namespace
} // namespace mvp
