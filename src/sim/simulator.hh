/**
 * @file
 * Lockstep execution of a modulo-scheduled loop on a multiVLIWprocessor.
 *
 * The machine executes the static schedule cycle by cycle; all clusters
 * stall together whenever a dynamically-checked memory dependence is not
 * met (§2.1): a consumer whose producing load (or a load whose producing
 * store) has not completed holds every cluster until the hazard
 * resolves. The simulator therefore reports exactly the decomposition of
 * §2.2:
 *
 *   NCYCLE_total = NCYCLE_compute + NCYCLE_stall
 *   NCYCLE_compute = NTIMES * ((NITER + SC - 1) * II)
 *
 * where NTIMES is the number of innermost-loop executions (the product
 * of the outer trip counts) and NITER the innermost trip count. Cache
 * and bus state persists across the NTIMES executions, which is what
 * creates cross-execution reuse and the conflict behaviour the paper's
 * locality analysis predicts.
 */

#ifndef MVP_SIM_SIMULATOR_HH
#define MVP_SIM_SIMULATOR_HH

#include "cache/memsys.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/schedule.hh"

namespace mvp::sim
{

/** Simulation outcome. */
struct SimResult
{
    Cycle computeCycles = 0;
    Cycle stallCycles = 0;
    std::int64_t iterations = 0;      ///< innermost iterations executed
    std::int64_t executions = 0;      ///< innermost-loop executions
    std::int64_t opsExecuted = 0;
    std::int64_t memAccesses = 0;
    StatGroup memStats;               ///< memory-system event counters

    Cycle totalCycles() const { return computeCycles + stallCycles; }
};

/** Optional knobs for scaled-down runs. */
struct SimParams
{
    /**
     * Cap on the number of innermost-loop executions to simulate
     * (<= 0: all outer iterations). The compute/stall totals scale
     * linearly once the caches warm, so harness sweeps may cap this.
     */
    std::int64_t maxExecutions = 0;
};

/**
 * Execute @p sched for the loop underlying @p graph on @p machine.
 * The schedule must be valid (ModuloSchedule::validate).
 */
SimResult simulateLoop(const ddg::Ddg &graph,
                       const sched::ModuloSchedule &sched,
                       const MachineConfig &machine, SimParams params = {});

} // namespace mvp::sim

#endif // MVP_SIM_SIMULATOR_HH
