/**
 * @file
 * Memo-consistency tests for the hashed-key locality caches.
 *
 * The CME solver and the exact oracle replaced their string memo keys
 * with FNV-hashed struct keys (cme/setkey.hh) plus an open-addressing
 * table in the solver. These tests pin the contract the scheduler relies
 * on: a memoised answer is bit-identical to a fresh instance's answer,
 * regardless of query order, set permutation, duplicate ops in the set,
 * or how many entries the table has absorbed (growth/rehash included).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cme/oracle.hh"
#include "cme/setkey.hh"
#include "cme/solver.hh"
#include "ir/builder.hh"

namespace mvp::cme
{
namespace
{

using namespace mvp::ir;

const CacheGeom GEOM_2K{2048, 32, 1};
const CacheGeom GEOM_4K{4096, 32, 1};

/** Several interfering references so distinct sets answer differently. */
LoopNest
interferenceLoop()
{
    LoopNestBuilder b("memo");
    b.loop("r", 0, 8);
    b.loop("i", 0, 512);
    const auto A = b.arrayAt("A", {512}, 0x10000);
    const auto B = b.arrayAt("B", {512}, 0x10000 + 0x2000);
    const auto C = b.arrayAt("C", {512}, 0x10000 + 0x4000);
    const auto la = b.load(A, {affineVar(1)}, "la");
    const auto lb = b.load(B, {affineVar(1)}, "lb");
    const auto lc = b.load(C, {affineVar(1)}, "lc");
    const auto m = b.op(Opcode::FMul, {use(la), use(lb)});
    const auto s = b.op(Opcode::FAdd, {use(m), use(lc)});
    b.store(A, {affineVar(1)}, use(s));
    return b.build();
}

TEST(CmeMemo, MemoisedEqualsFresh)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    CmeAnalysis warm(nest);

    // Warm the memo with every subset query we are about to replay.
    for (OpId op : mem) {
        (void)warm.missRatio(mem, op, GEOM_2K);
        (void)warm.missRatio(mem, op, GEOM_4K);
    }
    (void)warm.missesPerIteration(mem, GEOM_2K);
    const std::size_t queries_after_warmup = warm.queriesSolved();

    for (OpId op : mem) {
        CmeAnalysis fresh(nest);
        EXPECT_EQ(warm.missRatio(mem, op, GEOM_2K),
                  fresh.missRatio(mem, op, GEOM_2K));
        EXPECT_EQ(warm.missRatio(mem, op, GEOM_4K),
                  fresh.missRatio(mem, op, GEOM_4K));
    }
    {
        CmeAnalysis fresh(nest);
        EXPECT_EQ(warm.missesPerIteration(mem, GEOM_2K),
                  fresh.missesPerIteration(mem, GEOM_2K));
    }
    // Every replay above must have been served from the memo.
    EXPECT_EQ(warm.queriesSolved(), queries_after_warmup);
}

TEST(CmeMemo, SetOrderAndDuplicatesAreCanonicalised)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();
    ASSERT_GE(mem.size(), 3u);

    CmeAnalysis cme(nest);
    const double ref = cme.missRatio(mem, mem[0], GEOM_2K);
    const double ref_set = cme.missesPerIteration(mem, GEOM_2K);

    std::vector<OpId> shuffled = mem;
    std::reverse(shuffled.begin(), shuffled.end());
    EXPECT_EQ(cme.missRatio(shuffled, mem[0], GEOM_2K), ref);
    EXPECT_EQ(cme.missesPerIteration(shuffled, GEOM_2K), ref_set);

    std::vector<OpId> dup = mem;
    dup.push_back(mem[1]);
    dup.push_back(mem[0]);
    EXPECT_EQ(cme.missRatio(dup, mem[0], GEOM_2K), ref);
    EXPECT_EQ(cme.missesPerIteration(dup, GEOM_2K), ref_set);

    // op absent from the set vector == op present (it joins the set).
    std::vector<OpId> without;
    for (OpId op : mem)
        if (op != mem[0])
            without.push_back(op);
    EXPECT_EQ(cme.missRatio(without, mem[0], GEOM_2K), ref);
}

TEST(CmeMemo, OracleMemoMatchesFresh)
{
    const auto nest = interferenceLoop();
    const auto mem = nest.memoryOps();

    CacheOracle warm(nest);
    (void)warm.missesPerIteration(mem, GEOM_2K);
    for (OpId op : mem) {
        CacheOracle fresh(nest);
        EXPECT_EQ(warm.missRatio(mem, op, GEOM_2K),
                  fresh.missRatio(mem, op, GEOM_2K));
    }
    std::vector<OpId> shuffled = mem;
    std::reverse(shuffled.begin(), shuffled.end());
    EXPECT_EQ(warm.missesPerIteration(shuffled, GEOM_2K),
              warm.missesPerIteration(mem, GEOM_2K));
}

TEST(CmeMemo, RatioMemoSurvivesGrowth)
{
    // Push the open-addressing table through several growth cycles and
    // verify every stored answer is still retrievable and correct.
    detail::RatioMemo memo;
    std::vector<OpId> set{1, 2, 3};
    const CacheGeom geom = GEOM_2K;
    constexpr int N = 1000;
    for (int i = 0; i < N; ++i) {
        set[0] = static_cast<OpId>(i);
        const detail::QueryKeyRef ref{detail::queryHash(geom, set[0], set),
                                      &geom, set[0], &set};
        ASSERT_EQ(memo.find(ref), nullptr);
        memo.insert(ref, static_cast<double>(i) * 0.5);
    }
    EXPECT_EQ(memo.size(), static_cast<std::size_t>(N));
    for (int i = 0; i < N; ++i) {
        set[0] = static_cast<OpId>(i);
        const detail::QueryKeyRef ref{detail::queryHash(geom, set[0], set),
                                      &geom, set[0], &set};
        const double *hit = memo.find(ref);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(*hit, static_cast<double>(i) * 0.5);
    }
    // A different geometry with the same ops must miss.
    const CacheGeom other = GEOM_4K;
    const detail::QueryKeyRef ref{detail::queryHash(other, set[0], set),
                                  &other, set[0], &set};
    EXPECT_EQ(memo.find(ref), nullptr);
}

TEST(CmeMemo, CanonicalViewFastPaths)
{
    std::vector<OpId> scratch;
    const std::vector<OpId> sorted{1, 3, 5};

    // Already canonical, no extra: the input itself is returned.
    EXPECT_EQ(&detail::canonicalInto(scratch, sorted), &sorted);
    // Already canonical and contains the extra op: still zero-copy.
    EXPECT_EQ(&detail::canonicalInto(scratch, sorted, 3), &sorted);
    // Missing extra is inserted in order.
    {
        const auto &c = detail::canonicalInto(scratch, sorted, 4);
        EXPECT_EQ(&c, &scratch);
        EXPECT_EQ(c, (std::vector<OpId>{1, 3, 4, 5}));
    }
    // Unsorted input with duplicates is sorted and deduplicated.
    {
        const std::vector<OpId> messy{5, 1, 3, 1};
        const auto &c = detail::canonicalInto(scratch, messy, 3);
        EXPECT_EQ(&c, &scratch);
        EXPECT_EQ(c, (std::vector<OpId>{1, 3, 5}));
    }
}

} // namespace
} // namespace mvp::cme
