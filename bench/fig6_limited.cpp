/**
 * @file
 * Reproduction of Figure 6: realistic inter-cluster networks.
 *
 * Fixed: 2 register buses at 1-cycle latency. Swept, as in the paper:
 *  - number of memory buses NMB in {1, 2}
 *  - memory-bus latency LMB in {1, 4}
 *  - scheduler Baseline vs RMCA, thresholds {1.00, 0.75, 0.25, 0.00}
 *  - 2-cluster and 4-cluster machines.
 *
 * Headline claim: at the most effective threshold (0.00) RMCA beats the
 * Baseline by about 5% on 2 clusters and about 20% on 4 clusters,
 * because fewer local misses mean fewer accesses competing for the
 * scarce memory buses.
 */

#include <cstdio>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "machine/presets.hh"

using namespace mvp;
using harness::RunConfig;
using harness::SchedKind;

namespace
{

const double THRESHOLDS[] = {1.00, 0.75, 0.25, 0.00};

} // namespace

int
main()
{
    harness::Workbench bench;

    RunConfig base_cfg;
    base_cfg.machine = makeUnified();
    base_cfg.sched = SchedKind::Rmca;
    base_cfg.threshold = 1.0;
    const auto base = runSuite(bench, base_cfg);
    const double norm = static_cast<double>(base.total());

    TextTable table({"config", "NMB", "LMB", "sched", "thr", "compute",
                     "stall", "total", "norm"});
    table.setTitle("Figure 6: limited buses (2 reg buses @1cy), cycles "
                   "normalised to unified@1.00");

    for (double thr : THRESHOLDS) {
        RunConfig cfg;
        cfg.machine = makeUnified();
        cfg.sched = SchedKind::Rmca;
        cfg.threshold = thr;
        const auto res = runSuite(bench, cfg);
        table.addRow({"unified", "-", "-", "RMCA", fmtDouble(thr, 2),
                      std::to_string(res.compute),
                      std::to_string(res.stall),
                      std::to_string(res.total()),
                      fmtDouble(static_cast<double>(res.total()) / norm,
                                3)});
    }
    table.addRule();

    for (int clusters : {2, 4}) {
        for (int nmb : {1, 2}) {
            for (Cycle lmb : {1, 4}) {
                const auto machine =
                    withLimitedBuses(makeConfig(clusters), nmb, lmb);
                for (SchedKind sched :
                     {SchedKind::Baseline, SchedKind::Rmca}) {
                    for (double thr : THRESHOLDS) {
                        RunConfig cfg;
                        cfg.machine = machine;
                        cfg.sched = sched;
                        cfg.threshold = thr;
                        const auto res = runSuite(bench, cfg);
                        table.addRow(
                            {std::to_string(clusters) + "-cluster",
                             std::to_string(nmb), std::to_string(lmb),
                             std::string(schedKindName(sched)),
                             fmtDouble(thr, 2),
                             std::to_string(res.compute),
                             std::to_string(res.stall),
                             std::to_string(res.total()),
                             fmtDouble(static_cast<double>(res.total()) /
                                           norm,
                                       3)});
                    }
                }
                table.addRule();
            }
        }
    }
    std::printf("%s\n", table.render().c_str());

    // Headline: RMCA advantage at threshold 0.00, averaged over the
    // four bus configurations of the figure.
    std::printf("RMCA advantage over Baseline at threshold 0.00 "
                "(paper: ~5%% on 2 clusters, ~20%% on 4):\n");
    for (int clusters : {2, 4}) {
        double ratio_sum = 0;
        int n = 0;
        for (int nmb : {1, 2}) {
            for (Cycle lmb : {1, 4}) {
                const auto machine =
                    withLimitedBuses(makeConfig(clusters), nmb, lmb);
                RunConfig b{machine, SchedKind::Baseline, 0.0};
                RunConfig r{machine, SchedKind::Rmca, 0.0};
                const auto rb = runSuite(bench, b);
                const auto rr = runSuite(bench, r);
                ratio_sum += static_cast<double>(rb.total()) /
                             static_cast<double>(rr.total());
                ++n;
            }
        }
        std::printf("  %d-cluster: Baseline/RMCA = %.3f  (advantage "
                    "%.1f%%)\n",
                    clusters, ratio_sum / n,
                    100.0 * (ratio_sum / n - 1.0));
    }
    return 0;
}
