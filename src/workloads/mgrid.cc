/**
 * @file
 * mgrid-like suite: 3D multigrid V-cycle kernels.
 *
 * 107.mgrid applies 27-point (approximated here by 7-point plus
 * diagonal terms) relaxation stencils on 3D grids, restriction with
 * stride-2 accesses onto a coarser grid, and prolongation back. 3D row
 * lengths make the k±1 neighbours line-distant while j±1 neighbours
 * share lines, giving the CME analysis genuinely three-level reuse
 * structure; U and R are 8 KB apart.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t N_K = 6;     // outer planes
constexpr std::int64_t N_I = 16;    // middle rows
constexpr std::int64_t N_J = 30;    // inner columns
constexpr std::int64_t DIM_K = N_K + 2;
constexpr std::int64_t DIM_I = N_I + 2;
constexpr std::int64_t DIM_J = N_J + 2;
constexpr Addr BASE = 0x140000;
constexpr Addr STRIDE_8K = 0x2000;

AffineExpr
at(std::size_t depth, std::int64_t ofs)
{
    return affineVar(depth, 1, ofs);
}

/** 7-point residual: R = V - A*U. */
LoopNest
loopResid()
{
    LoopNestBuilder b("mgrid.resid");
    b.loop("k", 1, 1 + N_K);
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto U = b.arrayAt("U", {DIM_K, DIM_I, DIM_J}, BASE);
    const auto V = b.arrayAt("V", {DIM_K, DIM_I, DIM_J},
                             BASE + 3 * STRIDE_8K);
    const auto R = b.arrayAt("R", {DIM_K, DIM_I, DIM_J},
                             BASE + 6 * STRIDE_8K);

    const auto u0 = b.load(U, {at(0, 0), at(1, 0), at(2, 0)}, "u0");
    const auto ue = b.load(U, {at(0, 0), at(1, 0), at(2, 1)}, "ue");
    const auto uw = b.load(U, {at(0, 0), at(1, 0), at(2, -1)}, "uw");
    const auto un = b.load(U, {at(0, 0), at(1, 1), at(2, 0)}, "un");
    const auto us = b.load(U, {at(0, 0), at(1, -1), at(2, 0)}, "us");
    const auto uu = b.load(U, {at(0, 1), at(1, 0), at(2, 0)}, "uu");
    const auto ud = b.load(U, {at(0, -1), at(1, 0), at(2, 0)}, "ud");
    const auto v0 = b.load(V, {at(0, 0), at(1, 0), at(2, 0)}, "v0");

    const auto sj = b.op(Opcode::FAdd, {use(ue), use(uw)}, "sj");
    const auto si = b.op(Opcode::FAdd, {use(un), use(us)}, "si");
    const auto sk = b.op(Opcode::FAdd, {use(uu), use(ud)}, "sk");
    const auto sij = b.op(Opcode::FAdd, {use(sj), use(si)}, "sij");
    const auto s = b.op(Opcode::FAdd, {use(sij), use(sk)}, "s");
    const auto au = b.op(Opcode::FMadd, {use(u0), liveIn(), use(s)},
                         "au");
    const auto r = b.op(Opcode::FSub, {use(v0), use(au)}, "r");
    b.store(R, {at(0, 0), at(1, 0), at(2, 0)}, use(r), "sr");
    return b.build();
}

/** Smoother: U += c * R stencil. */
LoopNest
loopPsinv()
{
    LoopNestBuilder b("mgrid.psinv");
    b.loop("k", 1, 1 + N_K);
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto U = b.arrayAt("U", {DIM_K, DIM_I, DIM_J}, BASE);
    const auto R = b.arrayAt("R", {DIM_K, DIM_I, DIM_J},
                             BASE + 6 * STRIDE_8K);

    const auto r0 = b.load(R, {at(0, 0), at(1, 0), at(2, 0)}, "r0");
    const auto re = b.load(R, {at(0, 0), at(1, 0), at(2, 1)}, "re");
    const auto rw = b.load(R, {at(0, 0), at(1, 0), at(2, -1)}, "rw");
    const auto u0 = b.load(U, {at(0, 0), at(1, 0), at(2, 0)}, "u0");

    const auto rsum = b.op(Opcode::FAdd, {use(re), use(rw)}, "rsum");
    const auto blend = b.op(Opcode::FMadd, {use(rsum), liveIn(),
                                            use(r0)},
                            "blend");
    const auto nu = b.op(Opcode::FMadd, {use(blend), liveIn(), use(u0)},
                         "nu");
    b.store(U, {at(0, 0), at(1, 0), at(2, 0)}, use(nu), "su");
    return b.build();
}

/** Restriction: coarse(j) from fine(2j-1, 2j, 2j+1). */
LoopNest
loopRprj()
{
    LoopNestBuilder b("mgrid.rprj");
    b.loop("k", 1, 1 + N_K);
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J / 2);
    const auto R = b.arrayAt("R", {DIM_K, DIM_I, DIM_J},
                             BASE + 6 * STRIDE_8K);
    const auto RC = b.arrayAt("RC", {DIM_K, DIM_I, DIM_J / 2 + 1},
                              BASE + 9 * STRIDE_8K + 0x980);

    const auto f0 = b.load(R, {at(0, 0), at(1, 0), affineVar(2, 2, -1)},
                           "f0");
    const auto f1 = b.load(R, {at(0, 0), at(1, 0), affineVar(2, 2, 0)},
                           "f1");
    const auto f2 = b.load(R, {at(0, 0), at(1, 0), affineVar(2, 2, 1)},
                           "f2");

    const auto edge = b.op(Opcode::FAdd, {use(f0), use(f2)}, "edge");
    const auto c = b.op(Opcode::FMadd, {use(f1), liveIn(), use(edge)},
                        "c");
    b.store(RC, {at(0, 0), at(1, 0), at(2, 0)}, use(c), "sc");
    return b.build();
}

/** Prolongation: fine grid update from coarse, stride-2 stores. */
LoopNest
loopInterp()
{
    LoopNestBuilder b("mgrid.interp");
    b.loop("k", 1, 1 + N_K);
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J / 2);
    const auto U = b.arrayAt("U", {DIM_K, DIM_I, DIM_J}, BASE);
    const auto UC = b.arrayAt("UC", {DIM_K, DIM_I, DIM_J / 2 + 1},
                              BASE + 12 * STRIDE_8K + 0xE40);

    const auto c0 = b.load(UC, {at(0, 0), at(1, 0), at(2, 0)}, "c0");
    const auto c1 = b.load(UC, {at(0, 0), at(1, 0), at(2, 1)}, "c1");
    const auto u_even = b.load(U, {at(0, 0), at(1, 0),
                                   affineVar(2, 2, 0)},
                               "u_even");
    const auto u_odd = b.load(U, {at(0, 0), at(1, 0),
                                  affineVar(2, 2, 1)},
                              "u_odd");

    const auto ne = b.op(Opcode::FAdd, {use(u_even), use(c0)}, "ne");
    const auto mid = b.op(Opcode::FAdd, {use(c0), use(c1)}, "mid");
    const auto no = b.op(Opcode::FMadd, {use(mid), liveIn(),
                                         use(u_odd)},
                         "no");
    b.store(U, {at(0, 0), at(1, 0), affineVar(2, 2, 0)}, use(ne), "se");
    b.store(U, {at(0, 0), at(1, 0), affineVar(2, 2, 1)}, use(no), "so");
    return b.build();
}

} // namespace

Benchmark
makeMgrid()
{
    Benchmark bench;
    bench.name = "mgrid";
    bench.loops.push_back(loopResid());
    bench.loops.push_back(loopPsinv());
    bench.loops.push_back(loopRprj());
    bench.loops.push_back(loopInterp());
    return bench;
}

} // namespace mvp::workloads
