#include "sched/sat/solver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mvp::sched::sat
{

namespace
{

/**
 * Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), the standard
 * universal strategy: scaled by a base conflict allowance per run.
 */
std::int64_t
luby(std::int64_t i)
{
    // Find the finite subsequence containing index i, then reduce i
    // modulo the subsequence prefix until it lands on a power.
    std::int64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i %= size;
    }
    return 1ll << seq;
}

constexpr std::int64_t RESTART_BASE = 128;

} // namespace

Solver::Solver() = default;

Var
Solver::newVar()
{
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::Undef);
    model_.push_back(LBool::Undef);
    polarity_.push_back(1); // saved phase starts at "false"
    level_.push_back(0);
    reason_.push_back(CREF_UNDEF);
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    insertVarOrder(v);
    return v;
}

Solver::CRef
Solver::allocClause(const std::vector<Lit> &lits, bool learnt)
{
    const CRef c = static_cast<CRef>(arena_.size());
    arena_.push_back(static_cast<std::int32_t>(lits.size()) << 1 |
                     (learnt ? 1 : 0));
    for (const Lit l : lits)
        arena_.push_back(l.x);
    return c;
}

void
Solver::attachClause(CRef c)
{
    const Lit *lits = clauseLits(c);
    mvp_assert(clauseSize(c) >= 2, "attaching a short clause");
    watches_[static_cast<std::size_t>((~lits[0]).x)].push_back(
        {c, lits[1]});
    watches_[static_cast<std::size_t>((~lits[1]).x)].push_back(
        {c, lits[0]});
}

bool
Solver::addClause(const std::vector<Lit> &lits)
{
    if (!ok_)
        return false;
    cancelUntil(0);

    // Sort/dedup; drop clauses satisfied at the root, drop root-false
    // literals.
    std::vector<Lit> cl(lits);
    std::sort(cl.begin(), cl.end(),
              [](Lit a, Lit b) { return a.x < b.x; });
    std::vector<Lit> out;
    out.reserve(cl.size());
    Lit prev = LIT_UNDEF;
    for (const Lit l : cl) {
        mvp_assert(var(l) >= 0 && var(l) < nVars(),
                   "literal over unallocated variable");
        if (l == prev)
            continue;
        if (l == ~prev || value(l) == LBool::True)
            return true; // tautology or already satisfied
        if (value(l) != LBool::False)
            out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        uncheckedEnqueue(out[0], CREF_UNDEF);
        if (propagate() != CREF_UNDEF)
            ok_ = false;
        return ok_;
    }
    attachClause(allocClause(out, false));
    return true;
}

void
Solver::uncheckedEnqueue(Lit l, CRef reason)
{
    const auto v = static_cast<std::size_t>(var(l));
    mvp_assert(assigns_[v] == LBool::Undef, "enqueue over assignment");
    assigns_[v] = sign(l) ? LBool::False : LBool::True;
    level_[v] = static_cast<int>(trail_lim_.size());
    reason_[v] = reason;
    trail_.push_back(l);
}

Solver::CRef
Solver::propagate()
{
    CRef conflict = CREF_UNDEF;
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;
        auto &ws = watches_[static_cast<std::size_t>(p.x)];
        std::size_t i = 0, j = 0;
        const std::size_t n = ws.size();
        while (i < n) {
            const Watch w = ws[i++];
            // Blocker satisfied: clause satisfied, watch stays.
            if (value(w.blocker) == LBool::True) {
                ws[j++] = w;
                continue;
            }
            const CRef c = w.cref;
            Lit *lits = clauseLits(c);
            const std::int32_t size = clauseSize(c);
            // Normalise so lits[1] is the falsified watcher (~p).
            const Lit false_lit = ~p;
            if (lits[0] == false_lit)
                std::swap(lits[0], lits[1]);
            mvp_assert(lits[1] == false_lit, "watch desynchronised");
            // First watcher satisfied: keep watching.
            if (value(lits[0]) == LBool::True) {
                ws[j++] = {c, lits[0]};
                continue;
            }
            // Find a new literal to watch.
            bool moved = false;
            for (std::int32_t k = 2; k < size; ++k) {
                if (value(lits[k]) != LBool::False) {
                    std::swap(lits[1], lits[k]);
                    watches_[static_cast<std::size_t>((~lits[1]).x)]
                        .push_back({c, lits[0]});
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            // Unit or conflicting.
            ws[j++] = {c, lits[0]};
            if (value(lits[0]) == LBool::False) {
                conflict = c;
                qhead_ = trail_.size();
                while (i < n)
                    ws[j++] = ws[i++];
                break;
            }
            uncheckedEnqueue(lits[0], c);
        }
        ws.resize(j);
        if (conflict != CREF_UNDEF)
            break;
    }
    return conflict;
}

void
Solver::varBumpActivity(Var v)
{
    auto &a = activity_[static_cast<std::size_t>(v)];
    a += var_inc_;
    if (a > ACT_RESCALE) {
        for (double &x : activity_)
            x *= 1.0 / ACT_RESCALE;
        var_inc_ *= 1.0 / ACT_RESCALE;
    }
    const int pos = heap_pos_[static_cast<std::size_t>(v)];
    if (pos >= 0)
        heapDecreaseKey(pos);
}

void
Solver::insertVarOrder(Var v)
{
    if (heap_pos_[static_cast<std::size_t>(v)] >= 0)
        return;
    heap_.push_back(v);
    heap_pos_[static_cast<std::size_t>(v)] =
        static_cast<int>(heap_.size()) - 1;
    heapDecreaseKey(static_cast<int>(heap_.size()) - 1);
}

void
Solver::heapDecreaseKey(int pos)
{
    const VarOrderLt lt{activity_};
    const Var v = heap_[static_cast<std::size_t>(pos)];
    while (pos > 0) {
        const int parent = (pos - 1) / 2;
        const Var pv = heap_[static_cast<std::size_t>(parent)];
        if (!lt(v, pv))
            break;
        heap_[static_cast<std::size_t>(pos)] = pv;
        heap_pos_[static_cast<std::size_t>(pv)] = pos;
        pos = parent;
    }
    heap_[static_cast<std::size_t>(pos)] = v;
    heap_pos_[static_cast<std::size_t>(v)] = pos;
}

Var
Solver::heapRemoveMin()
{
    const VarOrderLt lt{activity_};
    const Var top = heap_[0];
    heap_pos_[static_cast<std::size_t>(top)] = -1;
    const Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        // Sift the relocated last element down from the root.
        int pos = 0;
        const int n = static_cast<int>(heap_.size());
        for (;;) {
            int child = 2 * pos + 1;
            if (child >= n)
                break;
            if (child + 1 < n &&
                lt(heap_[static_cast<std::size_t>(child + 1)],
                   heap_[static_cast<std::size_t>(child)]))
                ++child;
            if (!lt(heap_[static_cast<std::size_t>(child)], last))
                break;
            heap_[static_cast<std::size_t>(pos)] =
                heap_[static_cast<std::size_t>(child)];
            heap_pos_[static_cast<std::size_t>(
                heap_[static_cast<std::size_t>(pos)])] = pos;
            pos = child;
        }
        heap_[static_cast<std::size_t>(pos)] = last;
        heap_pos_[static_cast<std::size_t>(last)] = pos;
    }
    return top;
}

Lit
Solver::pickBranchLit()
{
    while (!heapEmpty()) {
        const Var v = heapRemoveMin();
        if (assigns_[static_cast<std::size_t>(v)] == LBool::Undef)
            return mkLit(v, polarity_[static_cast<std::size_t>(v)] != 0);
    }
    return LIT_UNDEF;
}

void
Solver::cancelUntil(int lvl)
{
    if (static_cast<int>(trail_lim_.size()) <= lvl)
        return;
    const std::size_t bound =
        static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(lvl)]);
    for (std::size_t i = trail_.size(); i > bound; --i) {
        const Lit l = trail_[i - 1];
        const auto v = static_cast<std::size_t>(var(l));
        polarity_[v] = sign(l) ? 1 : 0; // phase saving
        assigns_[v] = LBool::Undef;
        reason_[v] = CREF_UNDEF;
        insertVarOrder(var(l));
    }
    trail_.resize(bound);
    trail_lim_.resize(static_cast<std::size_t>(lvl));
    qhead_ = trail_.size();
}

/**
 * First-UIP conflict analysis: resolve the conflict clause backwards
 * along the trail until exactly one literal of the conflicting level
 * remains; the learned clause asserts that literal after backjumping
 * to the second-highest level it mentions.
 */
void
Solver::analyze(CRef conflict, std::vector<Lit> &out_learnt,
                int &out_btlevel)
{
    out_learnt.clear();
    out_learnt.push_back(LIT_UNDEF); // slot for the asserting literal
    const int current = static_cast<int>(trail_lim_.size());

    int counter = 0;
    Lit p = LIT_UNDEF;
    std::size_t index = trail_.size();
    CRef reason = conflict;

    do {
        mvp_assert(reason != CREF_UNDEF, "resolving without a reason");
        const Lit *lits = clauseLits(reason);
        const std::int32_t size = clauseSize(reason);
        // Skip lits[0] when it is the literal being resolved on.
        for (std::int32_t k = (p == LIT_UNDEF) ? 0 : 1; k < size; ++k) {
            const Lit q = lits[k];
            const auto v = static_cast<std::size_t>(var(q));
            if (seen_[v] || level(var(q)) == 0)
                continue;
            seen_[v] = 1;
            analyze_clear_.push_back(var(q));
            varBumpActivity(var(q));
            if (level(var(q)) >= current)
                ++counter;
            else
                out_learnt.push_back(q);
        }
        // Walk to the next marked literal on the trail.
        while (!seen_[static_cast<std::size_t>(var(trail_[index - 1]))])
            --index;
        --index;
        p = trail_[index];
        reason = reason_[static_cast<std::size_t>(var(p))];
        seen_[static_cast<std::size_t>(var(p))] = 0;
        --counter;
    } while (counter > 0);
    out_learnt[0] = ~p;

    // Cheap minimisation: drop literals whose reason clause is fully
    // subsumed by the rest of the learned clause.
    std::size_t keep = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
        const Lit q = out_learnt[i];
        const CRef r = reason_[static_cast<std::size_t>(var(q))];
        bool redundant = false;
        if (r != CREF_UNDEF) {
            redundant = true;
            const Lit *lits = clauseLits(r);
            const std::int32_t size = clauseSize(r);
            for (std::int32_t k = 1; k < size; ++k) {
                const auto v = static_cast<std::size_t>(var(lits[k]));
                if (!seen_[v] && level(var(lits[k])) > 0) {
                    redundant = false;
                    break;
                }
            }
        }
        if (!redundant)
            out_learnt[keep++] = q;
    }
    out_learnt.resize(keep);

    // Backjump level: highest level among the non-asserting literals.
    out_btlevel = 0;
    std::size_t max_i = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i)
        if (level(var(out_learnt[i])) >
            level(var(out_learnt[max_i])))
            max_i = i;
    if (out_learnt.size() > 1) {
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level(var(out_learnt[1]));
    }

    // Clear every mark made above — including literals the
    // minimisation dropped from the clause (a mark that survives this
    // call would make the next analyze() skip its variable and learn
    // an unsound clause).
    for (const Var v : analyze_clear_)
        seen_[static_cast<std::size_t>(v)] = 0;
    analyze_clear_.clear();
}

/**
 * The refutation touched assumption literal @p p (it would have to be
 * flipped): walk its implication ancestry back to the assumptions to
 * extract the core.
 */
void
Solver::analyzeFinal(Lit p, std::vector<Lit> &out_core)
{
    out_core.clear();
    out_core.push_back(~p); // the failing assumption itself
    if (trail_lim_.empty())
        return;

    seen_[static_cast<std::size_t>(var(p))] = 1;
    const std::size_t root =
        static_cast<std::size_t>(trail_lim_[0]);
    for (std::size_t i = trail_.size(); i > root; --i) {
        const Var v = var(trail_[i - 1]);
        if (!seen_[static_cast<std::size_t>(v)])
            continue;
        const CRef r = reason_[static_cast<std::size_t>(v)];
        if (r == CREF_UNDEF) {
            // A decision below the failure point is an assumption.
            if (level(v) > 0 && trail_[i - 1] != ~p)
                out_core.push_back(trail_[i - 1]);
        } else {
            const Lit *lits = clauseLits(r);
            const std::int32_t size = clauseSize(r);
            for (std::int32_t k = 1; k < size; ++k)
                if (level(var(lits[k])) > 0)
                    seen_[static_cast<std::size_t>(var(lits[k]))] = 1;
        }
        seen_[static_cast<std::size_t>(v)] = 0;
    }
    seen_[static_cast<std::size_t>(var(p))] = 0;
}

bool
Solver::budgetExceeded(std::int64_t conflicts_at_entry)
{
    if (conflict_budget_ > 0 &&
        stats_.conflicts - conflicts_at_entry >= conflict_budget_)
        return true;
    if (stats_.propagations - slice_mark_ < PROPAGATION_SLICE)
        return false;
    slice_mark_ = stats_.propagations;
    if (deadline_on_ &&
        std::chrono::steady_clock::now() >= deadline_)
        return true;
    if (cancel_ != nullptr &&
        cancel_->load(std::memory_order_relaxed) <= cancel_ii_)
        return true;
    return false;
}

SolveResult
Solver::solve(const std::vector<Lit> &assumptions)
{
    conflict_core_.clear();
    budget_hit_ = false;
    if (!ok_)
        return SolveResult::Unsat;
    cancelUntil(0);
    if (propagate() != CREF_UNDEF) {
        ok_ = false;
        return SolveResult::Unsat;
    }

    const std::int64_t conflicts_at_entry = stats_.conflicts;
    std::int64_t restart_limit =
        RESTART_BASE * luby(stats_.restarts);
    std::int64_t conflicts_this_restart = 0;
    std::vector<Lit> learnt;

    for (;;) {
        const CRef conflict = propagate();
        if (conflict != CREF_UNDEF) {
            ++stats_.conflicts;
            ++conflicts_this_restart;
            if (trail_lim_.empty()) {
                ok_ = false;
                return SolveResult::Unsat;
            }
            int bt = 0;
            analyze(conflict, learnt, bt);
            // The backjump may land inside the assumption prefix; the
            // assumption re-decide loop below then notices any
            // assumption forced false and extracts the core.
            cancelUntil(bt);
            ++stats_.learned;
            stats_.learnedLits +=
                static_cast<std::int64_t>(learnt.size());
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], CREF_UNDEF);
            } else {
                const CRef c = allocClause(learnt, true);
                attachClause(c);
                uncheckedEnqueue(learnt[0], c);
            }
            varDecayActivity();
            if (budgetExceeded(conflicts_at_entry)) {
                budget_hit_ = true;
                cancelUntil(0);
                return SolveResult::Unknown;
            }
            continue;
        }

        if (budgetExceeded(conflicts_at_entry)) {
            budget_hit_ = true;
            cancelUntil(0);
            return SolveResult::Unknown;
        }

        if (conflicts_this_restart >= restart_limit &&
            static_cast<int>(trail_lim_.size()) >
                static_cast<int>(assumptions.size())) {
            ++stats_.restarts;
            conflicts_this_restart = 0;
            restart_limit = RESTART_BASE * luby(stats_.restarts);
            cancelUntil(static_cast<int>(assumptions.size()));
            continue;
        }

        // Assumption prefix first, then activity-driven decisions.
        Lit next = LIT_UNDEF;
        while (static_cast<std::size_t>(trail_lim_.size()) <
               assumptions.size()) {
            const Lit a =
                assumptions[static_cast<std::size_t>(trail_lim_.size())];
            if (value(a) == LBool::True) {
                // Already implied: open an empty level so the prefix
                // indexing stays aligned.
                trail_lim_.push_back(static_cast<int>(trail_.size()));
                continue;
            }
            if (value(a) == LBool::False) {
                analyzeFinal(~a, conflict_core_);
                cancelUntil(0);
                return SolveResult::Unsat;
            }
            next = a;
            break;
        }
        if (next == LIT_UNDEF) {
            next = pickBranchLit();
            if (next == LIT_UNDEF) {
                // All variables assigned: model found.
                model_ = assigns_;
                cancelUntil(0);
                return SolveResult::Sat;
            }
            ++stats_.decisions;
        }
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        uncheckedEnqueue(next, CREF_UNDEF);
    }
}

} // namespace mvp::sched::sat
