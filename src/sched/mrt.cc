#include "sched/mrt.hh"

#include <bit>

#include "common/logging.hh"

namespace mvp::sched
{

Mrt::Mrt(const MachineConfig &machine, Cycle ii)
    : machine_(machine), ii_(ii)
{
    reset(ii);
}

void
Mrt::reset(Cycle ii)
{
    mvp_assert(ii >= 1, "II must be positive");
    ii_ = ii;
    fu_used_.assign(static_cast<std::size_t>(ii) *
                        static_cast<std::size_t>(machine_.nClusters) *
                        ir::NUM_FU_TYPES,
                    0);
    fu_load_.assign(
        static_cast<std::size_t>(machine_.nClusters) * ir::NUM_FU_TYPES, 0);
    if (!machine_.unboundedRegBuses) {
        words_ = (static_cast<std::size_t>(machine_.nRegBuses) + 63) / 64;
        bus_mask_.assign(static_cast<std::size_t>(ii) * words_, 0);
    }
}

std::size_t
Mrt::fuIndex(Cycle time, ClusterId cluster, ir::FuType type) const
{
    return fuIndexAt(slot(time), cluster, type);
}

bool
Mrt::fuFree(Cycle time, ClusterId cluster, ir::FuType type) const
{
    return fu_used_[fuIndex(time, cluster, type)] <
           machine_.fusPerCluster(type);
}

void
Mrt::placeFu(Cycle time, ClusterId cluster, ir::FuType type)
{
    auto &used = fu_used_[fuIndex(time, cluster, type)];
    mvp_assert(used < machine_.fusPerCluster(type),
               "placing into a full FU slot");
    ++used;
    ++fu_load_[static_cast<std::size_t>(cluster) * ir::NUM_FU_TYPES +
               static_cast<std::size_t>(type)];
}

void
Mrt::removeFu(Cycle time, ClusterId cluster, ir::FuType type)
{
    auto &used = fu_used_[fuIndex(time, cluster, type)];
    mvp_assert(used > 0, "removing from an empty FU slot");
    --used;
    --fu_load_[static_cast<std::size_t>(cluster) * ir::NUM_FU_TYPES +
               static_cast<std::size_t>(type)];
}

int
Mrt::fuLoad(ClusterId cluster, ir::FuType type) const
{
    return fu_load_[static_cast<std::size_t>(cluster) * ir::NUM_FU_TYPES +
                    static_cast<std::size_t>(type)];
}

int
Mrt::findFreeBus(Cycle start) const
{
    if (machine_.unboundedRegBuses)
        return BUS_UNBOUNDED;
    return findFreeBusAt(slot(start));
}

int
Mrt::findFreeBusAt(std::size_t start_slot) const
{
    if (machine_.unboundedRegBuses)
        return BUS_UNBOUNDED;
    if (machine_.regBusLatency > ii_)
        return BUS_NONE; // the transfer would collide with its next instance
    const int n_buses = machine_.nRegBuses;
    for (std::size_t w = 0; w < words_; ++w) {
        // One occupancy word for the whole window: bit b is set iff bus
        // w*64+b is busy at *some* cycle of the transfer.
        std::uint64_t occupied = 0;
        std::size_t s = start_slot;
        for (Cycle k = 0; k < machine_.regBusLatency; ++k) {
            occupied |= bus_mask_[s * words_ + w];
            s = nextSlot(s);
        }
        const int base = static_cast<int>(w) * 64;
        const int in_word = std::min(64, n_buses - base);
        const std::uint64_t valid =
            in_word == 64 ? ~0ULL : (1ULL << in_word) - 1;
        const std::uint64_t free = ~occupied & valid;
        if (free != 0)
            return base + std::countr_zero(free);
    }
    return BUS_NONE;
}

void
Mrt::reserveBus(int bus, Cycle start)
{
    if (bus == BUS_UNBOUNDED)
        return;
    reserveBusAt(bus, slot(start));
}

void
Mrt::reserveBusAt(int bus, std::size_t start_slot)
{
    if (bus == BUS_UNBOUNDED)
        return;
    mvp_assert(bus >= 0 && bus < machine_.nRegBuses, "bad bus index");
    const std::size_t w = static_cast<std::size_t>(bus) / 64;
    const std::uint64_t bit = 1ULL << (static_cast<std::size_t>(bus) % 64);
    std::size_t s = start_slot;
    for (Cycle k = 0; k < machine_.regBusLatency; ++k) {
        auto &mask = bus_mask_[s * words_ + w];
        mvp_assert(!(mask & bit), "bus already reserved");
        mask |= bit;
        s = nextSlot(s);
    }
}

void
Mrt::releaseBus(int bus, Cycle start)
{
    if (bus == BUS_UNBOUNDED)
        return;
    releaseBusAt(bus, slot(start));
}

void
Mrt::releaseBusAt(int bus, std::size_t start_slot)
{
    if (bus == BUS_UNBOUNDED)
        return;
    mvp_assert(bus >= 0 && bus < machine_.nRegBuses, "bad bus index");
    const std::size_t w = static_cast<std::size_t>(bus) / 64;
    const std::uint64_t bit = 1ULL << (static_cast<std::size_t>(bus) % 64);
    std::size_t s = start_slot;
    for (Cycle k = 0; k < machine_.regBusLatency; ++k) {
        auto &mask = bus_mask_[s * words_ + w];
        mvp_assert(mask & bit, "releasing a free bus slot");
        mask &= ~bit;
        s = nextSlot(s);
    }
}

int
Mrt::busSlotsUsed() const
{
    int n = 0;
    for (std::uint64_t mask : bus_mask_)
        n += std::popcount(mask);
    return n;
}

} // namespace mvp::sched
