/**
 * @file
 * Reproduction of Figure 3 (the motivating example of Section 3).
 *
 * Schedules the example loop with the register-only baseline (the
 * paper's partition (a)) and with RMCA (partition (b)), prints both
 * modulo reservation tables and compares the measured cycle counts with
 * the paper's closed-form derivation:
 *
 *   (a) NCYCLE = NTIMES*(15N + 9)     II=3, stall 12/iteration
 *   (b) NCYCLE = NTIMES*(10N + 8)     II=4, 2 comms, ~1.5x faster
 */

#include <cstdio>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "harness/motivating.hh"
#include "sched/backend.hh"
#include "sim/simulator.hh"

using namespace mvp;

int
main()
{
    const auto nest = harness::motivatingLoop();
    const auto machine = harness::motivatingMachine();
    const auto graph = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    sched::SchedContext ctx;   // both runs share one warm context

    std::printf("machine: %s\n\n%s\n", machine.summary().c_str(),
                nest.toString().c_str());

    struct Variant
    {
        const char *label;
        const char *backend;
    };
    sim::SimResult results[2];
    for (int i = 0; const Variant v : {Variant{"(a) register-optimal "
                                               "(Baseline)", "baseline"},
                                       Variant{"(b) memory-aware (RMCA)",
                                               "rmca"}}) {
        sched::SchedulerOptions opt;
        opt.missThreshold = 1.0;
        opt.locality = &cme;
        auto r = sched::scheduleWithBackend(v.backend, graph, machine,
                                            opt, ctx);
        if (!r.ok) {
            std::printf("scheduling failed: %s\n", r.error.c_str());
            return 1;
        }
        const auto sim = sim::simulateLoop(graph, r.schedule, machine);
        results[i++] = sim;
        std::printf("%s\n%s", v.label,
                    r.schedule.toString(graph, machine).c_str());
        const double iters = static_cast<double>(sim.iterations);
        std::printf("  NCYCLE_compute = %lld   NCYCLE_stall = %lld   "
                    "total = %lld\n",
                    static_cast<long long>(sim.computeCycles),
                    static_cast<long long>(sim.stallCycles),
                    static_cast<long long>(sim.totalCycles()));
        std::printf("  per-iteration: compute %.2f, stall %.2f "
                    "(paper: (a) 3+12, (b) 4+6)\n",
                    static_cast<double>(sim.computeCycles) / iters,
                    static_cast<double>(sim.stallCycles) / iters);
        std::printf("  line fills/iteration: %.2f\n\n",
                    static_cast<double>(
                        sim.memStats.value("memory_fills")) / iters);
    }

    std::printf("speedup (a)->(b): %.2fx  (paper derives 1.5x charging "
                "every miss the full penalty;\nthe non-blocking caches "
                "overlap schedule (b)'s sparse misses, so the measured "
                "win is larger)\n",
                static_cast<double>(results[0].totalCycles()) /
                    static_cast<double>(results[1].totalCycles()));
    return 0;
}
