#include "cme/reuse.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mvp::cme
{

std::string_view
reuseKindName(ReuseKind kind)
{
    switch (kind) {
      case ReuseKind::None: return "none";
      case ReuseKind::SelfTemporal: return "self-temporal";
      case ReuseKind::SelfSpatial: return "self-spatial";
      case ReuseKind::GroupTemporal: return "group-temporal";
      case ReuseKind::GroupSpatial: return "group-spatial";
    }
    mvp_panic("unknown ReuseKind");
}

ReuseAnalysis::ReuseAnalysis(const ir::LoopNest &nest) : nest_(nest) {}

std::int64_t
ReuseAnalysis::innerStrideBytes(OpId op_id) const
{
    const auto &op = nest_.op(op_id);
    mvp_assert(op.isMemory(), "stride of a non-memory op");
    const auto &ref = *op.memRef;
    const auto &arr = nest_.array(ref.array);
    const std::size_t inner = nest_.innerDepth();
    const std::int64_t step = nest_.innerLoop().step;

    // Row-major multiplier of each dimension.
    std::int64_t stride_elems = 0;
    std::int64_t mult = 1;
    for (std::size_t d = ref.index.size(); d-- > 0;) {
        stride_elems += ref.index[d].coeff(inner) * mult;
        mult *= arr.dims[d];
    }
    return stride_elems * step * arr.elemSize;
}

ReuseKind
ReuseAnalysis::selfReuse(OpId op, int line_bytes) const
{
    const std::int64_t stride = innerStrideBytes(op);
    if (stride == 0)
        return ReuseKind::SelfTemporal;
    if (std::llabs(stride) < line_bytes)
        return ReuseKind::SelfSpatial;
    return ReuseKind::None;
}

std::optional<std::int64_t>
ReuseAnalysis::byteDelta(OpId a, OpId b) const
{
    const auto &oa = nest_.op(a);
    const auto &ob = nest_.op(b);
    mvp_assert(oa.isMemory() && ob.isMemory(), "byteDelta of non-memory op");
    const auto &ra = *oa.memRef;
    const auto &rb = *ob.memRef;
    if (!ra.uniformlyGeneratedWith(rb))
        return std::nullopt;

    const auto &arr = nest_.array(ra.array);
    std::int64_t delta_elems = 0;
    std::int64_t mult = 1;
    for (std::size_t d = ra.index.size(); d-- > 0;) {
        delta_elems +=
            (ra.index[d].constant - rb.index[d].constant) * mult;
        mult *= arr.dims[d];
    }
    return delta_elems * arr.elemSize;
}

std::vector<GroupReuse>
ReuseAnalysis::groupPairs(const std::vector<OpId> &set,
                          int line_bytes) const
{
    std::vector<GroupReuse> out;
    for (std::size_t x = 0; x < set.size(); ++x) {
        for (std::size_t y = x + 1; y < set.size(); ++y) {
            const OpId a = set[x];
            const OpId b = set[y];
            const auto delta_opt = byteDelta(a, b);
            if (!delta_opt)
                continue;
            const std::int64_t delta = *delta_opt;   // addr(a) - addr(b)
            const std::int64_t stride = innerStrideBytes(a);

            GroupReuse gr;
            if (delta == 0) {
                gr = {a, b, ReuseKind::GroupTemporal, 0};
            } else if (stride != 0 && delta % stride == 0 &&
                       std::llabs(delta / stride) <
                           nest_.innerTripCount()) {
                // One reference walks onto the other's past footprint.
                const std::int64_t k = delta / stride;
                // k > 0: b at iteration i touches what a touched at
                // i - k, i.e. a leads.
                gr = k > 0 ? GroupReuse{a, b, ReuseKind::GroupTemporal, k}
                           : GroupReuse{b, a, ReuseKind::GroupTemporal, -k};
            } else if (std::llabs(delta) < line_bytes) {
                // Same or adjacent line at equal iterations: spatial
                // group reuse; the leader is the one with the lower
                // address for positive strides.
                const bool a_leads = (stride >= 0) == (delta < 0);
                gr = a_leads
                         ? GroupReuse{a, b, ReuseKind::GroupSpatial, 0}
                         : GroupReuse{b, a, ReuseKind::GroupSpatial, 0};
            } else {
                continue;
            }
            out.push_back(gr);
        }
    }
    return out;
}

} // namespace mvp::cme
