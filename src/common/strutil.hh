/**
 * @file
 * Small string formatting helpers shared by reports and dumps.
 */

#ifndef MVP_COMMON_STRUTIL_HH
#define MVP_COMMON_STRUTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mvp
{

/**
 * FNV-1a over a string's bytes. Load-bearing in the CME solver (the
 * per-query sampling seed derives from it, so changing it changes
 * every sampled schedule) and reused wherever a stable digest of
 * rendered output is wanted (e.g. sweep_bench's table fingerprints) —
 * one definition so the two can never drift apart.
 */
inline std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join the items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** Left-pad or truncate to exactly @p width columns. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad or truncate to exactly @p width columns. */
std::string padRight(const std::string &s, std::size_t width);

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Format a ratio as a percentage string, e.g. 0.25 -> "25.0%". */
std::string fmtPercent(double ratio, int digits = 1);

} // namespace mvp

#endif // MVP_COMMON_STRUTIL_HH
