/**
 * @file
 * Scheduler backends by name: schedule one loop with every registered
 * backend and read the optimality-gap report of the "verify" mode.
 *
 * The loop is the quickstart SAXPY variant with an extra reduction, so
 * the heuristic has real placement decisions to get wrong and the
 * exact branch-and-bound search has something to prove.
 */

#include <cstdio>

#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"

using namespace mvp;

int
main()
{
    // --- 1. A small loop with cross-cluster pressure. ---
    ir::LoopNestBuilder b("gap.example");
    b.loop("rep", 0, 16);
    b.loop("i", 0, 512);
    const auto X = b.arrayAt("X", {512}, 0x10000);
    const auto Y = b.arrayAt("Y", {512}, 0x12000);
    const auto Z = b.arrayAt("Z", {512}, 0x14000);
    const auto x = b.load(X, {ir::affineVar(1)}, "x");
    const auto y = b.load(Y, {ir::affineVar(1)}, "y");
    const auto ax = b.op(ir::Opcode::FMul, {ir::use(x), ir::liveIn()},
                         "ax");
    const auto s = b.op(ir::Opcode::FAdd, {ir::use(ax), ir::use(y)},
                        "s");
    const auto t = b.op(ir::Opcode::FMul, {ir::use(s), ir::use(x)},
                        "t");
    b.store(Z, {ir::affineVar(1)}, ir::use(t), "sz");
    const ir::LoopNest nest = b.build();

    const MachineConfig machine = makeFourCluster();
    const auto graph = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis locality(nest);
    sched::SchedContext ctx;   // one warm scratch context for every run

    // --- 2. Every backend, by registry name. ---
    auto &registry = sched::BackendRegistry::instance();
    std::printf("registered backends:");
    for (const auto &name : registry.names())
        std::printf(" %s", name.c_str());
    std::printf("\n\n");

    for (const auto &name : registry.names()) {
        sched::SchedulerOptions opt;
        opt.missThreshold = 0.25;
        opt.locality = &locality;
        const auto r = sched::scheduleWithBackend(name, graph, machine,
                                                  opt, ctx);
        if (!r.ok) {
            std::printf("%-8s failed: %s\n", name.c_str(),
                        r.error.c_str());
            continue;
        }
        std::printf("%-8s II=%lld (mII=%lld) comms=%d%s\n",
                    name.c_str(),
                    static_cast<long long>(r.schedule.ii()),
                    static_cast<long long>(r.stats.mii), r.stats.comms,
                    r.stats.provenOptimal ? "  [proven optimal]" : "");
    }

    // --- 3. The gap report of the verify backend. ---
    sched::SchedulerOptions opt;
    opt.missThreshold = 0.25;
    opt.locality = &locality;
    const auto v = sched::scheduleWithBackend("verify", graph, machine,
                                              opt, ctx);
    if (v.ok && v.stats.gapKnown)
        std::printf("\nverify: rmca II=%lld, exact II=%lld, gap=%lld "
                    "(%s; %lld search nodes)\n",
                    static_cast<long long>(v.schedule.ii()),
                    static_cast<long long>(v.stats.exactII),
                    static_cast<long long>(v.stats.iiGap),
                    v.stats.provenOptimal ? "exact II proven optimal"
                                          : "best within budget",
                    static_cast<long long>(v.stats.searchNodes));
    else
        std::printf("\nverify: gap unknown (budget exhausted)\n");
    return 0;
}
