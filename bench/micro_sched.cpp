/**
 * @file
 * google-benchmark microbenchmarks (experiment E7): the compile-time
 * cost of the pieces the paper claims are cheap — CME queries ("a few
 * seconds per loop" in 2000; microseconds here), full scheduling runs,
 * and the lockstep simulator's cycle throughput.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cme/oracle.hh"
#include "cme/provider.hh"
#include "cme/solver.hh"
#include "cme/stream.hh"
#include "ddg/ddg.hh"
#include "harness/motivating.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "sched/exact/bnb.hh"
#include "sched/ordering.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace mvp;

namespace
{

const ir::LoopNest &
bigLoop()
{
    static const auto bench = workloads::makeTomcatv();
    return bench.loops[0];   // the 10-op stencil loop
}

void
BM_DdgBuild(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeFourCluster();
    for (auto _ : state)
        benchmark::DoNotOptimize(ddg::Ddg::build(nest, machine));
}
BENCHMARK(BM_DdgBuild);

void
BM_RecMii(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeFourCluster();
    for (auto _ : state) {
        const auto g = ddg::Ddg::build(nest, machine);
        benchmark::DoNotOptimize(g.recMii());
    }
}
BENCHMARK(BM_RecMii);

void
BM_Ordering(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeFourCluster();
    const auto g = ddg::Ddg::build(nest, machine);
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::computeOrdering(g, g.recMii()));
}
BENCHMARK(BM_Ordering);

/**
 * One warm per-loop stream cache shared by every analysis bound to the
 * loop — the shape the Workbench gives a production sweep, where the
 * streams materialise once per loop and every provider, configuration
 * and fresh query walks them.
 */
std::shared_ptr<cme::StreamCache>
sharedStreams()
{
    static const auto streams = [] {
        const auto &nest = bigLoop();
        auto cache = std::make_shared<cme::StreamCache>(nest);
        for (OpId op : nest.memoryOps())
            (void)cache->lines(op, 32);
        return cache;
    }();
    return streams;
}

void
BM_StreamMaterialise(benchmark::State &state)
{
    // One-time cost of building a loop's per-op line streams — what a
    // sweep pays once per (loop, line size) before every query turns
    // into array walks.
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    for (auto _ : state) {
        cme::StreamCache cache(nest);
        for (OpId op : mem)
            benchmark::DoNotOptimize(cache.lines(op, 32).lines.data());
    }
}
BENCHMARK(BM_StreamMaterialise);

void
BM_CmeMissRatio_Fresh(benchmark::State &state)
{
    // Un-memoised CME query cost (new analysis each iteration, streams
    // from the loop's shared cache): the sampling walk itself.
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};
    const auto streams = sharedStreams();
    for (auto _ : state) {
        cme::CmeAnalysis cme(nest, {}, streams);
        benchmark::DoNotOptimize(cme.missRatio(mem, mem[0], geom));
    }
}
BENCHMARK(BM_CmeMissRatio_Fresh);

void
BM_CmeMissRatio_Memoised(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};
    cme::CmeAnalysis cme(nest);
    (void)cme.missRatio(mem, mem[0], geom);
    for (auto _ : state)
        benchmark::DoNotOptimize(cme.missRatio(mem, mem[0], geom));
}
BENCHMARK(BM_CmeMissRatio_Memoised);

void
BM_OracleExact(benchmark::State &state)
{
    // Full from-scratch trace simulation (new oracle each iteration,
    // streams from the loop's shared cache).
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};
    const auto streams = sharedStreams();
    for (auto _ : state) {
        cme::CacheOracle oracle(nest, streams);
        benchmark::DoNotOptimize(oracle.missRatio(mem, mem[0], geom));
    }
}
BENCHMARK(BM_OracleExact);

void
BM_OracleIncremental(benchmark::State &state)
{
    // The scheduler's growth pattern: each iteration simulates the
    // one-op prefixes of the memory set in order, so every query after
    // the first extends a memoised checkpoint instead of simulating
    // from scratch. Reported time is per grown set.
    const auto &nest = bigLoop();
    const auto mem = nest.memoryOps();
    const CacheGeom geom{2048, 32, 1};
    const auto streams = sharedStreams();
    std::int64_t extensions = 0;
    for (auto _ : state) {
        cme::CacheOracle oracle(nest, streams);
        std::vector<OpId> set;
        for (OpId op : mem) {
            set.push_back(op);
            benchmark::DoNotOptimize(
                oracle.missesPerIteration(set, geom));
        }
        extensions +=
            static_cast<std::int64_t>(oracle.incrementalExtensions());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(mem.size()));
    state.counters["extensions"] = benchmark::Counter(
        static_cast<double>(extensions),
        benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_OracleIncremental);

void
BM_ScheduleBaseline(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    for (auto _ : state)
        benchmark::DoNotOptimize(sched::scheduleBaseline(g, machine));
}
BENCHMARK(BM_ScheduleBaseline)->Arg(1)->Arg(2)->Arg(4);

void
BM_ScheduleRmca(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::scheduleRmca(g, machine, 0.0, cme));
}
BENCHMARK(BM_ScheduleRmca)->Arg(2)->Arg(4);

/**
 * The same schedule through the backend registry with an explicitly
 * reused SchedContext — the steady state of a driver worker, where the
 * scratch buffers stay warm across loops (BM_ScheduleRmca above pays a
 * transient context per run).
 */
void
BM_ScheduleRmcaWarmContext(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    sched::SchedulerOptions opt;
    opt.missThreshold = 0.0;
    opt.locality = &cme;
    sched::SchedContext ctx;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::scheduleWithBackend("rmca", g, machine, opt, ctx));
}
BENCHMARK(BM_ScheduleRmcaWarmContext)->Arg(2)->Arg(4);

/**
 * The exact branch-and-bound backend on the same loop: first feasible
 * schedule only (the pressure tiebreak is a budgeted anytime search
 * whose cost is the budget, not a property of the loop).
 */
void
BM_ScheduleExact(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    sched::exact::BnbOptions opt;
    opt.tiebreakPressure = false;
    std::int64_t nodes = 0;
    for (auto _ : state) {
        const auto r = sched::exact::scheduleExact(g, machine, opt);
        nodes += r.stats.searchNodes;
        benchmark::DoNotOptimize(r);
    }
    state.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScheduleExact)->Arg(2)->Arg(4);

/** Full verify mode (rmca + exact + gap) — the per-loop cost of the
 * optimality-gap study. */
void
BM_ScheduleVerify(benchmark::State &state)
{
    const auto &nest = bigLoop();
    const auto machine = makeConfig(static_cast<int>(state.range(0)));
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    sched::SchedulerOptions opt;
    opt.missThreshold = 0.25;
    opt.locality = &cme;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::scheduleWithBackend("verify", g, machine, opt));
}
BENCHMARK(BM_ScheduleVerify)->Arg(2)->Arg(4);

void
BM_SimulateLoop(benchmark::State &state)
{
    const auto nest = harness::motivatingLoop(256, 2);
    const auto machine = harness::motivatingMachine();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    std::int64_t cycles = 0;
    for (auto _ : state) {
        const auto res = sim::simulateLoop(g, r.schedule, machine);
        cycles += res.totalCycles();
        benchmark::DoNotOptimize(res);
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateLoop);

} // namespace

BENCHMARK_MAIN();
