/**
 * @file
 * Incremental register-pressure tracking for the exact search.
 *
 * lifetimes.cc recomputes every value interval and the per-slot live
 * counts from scratch — fine once per heuristic schedule, ruinous once
 * per branch-and-bound leaf. The tracker maintains the same quantities
 * incrementally along the DFS path: every placement adds or extends a
 * few intervals (journalled for exact undo on backtrack), and the
 * per-cluster MaxLive plus its sum are available in O(1) at every
 * node.
 *
 * That turns register pressure from a leaf-only check into a search
 * bound, which is where the engine's throughput comes from:
 *
 *  - intervals only ever grow along a path (a future placement can
 *    extend a lifetime, never shrink it), so the current per-cluster
 *    MaxLive is a lower bound on any leaf below — a cluster already
 *    past its register file prunes the whole subtree, in both the
 *    feasibility and the tiebreak phase;
 *  - once a schedule is known, a partial whose summed MaxLive already
 *    reaches the incumbent cannot lead to a strictly better tiebreak
 *    leaf, so it is pruned without changing which schedule wins (leaf
 *    acceptance requires a strict improvement);
 *  - leaves read their MaxLive from the tracker instead of running
 *    computeLifetimes (a debug assert cross-checks the two).
 *
 * Interval semantics mirror lifetimes.cc exactly: a producing op owns
 * one local interval from its write (time + outLatency) to the last
 * same-cluster read / outgoing transfer start, plus one remote
 * interval per booked transfer from the bus arrival to the last read
 * in the destination cluster. live(c, s) counts, per modulo slot, the
 * overlapping interval instances across iterations.
 */

#ifndef MVP_SCHED_EXACT_PRESSURE_HH
#define MVP_SCHED_EXACT_PRESSURE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mvp::sched::exact
{

/** Journalled per-slot live counts with O(1) MaxLive queries. */
class PressureTracker
{
  public:
    /** Start a fresh II attempt: no intervals, all counts zero. */
    void reset(Cycle ii, int n_clusters, std::size_t n_ops,
               int reg_limit)
    {
        ii_ = ii;
        nc_ = n_clusters;
        limit_ = reg_limit;
        live_.assign(static_cast<std::size_t>(nc_) *
                         static_cast<std::size_t>(ii_),
                     0);
        max_.assign(static_cast<std::size_t>(nc_), 0);
        map_.assign(n_ops * (static_cast<std::size_t>(nc_) + 1), -1);
        ivs_.clear();
        journal_.clear();
        sum_max_ = 0;
        over_ = 0;
    }

    /** @name Mutations (journalled; undo with undoTo) */
    /// @{
    /** New local interval of @p v in @p c starting (and ending) at
     * @p start. */
    void addLocal(OpId v, ClusterId c, Cycle start)
    {
        addIv(localSlot(v), c, start);
    }

    /** New remote interval of @p v in @p to starting at @p arrival. */
    void addRemote(OpId v, ClusterId to, Cycle arrival)
    {
        addIv(remoteSlot(v, to), to, arrival);
    }

    /** Extend @p v's local interval to at least @p end. */
    void extendLocal(OpId v, Cycle end)
    {
        extendIv(map_[localSlot(v)], end);
    }

    /** Extend @p v's remote interval in @p to to at least @p end. */
    void extendRemote(OpId v, ClusterId to, Cycle end)
    {
        extendIv(map_[remoteSlot(v, to)], end);
    }

    /** Roll every mutation after @p m back, newest first. */
    void undoTo(std::size_t m)
    {
        while (journal_.size() > m) {
            const Entry e = journal_.back();
            journal_.pop_back();
            Interval &iv = ivs_[static_cast<std::size_t>(e.iv)];
            if (e.map_slot >= 0) {
                // Undo add: one count at the start slot, drop the
                // interval (adds/removes are LIFO by construction).
                --live_[row(iv.cluster) + slotOf(iv.from)];
                map_[static_cast<std::size_t>(e.map_slot)] = -1;
                mvp_assert(static_cast<std::size_t>(e.iv) + 1 ==
                               ivs_.size(),
                           "pressure journal out of order");
                ivs_.pop_back();
            } else {
                applyRange(iv.cluster, e.old_to + 1, iv.to, -1);
                iv.to = e.old_to;
            }
            restoreMax(e.cluster, e.old_max);
        }
    }
    /// @}

    /** Journal position, for undoTo. */
    std::size_t mark() const { return journal_.size(); }

    /** Current MaxLive of @p c (a lower bound on any leaf below). */
    int clusterMax(ClusterId c) const
    {
        return max_[static_cast<std::size_t>(c)];
    }

    /** All per-cluster MaxLive values. */
    const std::vector<int> &clusterMaxes() const { return max_; }

    /** Summed MaxLive over clusters (the tiebreak pressure bound). */
    Cycle sumMax() const { return sum_max_; }

    /** True when some cluster's MaxLive exceeds the register file. */
    bool overflown() const { return over_ > 0; }

    /** @name Interval inspection (for the dominance signature) */
    /// @{
    struct Interval
    {
        ClusterId cluster;
        Cycle from;
        Cycle to;
    };

    /** @p v's local interval, or nullptr when it has none. */
    const Interval *localOf(OpId v) const
    {
        const std::int32_t iv = map_[localSlot(v)];
        return iv < 0 ? nullptr : &ivs_[static_cast<std::size_t>(iv)];
    }

    /** @p v's remote interval in @p to, or nullptr. */
    const Interval *remoteOf(OpId v, ClusterId to) const
    {
        const std::int32_t iv = map_[remoteSlot(v, to)];
        return iv < 0 ? nullptr : &ivs_[static_cast<std::size_t>(iv)];
    }
    /// @}

  private:
    struct Entry
    {
        std::int32_t iv;         ///< interval index
        std::int32_t map_slot;   ///< >= 0: add (slot to clear); -1: extend
        std::int32_t cluster;
        std::int32_t old_max;    ///< cluster MaxLive before the mutation
        Cycle old_to;            ///< extend: previous interval end
    };

    std::size_t localSlot(OpId v) const
    {
        return static_cast<std::size_t>(v) *
                   (static_cast<std::size_t>(nc_) + 1) +
               static_cast<std::size_t>(nc_);
    }

    std::size_t remoteSlot(OpId v, ClusterId c) const
    {
        return static_cast<std::size_t>(v) *
                   (static_cast<std::size_t>(nc_) + 1) +
               static_cast<std::size_t>(c);
    }

    std::size_t row(ClusterId c) const
    {
        return static_cast<std::size_t>(c) *
               static_cast<std::size_t>(ii_);
    }

    std::size_t slotOf(Cycle t) const
    {
        Cycle m = t % ii_;
        if (m < 0)
            m += ii_;
        return static_cast<std::size_t>(m);
    }

    void setMax(ClusterId c, int val)
    {
        int &m = max_[static_cast<std::size_t>(c)];
        if (m <= limit_ && val > limit_)
            ++over_;
        sum_max_ += val - m;
        m = val;
    }

    void restoreMax(ClusterId c, int old_max)
    {
        int &m = max_[static_cast<std::size_t>(c)];
        if (m > limit_ && old_max <= limit_)
            --over_;
        sum_max_ += old_max - m;
        m = old_max;
    }

    void addIv(std::size_t map_slot, ClusterId c, Cycle from)
    {
        mvp_assert(map_[map_slot] < 0, "duplicate pressure interval");
        const auto iv = static_cast<std::int32_t>(ivs_.size());
        ivs_.push_back({c, from, from});
        map_[map_slot] = iv;
        journal_.push_back({iv, static_cast<std::int32_t>(map_slot), c,
                            max_[static_cast<std::size_t>(c)], 0});
        int &cell = live_[row(c) + slotOf(from)];
        if (++cell > max_[static_cast<std::size_t>(c)])
            setMax(c, cell);
    }

    void extendIv(std::int32_t iv_idx, Cycle end)
    {
        mvp_assert(iv_idx >= 0, "extending a missing interval");
        Interval &iv = ivs_[static_cast<std::size_t>(iv_idx)];
        if (end <= iv.to)
            return;
        journal_.push_back({iv_idx, -1, iv.cluster,
                            max_[static_cast<std::size_t>(iv.cluster)],
                            iv.to});
        applyRange(iv.cluster, iv.to + 1, end, +1);
        iv.to = end;
    }

    /**
     * Add @p delta to live(c, s) for every cycle in [from, to]. A span
     * of b full II periods touches every slot b times (closed form);
     * the remainder walks slot by slot. Positive deltas maintain the
     * cluster max (counts never pass the max unseen because the max
     * only ever grows along a committed path); negative deltas are
     * undo, whose caller restores the journalled max exactly.
     */
    void applyRange(ClusterId c, Cycle from, Cycle to, int delta)
    {
        if (from > to)
            return;
        int *r = live_.data() + row(c);
        int new_max = max_[static_cast<std::size_t>(c)];
        Cycle span = to - from + 1;
        if (span >= ii_) {
            const auto base = static_cast<int>(span / ii_);
            for (Cycle s = 0; s < ii_; ++s)
                r[static_cast<std::size_t>(s)] += base * delta;
            new_max += base * delta;
            from += static_cast<Cycle>(base) * ii_;
        }
        std::size_t s = slotOf(from);
        for (Cycle x = from; x <= to; ++x) {
            const int v = (r[s] += delta);
            if (v > new_max)
                new_max = v;
            s = s + 1 == static_cast<std::size_t>(ii_) ? 0 : s + 1;
        }
        if (delta > 0 && new_max > max_[static_cast<std::size_t>(c)])
            setMax(c, new_max);
    }

    Cycle ii_ = 1;
    int nc_ = 0;
    int limit_ = 0;
    std::vector<int> live_;           ///< [cluster][slot] live counts
    std::vector<int> max_;            ///< per-cluster MaxLive
    std::vector<std::int32_t> map_;   ///< (op, cluster|local) -> interval
    std::vector<Interval> ivs_;
    std::vector<Entry> journal_;
    Cycle sum_max_ = 0;
    int over_ = 0;   ///< clusters currently past the register file
};

} // namespace mvp::sched::exact

#endif // MVP_SCHED_EXACT_PRESSURE_HH
