/**
 * @file
 * Tests for the experiment harness: workbench preparation, suite runs,
 * and aggregate consistency.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/presets.hh"

namespace mvp::harness
{
namespace
{

TEST(Workbench, PreparesAllSuites)
{
    Workbench bench;
    EXPECT_EQ(bench.benchmarks().size(), 8u);
    EXPECT_GE(bench.entries().size(), 32u);
    for (const auto &e : bench.entries()) {
        EXPECT_NE(e->ddg, nullptr);
        ASSERT_NE(e->streams, nullptr);
        EXPECT_EQ(&e->streams->loop(), &e->nest);
        // The default provider is bound at prep time and shares the
        // entry's stream cache.
        cme::LocalityAnalysis *def = e->locality("cme");
        ASSERT_NE(def, nullptr);
        EXPECT_EQ(&def->loop(), &e->nest);
        EXPECT_EQ(e->locality("oracle"), nullptr);
    }
}

TEST(Workbench, EnsureLocalityBindsEveryEntryOnce)
{
    Workbench bench({"swim"});
    bench.ensureLocality("oracle");
    std::vector<const cme::LocalityAnalysis *> first;
    for (const auto &e : bench.entries()) {
        ASSERT_NE(e->locality("oracle"), nullptr);
        first.push_back(e->locality("oracle"));
    }
    // Idempotent: a second call must not rebind (rebinding would drop
    // warm memos mid-sweep).
    bench.ensureLocality("oracle");
    for (std::size_t i = 0; i < bench.entries().size(); ++i)
        EXPECT_EQ(bench.entries()[i]->locality("oracle"), first[i]);
}

TEST(Workbench, FilterSelectsSubset)
{
    Workbench bench({"swim", "mgrid"});
    EXPECT_EQ(bench.benchmarks().size(), 2u);
    for (const auto &e : bench.entries())
        EXPECT_TRUE(e->benchmark == "swim" || e->benchmark == "mgrid");
}

TEST(RunSuite, AggregatesMatchLoopSums)
{
    Workbench bench({"tomcatv"});
    RunConfig config;
    config.machine = makeTwoCluster();
    config.backend = "rmca";
    config.threshold = 1.0;
    sim::SimParams params;
    params.maxExecutions = 2;
    const auto suite = runSuite(bench, config, params);

    Cycle compute = 0;
    Cycle stall = 0;
    for (const auto &loop : suite.loops) {
        compute += loop.sim.computeCycles;
        stall += loop.sim.stallCycles;
        EXPECT_TRUE(loop.sched.ok);
    }
    EXPECT_EQ(suite.compute, compute);
    EXPECT_EQ(suite.stall, stall);
    EXPECT_EQ(suite.total(), compute + stall);
    ASSERT_EQ(suite.perBenchmark.size(), 1u);
    EXPECT_EQ(suite.perBenchmark.at("tomcatv").first, compute);
}

TEST(RunSuite, DeterministicAcrossRuns)
{
    Workbench bench({"su2cor"});
    RunConfig config;
    config.machine = makeFourCluster();
    config.backend = "baseline";
    config.threshold = 0.25;
    sim::SimParams params;
    params.maxExecutions = 2;
    const auto a = runSuite(bench, config, params);
    const auto b = runSuite(bench, config, params);
    EXPECT_EQ(a.compute, b.compute);
    EXPECT_EQ(a.stall, b.stall);
}

TEST(RunSuite, RmcaNeverWorseOnConflictSuites)
{
    // The headline property on a conflict-heavy suite under the
    // realistic bus configuration.
    Workbench bench({"tomcatv"});
    sim::SimParams params;
    params.maxExecutions = 4;

    RunConfig base;
    base.machine = withLimitedBuses(makeFourCluster(), 1, 4);
    base.backend = "baseline";
    base.threshold = 1.0;
    RunConfig rmca = base;
    rmca.backend = "rmca";

    const auto rb = runSuite(bench, base, params);
    const auto rr = runSuite(bench, rmca, params);
    EXPECT_LE(rr.total(), rb.total() * 105 / 100);   // within noise, <=
}

TEST(BackendName, EmptyReadsAsBaseline)
{
    RunConfig config;
    EXPECT_EQ(backendName(config), "baseline");
    config.backend.clear();
    EXPECT_EQ(backendName(config), "baseline");
    config.backend = "verify";
    EXPECT_EQ(backendName(config), "verify");
}

TEST(LocalityName, EmptyReadsAsCme)
{
    RunConfig config;
    EXPECT_EQ(localityName(config), "cme");
    config.locality.clear();
    EXPECT_EQ(localityName(config), "cme");
    config.locality = "oracle";
    EXPECT_EQ(localityName(config), "oracle");
}

// A suite run under the exact oracle provider must produce valid
// schedules end to end, and the provider choice must actually matter
// only through the locality numbers: the run succeeds with identical
// loop/benchmark structure.
TEST(RunSuite, OracleProviderRunsEndToEnd)
{
    Workbench bench({"tomcatv"});
    RunConfig cme_cfg;
    cme_cfg.machine = makeTwoCluster();
    cme_cfg.backend = "rmca";
    cme_cfg.threshold = 0.25;
    RunConfig oracle_cfg = cme_cfg;
    oracle_cfg.locality = "oracle";
    sim::SimParams params;
    params.maxExecutions = 2;

    const auto with_cme = runSuite(bench, cme_cfg, params);
    const auto with_oracle = runSuite(bench, oracle_cfg, params);
    ASSERT_EQ(with_cme.loops.size(), with_oracle.loops.size());
    for (std::size_t i = 0; i < with_oracle.loops.size(); ++i) {
        EXPECT_TRUE(with_oracle.loops[i].sched.ok);
        EXPECT_EQ(with_oracle.loops[i].loop, with_cme.loops[i].loop);
    }
}

} // namespace
} // namespace mvp::harness
