#include "common/strutil.hh"

#include <cstdarg>
#include <cstdio>

namespace mvp
{

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s.substr(0, width);
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s.substr(0, width);
    return s + std::string(width - s.size(), ' ');
}

std::string
fmtDouble(double v, int digits)
{
    return strprintf("%.*f", digits, v);
}

std::string
fmtPercent(double ratio, int digits)
{
    return strprintf("%.*f%%", digits, ratio * 100.0);
}

} // namespace mvp
