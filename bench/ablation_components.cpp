/**
 * @file
 * Ablation of the RMCA scheduler's two mechanisms (experiment E6 in
 * DESIGN.md), on the realistic 4-cluster machine with one slow memory
 * bus (the configuration where the paper reports the largest gap):
 *
 *   1. Baseline, threshold 1.00   — neither mechanism
 *   2. Baseline, threshold 0.00   — binding prefetching only
 *   3. RMCA,     threshold 1.00   — CME cluster selection only
 *   4. RMCA,     threshold 0.00   — the full scheme
 *
 * Also reports the node-ordering quality metric of [22] and the
 * schedulers' static figures (mean II, communications, promoted loads)
 * so the contribution of each design choice is visible in isolation.
 *
 * Usage: ablation_components [--jobs N]
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/flags.hh"
#include "machine/presets.hh"

using namespace mvp;
using harness::RunConfig;

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    const std::int64_t time_budget =
        harness::parseTimeBudgetFlag(argc, argv);
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--locality",
                                 "--time-budget-ms", "--log-level",
                                 "--metrics", "--trace"});
    harness::Workbench bench;
    const auto machine = withLimitedBuses(makeFourCluster(), 1, 4);
    std::printf("machine: %s\n\n", machine.summary().c_str());

    struct Variant
    {
        const char *label;
        const char *backend;
        double thr;
    };
    const Variant variants[] = {
        {"neither (Baseline, thr 1.00)", "baseline", 1.0},
        {"prefetch only (Baseline, thr 0.00)", "baseline", 0.0},
        {"CME clusters only (RMCA, thr 1.00)", "rmca", 1.0},
        {"full RMCA (thr 0.00)", "rmca", 0.0},
    };

    std::vector<RunConfig> configs;
    for (const auto &v : variants) {
        RunConfig cfg;
        cfg.machine = machine;
        cfg.backend = v.backend;
        cfg.locality = locality;
        cfg.threshold = v.thr;
        cfg.timeBudgetMs = time_budget;
        configs.push_back(cfg);
    }
    const auto results =
        harness::runSuiteSweep(bench, configs, {}, driver);

    TextTable table({"variant", "compute", "stall", "total", "vs none",
                     "mean II", "comms", "promoted", "fills"});
    table.setTitle("RMCA component ablation (4-cluster, NMB=1, LMB=4)");

    const double none_total = static_cast<double>(results[0].total());
    for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
        const auto &res = results[vi];
        double ii_sum = 0;
        std::int64_t comms = 0;
        std::int64_t promoted = 0;
        std::int64_t fills = 0;
        for (const auto &loop : res.loops) {
            ii_sum += static_cast<double>(loop.sched.schedule.ii());
            comms += static_cast<std::int64_t>(
                loop.sched.schedule.numComms());
            promoted += loop.sched.stats.missScheduledLoads;
            fills += loop.sim.memStats.value("memory_fills");
        }
        table.addRow({variants[vi].label, std::to_string(res.compute),
                      std::to_string(res.stall),
                      std::to_string(res.total()),
                      fmtDouble(static_cast<double>(res.total()) /
                                    none_total,
                                3),
                      fmtDouble(ii_sum / static_cast<double>(
                                             res.loops.size()),
                                2),
                      std::to_string(comms), std::to_string(promoted),
                      std::to_string(fills)});
    }
    std::printf("%s\n", table.render().c_str());

    // Ordering quality: the metric [22] minimises, per suite. The
    // per-loop stats already sit in the RMCA/1.00 sweep results.
    TextTable ord({"benchmark", "loops", "both-neighbour positions"});
    ord.setTitle("Swing ordering quality (0 = ideal for acyclic parts)");
    std::map<std::string, std::pair<int, int>> per_bench;
    for (const auto &loop : results[2].loops) {
        auto &slot = per_bench[loop.benchmark];
        slot.first += 1;
        slot.second += loop.sched.stats.orderingBothNeighbours;
    }
    for (const auto &[name, counts] : per_bench)
        ord.addRow({name, std::to_string(counts.first),
                    std::to_string(counts.second)});
    std::printf("%s\n", ord.render().c_str());
    return 0;
}
