#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mvp
{

namespace
{

/**
 * Locale-proof double rendering: snprintf follows the C locale's
 * LC_NUMERIC decimal point, so normalise any ',' it may emit. Keeps
 * histogram dumps byte-stable no matter what the host set.
 */
std::string
fmtStatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    for (char *p = buf; *p != '\0'; ++p)
        if (*p == ',')
            *p = '.';
    return buf;
}

} // namespace

void
RunningStat::add(double x)
{
    ++n_;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = x;
        max_ = x;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::ciHalfWidth(double z) const
{
    if (n_ < 2)
        return 0.0;
    return z * stddev() / std::sqrt(static_cast<double>(n_));
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel combination of Welford states.
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nab = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nab;
    mean_ += delta * nb / nab;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

std::int64_t &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

void
StatGroup::set(const std::string &name, std::int64_t value)
{
    counters_[name] = value;
}

void
StatGroup::setMax(const std::string &name, std::int64_t value)
{
    auto &slot = counters_[name];
    slot = std::max(slot, value);
}

std::int64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    // std::to_string instead of an ostream: ostreams honour the global
    // std::locale, whose numpunct may group digits ("1.234.567"),
    // which would break byte-compared reports on such hosts.
    std::string out;
    for (const auto &[name, value] : counters_) {
        out += prefix;
        out += name;
        out += " = ";
        out += std::to_string(value);
        out += '\n';
    }
    return out;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

void
StatGroup::reset()
{
    for (auto &[name, value] : counters_)
        value = 0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    mvp_assert(hi > lo, "histogram range must be non-empty");
    mvp_assert(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    ++count_;
    sum_ += x;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((x - lo_) / width);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

std::size_t
Histogram::bucketCount(std::size_t i) const
{
    mvp_assert(i < counts_.size(), "bucket index out of range");
    return counts_[i];
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    mvp_assert(p >= 0.0 && p <= 100.0, "percentile wants 0..100");
    if (count_ == 0)
        return 0.0;
    // Rank in [0, count): the sample the requested fraction of the
    // distribution sits at, walked bucket by bucket.
    const double rank =
        p / 100.0 * static_cast<double>(count_ - 1);
    double seen = 0.0;
    if (rank < static_cast<double>(underflow_))
        return lo_;
    seen += static_cast<double>(underflow_);
    const double width =
        (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto in_bucket = static_cast<double>(counts_[i]);
        if (in_bucket > 0.0 && rank < seen + in_bucket) {
            // Linear interpolation inside the bucket.
            const double frac = (rank - seen) / in_bucket;
            return lo_ + (static_cast<double>(i) + frac) * width;
        }
        seen += in_bucket;
    }
    return hi_;
}

std::string
Histogram::dump() const
{
    std::string out = "count=" + std::to_string(count_);
    out += " mean=" + fmtStatDouble(mean());
    out += " p50=" + fmtStatDouble(percentile(50.0));
    out += " p90=" + fmtStatDouble(percentile(90.0));
    out += " p99=" + fmtStatDouble(percentile(99.0));
    if (underflow_ > 0)
        out += " underflow=" + std::to_string(underflow_);
    if (overflow_ > 0)
        out += " overflow=" + std::to_string(overflow_);
    return out;
}

void
Histogram::merge(const Histogram &other)
{
    mvp_assert(lo_ == other.lo_ && hi_ == other.hi_ &&
                   counts_.size() == other.counts_.size(),
               "merging histograms with different binning");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
}

} // namespace mvp
