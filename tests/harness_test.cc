/**
 * @file
 * Tests for the experiment harness: workbench preparation, suite runs,
 * and aggregate consistency.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/presets.hh"

namespace mvp::harness
{
namespace
{

TEST(Workbench, PreparesAllSuites)
{
    Workbench bench;
    EXPECT_EQ(bench.benchmarks().size(), 8u);
    EXPECT_GE(bench.entries().size(), 32u);
    for (const auto &e : bench.entries()) {
        EXPECT_NE(e->ddg, nullptr);
        EXPECT_NE(e->cme, nullptr);
        EXPECT_EQ(&e->cme->loop(), &e->nest);
    }
}

TEST(Workbench, FilterSelectsSubset)
{
    Workbench bench({"swim", "mgrid"});
    EXPECT_EQ(bench.benchmarks().size(), 2u);
    for (const auto &e : bench.entries())
        EXPECT_TRUE(e->benchmark == "swim" || e->benchmark == "mgrid");
}

TEST(RunSuite, AggregatesMatchLoopSums)
{
    Workbench bench({"tomcatv"});
    RunConfig config;
    config.machine = makeTwoCluster();
    config.backend = "rmca";
    config.threshold = 1.0;
    sim::SimParams params;
    params.maxExecutions = 2;
    const auto suite = runSuite(bench, config, params);

    Cycle compute = 0;
    Cycle stall = 0;
    for (const auto &loop : suite.loops) {
        compute += loop.sim.computeCycles;
        stall += loop.sim.stallCycles;
        EXPECT_TRUE(loop.sched.ok);
    }
    EXPECT_EQ(suite.compute, compute);
    EXPECT_EQ(suite.stall, stall);
    EXPECT_EQ(suite.total(), compute + stall);
    ASSERT_EQ(suite.perBenchmark.size(), 1u);
    EXPECT_EQ(suite.perBenchmark.at("tomcatv").first, compute);
}

TEST(RunSuite, DeterministicAcrossRuns)
{
    Workbench bench({"su2cor"});
    RunConfig config;
    config.machine = makeFourCluster();
    config.backend = "baseline";
    config.threshold = 0.25;
    sim::SimParams params;
    params.maxExecutions = 2;
    const auto a = runSuite(bench, config, params);
    const auto b = runSuite(bench, config, params);
    EXPECT_EQ(a.compute, b.compute);
    EXPECT_EQ(a.stall, b.stall);
}

TEST(RunSuite, RmcaNeverWorseOnConflictSuites)
{
    // The headline property on a conflict-heavy suite under the
    // realistic bus configuration.
    Workbench bench({"tomcatv"});
    sim::SimParams params;
    params.maxExecutions = 4;

    RunConfig base;
    base.machine = withLimitedBuses(makeFourCluster(), 1, 4);
    base.backend = "baseline";
    base.threshold = 1.0;
    RunConfig rmca = base;
    rmca.backend = "rmca";

    const auto rb = runSuite(bench, base, params);
    const auto rr = runSuite(bench, rmca, params);
    EXPECT_LE(rr.total(), rb.total() * 105 / 100);   // within noise, <=
}

// The SchedKind enum is a deprecated shim; the registry backend string
// in RunConfig is the source of truth. The shim must keep mapping to
// the same backends until it is removed.
TEST(SchedKindShim, MapsToBackendNames)
{
    EXPECT_EQ(schedKindName(SchedKind::Baseline), "Baseline");
    EXPECT_EQ(schedKindName(SchedKind::Rmca), "RMCA");
    EXPECT_EQ(backendFor(SchedKind::Baseline), "baseline");
    EXPECT_EQ(backendFor(SchedKind::Rmca), "rmca");
}

TEST(BackendName, EmptyReadsAsBaseline)
{
    RunConfig config;
    EXPECT_EQ(backendName(config), "baseline");
    config.backend.clear();
    EXPECT_EQ(backendName(config), "baseline");
    config.backend = "verify";
    EXPECT_EQ(backendName(config), "verify");
}

} // namespace
} // namespace mvp::harness
