/**
 * @file
 * Warm-state persistence formats of the scheduling service.
 *
 * encodeState()/decodeState() live on SchedService (svc/service.hh);
 * this header documents the formats and pins their versions.
 *
 * ## Binary v2 (written by encodeState(), the current format)
 *
 * Fixed-width little-endian throughout; doubles travel as their IEEE
 * bit pattern (lossless by construction), byte strings as a u64
 * length followed by the raw bytes (no escaping). Layout:
 *
 *     magic      8 bytes  "mvpwarmb"
 *     version    u32      2
 *     nsections  u32
 *     table      nsections x { tag u32, len u64 }
 *     bodies     the section bodies, in table order
 *
 * Section tags:
 *
 *     1  cache   u64 count, then count x { key blob, payload blob }
 *                — the schedule cache, sorted by key
 *     2  loops   u64 count, then per loop:
 *                  text blob                 canonical loop text
 *                  u64 nproviders, each:
 *                    kind u32                1 = cme ratio memo,
 *                                            2 = oracle checkpoints
 *                    name blob               registry provider name
 *                    u64 nentries, then the fixed-width entry
 *                    records (svc/state.cc)
 *
 * Cache entries are sorted by key, loops by canonical text, providers
 * by name, memo entries by the export APIs' canonical order — so
 * identical service states encode byte-identically and
 * encode(decode(s)) == s. Decoding stages the *entire* snapshot in
 * memory before publishing a single entry: a version mismatch, an
 * unknown section/provider tag or any truncation rejects the whole
 * snapshot and leaves the service untouched. Publication itself is
 * keep-the-winner everywhere, so LOAD into a non-empty service merges.
 *
 * ## Text v1 (legacy, still accepted by decodeState())
 *
 * Line-oriented text with length-framed raw sections, starting
 * `mvp-warm-state 1`; the shape is kept in svc/state.cc
 * (encodeStateTextV1). Old snapshots load transparently and become
 * binary on their next SAVE — that is the whole migration path. SAVE
 * and LOAD of v2 are O(bytes) instead of O(parse): no number
 * formatting, no tokenising, one length-checked memcpy per field.
 *
 * Versioning: the magic + version (binary) or leading version line
 * (text) is checked before anything else; any mismatch is a hard
 * error rather than a guess — warm state is a cache, so the recovery
 * from an unreadable snapshot is simply a cold start. Bump
 * WARM_STATE_VERSION_BINARY whenever a section's shape, order or
 * meaning changes.
 */

#ifndef MVP_SVC_STATE_HH
#define MVP_SVC_STATE_HH

namespace mvp::svc
{

/** Text (v1) snapshot version still accepted on load. */
constexpr int WARM_STATE_VERSION = 1;

/** Binary snapshot version written and accepted by this build. */
constexpr int WARM_STATE_VERSION_BINARY = 2;

/** The 8-byte magic that opens a binary snapshot. */
inline constexpr char WARM_STATE_MAGIC[8] = {'m', 'v', 'p', 'w',
                                             'a', 'r', 'm', 'b'};

} // namespace mvp::svc

#endif // MVP_SVC_STATE_HH
