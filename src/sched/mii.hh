/**
 * @file
 * Minimum initiation interval: the resource-constrained bound (ResMII)
 * and its combination with the recurrence bound (RecMII) from the DDG.
 */

#ifndef MVP_SCHED_MII_HH
#define MVP_SCHED_MII_HH

#include "common/types.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"

namespace mvp::sched
{

/**
 * Resource-constrained MII: for every FU class, ceil(ops of that class /
 * total units of that class across clusters). Bus bandwidth is not part
 * of ResMII (communication requirements depend on the partition, which
 * is not known yet); saturated buses instead fail the II attempt.
 */
Cycle resMii(const ir::LoopNest &nest, const MachineConfig &machine);

/** mII = max(ResMII, RecMII). */
Cycle minII(const ddg::Ddg &graph, const MachineConfig &machine);

} // namespace mvp::sched

#endif // MVP_SCHED_MII_HH
