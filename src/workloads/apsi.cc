/**
 * @file
 * apsi-like suite: mesoscale pollutant-transport model.
 *
 * 141.apsi solves vertical diffusion column by column: the inner loop
 * walks *down a column* of row-major arrays, so every access has a
 * 256-byte stride — no spatial reuse at all, the worst case for the
 * hit-latency assumption and the best case for the paper's miss-latency
 * (binding prefetching) scheduling. Tridiagonal elimination adds
 * register-carried recurrences on top.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t N_COL = 24;   // columns (outer)
constexpr std::int64_t N_LEV = 48;   // vertical levels (inner)
constexpr std::int64_t DIM_LEV = N_LEV + 2;
constexpr std::int64_t DIM_COL = 64;
constexpr Addr BASE = 0x200000;
constexpr Addr STRIDE_8K = 0x2000;

/** Column index: level varies along the inner loop (stride = row). */
AffineExpr
lev(std::int64_t ofs)
{
    return affineVar(1, 1, ofs);
}

AffineExpr
col()
{
    return affineVar(0, 1, 0);
}

/** Vertical diffusion setup: coefficients per level. */
LoopNest
loopCoeff()
{
    LoopNestBuilder b("apsi.coeff");
    b.loop("c", 0, N_COL);
    b.loop("l", 1, 1 + N_LEV);
    const auto T = b.arrayAt("T", {DIM_LEV, DIM_COL}, BASE);
    const auto Q = b.arrayAt("Q", {DIM_LEV, DIM_COL}, BASE + 2 * STRIDE_8K);
    const auto KV = b.arrayAt("KV", {DIM_LEV, DIM_COL},
                              BASE + 4 * STRIDE_8K);

    const auto t0 = b.load(T, {lev(0), col()}, "t0");
    const auto t1 = b.load(T, {lev(1), col()}, "t1");
    const auto q0 = b.load(Q, {lev(0), col()}, "q0");

    const auto dt = b.op(Opcode::FSub, {use(t1), use(t0)}, "dt");
    const auto stab = b.op(Opcode::FMadd, {use(dt), liveIn(), use(q0)},
                           "stab");
    const auto kv = b.op(Opcode::FMul, {use(stab), use(stab)}, "kv");
    b.store(KV, {lev(0), col()}, use(kv), "skv");
    return b.build();
}

/** Tridiagonal forward sweep down the column. */
LoopNest
loopDown()
{
    LoopNestBuilder b("apsi.down");
    b.loop("c", 0, N_COL);
    b.loop("l", 1, 1 + N_LEV);
    const auto KV = b.arrayAt("KV", {DIM_LEV, DIM_COL},
                              BASE + 4 * STRIDE_8K);
    const auto F = b.arrayAt("F", {DIM_LEV, DIM_COL},
                             BASE + 6 * STRIDE_8K);
    const auto W = b.arrayAt("W", {DIM_LEV, DIM_COL},
                             BASE + 8 * STRIDE_8K + 0xE40);

    const auto kv = b.load(KV, {lev(0), col()}, "kv");
    const auto f = b.load(F, {lev(0), col()}, "f");
    // w = f - kv * w(l-1): register-carried elimination.
    const auto prod =
        b.op(Opcode::FMul, {use(kv), use(b.nextOpId() + 1, 1)}, "prod");
    const auto w = b.op(Opcode::FSub, {use(f), use(prod)}, "w");
    b.store(W, {lev(0), col()}, use(w), "sw");
    return b.build();
}

/** Flux update using adjacent levels of two fields. */
LoopNest
loopFlux()
{
    LoopNestBuilder b("apsi.flux");
    b.loop("c", 0, N_COL);
    b.loop("l", 1, 1 + N_LEV);
    const auto W = b.arrayAt("W", {DIM_LEV, DIM_COL},
                             BASE + 8 * STRIDE_8K + 0xE40);
    const auto T = b.arrayAt("T", {DIM_LEV, DIM_COL}, BASE);
    const auto OUT = b.arrayAt("OUT", {DIM_LEV, DIM_COL},
                               BASE + 10 * STRIDE_8K + 0x1300);

    const auto w0 = b.load(W, {lev(0), col()}, "w0");
    const auto w1 = b.load(W, {lev(1), col()}, "w1");
    const auto t0 = b.load(T, {lev(0), col()}, "t0");

    const auto dw = b.op(Opcode::FSub, {use(w1), use(w0)}, "dw");
    const auto fl = b.op(Opcode::FMadd, {use(dw), liveIn(), use(t0)},
                         "fl");
    b.store(OUT, {lev(0), col()}, use(fl), "sfl");
    return b.build();
}

/** Column-mean removal: two passes fused with a reduction. */
LoopNest
loopMean()
{
    LoopNestBuilder b("apsi.mean");
    b.loop("c", 0, N_COL);
    b.loop("l", 1, 1 + N_LEV);
    const auto OUT = b.arrayAt("OUT", {DIM_LEV, DIM_COL},
                               BASE + 10 * STRIDE_8K + 0x1300);
    const auto Q = b.arrayAt("Q", {DIM_LEV, DIM_COL}, BASE + 2 * STRIDE_8K);

    const auto o = b.load(OUT, {lev(0), col()}, "o");
    const auto q = b.load(Q, {lev(0), col()}, "q");
    const auto sum = b.op(Opcode::FAdd,
                          {use(o), use(b.nextOpId(), 1)}, "sum");
    const auto dev = b.op(Opcode::FSub, {use(q), use(o)}, "dev");
    b.store(Q, {lev(0), col()}, use(dev), "sq");
    (void)sum;
    return b.build();
}

} // namespace

Benchmark
makeApsi()
{
    Benchmark bench;
    bench.name = "apsi";
    bench.loops.push_back(loopCoeff());
    bench.loops.push_back(loopDown());
    bench.loops.push_back(loopFlux());
    bench.loops.push_back(loopMean());
    return bench;
}

} // namespace mvp::workloads
