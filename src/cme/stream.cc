#include "cme/stream.hh"

#include "common/logging.hh"
#include "obs/trace.hh"

namespace mvp::cme
{

StreamCache::StreamCache(const ir::LoopNest &nest)
    : nest_(nest), space_(nest), points_(space_.points())
{
}

std::unique_ptr<LineStream>
StreamCache::buildLines(OpId op, std::int64_t line_bytes) const
{
    const auto &operation = nest_.op(op);
    mvp_assert(operation.isMemory(), "line stream of a non-memory op");
    mvp_assert(line_bytes > 0, "bad cache line size");

    auto stream = std::make_unique<LineStream>();
    stream->lines.resize(static_cast<std::size_t>(points_));
    std::vector<std::int64_t> ivs;
    for (std::int64_t p = 0; p < points_; ++p) {
        space_.at(p, ivs);
        const Addr addr = nest_.addressOf(*operation.memRef, ivs);
        // Same arithmetic as CacheGeom::lineOf — the streams must be
        // byte-for-byte what the un-cached analyses computed.
        stream->lines[static_cast<std::size_t>(p)] =
            static_cast<std::int64_t>(addr) / line_bytes;
    }
    return stream;
}

const LineStream &
StreamCache::lines(OpId op, int line_bytes)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    const Key key{op, line_bytes, 0};
    Shard &shard = shardOf(key);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (auto it = shard.lines.find(key); it != shard.lines.end())
            return *it->second;
    }

    // Build outside the lock: streams are pure functions of the key, so
    // a racing builder produces an identical value and emplace() keeps
    // whichever arrived first.
    MVP_TRACE_SPAN("stream-build", {}, static_cast<std::int64_t>(op));
    auto fresh = buildLines(op, line_bytes);
    built_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard.mu);
    return *shard.lines.emplace(key, std::move(fresh)).first->second;
}

const SetBuckets &
StreamCache::buckets(OpId op, const CacheGeom &geom)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t num_sets = geom.numSets();
    mvp_assert(num_sets > 0, "cache with no sets");
    const Key key{op, geom.lineBytes, num_sets};
    Shard &shard = shardOf(key);
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (auto it = shard.buckets.find(key); it != shard.buckets.end())
            return *it->second;
    }

    const LineStream &stream = lines(op, geom.lineBytes);
    auto fresh = std::make_unique<SetBuckets>();
    // Counting pass, then a placement pass over stable offsets: the
    // entries of one set come out chronological because the stream is
    // walked in point order both times.
    fresh->offsets.assign(static_cast<std::size_t>(num_sets) + 1, 0);
    for (const std::int64_t line : stream.lines)
        ++fresh->offsets[static_cast<std::size_t>(line % num_sets) + 1];
    for (std::size_t s = 1; s < fresh->offsets.size(); ++s)
        fresh->offsets[s] += fresh->offsets[s - 1];
    fresh->entries.resize(stream.lines.size());
    std::vector<std::int64_t> cursor(
        fresh->offsets.begin(), fresh->offsets.end() - 1);
    for (std::size_t p = 0; p < stream.lines.size(); ++p) {
        const std::int64_t line = stream.lines[p];
        const auto s = static_cast<std::size_t>(line % num_sets);
        fresh->entries[static_cast<std::size_t>(cursor[s]++)] = {
            static_cast<std::int64_t>(p), line};
    }

    std::lock_guard<std::mutex> lock(shard.mu);
    return *shard.buckets.emplace(key, std::move(fresh)).first->second;
}

} // namespace mvp::cme
