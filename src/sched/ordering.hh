/**
 * @file
 * Node ordering for unified assign-and-schedule.
 *
 * Both the baseline and the RMCA scheduler consume the ordering of the
 * paper's baseline work ([22]): it "minimizes the number of nodes that
 * have both predecessors and successors in the set of nodes that precede
 * it in the order". This is the swing ordering of Swing Modulo
 * Scheduling (Llosa et al.): recurrence sets are taken in decreasing
 * RecMII order (augmented with the nodes on paths between already-placed
 * sets and the new one), and inside each set the order alternates
 * top-down sweeps (by decreasing height, then lowest mobility) with
 * bottom-up sweeps (by decreasing depth, then lowest mobility).
 */

#ifndef MVP_SCHED_ORDERING_HH
#define MVP_SCHED_ORDERING_HH

#include <vector>

#include "common/types.hh"
#include "ddg/ddg.hh"
#include "sched/context.hh"

namespace mvp::sched
{

/**
 * Compute the scheduling order of all nodes at the given II (priorities
 * use ASAP/ALAP at that II; the order is computed once at mII and reused
 * across II increments, as in the paper).
 */
std::vector<OpId> computeOrdering(const ddg::Ddg &graph, Cycle ii);

/**
 * computeOrdering into a caller-owned vector, reusing its capacity,
 * with all working storage drawn from @p scratch. A scheduler run on a
 * warm context performs no ordering-related allocation.
 */
void computeOrdering(const ddg::Ddg &graph, Cycle ii,
                     std::vector<OpId> &order, OrderingScratch &scratch);

/** computeOrdering into a caller-owned vector, transient scratch. */
void computeOrdering(const ddg::Ddg &graph, Cycle ii,
                     std::vector<OpId> &order);

/**
 * Count the ordering-quality metric of [22]: the number of positions
 * whose node has both a predecessor and a successor among the nodes
 * preceding it. Lower is better; used by tests and the ablation bench.
 */
int bothNeighbourCount(const ddg::Ddg &graph,
                       const std::vector<OpId> &order);

/** bothNeighbourCount with caller-owned scratch (allocation-free). */
int bothNeighbourCount(const ddg::Ddg &graph,
                       const std::vector<OpId> &order,
                       OrderingScratch &scratch);

} // namespace mvp::sched

#endif // MVP_SCHED_ORDERING_HH
