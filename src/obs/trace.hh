/**
 * @file
 * Chrome trace-event tracer: the "when" layer of the stack.
 *
 * Scoped spans (`MVP_TRACE_SPAN("place", loop.name(), ii)`) and
 * instant events are collected into per-thread buffers and written at
 * traceFinish() as Chrome trace-event JSON — load the file in
 * chrome://tracing or https://ui.perfetto.dev to see per-worker
 * tracks of pool items, RMCA phases, exact-search II attempts and
 * CME stream builds on one timeline.
 *
 * Discipline for callers:
 *
 *  - span *names* must be string literals (the tracer stores the
 *    `const char *`; no copy is made). Dynamic context goes into the
 *    `detail` argument — a string_view that is copied only when the
 *    tracer is live — or the integer `arg`.
 *  - the disabled path is one relaxed atomic load and a branch, so
 *    spans are safe in warm loops (but not in the per-node hot path;
 *    instrument per II attempt / per item, not per decision).
 *  - traceFinish() must only run with no spans in flight, i.e. with
 *    the worker pool parked. The harness guarantees this by calling
 *    it after the last sweep (ParallelDriver::run has returned, and
 *    its mutex hand-off ordered all worker writes before that
 *    return).
 *
 * Timestamps are microseconds on std::chrono::steady_clock relative
 * to traceInit(), so traces are immune to wall-clock steps.
 */

#ifndef MVP_OBS_TRACE_HH
#define MVP_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace mvp::obs
{

namespace detail
{
extern std::atomic<bool> g_trace_on;

/** Record one completed span [ts_us, ts_us+dur_us) on this thread. */
void traceEmit(const char *name, std::string_view detail,
               std::int64_t arg, std::int64_t ts_us, std::int64_t dur_us);

/** Current trace timestamp (µs since traceInit). */
std::int64_t traceNowUs();
} // namespace detail

/** Whether tracing is enabled (one relaxed atomic load). */
inline bool
traceOn()
{
    return detail::g_trace_on.load(std::memory_order_relaxed);
}

/** Sentinel for "span has no integer argument". */
inline constexpr std::int64_t TRACE_NO_ARG = INT64_MIN;

/**
 * RAII span: records [construction, destruction) as one complete
 * ("ph":"X") event on the calling thread's track.
 *
 * @param name   Event name — must be a string literal (not copied).
 * @param detail Optional dynamic context (copied only when tracing).
 * @param arg    Optional integer argument (e.g. the II attempted).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, std::string_view detail = {},
                       std::int64_t arg = TRACE_NO_ARG)
    {
        if (!traceOn())
            return;
        live_ = true;
        name_ = name;
        detail_ = detail;
        arg_ = arg;
        start_us_ = obs::detail::traceNowUs();
    }

    ~TraceSpan()
    {
        if (!live_)
            return;
        const std::int64_t end = obs::detail::traceNowUs();
        obs::detail::traceEmit(name_, detail_, arg_, start_us_,
                               end - start_us_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool live_ = false;
    const char *name_ = nullptr;
    std::string detail_;
    std::int64_t arg_ = TRACE_NO_ARG;
    std::int64_t start_us_ = 0;
};

/** Zero-duration marker on the calling thread's track. */
void traceInstant(const char *name, std::string_view detail = {},
                  std::int64_t arg = TRACE_NO_ARG);

/** Label the calling thread's track ("worker-3"). Idempotent per
 * thread per trace session; cheap enough to call on every sweep. */
void traceSetThreadName(const std::string &name);

/**
 * Start a trace session writing to @p path at traceFinish(). Names
 * the calling thread "main". Re-init after a finish starts a fresh
 * session (buffers from the old session are dropped).
 */
void traceInit(const std::string &path);

/** Write the JSON and stop tracing. Idempotent; no-op when
 * traceInit() never ran. Only call with no spans in flight. */
void traceFinish();

#define MVP_OBS_CAT2(a, b) a##b
#define MVP_OBS_CAT(a, b) MVP_OBS_CAT2(a, b)

/** Open a scoped span for the rest of the enclosing block. */
#define MVP_TRACE_SPAN(...)                                                  \
    ::mvp::obs::TraceSpan MVP_OBS_CAT(mvp_trace_span_, __LINE__)(__VA_ARGS__)

} // namespace mvp::obs

#endif // MVP_OBS_TRACE_HH
