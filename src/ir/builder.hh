/**
 * @file
 * Convenience builder for loop nests, including the data-layout
 * allocator that assigns array base addresses.
 *
 * Array placement matters in this reproduction exactly as it does in the
 * paper: the motivating example (Figure 3) relies on two arrays being
 * laid out a multiple of the cache size apart so that their references
 * ping-pong in a direct-mapped cache.
 */

#ifndef MVP_IR_BUILDER_HH
#define MVP_IR_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop.hh"

namespace mvp::ir
{

/**
 * Fluent construction of a LoopNest.
 *
 * Usage:
 * @code
 *   LoopNestBuilder b("saxpy");
 *   auto i = b.loop("i", 0, 256);
 *   auto x = b.array("X", {256});
 *   auto y = b.array("Y", {256});
 *   auto lx = b.load(x, {affineVar(i)});
 *   auto ly = b.load(y, {affineVar(i)});
 *   auto m  = b.op(Opcode::FMul, {use(lx), liveIn()});
 *   auto s  = b.op(Opcode::FAdd, {use(m), use(ly)});
 *   b.store(y, {affineVar(i)}, use(s));
 *   LoopNest nest = b.build();
 * @endcode
 */
class LoopNestBuilder
{
  public:
    explicit LoopNestBuilder(std::string name);

    /** Add a loop (outermost first); returns its depth index. */
    std::size_t loop(const std::string &name, std::int64_t lower,
                     std::int64_t upper, std::int64_t step = 1);

    /**
     * Declare an array whose base address the layout allocator assigns
     * at build() time.
     */
    ArrayId array(const std::string &name, std::vector<std::int64_t> dims,
                  int elem_size = 4);

    /** Declare an array at an explicit base address. */
    ArrayId arrayAt(const std::string &name, std::vector<std::int64_t> dims,
                    Addr base, int elem_size = 4);

    /** Add a load of @p arr at the given affine indices. */
    OpId load(ArrayId arr, std::vector<AffineExpr> index,
              const std::string &name = "");

    /** Add a store of @p value to @p arr at the given affine indices. */
    OpId store(ArrayId arr, std::vector<AffineExpr> index, Operand value,
               const std::string &name = "");

    /** Add a non-memory operation. */
    OpId op(Opcode opcode, std::vector<Operand> inputs,
            const std::string &name = "");

    /**
     * Id the next added operation will receive. Lets a body reference an
     * operation inside its own operand list (loop-carried recurrences,
     * e.g. accumulators: op(FAdd, {use(x), use(b.nextOpId(), 1)})).
     */
    OpId nextOpId() const { return static_cast<OpId>(nest_.size()); }

    /** @name Layout allocator controls */
    /// @{
    /** First address handed out (default 0x10000). */
    void layoutBase(Addr base) { layout_base_ = base; }
    /** Alignment of every allocated array (default 64 bytes). */
    void layoutAlign(std::int64_t align) { layout_align_ = align; }
    /** Extra padding inserted between consecutive arrays (default 0). */
    void layoutPad(std::int64_t pad) { layout_pad_ = pad; }
    /// @}

    /**
     * Assign base addresses to all auto-layout arrays, validate the nest
     * and return it. The builder can be reused afterwards only by
     * constructing a new one.
     */
    LoopNest build();

  private:
    LoopNest nest_;
    std::vector<bool> auto_layout_;
    Addr layout_base_ = 0x10000;
    std::int64_t layout_align_ = 64;
    std::int64_t layout_pad_ = 0;
    bool built_ = false;
};

} // namespace mvp::ir

#endif // MVP_IR_BUILDER_HH
