/**
 * @file
 * Pluggable locality providers.
 *
 * The locality analogue of sched/backend.hh: a LocalityProvider binds a
 * LocalityAnalysis to a loop nest, and the registry maps stable string
 * names to providers so the harness, benches, examples and tests select
 * the analysis by name instead of hard-wiring concrete types. Built-in
 * providers:
 *
 *  - "cme"     the sampling CME solver (the paper's choice and the
 *              default everywhere);
 *  - "oracle"  the exact trace-driven oracle (incremental simulation);
 *  - "hybrid"  the sampling solver with an exact-oracle fallback for
 *              queries whose 95% CI never tightened to the solver's
 *              target — sampled speed where sampling converges, exact
 *              answers where it does not;
 *  - "hybrid:<N>"  the confidence-budgeted hybrid: high-variance
 *              queries may spend up to N extra batches of samples
 *              before the oracle fallback fires, trading sample time
 *              for oracle traffic ("hybrid:0" == "hybrid").
 *
 * Every provider bound to one nest can share one StreamCache, so the
 * materialised access streams amortise across providers as well as
 * across queries. Out-of-tree code can register additional providers
 * through LocalityRegistry::add().
 */

#ifndef MVP_CME_PROVIDER_HH
#define MVP_CME_PROVIDER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cme/locality.hh"
#include "cme/stream.hh"
#include "common/registry.hh"

namespace mvp::cme
{

/** One locality engine behind a stable name. */
class LocalityProvider
{
  public:
    virtual ~LocalityProvider() = default;

    /** The registry name this provider was created under. */
    virtual std::string_view name() const = 0;

    /**
     * Bind an analysis to @p nest, drawing access streams from
     * @p streams (the provider creates a private cache when null).
     * The returned analysis is thread-safe and deterministic under
     * concurrency, like every analysis in this layer.
     */
    virtual std::unique_ptr<LocalityAnalysis>
    bind(const ir::LoopNest &nest,
         std::shared_ptr<StreamCache> streams = nullptr) const = 0;
};

/** Factory of one provider kind. */
using LocalityProviderFactory =
    std::function<std::unique_ptr<LocalityProvider>()>;

/**
 * Name -> provider registry. The built-in providers are registered on
 * first access; add() extends it at runtime.
 */
class LocalityRegistry
{
  public:
    /** The process-wide registry (built-ins pre-registered). */
    static LocalityRegistry &instance();

    /** Register (or replace) a provider under @p name. */
    void add(std::string name, LocalityProviderFactory factory);

    /** True when @p name resolves to a provider (incl. hybrid:<N>). */
    bool has(const std::string &name) const;

    /**
     * Instantiate @p name; fatal() on unknown names. Besides
     * registered names, the `hybrid:<budget>` scheme resolves to a
     * confidence-budgeted hybrid provider.
     */
    std::unique_ptr<LocalityProvider> create(
        const std::string &name) const;

    /**
     * Convenience: create @p name and bind it to @p nest in one step.
     */
    std::unique_ptr<LocalityAnalysis>
    bind(const std::string &name, const ir::LoopNest &nest,
         std::shared_ptr<StreamCache> streams = nullptr) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    LocalityRegistry();

    NamedFactoryTable<LocalityProviderFactory> table_;
};

} // namespace mvp::cme

#endif // MVP_CME_PROVIDER_HH
