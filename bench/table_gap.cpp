/**
 * @file
 * Optimality-gap table: for every workload loop, the II of the RMCA
 * heuristic vs. the exact branch-and-bound backend, per clustered
 * machine — the repo's analogue of the heuristic-vs-exact comparisons
 * in the exact-modulo-scheduling literature (Roorda's SMT scheduler,
 * Tirelli et al.'s SAT mapper). Loops the exact search cannot settle
 * within its node budget show as "gap unknown".
 *
 * The study shards loops across a --jobs-sized pool (default: all
 * cores); the exact searches dominate its runtime and are mutually
 * independent, so it scales nearly linearly. Tables are byte-identical
 * at any job count.
 *
 * Usage: table_gap [--jobs N] [node_budget]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/gapstudy.hh"
#include "machine/presets.hh"

using namespace mvp;

int
main(int argc, char **argv)
{
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    std::int64_t budget = sched::DEFAULT_SEARCH_BUDGET;
    if (argc > 1)
        budget = std::atoll(argv[1]);

    harness::Workbench bench;
    for (int clusters : {2, 4}) {
        const MachineConfig machine = makeConfig(clusters);
        std::printf("=== %s (search budget %lld nodes/loop) ===\n\n",
                    machine.summary().c_str(),
                    static_cast<long long>(budget));
        const auto study = harness::runGapStudy(bench, machine, 0.25,
                                                budget, driver, locality);
        std::printf("%s\n\n", harness::formatGapTable(study).c_str());
    }
    return 0;
}
