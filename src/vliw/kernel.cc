#include "vliw/kernel.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace mvp::vliw
{

namespace
{

VliwInstr
emptyInstr(const MachineConfig &machine)
{
    VliwInstr instr;
    instr.clusters.resize(static_cast<std::size_t>(machine.nClusters));
    for (auto &cw : instr.clusters) {
        cw.fu.resize(ir::NUM_FU_TYPES);
        for (int t = 0; t < ir::NUM_FU_TYPES; ++t)
            cw.fu[static_cast<std::size_t>(t)].resize(
                static_cast<std::size_t>(
                    machine.fusPerCluster(static_cast<ir::FuType>(t))));
        if (!machine.unboundedRegBuses)
            cw.buses.resize(static_cast<std::size_t>(machine.nRegBuses));
    }
    return instr;
}

/** Place an op into the first free unit of its FU class. */
void
fillSlot(VliwInstr &instr, ClusterId cluster, ir::FuType type, OpId op,
         int stage)
{
    auto &units = instr.clusters[static_cast<std::size_t>(cluster)]
                      .fu[static_cast<std::size_t>(type)];
    for (auto &slot : units) {
        if (slot.isNop()) {
            slot = {op, stage};
            return;
        }
    }
    mvp_panic("FU slot overflow while expanding a validated schedule");
}

} // namespace

KernelImage
KernelImage::generate(const ddg::Ddg &graph,
                      const sched::ModuloSchedule &sched,
                      const MachineConfig &machine)
{
    KernelImage img;
    img.ii_ = sched.ii();
    img.sc_ = sched.stageCount();
    const Cycle ii = img.ii_;
    const int sc = img.sc_;
    const auto &loop = graph.loop();

    // --- Kernel: slot s executes every op with time % II == s. ---
    img.kernel_.assign(static_cast<std::size_t>(ii),
                       emptyInstr(machine));
    for (const auto &op : loop.ops()) {
        const auto &p = sched.placed(op.id);
        fillSlot(img.kernel_[static_cast<std::size_t>(p.time % ii)],
                 p.cluster, op.fuType(), op.id, sched.stage(op.id));
    }
    for (const auto &c : sched.comms()) {
        if (machine.unboundedRegBuses)
            continue;
        const auto bus = static_cast<std::size_t>(c.bus);
        auto &out_word =
            img.kernel_[static_cast<std::size_t>(c.xferStart % ii)]
                .clusters[static_cast<std::size_t>(c.from)];
        mvp_assert(out_word.buses[bus].out == INVALID_ID,
                   "OUT BUS field already used");
        out_word.buses[bus].out = c.producer;
        const Cycle arrive = c.xferStart + machine.regBusLatency;
        auto &in_word =
            img.kernel_[static_cast<std::size_t>(arrive % ii)]
                .clusters[static_cast<std::size_t>(c.to)];
        mvp_assert(in_word.buses[bus].in == INVALID_ID,
                   "IN BUS field already used");
        in_word.buses[bus].in = c.producer;
    }

    // --- Prologue: flat cycles [0, (SC-1)*II); op instance k issues at
    // time + k*II, so cycle t holds ops with t >= time, (t-time) % II
    // == 0. ---
    const Cycle ramp = static_cast<Cycle>(sc - 1) * ii;
    img.prologue_.assign(static_cast<std::size_t>(ramp),
                         emptyInstr(machine));
    for (const auto &op : loop.ops()) {
        const auto &p = sched.placed(op.id);
        for (Cycle t = p.time; t < ramp; t += ii)
            fillSlot(img.prologue_[static_cast<std::size_t>(t)],
                     p.cluster, op.fuType(), op.id,
                     static_cast<int>((t - p.time) / ii));
    }

    // --- Epilogue: offset t drains op instances whose issue time lands
    // past the last kernel cycle: time - t must be a positive multiple
    // of II no larger than (SC-1)*II. ---
    img.epilogue_.assign(static_cast<std::size_t>(ramp),
                         emptyInstr(machine));
    for (const auto &op : loop.ops()) {
        const auto &p = sched.placed(op.id);
        for (Cycle t = 0; t < ramp; ++t) {
            const Cycle delta = p.time - t;
            if (delta > 0 && delta % ii == 0 && delta / ii <= sc - 1)
                fillSlot(img.epilogue_[static_cast<std::size_t>(t)],
                         p.cluster, op.fuType(), op.id,
                         static_cast<int>(delta / ii));
        }
    }

    return img;
}

double
KernelImage::kernelUtilisation() const
{
    std::size_t total = 0;
    std::size_t used = 0;
    for (const auto &instr : kernel_) {
        for (const auto &cw : instr.clusters) {
            for (const auto &units : cw.fu) {
                for (const auto &slot : units) {
                    ++total;
                    used += slot.isNop() ? 0 : 1;
                }
            }
        }
    }
    return total ? static_cast<double>(used) / static_cast<double>(total)
                 : 0.0;
}

std::string
KernelImage::render(const ddg::Ddg &graph,
                    const MachineConfig &machine) const
{
    const auto &loop = graph.loop();
    std::ostringstream os;
    auto render_block = [&](const char *name,
                            const std::vector<VliwInstr> &block) {
        os << name << " (" << block.size() << " instructions):\n";
        for (std::size_t i = 0; i < block.size(); ++i) {
            os << padLeft(std::to_string(i), 4) << ": ";
            const auto &instr = block[i];
            for (std::size_t c = 0; c < instr.clusters.size(); ++c) {
                if (c)
                    os << " || ";
                os << "c" << c << "[";
                bool first = true;
                for (const auto &units : instr.clusters[c].fu) {
                    for (const auto &slot : units) {
                        if (!first)
                            os << " ";
                        first = false;
                        if (slot.isNop()) {
                            os << "nop";
                        } else {
                            const auto &op = loop.op(slot.op);
                            os << (op.name.empty()
                                       ? std::string(
                                             opcodeName(op.opcode))
                                       : op.name)
                               << "(" << slot.stage << ")";
                        }
                    }
                }
                for (std::size_t b = 0;
                     b < instr.clusters[c].buses.size(); ++b) {
                    const auto &bf = instr.clusters[c].buses[b];
                    if (bf.out != INVALID_ID)
                        os << " out" << b << "=%" << bf.out;
                    if (bf.in != INVALID_ID)
                        os << " in" << b << "=%" << bf.in;
                }
                os << "]";
            }
            os << "\n";
        }
    };
    render_block("prologue", prologue_);
    render_block("kernel", kernel_);
    render_block("epilogue", epilogue_);
    (void)machine;
    return os.str();
}

} // namespace mvp::vliw
