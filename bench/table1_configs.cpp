/**
 * @file
 * Reproduction of Table 1: the three multiVLIWprocessor configurations
 * and the operation latencies every experiment uses.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/strutil.hh"
#include "machine/presets.hh"

using namespace mvp;

int
main()
{
    TextTable table({"parameter", "unified", "2-cluster", "4-cluster"});
    table.setTitle("Table 1: multiVLIWprocessor configurations");
    const MachineConfig configs[3] = {makeUnified(), makeTwoCluster(),
                                      makeFourCluster()};
    auto row = [&](const char *name, auto get) {
        table.addRow({name, get(configs[0]), get(configs[1]),
                      get(configs[2])});
    };
    row("clusters",
        [](const auto &m) { return std::to_string(m.nClusters); });
    row("INT units / cluster",
        [](const auto &m) { return std::to_string(m.intFusPerCluster); });
    row("FP units / cluster",
        [](const auto &m) { return std::to_string(m.fpFusPerCluster); });
    row("MEM units / cluster",
        [](const auto &m) { return std::to_string(m.memFusPerCluster); });
    row("registers / cluster",
        [](const auto &m) { return std::to_string(m.regsPerCluster); });
    row("issue width",
        [](const auto &m) { return std::to_string(m.issueWidth()); });
    row("L1 / cluster (KB)", [](const auto &m) {
        return fmtDouble(m.cacheBytesPerCluster() / 1024.0, 1);
    });
    row("L1 total (KB)", [](const auto &m) {
        return std::to_string(m.totalCacheBytes / 1024);
    });
    row("line (B) / assoc / MSHR", [](const auto &m) {
        return std::to_string(m.cacheLineBytes) + " / " +
               std::to_string(m.cacheAssoc) + " / " +
               std::to_string(m.mshrEntries);
    });
    std::printf("%s\n", table.render().c_str());

    TextTable lat({"operation", "latency (cycles)"});
    lat.setTitle("Operation latencies (uniform across configurations)");
    const auto &m = configs[0];
    lat.addRow({"INT arith", std::to_string(m.latInt)});
    lat.addRow({"INT multiply", std::to_string(m.latIntMul)});
    lat.addRow({"INT divide", std::to_string(m.latIntDiv)});
    lat.addRow({"FP add/sub/mul/madd", std::to_string(m.latFp)});
    lat.addRow({"FP divide", std::to_string(m.latFpDiv)});
    lat.addRow({"load (local hit)", std::to_string(m.latCacheHit)});
    lat.addRow({"store", std::to_string(m.latStore)});
    lat.addRow({"main memory", std::to_string(m.latMainMemory)});
    lat.addRow({"miss latency (hit+bus+mem)",
                std::to_string(m.missLatency())});
    std::printf("%s\n", lat.render().c_str());
    return 0;
}
