#include "harness/experiment.hh"

#include <algorithm>

#include "common/logging.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"

namespace mvp::harness
{

std::string_view
schedKindName(SchedKind kind)
{
    switch (kind) {
      case SchedKind::Baseline: return "Baseline";
      case SchedKind::Rmca: return "RMCA";
    }
    mvp_panic("unknown SchedKind");
}

std::string
backendName(const RunConfig &config)
{
    if (!config.backend.empty())
        return config.backend;
    return config.sched == SchedKind::Rmca ? "rmca" : "baseline";
}

Workbench::Workbench(const std::vector<std::string> &only)
{
    // Any Table-1 preset provides the (shared) operation latencies.
    const MachineConfig lat_machine = makeUnified();
    for (auto &bench : workloads::allBenchmarks()) {
        if (!only.empty() &&
            std::find(only.begin(), only.end(), bench.name) == only.end())
            continue;
        for (auto &nest : bench.loops) {
            auto entry = std::make_unique<Entry>();
            entry->benchmark = bench.name;
            entry->nest = std::move(nest);
            entry->ddg = std::make_unique<ddg::Ddg>(
                ddg::Ddg::build(entry->nest, lat_machine));
            entry->cme = std::make_unique<cme::CmeAnalysis>(entry->nest);
            entries_.push_back(std::move(entry));
        }
    }
}

std::vector<std::string>
Workbench::benchmarks() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (std::find(out.begin(), out.end(), e->benchmark) == out.end())
            out.push_back(e->benchmark);
    return out;
}

LoopRunResult
runLoop(Workbench::Entry &entry, const RunConfig &config,
        sim::SimParams sim_params)
{
    LoopRunResult res;
    res.benchmark = entry.benchmark;
    res.loop = entry.nest.name();

    sched::SchedulerOptions opt;
    opt.missThreshold = config.threshold;
    opt.locality = entry.cme.get();
    opt.searchBudget = config.searchBudget;
    res.sched = sched::scheduleWithBackend(backendName(config),
                                           *entry.ddg, config.machine,
                                           opt);
    if (!res.sched.ok)
        mvp_fatal("scheduling failed for '", res.loop,
                  "': ", res.sched.error);

    const std::string err =
        res.sched.schedule.validate(*entry.ddg, config.machine);
    if (!err.empty())
        mvp_fatal("invalid schedule for '", res.loop, "':\n", err);

    res.sim = sim::simulateLoop(*entry.ddg, res.sched.schedule,
                                config.machine, sim_params);
    return res;
}

SuiteResult
runSuite(Workbench &bench, const RunConfig &config,
         sim::SimParams sim_params)
{
    SuiteResult suite;
    for (auto &entry : bench.entries()) {
        LoopRunResult r = runLoop(*entry, config, sim_params);
        suite.compute += r.sim.computeCycles;
        suite.stall += r.sim.stallCycles;
        auto &per = suite.perBenchmark[r.benchmark];
        per.first += r.sim.computeCycles;
        per.second += r.sim.stallCycles;
        suite.loops.push_back(std::move(r));
    }
    return suite;
}

} // namespace mvp::harness
