/**
 * @file
 * Loop transformations on the IR.
 *
 * The paper (§4.3) observes that a load with spatial locality has a
 * fractional miss ratio (e.g. 1/8 with 8 elements per line) and
 * suggests — without evaluating it — that "loop unrolling could be used
 * to generate multiple instances of the same instruction such that one
 * of them always misses and the others always hit", letting the
 * threshold mechanism schedule only the missing instance with the miss
 * latency. unrollInner() implements that transformation; the
 * ablation_unroll bench evaluates the suggestion.
 */

#ifndef MVP_IR_TRANSFORM_HH
#define MVP_IR_TRANSFORM_HH

#include "ir/loop.hh"

namespace mvp::ir
{

/**
 * Unroll the innermost loop of @p nest by @p factor.
 *
 * The innermost trip count must be divisible by the factor (fatal
 * otherwise — callers pick factors that divide their trips). Register
 * operands are remapped across copies: a distance-d operand of copy u
 * reads copy (u-d) mod factor at distance ceil((d-u)/factor). Memory
 * references gain the per-copy offset on every dimension that involves
 * the innermost induction variable.
 *
 * The result executes the same operations on the same addresses in the
 * same order as the original.
 */
LoopNest unrollInner(const LoopNest &nest, int factor);

} // namespace mvp::ir

#endif // MVP_IR_TRANSFORM_HH
