/**
 * @file
 * Transports for the scheduling service: a stdio session (framed
 * protocol on stdin/stdout — the piped/batch mode CI drives) and a
 * loopback TCP listener (one thread and one ServiceSession per
 * connection; batches from concurrent connections serialise inside
 * SchedService, whose cache and loop contexts they share).
 */

#ifndef MVP_SVC_SERVER_HH
#define MVP_SVC_SERVER_HH

#include <iosfwd>

#include "svc/service.hh"

namespace mvp::svc
{

/**
 * Run one protocol session over @p in / @p out until QUIT or EOF
 * (output is flushed after every input chunk, so a step-lock client
 * can converse). Queued requests left at EOF are served.
 */
void runStdioSession(SchedService &service, std::istream &in,
                     std::ostream &out);

/**
 * Listen on 127.0.0.1:@p port (0 = kernel-assigned; the chosen port
 * is announced on stdout as `listening on <port>`) and serve
 * connections until the process dies. Returns a nonzero exit code
 * only when the socket cannot be set up.
 */
int runTcpServer(SchedService &service, int port);

} // namespace mvp::svc

#endif // MVP_SVC_SERVER_HH
