/**
 * @file
 * Optimality-gap table: for every workload loop, the II of the RMCA
 * heuristic vs. the exact branch-and-bound backend, per clustered
 * machine — the repo's analogue of the heuristic-vs-exact comparisons
 * in the exact-modulo-scheduling literature (Roorda's SMT scheduler,
 * Tirelli et al.'s SAT mapper). Loops the exact search cannot settle
 * within its budget show as "gap unknown", and each table states the
 * unknown count and the budget in force.
 *
 * The study shards loops across a --jobs-sized pool (default: all
 * cores); the exact searches dominate its runtime and are mutually
 * independent, so it scales nearly linearly. Tables are byte-identical
 * at any job count.
 *
 * Usage: table_gap [--jobs N] [--locality NAME] [--time-budget-ms MS]
 *                  [--exact-backend NAME] [node_budget]
 *
 * The positional node_budget is the deprecated deterministic cap (0 =
 * uncapped); the wall clock is the primary budget.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/flags.hh"
#include "harness/gapstudy.hh"
#include "machine/presets.hh"

using namespace mvp;

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    harness::GapOptions options;
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    if (!locality.empty())
        options.locality = locality;
    options.timeBudgetMs = harness::parseTimeBudgetFlag(argc, argv);
    const std::string backend =
        harness::parseExactBackendFlag(argc, argv);
    if (!backend.empty())
        options.exactBackend = backend;
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--locality",
                                 "--time-budget-ms",
                                 "--exact-backend", "--log-level",
                                 "--metrics", "--trace"});
    if (argc > 1)
        options.nodeBudget = std::atoll(argv[1]);

    harness::Workbench bench;
    for (int clusters : {2, 4}) {
        const MachineConfig machine = makeConfig(clusters);
        std::printf("=== %s ===\n\n", machine.summary().c_str());
        const auto study =
            harness::runGapStudy(bench, machine, options, driver);
        std::printf("%s\n", harness::formatGapTable(study).c_str());
    }
    return 0;
}
