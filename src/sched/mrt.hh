/**
 * @file
 * Modulo reservation table: tracks functional-unit slots per cluster and
 * register-bus occupancy at each of the II modulo slots. Buses are
 * ordinary resources (§2.1): a transfer holds its bus for the entire bus
 * latency.
 */

#ifndef MVP_SCHED_MRT_HH
#define MVP_SCHED_MRT_HH

#include <vector>

#include "common/types.hh"
#include "ir/opcode.hh"
#include "machine/machine.hh"

namespace mvp::sched
{

/** Bus index used when the machine has unbounded register buses. */
constexpr int BUS_UNBOUNDED = -1;

/**
 * Reservation table for one II attempt.
 */
class Mrt
{
  public:
    Mrt(const MachineConfig &machine, Cycle ii);

    /** The II this table was built for. */
    Cycle ii() const { return ii_; }

    /** True when a @p type slot is free at flat cycle @p time. */
    bool fuFree(Cycle time, ClusterId cluster, ir::FuType type) const;

    /** Reserve a @p type slot (must be free). */
    void placeFu(Cycle time, ClusterId cluster, ir::FuType type);

    /** Release a @p type slot (must be occupied). */
    void removeFu(Cycle time, ClusterId cluster, ir::FuType type);

    /** Number of @p type ops currently placed in @p cluster. */
    int fuLoad(ClusterId cluster, ir::FuType type) const;

    /**
     * Find a register bus free for the whole window [start, start +
     * busLatency). Returns the bus index, BUS_UNBOUNDED for unbounded-bus
     * machines, or -2 when no bus is free (including the structural case
     * busLatency > II, where a transfer would overlap its own next
     * instance).
     */
    int findFreeBus(Cycle start) const;

    /** Reserve @p bus over [start, start + busLatency). */
    void reserveBus(int bus, Cycle start);

    /** Release @p bus over [start, start + busLatency). */
    void releaseBus(int bus, Cycle start);

    /** Total bus-slot occupancy (for stats). */
    int busSlotsUsed() const;

  private:
    std::size_t fuIndex(Cycle time, ClusterId cluster,
                        ir::FuType type) const;

    const MachineConfig &machine_;
    Cycle ii_;
    std::vector<int> fu_used_;       ///< [slot][cluster][type] counts
    std::vector<int> fu_load_;       ///< [cluster][type] totals
    std::vector<char> bus_busy_;     ///< [slot][bus]
};

} // namespace mvp::sched

#endif // MVP_SCHED_MRT_HH
