/**
 * @file
 * Exact trace-driven locality oracle.
 *
 * Simulates the complete access stream of a reference set through one
 * cache (LRU within sets) and reports exact per-instruction miss ratios.
 * Serves two purposes: property-testing the CME sampling solver, and
 * acting as a drop-in LocalityAnalysis for the scheduler when exactness
 * matters more than analysis speed.
 *
 * Two structural facts keep the oracle fast enough for scheduler use:
 *
 *  1. Access streams come from the shared StreamCache (cme/stream.hh),
 *     so a simulation reads one materialised line per access instead of
 *     deriving IV vectors and affine addresses.
 *  2. Simulations are *incremental across set growth*. Cache sets of an
 *     LRU cache are independent, so every memoised simulation keeps a
 *     per-cache-set checkpoint (final LRU way states plus per-op miss
 *     counters per set). Simulating S ∪ {op} — exactly how the
 *     scheduler's Attempt::addedMisses grows cluster sets one op at a
 *     time — copies the checkpoint for every cache set op never
 *     touches and re-simulates only the touched sets from the bucketed
 *     stream view, bit-identically to a from-scratch run.
 *
 * Thread-safe: concurrent queries share the memo under a mutex
 * (simulation itself runs unlocked; a race on one fresh set costs a
 * redundant identical simulation, never a wrong answer).
 */

#ifndef MVP_CME_ORACLE_HH
#define MVP_CME_ORACLE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cme/locality.hh"
#include "cme/setkey.hh"
#include "cme/stream.hh"

namespace mvp::cme
{

/**
 * One exported oracle simulation: the query key (geometry + canonical
 * set), the aggregate answer (per-position miss totals + point count),
 * and the per-cache-set checkpoint when it was retained (empty vectors
 * otherwise). `misses[i]` is the total for `set[i]`, so the flattened
 * form is deterministic where the in-memory unordered_map is not.
 */
struct OracleMemoEntry
{
    CacheGeom geom;
    std::vector<OpId> set;
    std::vector<std::int64_t> misses;   ///< aligned with `set`
    std::int64_t points = 0;
    std::vector<std::int64_t> perSetMisses;   ///< checkpoint (may be empty)
    std::vector<std::int64_t> tags;           ///< checkpoint (may be empty)
};

/** Exact cache-behaviour oracle bound to one loop nest. */
class CacheOracle : public LocalityAnalysis
{
  public:
    /** Default bound on retained checkpoint bytes (see constructor). */
    static constexpr std::size_t DEFAULT_CHECKPOINT_BYTES = 64u << 20;

    /**
     * Bind to @p nest, drawing access streams from @p streams (one is
     * created privately when null; pass the loop's shared cache to
     * amortise stream materialisation across analyses).
     *
     * @p checkpoint_byte_cap bounds the memory the memo spends on
     * per-cache-set checkpoints: once the cap is reached, further
     * simulations are memoised with their aggregate counts only, so
     * they answer queries but cannot serve as extension parents.
     * Checkpoints affect *speed*, never values — answers stay
     * bit-identical at any cap, including 0.
     */
    explicit CacheOracle(
        const ir::LoopNest &nest,
        std::shared_ptr<StreamCache> streams = nullptr,
        std::size_t checkpoint_byte_cap = DEFAULT_CHECKPOINT_BYTES);

    const ir::LoopNest &loop() const override { return nest_; }

    double missesPerIteration(const std::vector<OpId> &set,
                              const CacheGeom &geom) override;

    double missRatio(const std::vector<OpId> &set, OpId op,
                     const CacheGeom &geom) override;

    /** Exact miss count of every op in @p set over the full nest. */
    std::unordered_map<OpId, std::int64_t>
    missCounts(const std::vector<OpId> &set, const CacheGeom &geom);

    /** The shared access-stream cache this oracle draws from. */
    const std::shared_ptr<StreamCache> &streams() const
    {
        return streams_;
    }

    /** @name Simulation-path counters (tests assert the incremental
     * path actually runs; values are monotone and may transiently
     * overcount under racing identical queries). */
    /// @{
    std::size_t fullSimulations() const
    {
        return full_.load(std::memory_order_relaxed);
    }
    std::size_t incrementalExtensions() const
    {
        return incremental_.load(std::memory_order_relaxed);
    }
    /// @}

    /**
     * Snapshot every memoised simulation (checkpoints included),
     * deterministically sorted by (geometry, set) so identical oracle
     * states export byte-identical warm-state files.
     */
    std::vector<OracleMemoEntry> exportMemo() const;

    /**
     * Publish @p entries into the memo (keep-the-winner: keys already
     * memoised are dropped). Checkpoints count against the byte cap
     * exactly as freshly simulated ones do; entries whose checkpoint
     * shape does not match the geometry are kept aggregates-only.
     * Entries must come from an exportMemo() of an oracle of the same
     * nest — the simulation is deterministic, so imported and
     * recomputed values coincide.
     */
    void importMemo(const std::vector<OracleMemoEntry> &entries);

  private:
    /**
     * One memoised simulation. `misses`/`points` answer the public
     * queries; `ops`, `perSetMisses` and `tags` form the per-cache-set
     * checkpoint that incremental extension consumes (dropped for
     * results memoised past the checkpoint byte cap). Immutable once
     * published in the memo.
     */
    struct SimResult
    {
        std::unordered_map<OpId, std::int64_t> misses;
        std::int64_t points = 0;

        std::vector<OpId> ops;   ///< canonical set simulated
        /** Miss counters, [cache set * ops.size() + set position]. */
        std::vector<std::int64_t> perSetMisses;
        /** Final LRU state, [cache set * assoc + way], MRU first. */
        std::vector<std::int64_t> tags;

        /** True when the checkpoint was retained (extension parent). */
        bool hasCheckpoint() const { return !perSetMisses.empty(); }
    };

    /**
     * @p set must be canonical (sorted, duplicate-free). The returned
     * reference stays valid for the oracle's lifetime (unordered_map
     * references survive rehash, and memoised results are never
     * mutated).
     */
    const SimResult &simulate(const std::vector<OpId> &set,
                              const CacheGeom &geom);

    /** Full chronological simulation over the cached line streams. */
    void simulateFresh(const std::vector<OpId> &set,
                       const CacheGeom &geom, SimResult &res);

    /**
     * Extend @p parent (the simulation of @p set minus the op at
     * @p new_pos) by that op: copy untouched cache sets, re-simulate
     * touched ones from the bucketed streams.
     */
    void simulateExtended(const std::vector<OpId> &set,
                          std::size_t new_pos, const SimResult &parent,
                          const CacheGeom &geom, SimResult &res);

    const ir::LoopNest &nest_;
    std::shared_ptr<StreamCache> streams_;
    std::size_t checkpointByteCap_;
    mutable std::mutex mu_;   ///< guards memo_ and checkpointBytes_
    std::unordered_map<detail::QueryKey, SimResult, detail::QueryHash,
                       detail::QueryEq>
        memo_;
    std::size_t checkpointBytes_ = 0;   ///< retained checkpoint bytes
    std::atomic<std::size_t> full_{0};
    std::atomic<std::size_t> incremental_{0};
};

} // namespace mvp::cme

#endif // MVP_CME_ORACLE_HH
