/**
 * @file
 * The scheduling service as a long-running process.
 *
 * Default mode speaks the framed protocol (svc/session.hh) on
 * stdin/stdout — pipe a request stream in, read the replies; with
 * --listen it serves the same protocol on loopback TCP instead, one
 * session per connection sharing one cache and worker pool.
 *
 * Usage: mvp_served [--jobs N] [--state FILE] [--listen PORT]
 *                   [--log-level L] [--metrics[=F]] [--trace=F]
 *
 * --state FILE loads warm state (schedule cache + locality memos)
 * from FILE at startup when it exists — a missing file is a cold
 * start, not an error — and, in stdio mode, saves back to FILE when
 * the session ends. TCP sessions persist on demand via the protocol's
 * SAVE/LOAD frames (there is no clean shutdown hook on a listener
 * that runs until killed).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "harness/flags.hh"
#include "svc/server.hh"
#include "svc/service.hh"

using namespace mvp;

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    const int jobs = harness::parseJobsFlag(argc, argv);
    const std::string state =
        harness::stripValueFlag(argc, argv, "--state", "state file");
    const std::string listen =
        harness::stripValueFlag(argc, argv, "--listen", "TCP port");
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--state", "--listen",
                                 "--log-level", "--metrics",
                                 "--trace"});

    svc::SchedService service(jobs);

    if (!state.empty()) {
        // Status goes to stderr: stdout is the reply stream in stdio
        // mode, and warm and cold runs must emit identical bytes
        // there.
        std::string err;
        if (service.loadStateFile(state, &err))
            std::fprintf(stderr, "svc: warm state loaded from '%s'\n",
                         state.c_str());
        else
            std::fprintf(stderr, "svc: cold start (%s)\n",
                         err.c_str());
    }

    if (!listen.empty()) {
        char *end = nullptr;
        const long port = std::strtol(listen.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || port < 0 ||
            port > 65535)
            mvp_fatal("--listen wants a TCP port, got '", listen,
                      "'");
        return svc::runTcpServer(service, static_cast<int>(port));
    }

    svc::runStdioSession(service, std::cin, std::cout);

    if (!state.empty()) {
        std::string err;
        if (!service.saveStateFile(state, &err))
            mvp_warn("svc: warm state not saved: ", err);
    }
    return 0;
}
