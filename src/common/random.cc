#include "common/random.hh"

#include "common/logging.hh"

namespace mvp
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    mvp_assert(bound > 0, "nextBounded requires a positive bound");
    // Lemire's nearly-divisionless method with rejection.
    __uint128_t m = static_cast<__uint128_t>(next64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            m = static_cast<__uint128_t>(next64()) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    mvp_assert(lo <= hi, "nextRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace mvp
