/**
 * @file
 * Exact modulo scheduling by branch and bound.
 *
 * The search enumerates, at a fixed II, every (cluster, cycle) placement
 * of every operation over the same candidate windows the heuristic
 * scheduler scans (SMS direction rule, at most II slots per op, with
 * cross-cluster transfers booked earliest-fit on the register buses),
 * backtracking through the modulo reservation table. The II iterates
 * upward from MII until a feasible schedule exists; the first feasible
 * II is minimal over the enumerated placement space, which contains
 * every schedule the heuristic family (baseline and RMCA, any
 * threshold) can emit — so the reported heuristic-vs-exact II gap is
 * exact for this scheduler family.
 *
 * Certificate semantics: a schedule found at II == MII is optimal in
 * the absolute sense (the resource/recurrence lower bound is the
 * certificate). When lower IIs were instead ruled out by exhausting
 * the search (refutation lifting), the provenOptimal flag is relative
 * to the enumerated placement space — the compact per-op windows and
 * earliest-fit transfer rule could in principle exclude an exotic
 * schedule (e.g. one that spreads lifetimes across extra stages to
 * duck under the register limit), so such a certificate proves "no
 * scheduler of this family can do better", not absolute infeasibility
 * below.
 *
 * Pruning bounds, reused from the heuristic stack:
 *  - MII = max(ResMII, RecMII) floors the II iteration (mii.cc);
 *  - per-class FU counts prune partial schedules whose unplaced ops no
 *    longer fit the remaining reservation-table slots (mrt.cc);
 *  - dependence windows (early/late from placed neighbours) cut the
 *    candidate cycles per op to at most II;
 *  - bus saturation fails a candidate before it is committed;
 *  - register pressure (lifetimes.cc) rejects complete schedules whose
 *    MaxLive exceeds a cluster's register file.
 *
 * Once a feasible schedule is found at the minimal II, the remaining
 * node budget is spent minimising the register-pressure tiebreak
 * (summed MaxLive over clusters). A node/time budget degrades the whole
 * search gracefully: on exhaustion the best schedule so far is returned
 * with provenOptimal == false ("gap unknown").
 */

#ifndef MVP_SCHED_EXACT_BNB_HH
#define MVP_SCHED_EXACT_BNB_HH

#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/scheduler.hh"

namespace mvp::sched::exact
{

/** Branch-and-bound knobs. */
struct BnbOptions
{
    /** Give up (fail the loop) beyond this II. */
    Cycle maxII = 512;

    /**
     * Candidate placements evaluated per II attempt before that
     * attempt is abandoned (neither feasible nor refuted). A few
     * abandoned attempts in a row fail the whole search.
     */
    std::int64_t nodeBudget = DEFAULT_SEARCH_BUDGET;

    /**
     * After the minimal II is secured, keep searching that II for the
     * schedule with the smallest summed MaxLive (the tiebreak of the
     * exact-scheduling literature). Off = stop at the first feasible
     * schedule.
     */
    bool tiebreakPressure = true;
};

/**
 * Schedule @p graph exactly, drawing ordering/lifetime scratch from
 * @p ctx. Never throws; failure (no feasible II within maxII, or a
 * budget exhausted before any schedule was found) is reported in the
 * result. The stats fields filled in: resMii, recMii, mii, iiAttempts,
 * comms, provenOptimal, iiLowerBound, pressureOptimal, searchNodes,
 * budgetExhausted.
 *
 * Budget accounting is interleaving-independent: every child the
 * search considers is charged exactly once (see Searcher::chargeNode),
 * so the node count at which "gap unknown" degradation triggers is a
 * pure function of (loop, machine, options) — identical whether loops
 * are swept serially or sharded across a thread pool.
 */
ScheduleResult scheduleExact(const ddg::Ddg &graph,
                             const MachineConfig &machine,
                             const BnbOptions &options,
                             SchedContext &ctx);

/** scheduleExact with a transient context. */
ScheduleResult scheduleExact(const ddg::Ddg &graph,
                             const MachineConfig &machine,
                             const BnbOptions &options = {});

} // namespace mvp::sched::exact

#endif // MVP_SCHED_EXACT_BNB_HH
