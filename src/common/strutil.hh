/**
 * @file
 * Small string formatting helpers shared by reports and dumps.
 */

#ifndef MVP_COMMON_STRUTIL_HH
#define MVP_COMMON_STRUTIL_HH

#include <string>
#include <vector>

namespace mvp
{

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join the items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** Left-pad or truncate to exactly @p width columns. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad or truncate to exactly @p width columns. */
std::string padRight(const std::string &s, std::size_t width);

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Format a ratio as a percentage string, e.g. 0.25 -> "25.0%". */
std::string fmtPercent(double ratio, int digits = 1);

} // namespace mvp

#endif // MVP_COMMON_STRUTIL_HH
