/**
 * @file
 * swim-like suite: shallow-water equations on a 2D grid.
 *
 * 102.swim iterates three stencil sweeps (CALC1/CALC2/CALC3) over the
 * velocity fields U/V, the pressure P and derived fields CU/CV/Z/H.
 * Each sweep reads small neighbourhoods of several distinct arrays, so
 * cluster assignment decides whether uniformly generated groups keep
 * their group reuse or thrash: U/V and P/Z pairs are placed 8 KB apart.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t N_I = 16;
constexpr std::int64_t N_J = 62;
constexpr std::int64_t DIM_I = N_I + 2;
constexpr std::int64_t DIM_J = N_J + 2;
constexpr Addr BASE = 0x80000;
constexpr Addr STRIDE_8K = 0x2000;

AffineExpr
at(std::size_t depth, std::int64_t ofs)
{
    return affineVar(depth, 1, ofs);
}

/** CALC1: CU, CV, Z from U, V, P neighbourhoods. */
LoopNest
loopCalc1()
{
    LoopNestBuilder b("swim.calc1");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto U = b.arrayAt("U", {DIM_I, DIM_J}, BASE);
    const auto V = b.arrayAt("V", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto P = b.arrayAt("P", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);
    const auto CU = b.arrayAt("CU", {DIM_I, DIM_J}, BASE + 3 * STRIDE_8K);
    const auto CV = b.arrayAt("CV", {DIM_I, DIM_J}, BASE + 4 * STRIDE_8K);

    const auto p0 = b.load(P, {at(0, 0), at(1, 0)}, "p0");
    const auto pe = b.load(P, {at(0, 0), at(1, 1)}, "pe");
    const auto pn = b.load(P, {at(0, 1), at(1, 0)}, "pn");
    const auto u0 = b.load(U, {at(0, 0), at(1, 1)}, "u0");
    const auto v0 = b.load(V, {at(0, 1), at(1, 0)}, "v0");

    const auto psum_e = b.op(Opcode::FAdd, {use(pe), use(p0)}, "pse");
    const auto psum_n = b.op(Opcode::FAdd, {use(pn), use(p0)}, "psn");
    const auto cu = b.op(Opcode::FMul, {use(psum_e), use(u0)}, "cuv");
    const auto cv = b.op(Opcode::FMul, {use(psum_n), use(v0)}, "cvv");
    b.store(CU, {at(0, 0), at(1, 1)}, use(cu), "scu");
    b.store(CV, {at(0, 1), at(1, 0)}, use(cv), "scv");
    return b.build();
}

/** CALC1 second half: vorticity Z and height H. */
LoopNest
loopZH()
{
    LoopNestBuilder b("swim.zh");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto U = b.arrayAt("U", {DIM_I, DIM_J}, BASE);
    const auto V = b.arrayAt("V", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto P = b.arrayAt("P", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);
    const auto Z = b.arrayAt("Z", {DIM_I, DIM_J}, BASE + 5 * STRIDE_8K + 0x1300);
    const auto H = b.arrayAt("H", {DIM_I, DIM_J}, BASE + 6 * STRIDE_8K + 0x17C0);

    const auto un = b.load(U, {at(0, 1), at(1, 1)}, "un");
    const auto u0 = b.load(U, {at(0, 0), at(1, 1)}, "u0");
    const auto ve = b.load(V, {at(0, 1), at(1, 1)}, "ve");
    const auto v0 = b.load(V, {at(0, 1), at(1, 0)}, "v0");
    const auto p0 = b.load(P, {at(0, 0), at(1, 0)}, "p0");

    const auto du = b.op(Opcode::FSub, {use(un), use(u0)}, "du");
    const auto dv = b.op(Opcode::FSub, {use(ve), use(v0)}, "dv");
    const auto num = b.op(Opcode::FSub, {use(dv), use(du)}, "num");
    const auto z = b.op(Opcode::FMul, {use(num), liveIn()}, "zv");
    const auto uu = b.op(Opcode::FMul, {use(u0), use(u0)}, "uu");
    const auto ke = b.op(Opcode::FMadd, {use(v0), use(v0), use(uu)}, "ke");
    const auto h = b.op(Opcode::FMadd, {use(ke), liveIn(), use(p0)}, "hv");
    b.store(Z, {at(0, 1), at(1, 1)}, use(z), "sz");
    b.store(H, {at(0, 0), at(1, 0)}, use(h), "sh");
    return b.build();
}

/** CALC2: time-step update of UNEW from Z/CV/H neighbourhoods. */
LoopNest
loopCalc2()
{
    LoopNestBuilder b("swim.calc2");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto UOLD =
        b.arrayAt("UOLD", {DIM_I, DIM_J}, BASE + 7 * STRIDE_8K + 0x1900);
    const auto UNEW =
        b.arrayAt("UNEW", {DIM_I, DIM_J}, BASE + 8 * STRIDE_8K + 0x1A80);
    const auto CV = b.arrayAt("CV", {DIM_I, DIM_J}, BASE + 4 * STRIDE_8K);
    const auto Z = b.arrayAt("Z", {DIM_I, DIM_J}, BASE + 5 * STRIDE_8K + 0x1300);
    const auto H = b.arrayAt("H", {DIM_I, DIM_J}, BASE + 6 * STRIDE_8K + 0x17C0);

    const auto z0 = b.load(Z, {at(0, 1), at(1, 1)}, "z0");
    const auto zs = b.load(Z, {at(0, 0), at(1, 1)}, "zs");
    const auto cv0 = b.load(CV, {at(0, 1), at(1, 0)}, "cv0");
    const auto cv1 = b.load(CV, {at(0, 1), at(1, 1)}, "cv1");
    const auto he = b.load(H, {at(0, 0), at(1, 1)}, "he");
    const auto h0 = b.load(H, {at(0, 0), at(1, 0)}, "h0");
    const auto uold = b.load(UOLD, {at(0, 0), at(1, 1)}, "uold");

    const auto zsum = b.op(Opcode::FAdd, {use(z0), use(zs)}, "zsum");
    const auto cvs = b.op(Opcode::FAdd, {use(cv0), use(cv1)}, "cvs");
    const auto adv = b.op(Opcode::FMul, {use(zsum), use(cvs)}, "adv");
    const auto dh = b.op(Opcode::FSub, {use(he), use(h0)}, "dh");
    const auto rhs = b.op(Opcode::FMadd, {use(dh), liveIn(), use(adv)},
                          "rhs");
    const auto unew = b.op(Opcode::FMadd, {use(rhs), liveIn(), use(uold)},
                           "unewv");
    b.store(UNEW, {at(0, 0), at(1, 1)}, use(unew), "sunew");
    return b.build();
}

/** CALC3: smoothing filter with a register-carried recurrence. */
LoopNest
loopCalc3()
{
    LoopNestBuilder b("swim.calc3");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto UOLD =
        b.arrayAt("UOLD", {DIM_I, DIM_J}, BASE + 7 * STRIDE_8K + 0x1900);
    const auto UNEW =
        b.arrayAt("UNEW", {DIM_I, DIM_J}, BASE + 8 * STRIDE_8K + 0x1A80);
    const auto U = b.arrayAt("U", {DIM_I, DIM_J}, BASE);

    const auto u = b.load(U, {at(0, 0), at(1, 0)}, "u");
    const auto unew = b.load(UNEW, {at(0, 0), at(1, 0)}, "unew");
    const auto uold = b.load(UOLD, {at(0, 0), at(1, 0)}, "uold");

    // Asselin filter: uold' = u + alpha*(unew - 2u + uold), and a
    // running smoothness estimate carried across iterations.
    const auto twou = b.op(Opcode::FAdd, {use(u), use(u)}, "twou");
    const auto bracket = b.op(Opcode::FSub, {use(unew), use(twou)}, "br");
    const auto brk2 = b.op(Opcode::FAdd, {use(bracket), use(uold)},
                           "brk2");
    const auto filt =
        b.op(Opcode::FMadd, {use(brk2), liveIn(), use(u)}, "filt");
    b.op(Opcode::FAdd, {use(filt), use(b.nextOpId(), 1)}, "smooth");
    b.store(UOLD, {at(0, 0), at(1, 0)}, use(filt), "suold");
    return b.build();
}

} // namespace

Benchmark
makeSwim()
{
    Benchmark bench;
    bench.name = "swim";
    bench.loops.push_back(loopCalc1());
    bench.loops.push_back(loopZH());
    bench.loops.push_back(loopCalc2());
    bench.loops.push_back(loopCalc3());
    return bench;
}

} // namespace mvp::workloads
