/**
 * @file
 * tomcatv-like suite: vectorised mesh generation.
 *
 * The SPECfp95 program 101.tomcatv spends its time in 2D stencil loops
 * over the mesh coordinate arrays X/Y and the residual arrays RX/RY.
 * The loops below reproduce the characteristic patterns: 4-point
 * neighbour stencils on two coordinate arrays that the scheduler should
 * split across clusters (X and Y are laid out 8 KB apart and ping-pong
 * in every direct-mapped configuration when interleaved), residual
 * accumulation with a reduction recurrence, and an over-relaxation
 * update that loads and stores the same array.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t N_I = 18;    // outer rows
constexpr std::int64_t N_J = 62;    // inner columns
constexpr std::int64_t DIM_I = N_I + 2;
constexpr std::int64_t DIM_J = N_J + 2;
// 20 * 64 * 4B = 5 KB per array; bases 8 KB apart so X/Y (and RX/RY)
// collide in the 2 KB, 4 KB and 8 KB direct-mapped caches alike.
constexpr Addr BASE = 0x40000;
constexpr Addr STRIDE_8K = 0x2000;

AffineExpr
at(std::size_t depth, std::int64_t ofs)
{
    return affineVar(depth, 1, ofs);
}

/** Stencil residual: RX/RY from 4-neighbour differences of X/Y. */
LoopNest
loopRxRy()
{
    LoopNestBuilder b("tomcatv.rxry");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto X = b.arrayAt("X", {DIM_I, DIM_J}, BASE);
    const auto Y = b.arrayAt("Y", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto RX = b.arrayAt("RX", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);
    const auto RY = b.arrayAt("RY", {DIM_I, DIM_J}, BASE + 3 * STRIDE_8K + 0x980);

    const auto xe = b.load(X, {at(0, 0), at(1, 1)}, "xe");
    const auto xw = b.load(X, {at(0, 0), at(1, -1)}, "xw");
    const auto xn = b.load(X, {at(0, 1), at(1, 0)}, "xn");
    const auto xs = b.load(X, {at(0, -1), at(1, 0)}, "xs");
    const auto ye = b.load(Y, {at(0, 0), at(1, 1)}, "ye");
    const auto yw = b.load(Y, {at(0, 0), at(1, -1)}, "yw");
    const auto yn = b.load(Y, {at(0, 1), at(1, 0)}, "yn");
    const auto ys = b.load(Y, {at(0, -1), at(1, 0)}, "ys");

    const auto dxj = b.op(Opcode::FSub, {use(xe), use(xw)}, "dxj");
    const auto dxi = b.op(Opcode::FSub, {use(xn), use(xs)}, "dxi");
    const auto dyj = b.op(Opcode::FSub, {use(ye), use(yw)}, "dyj");
    const auto dyi = b.op(Opcode::FSub, {use(yn), use(ys)}, "dyi");
    const auto a = b.op(Opcode::FMadd,
                        {use(dxj), use(dxj), use(dyj)}, "a");
    const auto bb = b.op(Opcode::FMadd,
                         {use(dxi), use(dxi), use(dyi)}, "b");
    const auto rx = b.op(Opcode::FMul, {use(a), use(dxi)}, "rxv");
    const auto ry = b.op(Opcode::FMul, {use(bb), use(dyi)}, "ryv");
    b.store(RX, {at(0, 0), at(1, 0)}, use(rx), "srx");
    b.store(RY, {at(0, 0), at(1, 0)}, use(ry), "sry");
    return b.build();
}

/** Residual norm: reduction over RX/RY with an FAdd recurrence. */
LoopNest
loopResid()
{
    LoopNestBuilder b("tomcatv.resid");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto RX = b.arrayAt("RX", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);
    const auto RY = b.arrayAt("RY", {DIM_I, DIM_J}, BASE + 3 * STRIDE_8K + 0x980);

    const auto rx = b.load(RX, {at(0, 0), at(1, 0)}, "rx");
    const auto ry = b.load(RY, {at(0, 0), at(1, 0)}, "ry");
    const auto rx2 = b.op(Opcode::FMul, {use(rx), use(rx)}, "rx2");
    const auto ry2 = b.op(Opcode::FMul, {use(ry), use(ry)}, "ry2");
    const auto sum = b.op(Opcode::FAdd, {use(rx2), use(ry2)}, "sum");
    // Running reduction: acc += sum (loop-carried distance 1).
    b.op(Opcode::FAdd, {use(sum), use(b.nextOpId(), 1)}, "acc");
    return b.build();
}

/** SOR update: X += omega * RX, Y += omega * RY (read-modify-write). */
LoopNest
loopRelax()
{
    LoopNestBuilder b("tomcatv.relax");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto X = b.arrayAt("X", {DIM_I, DIM_J}, BASE);
    const auto Y = b.arrayAt("Y", {DIM_I, DIM_J}, BASE + STRIDE_8K);
    const auto RX = b.arrayAt("RX", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);
    const auto RY = b.arrayAt("RY", {DIM_I, DIM_J}, BASE + 3 * STRIDE_8K + 0x980);

    const auto x = b.load(X, {at(0, 0), at(1, 0)}, "x");
    const auto rx = b.load(RX, {at(0, 0), at(1, 0)}, "rx");
    const auto y = b.load(Y, {at(0, 0), at(1, 0)}, "y");
    const auto ry = b.load(RY, {at(0, 0), at(1, 0)}, "ry");
    const auto nx = b.op(Opcode::FMadd, {use(rx), liveIn(), use(x)}, "nx");
    const auto ny = b.op(Opcode::FMadd, {use(ry), liveIn(), use(y)}, "ny");
    b.store(X, {at(0, 0), at(1, 0)}, use(nx), "sx");
    b.store(Y, {at(0, 0), at(1, 0)}, use(ny), "sy");
    return b.build();
}

/**
 * Tridiagonal forward elimination along a row: the D recurrence of
 * tomcatv's solver (register-carried, distance 1).
 */
LoopNest
loopSolve()
{
    LoopNestBuilder b("tomcatv.solve");
    b.loop("i", 1, 1 + N_I);
    b.loop("j", 1, 1 + N_J);
    const auto AA = b.arrayAt("AA", {DIM_I, DIM_J}, BASE + 4 * STRIDE_8K + 0xE40);
    const auto DD = b.arrayAt("DD", {DIM_I, DIM_J}, BASE + 5 * STRIDE_8K + 0x1300);
    const auto RX = b.arrayAt("RX", {DIM_I, DIM_J}, BASE + 2 * STRIDE_8K);

    const auto aa = b.load(AA, {at(0, 0), at(1, 0)}, "aa");
    const auto rx = b.load(RX, {at(0, 0), at(1, 0)}, "rx");
    // r = aa * d(j-1); d = rx - r  (d carried across iterations).
    const auto r =
        b.op(Opcode::FMul, {use(aa), use(b.nextOpId() + 1, 1)}, "r");
    const auto d = b.op(Opcode::FSub, {use(rx), use(r)}, "d");
    b.store(DD, {at(0, 0), at(1, 0)}, use(d), "sd");
    return b.build();
}

} // namespace

Benchmark
makeTomcatv()
{
    Benchmark bench;
    bench.name = "tomcatv";
    bench.loops.push_back(loopRxRy());
    bench.loops.push_back(loopResid());
    bench.loops.push_back(loopRelax());
    bench.loops.push_back(loopSolve());
    return bench;
}

} // namespace mvp::workloads
