/**
 * @file
 * Tests for the machine model: Table-1 presets, latencies, cache
 * geometry and configuration validation.
 */

#include <gtest/gtest.h>

#include "machine/presets.hh"

namespace mvp
{
namespace
{

TEST(Presets, Table1Unified)
{
    const auto m = makeUnified();
    m.validate();
    EXPECT_EQ(m.nClusters, 1);
    EXPECT_EQ(m.intFusPerCluster, 4);
    EXPECT_EQ(m.fpFusPerCluster, 4);
    EXPECT_EQ(m.memFusPerCluster, 4);
    EXPECT_EQ(m.regsPerCluster, 64);
    EXPECT_EQ(m.issueWidth(), 12);
    EXPECT_FALSE(m.isClustered());
    EXPECT_EQ(m.cacheBytesPerCluster(), 8192);
}

TEST(Presets, Table1TwoCluster)
{
    const auto m = makeTwoCluster();
    m.validate();
    EXPECT_EQ(m.nClusters, 2);
    EXPECT_EQ(m.intFusPerCluster, 2);
    EXPECT_EQ(m.regsPerCluster, 32);
    EXPECT_EQ(m.issueWidth(), 12);
    EXPECT_EQ(m.cacheBytesPerCluster(), 4096);
    EXPECT_EQ(m.clusterCacheGeom().numSets(), 128);
}

TEST(Presets, Table1FourCluster)
{
    const auto m = makeFourCluster();
    m.validate();
    EXPECT_EQ(m.nClusters, 4);
    EXPECT_EQ(m.intFusPerCluster, 1);
    EXPECT_EQ(m.regsPerCluster, 16);
    EXPECT_EQ(m.issueWidth(), 12);
    EXPECT_EQ(m.cacheBytesPerCluster(), 2048);
}

TEST(Presets, AllConfigsShareTotalResources)
{
    // 12-way issue, 8KB L1 and equal FU totals in all three (Table 1).
    for (int c : {1, 2, 4}) {
        const auto m = makeConfig(c);
        EXPECT_EQ(m.issueWidth(), 12) << c;
        EXPECT_EQ(m.totalCacheBytes, 8192) << c;
        EXPECT_EQ(m.totalFus(ir::FuType::Int), 4) << c;
        EXPECT_EQ(m.totalFus(ir::FuType::Fp), 4) << c;
        EXPECT_EQ(m.totalFus(ir::FuType::Mem), 4) << c;
    }
}

TEST(Presets, BusHelpers)
{
    const auto unb = withUnboundedBuses(makeTwoCluster(), 2, 4);
    EXPECT_TRUE(unb.unboundedRegBuses);
    EXPECT_TRUE(unb.unboundedMemBuses);
    EXPECT_EQ(unb.regBusLatency, 2);
    EXPECT_EQ(unb.memBusLatency, 4);

    const auto lim = withLimitedBuses(makeFourCluster(), 2, 4);
    EXPECT_FALSE(lim.unboundedRegBuses);
    EXPECT_EQ(lim.nRegBuses, 2);
    EXPECT_EQ(lim.regBusLatency, 1);
    EXPECT_EQ(lim.nMemBuses, 2);
    EXPECT_EQ(lim.memBusLatency, 4);
}

TEST(Latency, OpLatencies)
{
    const auto m = makeUnified();
    EXPECT_EQ(m.opLatency(ir::Opcode::IAdd), m.latInt);
    EXPECT_EQ(m.opLatency(ir::Opcode::IMul), m.latIntMul);
    EXPECT_EQ(m.opLatency(ir::Opcode::FAdd), m.latFp);
    EXPECT_EQ(m.opLatency(ir::Opcode::FMadd), m.latFp);
    EXPECT_EQ(m.opLatency(ir::Opcode::FDiv), m.latFpDiv);
    EXPECT_EQ(m.opLatency(ir::Opcode::Load), m.latCacheHit);
    EXPECT_EQ(m.opLatency(ir::Opcode::Store), m.latStore);
}

TEST(Latency, MissLatencyDecomposition)
{
    auto m = makeTwoCluster();
    m.memBusLatency = 4;
    // LAT_cache + LAT_membus + LAT_mainmemory (§4.3).
    EXPECT_EQ(m.missLatency(), 2 + 4 + 10);
}

TEST(CacheGeom, SetMapping)
{
    const CacheGeom g{4096, 32, 1};
    EXPECT_EQ(g.numSets(), 128);
    EXPECT_EQ(g.lineOf(0), 0);
    EXPECT_EQ(g.lineOf(31), 0);
    EXPECT_EQ(g.lineOf(32), 1);
    EXPECT_EQ(g.setOf(0), g.setOf(4096));        // capacity apart
    EXPECT_NE(g.setOf(0), g.setOf(64));
}

TEST(CacheGeom, Associativity)
{
    const CacheGeom g{4096, 32, 2};
    EXPECT_EQ(g.numSets(), 64);
    EXPECT_EQ(g.setOf(0), g.setOf(2048));
}

TEST(MachineDeath, InvalidConfigsAreFatal)
{
    auto m = makeTwoCluster();
    m.nClusters = 0;
    EXPECT_EXIT(m.validate(), ::testing::ExitedWithCode(1), "nClusters");

    auto m2 = makeTwoCluster();
    m2.nRegBuses = 0;
    EXPECT_EXIT(m2.validate(), ::testing::ExitedWithCode(1),
                "register bus");

    auto m3 = makeFourCluster();
    m3.totalCacheBytes = 9000;   // not divisible by 4 clusters x lines
    EXPECT_EXIT(m3.validate(), ::testing::ExitedWithCode(1), "cache");
}

TEST(Machine, SummaryMentionsKeyParameters)
{
    const auto s = makeTwoCluster().summary();
    EXPECT_NE(s.find("2 cluster"), std::string::npos);
    EXPECT_NE(s.find("32 regs"), std::string::npos);
    EXPECT_NE(s.find("direct-mapped"), std::string::npos);
}

} // namespace
} // namespace mvp
