/**
 * @file
 * The scheduling service: batched requests on the persistent worker
 * pool, fronted by the content-addressed schedule cache and the
 * zero-parse raw-bytes lane.
 *
 * One SchedService owns
 *
 *  - a harness::ParallelDriver — requests of a batch are sharded
 *    across its pool exactly like sweep items, one SchedContext per
 *    worker (warm scratch across batches);
 *  - a ScheduleCache of reply payloads keyed on the canonical request
 *    form (svc/protocol.hh), and a RawReplyLane mapping verbatim
 *    request payload bytes to the same published reply pointers
 *    (svc/cache.hh) — a raw hit answers without parsing, printing or
 *    touching the pool at all;
 *  - per-loop contexts keyed on the canonical loop text: the owned
 *    nest, one StreamCache shared by every analysis of that loop,
 *    lazily-bound locality analyses per provider name, and per-machine
 *    DDGs with their SCC tables pre-warmed — a restarted sweep over
 *    the same loop pays the build cost once, like Workbench entries.
 *
 * Determinism contract: every reply payload is a pure function of its
 * request's cache key. Batching, arrival order, client count and the
 * pool's --jobs never show in the bytes — the same guarantees the
 * sweep fingerprints rely on (key-derived sampling seeds,
 * keep-the-winner publication, backends that are deterministic within
 * their budgets). A cache hit replays the stored bytes verbatim, and
 * a raw-lane hit *aliases* the canonical entry's bytes (one shared
 * pointer, not a copy), so warm replies are byte-identical to cold
 * ones by construction. Raw entries are published only for replies
 * that live in the canonical cache; parse errors quote the frame id
 * and therefore never enter either lane.
 *
 * Warm-state persistence (svc/state.cc): encodeState() snapshots the
 * schedule cache plus every loop's CME/oracle memo through their
 * export APIs into the binary v2 format (svc/state.hh); decodeState()
 * republishes them into a fresh service — it also still accepts the
 * v1 text format, so old snapshots migrate on first LOAD/SAVE. The
 * raw lane is not persisted: it repopulates on first
 * canonicalization, and raw bytes are client-specific spellings with
 * unbounded variety — the canonical cache is the durable state.
 *
 * Error containment: request payloads are user input, and the repo's
 * registries and parsers fatal on bad input. Every worker wraps the
 * scheduling call in a FatalScope (common/logging.hh), so a malformed
 * payload or unknown registry name costs its sender one error reply —
 * never the process, and never a cache entry (only replies that were
 * actually computed are published).
 */

#ifndef MVP_SVC_SERVICE_HH
#define MVP_SVC_SERVICE_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cme/locality.hh"
#include "cme/stream.hh"
#include "common/stats.hh"
#include "ddg/ddg.hh"
#include "harness/driver.hh"
#include "ir/loop.hh"
#include "svc/cache.hh"
#include "svc/protocol.hh"

namespace mvp::svc
{

/** A point-in-time snapshot of the service counters. */
struct ServiceStats
{
    std::int64_t requests = 0;
    std::int64_t cacheHits = 0;
    std::int64_t cacheMisses = 0;
    std::int64_t rawHits = 0;
    std::int64_t errors = 0;
    std::int64_t batches = 0;
    std::int64_t cacheEntries = 0;
    std::int64_t rawEntries = 0;
    std::int64_t loopContexts = 0;
    double latencyP50Us = 0.0;
    double latencyP99Us = 0.0;
    double latencyMeanUs = 0.0;
};

class SchedService
{
  public:
    /** @p jobs <= 0 means harness::defaultJobs(). */
    explicit SchedService(int jobs = 0);
    ~SchedService();

    SchedService(const SchedService &) = delete;
    SchedService &operator=(const SchedService &) = delete;

    int jobs() const { return driver_.jobs(); }

    /** One served request. */
    struct Reply
    {
        /** The reply bytes (shared with the cache lanes on warm
         * paths — never copied per request). */
        ReplyBytes payload;
        bool cacheHit = false;
        bool rawHit = false;

        const std::string &bytes() const { return *payload; }
    };

    /**
     * The zero-parse warm lane: answer @p rawPayload from the
     * raw-bytes cache without parsing it. Returns nullptr on a miss
     * (the caller then parses and batches as usual). A hit is counted
     * as a request + cache hit in the service stats.
     */
    ReplyBytes rawProbe(const std::string &rawPayload);

    /**
     * Serve a batch: replies land in request order, one per request.
     * Thread-safe — concurrent batches (one per connection) serialise
     * on an internal mutex because the driver runs one sweep at a
     * time; requests *within* a batch run in parallel on the pool.
     */
    std::vector<Reply> processBatch(std::vector<Request> &&requests);

    /** processBatch of size one. */
    Reply processOne(Request &&request);

    /**
     * Account one flushed reply burst (frames framed + bytes emitted
     * + wall time): feeds the svc.flush.* counters and histogram the
     * sessions/reactor report against.
     */
    void noteFlush(std::size_t frames, std::size_t bytes, double us);

    ServiceStats stats() const;

    /** The STATS payload: `FIELD VALUE` lines, stable order. */
    std::string renderStats() const;

    /** @name Warm-state persistence (implemented in svc/state.cc) */
    /// @{

    /**
     * Serialise the schedule cache and every loop context's CME /
     * oracle memos as a binary v2 snapshot (svc/state.hh).
     * Deterministic: identical service state encodes to identical
     * bytes (all sections sorted canonically), and
     * encode(decode(s)) == s.
     */
    std::string encodeState() const;

    /** The legacy v1 text encoding (svc/state.hh). Kept for the
     * text -> binary migration tests and for producing snapshots old
     * builds can read; new snapshots should be encodeState(). */
    std::string encodeStateTextV1() const;

    /**
     * Republish a previous encodeState() snapshot into this service
     * (keep-the-winner everywhere, so loading into a non-empty
     * service is safe). Accepts the binary v2 format and the v1 text
     * format; any other version is rejected whole — v2 decoding
     * stages the entire snapshot in memory before publishing a single
     * entry. fatal() on a malformed or version-mismatched snapshot —
     * callers serving user input wrap this in FatalScope.
     */
    void decodeState(const std::string &bytes,
                     const std::string &origin = "<state>");

    /** encodeState() to @p path; returns false with @p error set. */
    bool saveStateFile(const std::string &path, std::string *error) const;

    /** decodeState() from @p path; returns false with @p error set. */
    bool loadStateFile(const std::string &path, std::string *error);

    /// @}

  private:
    /**
     * Everything the service knows about one loop (keyed by canonical
     * loop text). The nest is owned and address-stable; analyses and
     * DDGs bind lazily under the context mutex and are shared by all
     * subsequent requests for the loop.
     */
    struct LoopContext
    {
        explicit LoopContext(ir::LoopNest n);

        ir::LoopNest nest;
        std::shared_ptr<cme::StreamCache> streams;

        mutable std::mutex mu;   ///< guards ddgs and bound
        std::map<std::string, std::unique_ptr<ddg::Ddg>> ddgs;
        std::map<std::string, std::unique_ptr<cme::LocalityAnalysis>>
            bound;

        /** The DDG for @p machineKey, built and SCC-warmed on first
         * use. The reference stays valid for the context's lifetime. */
        const ddg::Ddg &ddgFor(const MachineConfig &machine,
                               const std::string &machineKey);

        /** The bound analysis for provider @p name (lazily bound; may
         * fatal on an unknown name — callers hold a FatalScope). */
        cme::LocalityAnalysis &localityFor(const std::string &name);
    };

    /** Find-or-create the context for the request's loop (the nest is
     * copied in on first sight — the request keeps its own). */
    LoopContext &contextFor(const std::string &loopKey,
                            const ir::LoopNest &nest);

    /** Serve one request on a worker (never throws). */
    Reply serveOne(Request &request, sched::SchedContext &ctx);

    void noteRequest(std::chrono::steady_clock::time_point start,
                     bool hit, bool error, sched::SchedContext &ctx);

    harness::ParallelDriver driver_;
    ScheduleCache cache_;
    RawReplyLane raw_;

    mutable std::mutex ctx_mu_;   ///< guards contexts_
    std::map<std::string, std::unique_ptr<LoopContext>> contexts_;

    std::mutex batch_mu_;   ///< the driver runs one batch at a time

    mutable std::mutex stats_mu_;
    std::int64_t requests_ = 0;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::int64_t raw_hits_ = 0;
    std::int64_t errors_ = 0;
    std::int64_t batches_ = 0;
    Histogram latency_us_;
    Histogram flush_us_;
};

} // namespace mvp::svc

#endif // MVP_SVC_SERVICE_HH
