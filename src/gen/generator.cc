#include "gen/generator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "ir/builder.hh"

namespace mvp::gen
{

namespace
{

using namespace mvp::ir;

/** Domain separators so loop/machine sub-streams never collide. */
constexpr std::uint64_t LOOP_STREAM = 0x6c6f6f70ULL;      // "loop"
constexpr std::uint64_t MACHINE_STREAM = 0x6d616368ULL;   // "mach"

/** All loops start here; offsets keep every affine index non-negative. */
constexpr std::int64_t IV_LOWER = 2;
constexpr int MAX_OFFSET = 2;

/** Conflict-layout stride: one direct-mapped-cache period (8 KB). */
constexpr std::int64_t CONFLICT_STRIDE = 0x2000;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** One array under construction: its access pattern plus every ref. */
struct ArrayPlan
{
    std::vector<std::size_t> depths;   ///< mapped loops, outermost first
    std::vector<std::int64_t> coeffs;  ///< per mapped loop
    std::vector<std::vector<std::int64_t>> offsets;   ///< per reference
};

/** Pick (or create) an array plan and record a new reference to it. */
std::size_t
pickArray(Rng &rng, const GenParams &params,
          std::vector<ArrayPlan> &arrays, std::size_t depth)
{
    const bool reuse =
        !arrays.empty() &&
        (arrays.size() >= static_cast<std::size_t>(params.maxArrays) ||
         rng.nextBool(params.pReuseArray));
    if (!reuse) {
        ArrayPlan arr;
        // Rank in [1, depth]; the innermost loops are always mapped so
        // every reference moves with the modulo-scheduled loop.
        const auto rank = static_cast<std::size_t>(
            rng.nextRange(1, static_cast<std::int64_t>(depth)));
        for (std::size_t d = depth - rank; d < depth; ++d) {
            arr.depths.push_back(d);
            arr.coeffs.push_back(rng.nextBool(params.pStride2) ? 2 : 1);
        }
        arrays.push_back(std::move(arr));
    }
    const std::size_t index =
        reuse ? static_cast<std::size_t>(rng.nextBounded(
                    static_cast<std::uint64_t>(arrays.size())))
              : arrays.size() - 1;

    ArrayPlan &arr = arrays[index];
    std::vector<std::int64_t> ofs(arr.depths.size(), 0);
    if (rng.nextBool(params.pOffsetRef))
        for (auto &o : ofs)
            o = rng.nextRange(-MAX_OFFSET, MAX_OFFSET);
    arr.offsets.push_back(std::move(ofs));
    return index;
}

/** The index expressions of reference @p ref of array plan @p arr. */
std::vector<AffineExpr>
refExprs(const ArrayPlan &arr, std::size_t ref)
{
    std::vector<AffineExpr> index;
    for (std::size_t k = 0; k < arr.depths.size(); ++k)
        index.push_back(affineVar(arr.depths[k], arr.coeffs[k],
                                  arr.offsets[ref][k]));
    return index;
}

/** A register operand: live-in or a uniformly-chosen prior producer. */
Operand
pickInput(Rng &rng, const GenParams &params,
          const std::vector<OpId> &producers)
{
    if (producers.empty() || rng.nextBool(params.pLiveIn))
        return liveIn();
    const auto pick = static_cast<std::size_t>(
        rng.nextBounded(static_cast<std::uint64_t>(producers.size())));
    return use(producers[pick]);
}

Opcode
pickComputeOpcode(Rng &rng)
{
    // FP-heavy mix modelled on the SPECfp95 suites, with occasional
    // divides for latency variety.
    static constexpr Opcode MIX[] = {
        Opcode::FAdd, Opcode::FAdd, Opcode::FSub, Opcode::FMul,
        Opcode::FMul, Opcode::FMadd, Opcode::IAdd, Opcode::IMul,
        Opcode::FDiv,
    };
    return MIX[rng.nextBounded(std::size(MIX))];
}

int
arity(Opcode op)
{
    return op == Opcode::FMadd ? 3 : 2;
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    return splitmix64(base ^ splitmix64(index + 1));
}

ir::LoopNest
generateLoop(std::uint64_t seed, const GenParams &params,
             const std::string &name_hint)
{
    mvp_assert(params.minDepth >= 1 && params.maxDepth >= params.minDepth,
               "bad depth range");
    mvp_assert(params.minLoads >= 1, "generated loops need a load");
    Rng rng(splitmix64(seed ^ LOOP_STREAM));

    std::string name = name_hint;
    if (name.empty()) {
        name = "gen";
        name += std::to_string(seed);
    }
    LoopNestBuilder b(std::move(name));

    // --- loop dimensions (outermost first; unit steps) ---
    const auto depth = static_cast<std::size_t>(
        rng.nextRange(params.minDepth, params.maxDepth));
    static const char *const IV_NAMES[] = {"i", "j", "k", "l"};
    mvp_assert(depth <= std::size(IV_NAMES), "nest too deep to name");
    std::vector<std::int64_t> last_iv(depth);   ///< per-loop final value
    for (std::size_t d = 0; d < depth; ++d) {
        const bool inner = d + 1 == depth;
        const std::int64_t trip =
            inner ? rng.nextRange(params.minInnerTrip, params.maxInnerTrip)
                  : rng.nextRange(params.minOuterTrip,
                                  params.maxOuterTrip);
        b.loop(IV_NAMES[d], IV_LOWER, IV_LOWER + trip);
        last_iv[d] = IV_LOWER + trip - 1;
    }

    // --- plan the references ---
    const auto n_loads = static_cast<int>(
        rng.nextRange(params.minLoads, params.maxLoads));
    const auto n_compute = static_cast<int>(
        rng.nextRange(params.minCompute, params.maxCompute));
    const auto n_stores =
        static_cast<int>(rng.nextRange(0, params.maxStores));

    struct Ref
    {
        std::size_t array;
        std::size_t index;   ///< position in the array plan's offsets
    };
    std::vector<ArrayPlan> arrays;
    std::vector<Ref> refs;   ///< loads first, then stores
    for (int i = 0; i < n_loads + n_stores; ++i) {
        const std::size_t a = pickArray(rng, params, arrays, depth);
        refs.push_back({a, arrays[a].offsets.size() - 1});
    }

    // --- declare the arrays: extents cover every reference; bases are
    // either conflict-laid (multiples of one direct-mapped-cache
    // period, the builtin suites' deliberate ping-pong placement) or
    // packed by the builder's layout allocator ---
    const bool conflict_layout = rng.nextBool(params.pConflictLayout);
    std::vector<ArrayId> ids;
    std::int64_t conflict_stride = CONFLICT_STRIDE;
    std::vector<std::vector<std::int64_t>> extents;
    for (const ArrayPlan &arr : arrays) {
        std::vector<std::int64_t> ext;
        std::int64_t bytes = 4;
        for (std::size_t k = 0; k < arr.depths.size(); ++k) {
            std::int64_t max_ofs = 0;
            for (const auto &ofs : arr.offsets)
                max_ofs = std::max(max_ofs, ofs[k]);
            ext.push_back(arr.coeffs[k] * last_iv[arr.depths[k]] +
                          max_ofs + 1);
            bytes *= ext.back();
        }
        while (bytes > conflict_stride)
            conflict_stride += CONFLICT_STRIDE;
        extents.push_back(std::move(ext));
    }
    for (std::size_t a = 0; a < arrays.size(); ++a) {
        std::string arr_name("A");
        arr_name += std::to_string(a);
        if (conflict_layout)
            ids.push_back(b.arrayAt(
                arr_name, extents[a],
                static_cast<Addr>(0x10000 + static_cast<std::int64_t>(a) *
                                                conflict_stride)));
        else
            ids.push_back(b.array(arr_name, extents[a]));
    }

    // --- recurrence plan (register-carried cycles) ---
    enum class Rec { None, Accumulate, Cycle };
    Rec rec = Rec::None;
    if (rng.nextBool(params.pRecurrence))
        rec = n_compute >= 2 && rng.nextBool() ? Rec::Cycle
                                               : Rec::Accumulate;
    const int rec_pos = rec == Rec::None
                            ? -1
                            : static_cast<int>(rng.nextBounded(
                                  static_cast<std::uint64_t>(
                                      rec == Rec::Cycle ? n_compute - 1
                                                        : n_compute)));
    const int rec_dist =
        static_cast<int>(rng.nextRange(1, params.maxRecDistance));

    // --- body: loads, compute, stores ---
    std::vector<OpId> producers;
    for (int i = 0; i < n_loads; ++i)
        producers.push_back(
            b.load(ids[refs[static_cast<std::size_t>(i)].array],
                   refExprs(arrays[refs[static_cast<std::size_t>(i)].array],
                            refs[static_cast<std::size_t>(i)].index)));

    for (int c = 0; c < n_compute; ++c) {
        const Opcode opcode = pickComputeOpcode(rng);
        std::vector<Operand> inputs;
        for (int k = 0; k < arity(opcode); ++k)
            inputs.push_back(pickInput(rng, params, producers));
        if (rec == Rec::Accumulate && c == rec_pos)
            inputs.push_back(use(b.nextOpId(), rec_dist));
        else if (rec == Rec::Cycle && c == rec_pos)
            inputs.push_back(use(b.nextOpId() + 1, rec_dist));
        else if (rec == Rec::Cycle && c == rec_pos + 1)
            inputs.back() = use(b.nextOpId() - 1);   // close the cycle
        producers.push_back(b.op(opcode, std::move(inputs)));
    }

    for (int s = 0; s < n_stores; ++s) {
        const Ref &r = refs[static_cast<std::size_t>(n_loads + s)];
        b.store(ids[r.array], refExprs(arrays[r.array], r.index),
                pickInput(rng, params, producers));
    }

    ir::LoopNest nest = b.build();
    nest.validate();
    return nest;
}

MachineConfig
generateMachine(std::uint64_t seed, const GenParams &params)
{
    Rng rng(splitmix64(seed ^ MACHINE_STREAM));
    MachineConfig cfg;
    cfg.name = "genmach" + std::to_string(seed);

    // Clusters: 1, 2 or 4 (uniform over the allowed powers of two).
    int max_shift = 0;
    for (int c = params.maxClusters; c > 1; c /= 2)
        ++max_shift;
    cfg.nClusters = 1 << rng.nextRange(0, max_shift);

    cfg.intFusPerCluster =
        static_cast<int>(rng.nextRange(1, params.maxFusPerClass));
    cfg.fpFusPerCluster =
        static_cast<int>(rng.nextRange(1, params.maxFusPerClass));
    cfg.memFusPerCluster =
        static_cast<int>(rng.nextRange(1, params.maxFusPerClass));
    static constexpr int REG_SIZES[] = {24, 32, 48, 64};
    cfg.regsPerCluster =
        REG_SIZES[rng.nextBounded(std::size(REG_SIZES))];

    if (cfg.nClusters == 1) {
        // The unified-preset convention: no register communication.
        cfg.nRegBuses = 0;
        cfg.unboundedRegBuses = true;
    } else if (rng.nextBool(0.15)) {
        cfg.nRegBuses = 0;
        cfg.unboundedRegBuses = true;
        cfg.regBusLatency = rng.nextRange(1, 2);
    } else {
        cfg.nRegBuses = static_cast<int>(rng.nextRange(1, 3));
        cfg.regBusLatency = rng.nextRange(1, 2);
    }
    if (rng.nextBool(0.1)) {
        cfg.nMemBuses = 0;
        cfg.unboundedMemBuses = true;
        cfg.memBusLatency = rng.nextRange(1, 2);
    } else {
        cfg.nMemBuses = static_cast<int>(rng.nextRange(1, 2));
        cfg.memBusLatency = rng.nextRange(1, 2);
    }

    static constexpr std::int64_t PER_CLUSTER_CACHE[] = {1024, 2048, 4096};
    cfg.totalCacheBytes =
        PER_CLUSTER_CACHE[rng.nextBounded(std::size(PER_CLUSTER_CACHE))] *
        cfg.nClusters;
    cfg.cacheLineBytes = rng.nextBool(params.pWideLine) ? 64 : 32;
    cfg.cacheAssoc = rng.nextBool(params.pTwoWayCache) ? 2 : 1;
    cfg.mshrEntries = static_cast<int>(rng.nextRange(4, 16));

    if (rng.nextBool(params.pVaryLatency)) {
        cfg.latCacheHit = rng.nextRange(1, 3);
        cfg.latMainMemory = rng.nextRange(6, 16);
        cfg.latFp = rng.nextRange(1, 4);
        cfg.latFpDiv = rng.nextRange(4, 8);
        cfg.latIntMul = rng.nextRange(1, 3);
    }

    cfg.validate();
    return cfg;
}

Scenario
generateScenario(std::uint64_t seed, const GenParams &params)
{
    Scenario sc;
    sc.seed = seed;
    sc.nest = generateLoop(deriveSeed(seed, 0), params);
    sc.machine = generateMachine(deriveSeed(seed, 1), params);
    return sc;
}

std::vector<ir::LoopNest>
generateSuite(std::uint64_t seed, int count, const GenParams &params)
{
    mvp_assert(count >= 1, "generateSuite wants a positive count");
    std::vector<ir::LoopNest> loops;
    loops.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        loops.push_back(generateLoop(
            deriveSeed(seed, static_cast<std::uint64_t>(i)), params,
            "gen" + std::to_string(seed) + ".l" + std::to_string(i)));
    return loops;
}

std::vector<ir::LoopNest>
generateFromSpec(const std::string &spec)
{
    GenParams params;
    std::uint64_t seed = 1;
    std::int64_t count = 8;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        // ',' and '+' both separate pairs; '+' survives inside
        // comma-separated workload lists (--workloads a,gen:seed=7+loops=4).
        std::size_t end = spec.find_first_of(",+", pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string pair = spec.substr(pos, end - pos);
        pos = end + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            mvp_fatal("gen spec '", spec, "': expected key=value, got '",
                      pair, "'");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        std::size_t used = 0;
        std::int64_t num = 0;
        try {
            num = std::stoll(value, &used, 0);
        } catch (...) {
            used = std::string::npos;
        }
        if (used != value.size())
            mvp_fatal("gen spec '", spec, "': bad value '", value,
                      "' for '", key, "'");
        if (key == "seed") {
            seed = static_cast<std::uint64_t>(num);
        } else if (key == "loops") {
            if (num < 1 || num > 4096)
                mvp_fatal("gen spec '", spec,
                          "': loops wants 1..4096, got ", num);
            count = num;
        } else if (key == "depth") {
            if (num < 1 || num > 3)
                mvp_fatal("gen spec '", spec,
                          "': depth wants 1..3, got ", num);
            params.minDepth = params.maxDepth = static_cast<int>(num);
        } else if (key == "ops") {
            if (num < params.minCompute)
                mvp_fatal("gen spec '", spec, "': ops wants >= ",
                          params.minCompute, ", got ", num);
            params.maxCompute = static_cast<int>(num);
        } else {
            mvp_fatal("gen spec '", spec, "': unknown key '", key,
                      "' (known: seed, loops, depth, ops)");
        }
    }
    return generateSuite(seed, static_cast<int>(count), params);
}

} // namespace mvp::gen
