#include "svc/server.hh"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace mvp::svc
{

void
runStdioSession(SchedService &service, std::istream &in,
                std::ostream &out)
{
    ServiceSession session(service);
    std::string emitted;
    char buf[1 << 16];
    while (in) {
        in.read(buf, sizeof buf);
        const std::streamsize got = in.gcount();
        if (got <= 0)
            break;
        emitted.clear();
        const bool open = session.consume(
            buf, static_cast<std::size_t>(got), emitted);
        out.write(emitted.data(),
                  static_cast<std::streamsize>(emitted.size()));
        out.flush();
        if (!open)
            return;
    }
    emitted.clear();
    session.finish(emitted);
    out.write(emitted.data(),
              static_cast<std::streamsize>(emitted.size()));
    out.flush();
}

namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Drop the drained prefix of a connection's output buffer. Cheap
 * amortised: only compacts when the dead prefix dominates, and a
 * fully-drained buffer just resets (keeping its capacity — the
 * per-session reply scratch). */
void
compactOut(std::string &outbuf, std::size_t &off)
{
    if (off == outbuf.size()) {
        outbuf.clear();
        off = 0;
    } else if (off > (std::size_t(1) << 16) && off > outbuf.size() / 2) {
        outbuf.erase(0, off);
        off = 0;
    }
}

} // namespace

TcpReactor::TcpReactor(SchedService &service, int port)
    : service_(service)
{
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener < 0) {
        error_ = "socket() failed";
        return;
    }
    const int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0) {
        error_ = "cannot bind 127.0.0.1:" + std::to_string(port);
        ::close(listener);
        return;
    }
    if (::listen(listener, 64) != 0 || !setNonBlocking(listener)) {
        error_ = "listen() failed";
        ::close(listener);
        return;
    }

    int pipefd[2];
    if (::pipe(pipefd) != 0 || !setNonBlocking(pipefd[0]) ||
        !setNonBlocking(pipefd[1])) {
        error_ = "cannot create the stop pipe";
        ::close(listener);
        return;
    }

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listener, reinterpret_cast<sockaddr *>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    listener_ = listener;
    wake_rd_ = pipefd[0];
    wake_wr_ = pipefd[1];
}

TcpReactor::~TcpReactor()
{
    for (auto &[fd, conn] : conns_)
        ::close(fd);
    conns_.clear();
    if (listener_ >= 0)
        ::close(listener_);
    if (wake_rd_ >= 0)
        ::close(wake_rd_);
    if (wake_wr_ >= 0)
        ::close(wake_wr_);
}

void
TcpReactor::stop()
{
    if (wake_wr_ < 0)
        return;
    const char byte = 'q';
    // A full pipe already guarantees a pending wakeup.
    (void)!::write(wake_wr_, &byte, 1);
}

void
TcpReactor::acceptReady()
{
    for (;;) {
        const int fd = ::accept(listener_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;   // EAGAIN, or a transient accept failure
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        conns_.emplace(fd, std::make_unique<Conn>(service_));
        obs::foldRtCounter("svc.reactor.accepts", 1);
    }
}

bool
TcpReactor::flushOut(Conn &conn, int fd)
{
    while (conn.out_off < conn.outbuf.size()) {
        const ssize_t got =
            ::send(fd, conn.outbuf.data() + conn.out_off,
                   conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                obs::foldRtCounter("svc.reactor.short_writes", 1);
                return true;   // wait for POLLOUT
            }
            return false;   // peer gone
        }
        conn.out_off += static_cast<std::size_t>(got);
    }
    compactOut(conn.outbuf, conn.out_off);
    return true;
}

bool
TcpReactor::readReady(Conn &conn, int fd)
{
    char buf[1 << 16];
    for (;;) {
        const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            return false;
        }
        if (got == 0) {
            // EOF without QUIT: serve what's queued, then drain.
            conn.session.finish(conn.outbuf);
            conn.draining = true;
            return true;
        }
        if (!conn.session.consume(buf, static_cast<std::size_t>(got),
                                  conn.outbuf)) {
            conn.draining = true;   // QUIT or framing error
            return true;
        }
    }
}

int
TcpReactor::run()
{
    if (!ok())
        return 1;

    std::vector<pollfd> fds;
    std::vector<int> dead;
    for (;;) {
        fds.clear();
        fds.push_back({wake_rd_, POLLIN, 0});
        fds.push_back({listener_, POLLIN, 0});
        for (const auto &[fd, conn] : conns_) {
            short events = 0;
            if (!conn->draining)
                events |= POLLIN;
            if (conn->out_off < conn->outbuf.size())
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }

        const int n = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            mvp_warn("svc: poll() failed");
            return 1;
        }

        if ((fds[0].revents & POLLIN) != 0)
            return 0;   // stop() requested
        if ((fds[1].revents & POLLIN) != 0)
            acceptReady();

        dead.clear();
        for (std::size_t i = 2; i < fds.size(); ++i) {
            const int fd = fds[i].fd;
            const short re = fds[i].revents;
            if (re == 0)
                continue;
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            Conn &conn = *it->second;
            bool alive = (re & (POLLERR | POLLNVAL)) == 0;
            if (alive && (re & (POLLIN | POLLHUP)) != 0)
                alive = readReady(conn, fd);
            // Flush whatever the read produced (the common case: a
            // whole burst of REPs goes out right here, no extra poll
            // round) plus anything POLLOUT unblocked.
            if (alive)
                alive = flushOut(conn, fd);
            if (!alive ||
                (conn.draining && conn.out_off >= conn.outbuf.size()))
                dead.push_back(fd);
        }
        for (const int fd : dead) {
            ::close(fd);
            conns_.erase(fd);
        }
    }
}

int
runTcpServer(SchedService &service, int port)
{
    TcpReactor reactor(service, port);
    if (!reactor.ok()) {
        mvp_warn("svc: ", reactor.error());
        return 1;
    }
    // Announced on stdout so scripted clients can scrape the
    // kernel-assigned port when --listen 0 was asked for.
    std::printf("listening on %d\n", reactor.port());
    std::fflush(stdout);
    return reactor.run();
}

} // namespace mvp::svc
