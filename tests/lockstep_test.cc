/**
 * @file
 * Hand-computed lockstep-stall scenarios and CME equation edge cases.
 *
 * These tests pin the simulator's stall arithmetic to closed forms on
 * loops small enough to reason about exactly, and probe the CME solver
 * where the cold/replacement equations interact (associativity, line
 * size, backward-window capping).
 */

#include <gtest/gtest.h>

#include "cme/oracle.hh"
#include "cme/solver.hh"
#include "ddg/ddg.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"

namespace mvp
{
namespace
{

using namespace mvp::ir;

// ------------------------------------------------------------- lockstep

TEST(Lockstep, SingleColdMissStallsExactShortfall)
{
    // One load, one consumer, one iteration: the consumer is scheduled
    // at hit latency but the (cold) miss completes at
    // issue + latCacheHit + memBusLatency + latMainMemory. The machine
    // must stall exactly the shortfall.
    LoopNestBuilder b("one");
    b.loop("i", 0, 1);
    const auto A = b.arrayAt("A", {1}, 0x1000);
    const auto l = b.load(A, {affineVar(0)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()}, "m");
    const auto nest = b.build();

    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto sim = sim::simulateLoop(g, r.schedule, machine);

    // Consumer scheduled latCacheHit after the load; the actual data
    // needs latCacheHit + memBusLatency + latMainMemory.
    const Cycle shortfall = machine.memBusLatency + machine.latMainMemory;
    EXPECT_EQ(sim.stallCycles, shortfall);
}

TEST(Lockstep, UnconsumedMissCausesNoStall)
{
    // A missing load whose value feeds only a store placed far enough
    // away: nobody waits inside the window, so no stall.
    LoopNestBuilder b("unconsumed");
    b.loop("i", 0, 1);
    const auto A = b.arrayAt("A", {16}, 0x1000);
    b.load(A, {affineVar(0)}, "l");
    b.op(Opcode::FMul, {liveIn(), liveIn()}, "m");
    const auto nest = b.build();
    const auto machine = makeUnified();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto sim = sim::simulateLoop(g, r.schedule, machine);
    EXPECT_EQ(sim.stallCycles, 0);
}

TEST(Lockstep, StallShiftsEveryClusterTogether)
{
    // Two independent chains in different clusters; only one chain's
    // load misses. Lockstep means the whole machine pays once per miss:
    // the total equals the one-chain stall, not double.
    LoopNestBuilder b("pair");
    b.loop("r", 0, 2);
    b.loop("i", 0, 64);
    const auto A = b.arrayAt("A", {64}, 0x10000);   // 256 B, resident
    const auto C = b.arrayAt("C", {64}, 0x1A080);   // staggered
    const auto la = b.load(A, {affineVar(1)}, "la");
    const auto ma = b.op(Opcode::FMul, {use(la), liveIn()}, "ma");
    const auto lc = b.load(C, {affineVar(1)}, "lc");
    const auto mc = b.op(Opcode::FMul, {use(lc), liveIn()}, "mc");
    (void)ma;
    (void)mc;
    const auto nest = b.build();

    const auto machine = makeTwoCluster();
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto sim = sim::simulateLoop(g, r.schedule, machine);
    // Both arrays are resident after warm-up: stall only on the cold
    // fills of 8+8 lines, and the second sweep is stall-free.
    EXPECT_EQ(sim.memStats.value("memory_fills"), 16);
    EXPECT_LE(sim.stallCycles,
              16 * (machine.memBusLatency + machine.latMainMemory));
}

TEST(Lockstep, PromotedLoadNeverStallsItsConsumer)
{
    // A load promoted to the miss latency: even on a guaranteed miss
    // the consumer is scheduled late enough, so stalls only come from
    // bus contention beyond the scheduler's knowledge — with unbounded
    // buses, zero.
    LoopNestBuilder b("promoted");
    b.loop("r", 0, 2);
    b.loop("i", 0, 256);
    const auto A = b.arrayAt("A", {256}, 0x10000);
    const auto B = b.arrayAt("B", {256}, 0x12000);   // ping-pong with A
    const auto la = b.load(A, {affineVar(1)}, "la");
    const auto lb = b.load(B, {affineVar(1)}, "lb");
    b.op(Opcode::FMul, {use(la), use(lb)}, "m");
    const auto nest = b.build();

    auto machine = withUnboundedBuses(makeUnified(), 1, 1);
    const auto g = ddg::Ddg::build(nest, machine);
    cme::CmeAnalysis cme(nest);
    const auto r = sched::scheduleBaseline(g, machine, 0.0, &cme);
    ASSERT_TRUE(r.ok);
    // At least the conflicting stream is promoted; the consumer reads
    // both operands at the promoted distance, so even the unpromoted
    // load's misses are covered.
    ASSERT_GE(r.stats.missScheduledLoads, 1);
    const auto sim = sim::simulateLoop(g, r.schedule, machine);
    EXPECT_EQ(sim.stallCycles, 0);
}

TEST(Lockstep, MshrFullStallsAreCounted)
{
    // Ten parallel miss streams against a 2-entry MSHR: issue stalls
    // must appear in the total.
    LoopNestBuilder b("mshr");
    b.loop("i", 0, 64);
    const auto A = b.arrayAt("A", {64 * 10}, 0x10000);
    for (int k = 0; k < 10; ++k)
        b.load(A, {affineVar(0, 10, k)}, "l" + std::to_string(k));
    const auto nest = b.build();
    auto machine = withUnboundedBuses(makeUnified(), 1, 1);
    machine.mshrEntries = 2;
    const auto g = ddg::Ddg::build(nest, machine);
    const auto r = sched::scheduleBaseline(g, machine);
    ASSERT_TRUE(r.ok);
    const auto sim = sim::simulateLoop(g, r.schedule, machine);
    EXPECT_GT(sim.memStats.value("mshr_full_stall_cycles"), 0);
    EXPECT_GE(sim.stallCycles,
              sim.memStats.value("mshr_full_stall_cycles"));
}

// ---------------------------------------------------------- cme corners

TEST(CmeCorners, LineSizeChangesSpatialRatio)
{
    LoopNestBuilder b("lines");
    b.loop("r", 0, 4);
    b.loop("i", 0, 1024);
    const auto A = b.arrayAt("A", {1024}, 0x10000);   // 4 KB stream
    const auto l = b.load(A, {affineVar(1)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()}, "m");
    const auto nest = b.build();
    cme::CmeAnalysis cme(nest);
    // In a 2 KB cache the 4 KB array never stays resident: ratio =
    // elemSize/lineBytes.
    EXPECT_NEAR(cme.missRatio({}, l, CacheGeom{2048, 32, 1}), 0.125,
                0.05);
    EXPECT_NEAR(cme.missRatio({}, l, CacheGeom{2048, 64, 1}), 0.0625,
                0.04);
}

TEST(CmeCorners, AssociativityResolvesTwoWayConflict)
{
    LoopNestBuilder b("assoc");
    b.loop("r", 0, 4);
    b.loop("i", 0, 512);
    const auto A = b.arrayAt("A", {512}, 0x10000);
    const auto B = b.arrayAt("B", {512}, 0x10000 + 0x2000);
    const auto la = b.load(A, {affineVar(1)}, "la");
    const auto lb = b.load(B, {affineVar(1)}, "lb");
    b.op(Opcode::FMul, {use(la), use(lb)}, "m");
    const auto nest = b.build();
    cme::CmeAnalysis cme(nest);
    cme::CacheOracle oracle(nest);
    const std::vector<OpId> set{la, lb};
    // Direct-mapped: ping-pong. 2-way: both streams fit.
    const CacheGeom dm{4096, 32, 1};
    const CacheGeom two_way{4096, 32, 2};
    EXPECT_GT(cme.missesPerIteration(set, dm), 1.5);
    EXPECT_LT(cme.missesPerIteration(set, two_way), 0.4);
    // And the solver agrees with the exact oracle in both regimes.
    EXPECT_NEAR(cme.missesPerIteration(set, dm),
                oracle.missesPerIteration(set, dm), 0.3);
    EXPECT_NEAR(cme.missesPerIteration(set, two_way),
                oracle.missesPerIteration(set, two_way), 0.3);
}

TEST(CmeCorners, WindowCapTreatsDistantReuseAsMiss)
{
    // Reuse distance far beyond the walk window: the solver must call
    // it a miss (capacity behaviour) rather than walk forever.
    LoopNestBuilder b("distant");
    b.loop("r", 0, 3);
    b.loop("i", 0, 8192);
    const auto A = b.arrayAt("A", {8192}, 0x10000);   // 32 KB stream
    const auto l = b.load(A, {affineVar(1, 1, 0)}, "l");
    b.op(Opcode::FMul, {use(l), liveIn()}, "m");
    const auto nest = b.build();
    cme::CmeParams params;
    params.maxWalk = 64;   // tiny window
    cme::CmeAnalysis cme(nest, params);
    // Within-line reuse is found inside any window; line-boundary
    // accesses would need an 8K-access walk and must cap out as misses.
    EXPECT_NEAR(cme.missRatio({}, l, CacheGeom{2048, 32, 1}), 0.125,
                0.05);
}

TEST(CmeCorners, StoresCountInTheEquations)
{
    // A store stream interferes like a load stream (write-allocate).
    LoopNestBuilder b("stores");
    b.loop("r", 0, 4);
    b.loop("i", 0, 512);
    const auto A = b.arrayAt("A", {512}, 0x10000);
    const auto B = b.arrayAt("B", {512}, 0x12000);
    const auto la = b.load(A, {affineVar(1)}, "la");
    const auto m = b.op(Opcode::FMul, {use(la), liveIn()}, "m");
    const auto st = b.store(B, {affineVar(1)}, use(m), "sb");
    const auto nest = b.build();
    cme::CmeAnalysis cme(nest);
    const CacheGeom geom{4096, 32, 1};
    const double alone = cme.missRatio({}, la, geom);
    const double with_store = cme.missRatio({st}, la, geom);
    EXPECT_GT(with_store, alone + 0.5);   // the store evicts A's lines
}

} // namespace
} // namespace mvp
