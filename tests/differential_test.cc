/**
 * @file
 * The differential validation pipeline as a ctest gate: a 200-scenario
 * smoke sweep at a fixed seed (every rmca schedule validates, exact II
 * <= rmca II wherever the search settles, the §2.2 compute-cycle
 * identity holds, CME agrees with the oracle, zero text round-trip
 * mismatches), sharding determinism, and the hybrid:<budget> locality
 * provider riding the same scenarios.
 */

#include <gtest/gtest.h>

#include "cme/provider.hh"
#include "cme/solver.hh"
#include "harness/differential.hh"
#include "workloads/workloads.hh"

namespace mvp::harness
{
namespace
{

/** The fixed-seed options CI runs (bench/fuzz_sweep.cpp defaults). */
DiffOptions
smokeOptions(int scenarios)
{
    DiffOptions options;
    options.scenarios = scenarios;
    return options;
}

TEST(Differential, TwoHundredScenarioSmokeSweepPasses)
{
    const auto report = runDifferential(smokeOptions(200));
    ASSERT_EQ(report.rows.size(), 200u);
    EXPECT_EQ(report.failed(), 0) << report.summary();
    EXPECT_EQ(report.passed(), 200);

    // The sweep must actually exercise the cross-checks, not skip
    // them: the exact search settles on (almost) every small scenario
    // and rmca is not trivially optimal everywhere.
    EXPECT_GE(report.exactSettled(), 190) << report.summary();
    EXPECT_GE(report.rmcaOptimal(), 150);
    EXPECT_LE(report.rmcaOptimal(), report.exactSettled());

    for (const auto &row : report.rows) {
        EXPECT_GE(row.rmcaII, row.mii) << row.seed;
        if (row.exactSettled) {
            EXPECT_LE(row.exactII, row.rmcaII) << row.seed;
            EXPECT_GE(row.exactII, row.mii) << row.seed;
        }
        EXPECT_GE(row.stages, 1) << row.seed;
        EXPECT_GT(row.simCompute, 0) << row.seed;
    }
}

TEST(Differential, ReportIsByteIdenticalAtAnyJobCount)
{
    const DiffOptions options = smokeOptions(48);
    ParallelDriver serial(1);
    const std::string one =
        runDifferential(options, serial).serialise();
    for (int jobs : {2, 8}) {
        ParallelDriver driver(jobs);
        EXPECT_EQ(runDifferential(options, driver).serialise(), one)
            << "jobs=" << jobs;
    }
}

TEST(Differential, ScenarioRowsArePureFunctionsOfSeedAndIndex)
{
    // Prefix property: the first K rows of a longer sweep equal the
    // K-row sweep — scenarios never depend on the sweep size.
    const auto small = runDifferential(smokeOptions(12));
    const auto large = runDifferential(smokeOptions(24));
    const std::string small_rows = small.serialise();
    const std::string large_rows = large.serialise();
    EXPECT_EQ(large_rows.compare(0, small_rows.find("total"),
                                 small_rows, 0,
                                 small_rows.find("total")),
              0);
}

TEST(Differential, HeuristicOnlyModeSkipsExact)
{
    DiffOptions options = smokeOptions(24);
    options.checkExact = false;
    const auto report = runDifferential(options);
    EXPECT_EQ(report.failed(), 0) << report.summary();
    EXPECT_EQ(report.exactSettled(), 0);
}

TEST(Differential, RunsUnderAlternativeLocalityProviders)
{
    for (const char *provider : {"oracle", "hybrid:2"}) {
        DiffOptions options = smokeOptions(16);
        options.locality = provider;
        const auto report = runDifferential(options);
        EXPECT_EQ(report.failed(), 0)
            << provider << "\n"
            << report.summary();
    }
}

// ------------------------------------------- hybrid:<budget> provider

TEST(HybridBudget, SpendsSamplesBeforeFallingBack)
{
    // On a builtin loop with a large iteration space the default
    // solver leaves some queries unconverged; a budgeted hybrid
    // answers a superset of them by sampling instead of simulating.
    // Budget 0 must behave exactly like the plain hybrid.
    auto &registry = cme::LocalityRegistry::instance();
    EXPECT_TRUE(registry.has("hybrid:0"));
    EXPECT_TRUE(registry.has("hybrid:16"));
    EXPECT_FALSE(registry.has("hybrid_16"));
    // has() and create() agree: a malformed budget does not resolve.
    EXPECT_FALSE(registry.has("hybrid:two"));
    EXPECT_FALSE(registry.has("hybrid:-1"));

    const auto nest = workloads::benchmarkByName("su2cor").loops[0];
    const CacheGeom geom{2048, 32, 1};
    const auto mem = nest.loops().size() ? nest.memoryOps()
                                         : std::vector<OpId>{};
    ASSERT_FALSE(mem.empty());

    auto plain = registry.bind("hybrid", nest);
    auto zero = registry.bind("hybrid:0", nest);
    auto budgeted = registry.bind("hybrid:16", nest);
    const double p = plain->missesPerIteration(mem, geom);
    EXPECT_DOUBLE_EQ(zero->missesPerIteration(mem, geom), p);
    // The budgeted answer stays within sampling noise of the plain
    // one (both estimate the same exact quantity).
    EXPECT_NEAR(budgeted->missesPerIteration(mem, geom), p, 0.5);
}

TEST(HybridBudget, DeterministicAcrossInstances)
{
    const auto nest = workloads::benchmarkByName("tomcatv").loops[0];
    const CacheGeom geom{4096, 32, 1};
    const auto mem = nest.memoryOps();
    auto &registry = cme::LocalityRegistry::instance();
    auto a = registry.bind("hybrid:3", nest);
    auto b = registry.bind("hybrid:3", nest);
    for (const OpId op : mem)
        EXPECT_DOUBLE_EQ(a->missRatio(mem, op, geom),
                         b->missRatio(mem, op, geom))
            << op;
}

TEST(HybridBudgetDeath, RejectsMalformedBudgets)
{
    EXPECT_EXIT(
        (void)cme::LocalityRegistry::instance().create("hybrid:two"),
        ::testing::ExitedWithCode(1), "bad hybrid budget 'two'");
    EXPECT_EXIT(
        (void)cme::LocalityRegistry::instance().create("hybrid:-1"),
        ::testing::ExitedWithCode(1), "bad hybrid budget");
}

} // namespace
} // namespace mvp::harness
