/**
 * @file
 * su2cor-like suite: quantum-chromodynamics correlation functions.
 *
 * 103.su2cor is dominated by gather-style loops over lattice arrays with
 * even/odd (stride-2) element pairs, small dense matrix products with
 * heavy group reuse, and global reductions. Stride-2 pairs give each
 * reference self-spatial reuse every fourth iteration (8 elements per
 * 32 B line), and interleaving the RE/IM lattices 8 KB apart recreates
 * the conflict pattern the paper's CME analysis is designed to expose.
 */

#include "workloads/workloads.hh"

#include "ir/builder.hh"

namespace mvp::workloads
{

namespace
{

using namespace mvp::ir;

constexpr std::int64_t VOL = 1024;   // lattice sites per sweep
constexpr std::int64_t N_SWEEP = 12;
constexpr Addr BASE = 0xC0000;
constexpr Addr STRIDE_8K = 0x2000;

/** Even/odd gather with a pair of reductions. */
LoopNest
loopGather()
{
    LoopNestBuilder b("su2cor.gather");
    b.loop("s", 0, N_SWEEP);
    b.loop("j", 0, VOL / 2);
    const auto RE = b.arrayAt("RE", {VOL}, BASE);
    const auto IM = b.arrayAt("IM", {VOL}, BASE + STRIDE_8K);
    const auto W = b.arrayAt("W", {VOL / 2}, BASE + 2 * STRIDE_8K);

    const auto re_e = b.load(RE, {affineVar(1, 2, 0)}, "re_e");
    const auto re_o = b.load(RE, {affineVar(1, 2, 1)}, "re_o");
    const auto im_e = b.load(IM, {affineVar(1, 2, 0)}, "im_e");
    const auto im_o = b.load(IM, {affineVar(1, 2, 1)}, "im_o");
    const auto w = b.load(W, {affineVar(1, 1, 0)}, "w");

    const auto prod_r = b.op(Opcode::FMul, {use(re_e), use(re_o)}, "pr");
    const auto prod_i = b.op(Opcode::FMul, {use(im_e), use(im_o)}, "pi");
    const auto cross = b.op(Opcode::FSub, {use(prod_r), use(prod_i)},
                            "cross");
    const auto scaled = b.op(Opcode::FMul, {use(cross), use(w)}, "scl");
    b.op(Opcode::FAdd, {use(scaled), use(b.nextOpId(), 1)}, "acc");
    return b.build();
}

/** Complex SU(2) matrix-vector product: strong group reuse on M. */
LoopNest
loopMatVec()
{
    LoopNestBuilder b("su2cor.matvec");
    b.loop("s", 0, N_SWEEP);
    b.loop("j", 0, VOL / 4);
    const auto M = b.arrayAt("M", {VOL}, BASE + 3 * STRIDE_8K);
    const auto X = b.arrayAt("X", {VOL}, BASE + 4 * STRIDE_8K);
    const auto Y = b.arrayAt("Y", {VOL}, BASE + 5 * STRIDE_8K + 0x1300);

    // 2x2 block row times vector pair: M packs 4 entries per site.
    const auto m00 = b.load(M, {affineVar(1, 4, 0)}, "m00");
    const auto m01 = b.load(M, {affineVar(1, 4, 1)}, "m01");
    const auto m10 = b.load(M, {affineVar(1, 4, 2)}, "m10");
    const auto m11 = b.load(M, {affineVar(1, 4, 3)}, "m11");
    const auto x0 = b.load(X, {affineVar(1, 2, 0)}, "x0");
    const auto x1 = b.load(X, {affineVar(1, 2, 1)}, "x1");

    const auto t0 = b.op(Opcode::FMul, {use(m00), use(x0)}, "t0");
    const auto y0 = b.op(Opcode::FMadd, {use(m01), use(x1), use(t0)},
                         "y0");
    const auto t1 = b.op(Opcode::FMul, {use(m10), use(x0)}, "t1");
    const auto y1 = b.op(Opcode::FMadd, {use(m11), use(x1), use(t1)},
                         "y1");
    b.store(Y, {affineVar(1, 2, 0)}, use(y0), "sy0");
    b.store(Y, {affineVar(1, 2, 1)}, use(y1), "sy1");
    return b.build();
}

/** Staple accumulation: neighbour gathers at fixed offsets. */
LoopNest
loopStaple()
{
    LoopNestBuilder b("su2cor.staple");
    b.loop("s", 0, N_SWEEP);
    b.loop("j", 0, VOL - 64);
    const auto U0 = b.arrayAt("U0", {VOL}, BASE + 6 * STRIDE_8K + 0x17C0);
    const auto U1 = b.arrayAt("U1", {VOL}, BASE + 7 * STRIDE_8K + 0x1840);
    const auto S = b.arrayAt("S", {VOL}, BASE + 8 * STRIDE_8K + 0x980);

    const auto u = b.load(U0, {affineVar(1, 1, 0)}, "u");
    const auto un = b.load(U0, {affineVar(1, 1, 1)}, "un");
    const auto uf = b.load(U0, {affineVar(1, 1, 32)}, "uf");
    const auto v = b.load(U1, {affineVar(1, 1, 0)}, "v");
    const auto vf = b.load(U1, {affineVar(1, 1, 32)}, "vf");

    const auto a = b.op(Opcode::FMul, {use(u), use(un)}, "a");
    const auto bb = b.op(Opcode::FMul, {use(v), use(vf)}, "b");
    const auto st = b.op(Opcode::FMadd, {use(uf), use(bb), use(a)}, "st");
    b.store(S, {affineVar(1, 1, 0)}, use(st), "ss");
    return b.build();
}

/** Normalisation with divide (long-latency FU pressure). */
LoopNest
loopNorm()
{
    LoopNestBuilder b("su2cor.norm");
    b.loop("s", 0, N_SWEEP);
    b.loop("j", 0, VOL / 2);
    const auto X = b.arrayAt("X", {VOL}, BASE + 4 * STRIDE_8K);
    const auto NRM = b.arrayAt("NRM", {VOL / 2}, BASE + 9 * STRIDE_8K + 0xE40);

    const auto x0 = b.load(X, {affineVar(1, 2, 0)}, "x0");
    const auto x1 = b.load(X, {affineVar(1, 2, 1)}, "x1");
    const auto ss = b.op(Opcode::FMadd, {use(x1), use(x1),
                                         use(b.nextOpId() + 1, 1)},
                         "ss");
    const auto s2 = b.op(Opcode::FMadd, {use(x0), use(x0), use(ss)},
                         "s2");
    const auto inv = b.op(Opcode::FDiv, {liveIn(), use(s2)}, "inv");
    b.store(NRM, {affineVar(1, 1, 0)}, use(inv), "snrm");
    return b.build();
}

} // namespace

Benchmark
makeSu2cor()
{
    Benchmark bench;
    bench.name = "su2cor";
    bench.loops.push_back(loopGather());
    bench.loops.push_back(loopMatVec());
    bench.loops.push_back(loopStaple());
    bench.loops.push_back(loopNorm());
    return bench;
}

} // namespace mvp::workloads
