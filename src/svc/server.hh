/**
 * @file
 * Transports for the scheduling service: a stdio session (framed
 * protocol on stdin/stdout — the piped/batch mode CI drives) and a
 * loopback TCP reactor.
 *
 * The reactor is a single-threaded poll(2) event loop: every socket
 * is non-blocking, each connection owns a ServiceSession plus a
 * pending-output buffer, and frames are assembled incrementally from
 * whatever byte chunks the kernel delivers. Scheduling work still
 * runs on the service's persistent worker pool — a FLUSH executes the
 * batch inline on the loop thread via SchedService::processBatch,
 * which shards the batch across the pool; raw-lane hits never reach
 * the pool at all. Replies are gathered into the connection's output
 * buffer (one contiguous burst per FLUSH, reused across bursts) and
 * flushed with short-write/EINTR-safe non-blocking sends; whatever
 * the socket won't take immediately waits for POLLOUT backpressure
 * instead of blocking the loop.
 *
 * One loop thread replaces the old thread-per-connection design: no
 * per-connection stacks, no unbounded thread growth from idle
 * keep-alive connections, and cross-connection batches serialise in
 * exactly one place (the service's batch mutex) instead of racing to
 * it from N threads.
 */

#ifndef MVP_SVC_SERVER_HH
#define MVP_SVC_SERVER_HH

#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "svc/service.hh"
#include "svc/session.hh"

namespace mvp::svc
{

/**
 * Run one protocol session over @p in / @p out until QUIT or EOF
 * (output is flushed after every input chunk, so a step-lock client
 * can converse). Queued requests left at EOF are served.
 */
void runStdioSession(SchedService &service, std::istream &in,
                     std::ostream &out);

/**
 * The poll(2) event loop behind runTcpServer, exposed so tests can
 * bind an ephemeral port, run the loop on a thread, and stop it
 * cleanly. Not thread-safe except for stop().
 */
class TcpReactor
{
  public:
    /** Bind and listen on 127.0.0.1:@p port (0 = kernel-assigned).
     * Check ok() before run(); error() says what failed. */
    TcpReactor(SchedService &service, int port);
    ~TcpReactor();

    TcpReactor(const TcpReactor &) = delete;
    TcpReactor &operator=(const TcpReactor &) = delete;

    bool ok() const { return listener_ >= 0; }
    const std::string &error() const { return error_; }

    /** The bound port (valid when ok()). */
    int port() const { return port_; }

    /** Serve until stop(). Returns 0, or 1 when setup had failed. */
    int run();

    /** Ask a running loop to exit (thread-safe: self-pipe wakeup).
     * Open connections are closed; pending batches are dropped. */
    void stop();

  private:
    struct Conn
    {
        explicit Conn(SchedService &service) : session(service) {}

        ServiceSession session;
        /** Bytes emitted but not yet accepted by the socket. Kept
         * allocated across bursts — the reply-path scratch. */
        std::string outbuf;
        std::size_t out_off = 0;
        /** Input is done (EOF or session closed); the connection
         * lingers only until outbuf drains. */
        bool draining = false;
    };

    void acceptReady();
    /** Returns false when the connection should be dropped. */
    bool readReady(Conn &conn, int fd);
    /** Non-blocking flush of conn.outbuf; false = peer gone. */
    bool flushOut(Conn &conn, int fd);

    SchedService &service_;
    int listener_ = -1;
    int wake_rd_ = -1;   ///< self-pipe read end (poll()ed)
    int wake_wr_ = -1;   ///< self-pipe write end (stop() writes)
    int port_ = 0;
    std::string error_;
    std::map<int, std::unique_ptr<Conn>> conns_;
};

/**
 * Listen on 127.0.0.1:@p port (0 = kernel-assigned; the chosen port
 * is announced on stdout as `listening on <port>`) and serve
 * connections on a TcpReactor until the process dies. Returns a
 * nonzero exit code only when the socket cannot be set up.
 */
int runTcpServer(SchedService &service, int port);

} // namespace mvp::svc

#endif // MVP_SVC_SERVER_HH
