#include "cme/provider.hh"

#include "cme/oracle.hh"
#include "cme/setkey.hh"
#include "cme/solver.hh"
#include "common/logging.hh"

namespace mvp::cme
{

namespace
{

/**
 * Sampling solver with an exact fallback: a query whose 95% CI stop
 * rule never reached the solver's target (the sampler ran out of its
 * sample budget on a high-variance query) is answered by the oracle
 * instead. The choice is a pure function of the (set, op, geometry)
 * key — the memoised CI half-width decides — so hybrid answers are as
 * interleaving-independent as the providers underneath.
 */
class HybridAnalysis : public LocalityAnalysis
{
  public:
    HybridAnalysis(const ir::LoopNest &nest,
                   std::shared_ptr<StreamCache> streams)
        : solver_(nest, {}, std::move(streams)),
          oracle_(nest, solver_.streams())
    {
    }

    const ir::LoopNest &loop() const override { return solver_.loop(); }

    double missRatio(const std::vector<OpId> &set, OpId op,
                     const CacheGeom &geom) override
    {
        const RatioEstimate est = solver_.estimateRatio(set, op, geom);
        if (estimateConverged(est, solver_.params()))
            return est.ratio;
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return oracle_.missRatio(set, op, geom);
    }

    double missesPerIteration(const std::vector<OpId> &set,
                              const CacheGeom &geom) override
    {
        // Per-op choices over the canonical set, summed: each term uses
        // the sampled estimate when it converged and the exact ratio
        // when it did not, so the whole-set number is consistent with
        // the per-op queries (and duplicates never double-count).
        static thread_local std::vector<OpId> scratch;
        const std::vector<OpId> &s = detail::canonicalInto(scratch, set);
        double total = 0.0;
        for (std::size_t i = 0; i < s.size(); ++i)
            total += missRatio(s, s[i], geom);
        return total;
    }

    /** Queries answered by the oracle (monotone; for tests). */
    std::size_t fallbacks() const
    {
        return fallbacks_.load(std::memory_order_relaxed);
    }

  private:
    CmeAnalysis solver_;
    CacheOracle oracle_;
    std::atomic<std::size_t> fallbacks_{0};
};

/** The three built-ins share one provider template. */
template <typename MakeFn>
class SimpleProvider : public LocalityProvider
{
  public:
    SimpleProvider(std::string_view name, MakeFn make)
        : name_(name), make_(std::move(make))
    {
    }

    std::string_view name() const override { return name_; }

    std::unique_ptr<LocalityAnalysis>
    bind(const ir::LoopNest &nest,
         std::shared_ptr<StreamCache> streams) const override
    {
        return make_(nest, std::move(streams));
    }

  private:
    std::string_view name_;
    MakeFn make_;
};

template <typename MakeFn>
LocalityProviderFactory
providerFactory(std::string_view name, MakeFn make)
{
    return [name, make] {
        return std::make_unique<SimpleProvider<MakeFn>>(name, make);
    };
}

} // namespace

LocalityRegistry::LocalityRegistry()
{
    add("cme", providerFactory("cme", [](const ir::LoopNest &nest,
                                         std::shared_ptr<StreamCache> s) {
            return std::make_unique<CmeAnalysis>(nest, CmeParams{},
                                                 std::move(s));
        }));
    add("oracle",
        providerFactory("oracle", [](const ir::LoopNest &nest,
                                     std::shared_ptr<StreamCache> s) {
            return std::make_unique<CacheOracle>(nest, std::move(s));
        }));
    add("hybrid",
        providerFactory("hybrid", [](const ir::LoopNest &nest,
                                     std::shared_ptr<StreamCache> s) {
            return std::make_unique<HybridAnalysis>(nest, std::move(s));
        }));
}

LocalityRegistry &
LocalityRegistry::instance()
{
    static LocalityRegistry registry;
    return registry;
}

void
LocalityRegistry::add(std::string name, LocalityProviderFactory factory)
{
    table_.add(std::move(name), std::move(factory));
}

bool
LocalityRegistry::has(const std::string &name) const
{
    return table_.has(name);
}

std::unique_ptr<LocalityProvider>
LocalityRegistry::create(const std::string &name) const
{
    return table_.get(name, "locality provider")();
}

std::unique_ptr<LocalityAnalysis>
LocalityRegistry::bind(const std::string &name, const ir::LoopNest &nest,
                       std::shared_ptr<StreamCache> streams) const
{
    return create(name)->bind(nest, std::move(streams));
}

std::vector<std::string>
LocalityRegistry::names() const
{
    return table_.names();
}

} // namespace mvp::cme
