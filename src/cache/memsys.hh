/**
 * @file
 * Timed model of the distributed memory system of a multiVLIWprocessor.
 *
 * Each cluster owns a direct-mapped (configurable associativity),
 * non-blocking L1 data cache with an MSHR. The caches and main memory
 * share one or more memory buses; coherence is a snoopy MSI protocol
 * handled entirely in hardware (§2.1). The model computes, for every
 * access, the completion cycle following the latency decomposition of
 * §2.2:
 *
 *   LAT = LAT_cache + MISS_LC * (NC_waitEntry + NC_waitBus +
 *         LAT_memoryBus + (MISS_RC ? LAT_mainMemory : LAT_remoteCache))
 *
 * with MSHR merging ("an earlier miss has already started loading the
 * relevant cache line"), bus occupancy for coherence traffic (upgrades,
 * writebacks) and write-allocate stores that fetch ownership.
 */

#ifndef MVP_CACHE_MEMSYS_HH
#define MVP_CACHE_MEMSYS_HH

#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "machine/machine.hh"

namespace mvp::cache
{

/** MSI line states. */
enum class LineState : std::uint8_t { Invalid, Shared, Modified };

/** Timing and classification of one access. */
struct MemAccessResult
{
    /** Cycle at which the loaded value is available / store retires. */
    Cycle completion = 0;

    /**
     * Cycles the issuing instruction must stall *at issue* because no
     * MSHR entry was free (the paper stalls the whole machine).
     */
    Cycle issueStall = 0;

    bool localHit = false;
    bool remoteHit = false;        ///< satisfied by another cluster's cache
    bool mergedInFlight = false;   ///< folded into a pending fill
};

/**
 * The complete distributed memory system.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MachineConfig &machine);

    /**
     * Perform one access and return its timing. Accesses must be issued
     * in non-decreasing @p issue order (the lockstep simulator
     * guarantees this).
     */
    MemAccessResult access(ClusterId cluster, Addr addr, bool is_store,
                           Cycle issue);

    /** Forget all cached state and bus/MSHR occupancy. */
    void reset();

    /** Current MSI state of @p addr 's line in @p cluster (for tests). */
    LineState probe(ClusterId cluster, Addr addr) const;

    /** Event counters: hits, misses, waits, coherence traffic. */
    const StatGroup &stats() const { return stats_; }

    /** Mutable counters (the simulator merges them into its result). */
    StatGroup &stats() { return stats_; }

  private:
    struct Way
    {
        std::int64_t line = -1;
        LineState state = LineState::Invalid;
    };

    struct Cluster
    {
        std::vector<Way> ways;            ///< [set * assoc + way], MRU first
        std::vector<Cycle> mshrBusyUntil; ///< one per MSHR entry
        /** In-flight fills: line -> completion cycle. */
        std::unordered_map<std::int64_t, Cycle> inflight;
    };

    /** Earliest cycle a bus grant is possible at or after @p ready. */
    Cycle acquireBus(Cycle ready);

    /** Look up a line; returns way index or -1. */
    int findWay(const Cluster &cl, std::int64_t set, std::int64_t line)
        const;

    /** Install @p line MRU in @p set, returning the evicted way. */
    Way installLine(Cluster &cl, std::int64_t set, std::int64_t line,
                    LineState state);

    /** Invalidate @p line in every cluster except @p except. */
    void invalidateRemote(std::int64_t line, ClusterId except);

    const MachineConfig &machine_;
    CacheGeom geom_;
    std::vector<Cluster> clusters_;
    std::vector<Cycle> busFreeAt_;
    StatGroup stats_;
};

} // namespace mvp::cache

#endif // MVP_CACHE_MEMSYS_HH
