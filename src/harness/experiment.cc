#include "harness/experiment.hh"

#include <algorithm>

#include "cme/oracle.hh"
#include "cme/provider.hh"
#include "cme/solver.hh"
#include "common/logging.hh"
#include "machine/presets.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sched/backend.hh"

namespace mvp::harness
{

std::string
backendName(const RunConfig &config)
{
    return config.backend.empty() ? "baseline" : config.backend;
}

std::string
localityName(const RunConfig &config)
{
    return config.locality.empty() ? "cme" : config.locality;
}

std::string
formatSuiteResult(const SuiteResult &suite)
{
    std::string out;
    for (const auto &loop : suite.loops) {
        out += "loop ";
        out += loop.benchmark;
        out += ' ';
        out += loop.loop;
        out += " ii=";
        out += std::to_string(loop.sched.schedule.ii());
        out += " comms=";
        out += std::to_string(loop.sched.stats.comms);
        out += " promoted=";
        out += std::to_string(loop.sched.stats.missScheduledLoads);
        out += " compute=";
        out += std::to_string(loop.sim.computeCycles);
        out += " stall=";
        out += std::to_string(loop.sim.stallCycles);
        out += '\n';
    }
    for (const auto &[name, cycles] : suite.perBenchmark) {
        out += "benchmark ";
        out += name;
        out += " compute=";
        out += std::to_string(cycles.first);
        out += " stall=";
        out += std::to_string(cycles.second);
        out += '\n';
    }
    out += "total compute=";
    out += std::to_string(suite.compute);
    out += " stall=";
    out += std::to_string(suite.stall);
    out += '\n';
    return out;
}

Workbench::Workbench(const std::vector<std::string> &only)
{
    // Any Table-1 preset provides the (shared) operation latencies.
    const MachineConfig lat_machine = makeUnified();
    for (auto &bench : workloads::resolveWorkloads(only)) {
        for (auto &nest : bench.loops) {
            auto entry = std::make_unique<Entry>();
            entry->benchmark = bench.name;
            entry->nest = std::move(nest);
            entry->ddg = std::make_unique<ddg::Ddg>(
                ddg::Ddg::build(entry->nest, lat_machine));
            // Warm the DDG's lazily-computed SCC tables now, while the
            // graph is still private: from here on every query the
            // schedulers issue (sccs, inRecurrence, timeBounds,
            // feasibleII) is a pure read, so one graph can serve any
            // number of workers.
            entry->ddg->sccs();
            entry->streams =
                std::make_shared<cme::StreamCache>(entry->nest);
            entries_.push_back(std::move(entry));
        }
    }
    ensureLocality("cme");
}

void
Workbench::ensureLocality(const std::string &provider)
{
    // create() outside the entry loop: an unknown name fatals once,
    // before any binding happens.
    const auto p = cme::LocalityRegistry::instance().create(provider);
    for (auto &entry : entries_)
        if (!entry->bound.count(provider))
            entry->bound.emplace(provider,
                                 p->bind(entry->nest, entry->streams));
}

std::vector<std::string>
Workbench::benchmarks() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (std::find(out.begin(), out.end(), e->benchmark) == out.end())
            out.push_back(e->benchmark);
    return out;
}

namespace
{

/**
 * runLoop minus the fatal: returns the failure text ("" on success).
 * The sharded suite runners call this from worker threads — a fatal
 * there would std::exit() while sibling workers still run, racing
 * static destructors and garbling the diagnostic — and report the
 * first failure (in canonical item order) from the main thread after
 * the pool joins. @p locality is resolved by the caller (workers read
 * the entry's pre-bound map; runLoop resolves under its bind lock).
 */
std::string
tryRunLoop(Workbench::Entry &entry, const RunConfig &config,
           sim::SimParams sim_params, sched::SchedContext &ctx,
           cme::LocalityAnalysis *locality, LoopRunResult &res)
{
    res.benchmark = entry.benchmark;
    res.loop = entry.nest.name();

    sched::SchedulerOptions opt;
    opt.missThreshold = config.threshold;
    opt.locality = locality;
    if (opt.locality == nullptr)
        return "locality provider '" + localityName(config) +
               "' not prepared for '" + res.loop +
               "' (Workbench::ensureLocality runs before fan-out)";
    opt.searchBudget = config.searchBudget;
    opt.timeBudgetMs = config.timeBudgetMs;
    opt.exactBackend = config.exactBackend.empty() ? "exact"
                                                   : config.exactBackend;
    opt.searchJobs = config.searchJobs;
    {
        MVP_TRACE_SPAN("schedule", res.loop);
        res.sched = sched::scheduleWithBackend(backendName(config),
                                               *entry.ddg,
                                               config.machine, opt, ctx);
    }
    if (!res.sched.ok)
        return "scheduling failed for '" + res.loop +
               "': " + res.sched.error;
    if (obs::metricsOn())
        ctx.metrics.det("harness.loops_scheduled") += 1;

    const std::string err =
        res.sched.schedule.validate(*entry.ddg, config.machine);
    if (!err.empty())
        return "invalid schedule for '" + res.loop + "':\n" + err;

    MVP_TRACE_SPAN("simulate", res.loop);
    res.sim = sim::simulateLoop(*entry.ddg, res.sched.schedule,
                                config.machine, sim_params);
    return "";
}

/** Report the first failure of a sharded run, in item order. */
void
checkErrors(const std::vector<std::string> &errors)
{
    for (const std::string &err : errors)
        if (!err.empty())
            mvp_fatal(err);
}

/**
 * Resolve the backend and locality names on the main thread, before
 * any fan-out: an unknown name is a configuration error whose fatal
 * must not fire inside a pool worker (both registries are
 * fatal-on-unknown), and provider binding mutates the workbench, which
 * is only safe while no workers run.
 */
void
prepareConfig(Workbench &bench, const RunConfig &config)
{
    const std::string name = backendName(config);
    if (!sched::BackendRegistry::instance().has(name))
        (void)sched::BackendRegistry::instance().create(name);   // fatals
    bench.ensureLocality(localityName(config));
    if (config.metrics)
        obs::Registry::instance().enable();
    if (!config.traceFile.empty() && !obs::traceOn())
        obs::traceInit(config.traceFile);
}

} // namespace

/**
 * Snapshot the shared caches' cumulative tallies into the registry.
 * Max-merged gauges, not counters: the atomics are monotone over the
 * process, so "keep the largest seen" makes repeated harvests (one
 * per sweep) idempotent instead of double-counting. Runtime section —
 * two workers racing one memo key legitimately both count a miss.
 */
void
harvestLocalityMetrics(const Workbench &bench)
{
    if (!obs::metricsOn())
        return;
    std::int64_t streams_built = 0;
    std::int64_t stream_requests = 0;
    std::int64_t ratio_lookups = 0;
    std::int64_t ratio_solved = 0;
    std::int64_t points_evaluated = 0;
    std::int64_t oracle_full = 0;
    std::int64_t oracle_incremental = 0;
    for (const auto &entry : bench.entries()) {
        if (entry->streams) {
            streams_built +=
                static_cast<std::int64_t>(entry->streams->streamsBuilt());
            stream_requests += static_cast<std::int64_t>(
                entry->streams->streamRequests());
        }
        for (const auto &[provider, analysis] : entry->bound) {
            if (const auto *cme =
                    dynamic_cast<const cme::CmeAnalysis *>(
                        analysis.get())) {
                ratio_lookups +=
                    static_cast<std::int64_t>(cme->ratioLookups());
                ratio_solved +=
                    static_cast<std::int64_t>(cme->queriesSolved());
                points_evaluated +=
                    static_cast<std::int64_t>(cme->pointsEvaluated());
            }
            if (const auto *oracle =
                    dynamic_cast<const cme::CacheOracle *>(
                        analysis.get())) {
                oracle_full += static_cast<std::int64_t>(
                    oracle->fullSimulations());
                oracle_incremental += static_cast<std::int64_t>(
                    oracle->incrementalExtensions());
            }
        }
    }
    obs::MetricShard shard;
    shard.rtMax("cme.streams_built", streams_built);
    shard.rtMax("cme.stream_requests", stream_requests);
    shard.rtMax("cme.ratio_lookups", ratio_lookups);
    shard.rtMax("cme.ratio_queries_solved", ratio_solved);
    shard.rtMax("cme.points_evaluated", points_evaluated);
    shard.rtMax("oracle.full_simulations", oracle_full);
    shard.rtMax("oracle.incremental_extensions", oracle_incremental);
    obs::Registry::instance().fold(shard);
}

LoopRunResult
runLoop(Workbench::Entry &entry, const RunConfig &config,
        sim::SimParams sim_params, sched::SchedContext &ctx)
{
    // When the provider is not bound yet, the single-loop entry point
    // binds a *transient* analysis instead of mutating the shared
    // entry: entries stay read-only outside ensureLocality(), so
    // runLoop may run concurrently with itself and with sharded
    // sweeps. Callers that runLoop() repeatedly should prepare the
    // workbench (ensureLocality) once to keep the analysis memo warm.
    const std::string provider = localityName(config);
    cme::LocalityAnalysis *locality = entry.locality(provider);
    std::unique_ptr<cme::LocalityAnalysis> transient;
    if (locality == nullptr) {
        transient = cme::LocalityRegistry::instance().bind(
            provider, entry.nest, entry.streams);
        locality = transient.get();
    }
    LoopRunResult res;
    const std::string err =
        tryRunLoop(entry, config, sim_params, ctx, locality, res);
    if (!err.empty())
        mvp_fatal(err);
    return res;
}

LoopRunResult
runLoop(Workbench::Entry &entry, const RunConfig &config,
        sim::SimParams sim_params)
{
    sched::SchedContext ctx;
    return runLoop(entry, config, sim_params, ctx);
}

namespace
{

/** Fold per-item loop results into a SuiteResult, in item order. */
SuiteResult
mergeSuite(std::vector<LoopRunResult> &&loops)
{
    SuiteResult suite;
    for (auto &r : loops) {
        suite.compute += r.sim.computeCycles;
        suite.stall += r.sim.stallCycles;
        auto &per = suite.perBenchmark[r.benchmark];
        per.first += r.sim.computeCycles;
        per.second += r.sim.stallCycles;
        suite.loops.push_back(std::move(r));
    }
    return suite;
}

} // namespace

SuiteResult
runSuite(Workbench &bench, const RunConfig &config,
         sim::SimParams sim_params, ParallelDriver &driver)
{
    prepareConfig(bench, config);
    const auto &entries = bench.entries();
    std::vector<LoopRunResult> results(entries.size());
    std::vector<std::string> errors(entries.size());
    const std::string provider = localityName(config);
    driver.run(entries.size(),
               [&](std::size_t i, sched::SchedContext &ctx) {
                   errors[i] = tryRunLoop(
                       *entries[i], config, sim_params, ctx,
                       entries[i]->locality(provider), results[i]);
               });
    checkErrors(errors);
    harvestLocalityMetrics(bench);
    return mergeSuite(std::move(results));
}

SuiteResult
runSuite(Workbench &bench, const RunConfig &config,
         sim::SimParams sim_params)
{
    ParallelDriver driver;
    return runSuite(bench, config, sim_params, driver);
}

std::vector<SuiteResult>
runSuiteSweep(Workbench &bench, const std::vector<RunConfig> &configs,
              sim::SimParams sim_params, ParallelDriver &driver)
{
    for (const RunConfig &config : configs)
        prepareConfig(bench, config);
    const auto &entries = bench.entries();
    const std::size_t per_config = entries.size();
    std::vector<LoopRunResult> results(per_config * configs.size());
    std::vector<std::string> errors(results.size());
    // Item order is (config-major, entry-minor): the merge below walks
    // contiguous slices, and every config's loops keep workbench order.
    // Provider names resolved once per config, not once per item.
    std::vector<std::string> providers;
    providers.reserve(configs.size());
    for (const RunConfig &config : configs)
        providers.push_back(localityName(config));
    driver.run(results.size(),
               [&](std::size_t i, sched::SchedContext &ctx) {
                   const std::size_t c = i / per_config;
                   const std::size_t e = i % per_config;
                   errors[i] = tryRunLoop(
                       *entries[e], configs[c], sim_params, ctx,
                       entries[e]->locality(providers[c]), results[i]);
               });
    checkErrors(errors);
    harvestLocalityMetrics(bench);

    std::vector<SuiteResult> out;
    out.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::vector<LoopRunResult> slice(
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        c * per_config)),
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        (c + 1) * per_config)));
        out.push_back(mergeSuite(std::move(slice)));
    }
    return out;
}

} // namespace mvp::harness
