/**
 * @file
 * Experiment harness: prepares every workload loop once (DDG + CME
 * analysis bound to a stable LoopNest) and runs (machine, scheduler,
 * threshold) configurations over the whole suite, reporting the paper's
 * metric — cycles executing modulo-scheduled loops, split into
 * NCYCLE_compute and NCYCLE_stall and normalised to the unified
 * configuration.
 *
 * Suite runs go through the ParallelDriver (harness/driver.hh): every
 * (loop, configuration) point is an independent work item, sharded
 * across a --jobs-sized pool and merged back in canonical (benchmark,
 * loop, config) order, so the emitted tables are byte-identical at any
 * job count.
 */

#ifndef MVP_HARNESS_EXPERIMENT_HH
#define MVP_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cme/locality.hh"
#include "cme/stream.hh"
#include "ddg/ddg.hh"
#include "harness/driver.hh"
#include "machine/machine.hh"
#include "sched/scheduler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

namespace mvp::harness
{

/** One experiment point. */
struct RunConfig
{
    MachineConfig machine;

    /**
     * Scheduler backend by registry name ("baseline", "rmca", "exact",
     * "verify", or anything registered at runtime). Empty is read as
     * "baseline".
     */
    std::string backend = "baseline";

    /**
     * Locality provider by registry name ("cme", "oracle", "hybrid",
     * or anything registered at runtime; cme/provider.hh). Empty is
     * read as "cme" — the paper's sampling solver.
     */
    std::string locality = "cme";

    double threshold = 1.0;

    /**
     * Deprecated node cap forwarded to search-based backends (0 =
     * uncapped, the default — the wall clock below is in charge).
     */
    std::int64_t searchBudget = 0;

    /**
     * Wall-clock budget of search-based backends per loop, in
     * milliseconds (negative = no deadline).
     */
    std::int64_t timeBudgetMs = sched::DEFAULT_TIME_BUDGET_MS;

    /**
     * Certifying engine verify-mode points run ("exact" or
     * "portfolio"); empty is read as "exact". Ignored by the
     * heuristic backends.
     */
    std::string exactBackend = "exact";

    /** Portfolio worker count (0 = default). */
    int searchJobs = 0;

    /**
     * Enable the obs::Registry for this run (programmatic twin of the
     * bare `--metrics` flag). The caller reads the reports off
     * obs::Registry::instance(); nothing is written automatically —
     * report emission belongs to the flag layer (metricsInit).
     */
    bool metrics = false;

    /**
     * Start a trace session writing Chrome trace-event JSON to this
     * file (programmatic twin of `--trace=FILE`). Applied only when
     * no session is active, so a sweep of many configs traces into
     * the first config's file rather than restarting per config; the
     * flag layer's atexit hook (or an explicit obs::traceFinish())
     * writes it out.
     */
    std::string traceFile;
};

/** The scheduler-backend registry name runLoop() resolves @p config to. */
std::string backendName(const RunConfig &config);

/** The locality-provider registry name runLoop() resolves @p config to. */
std::string localityName(const RunConfig &config);

/** Per-loop outcome. */
struct LoopRunResult
{
    std::string benchmark;
    std::string loop;
    sched::ScheduleResult sched;
    sim::SimResult sim;
};

/** Whole-suite outcome. */
struct SuiteResult
{
    Cycle compute = 0;
    Cycle stall = 0;
    std::vector<LoopRunResult> loops;

    /** Per-benchmark (compute, stall) sums. */
    std::map<std::string, std::pair<Cycle, Cycle>> perBenchmark;

    Cycle total() const { return compute + stall; }
};

/**
 * Canonical textual serialisation of a suite result: one line per loop
 * (benchmark, loop, backend-relevant schedule facts, simulated cycles)
 * plus the aggregates, in workbench order. Two SuiteResults are equal
 * iff their serialisations are byte-identical — the determinism tests
 * compare jobs=1 against jobs=N through this.
 */
std::string formatSuiteResult(const SuiteResult &suite);

/**
 * All workload loops prepared once: stable LoopNest storage plus, per
 * loop, the DDG, one shared access-stream cache and the bound locality
 * analyses (one per provider name in use). All of it amortises across
 * every configuration of a sweep — including sharded sweeps: the
 * analyses are thread-safe and their answers do not depend on query
 * interleaving.
 */
class Workbench
{
  public:
    /** One prepared loop. */
    struct Entry
    {
        std::string benchmark;
        ir::LoopNest nest;
        std::unique_ptr<ddg::Ddg> ddg;

        /**
         * Access-stream cache shared by every locality analysis bound
         * to this loop (cme/stream.hh): materialised line streams
         * amortise across providers and configurations alike.
         */
        std::shared_ptr<cme::StreamCache> streams;

        /**
         * Locality analyses by provider name, bound by
         * Workbench::ensureLocality() — on the main thread, before any
         * sharded run — and read-only afterwards.
         */
        std::map<std::string, std::unique_ptr<cme::LocalityAnalysis>>
            bound;

        /** The analysis bound under @p provider (nullptr if none). */
        cme::LocalityAnalysis *locality(const std::string &provider) const
        {
            const auto it = bound.find(provider);
            return it == bound.end() ? nullptr : it->second.get();
        }
    };

    /**
     * Prepare every loop of every builtin suite, or of the workloads
     * named by @p only — each name resolved like
     * workloads::benchmarkByName, so `file:<path>` loop files and
     * `gen:<spec>` generated suites mix freely with builtin names (and
     * unknown names fail with the list of valid ones). Operation
     * latencies are identical in all Table-1 machines, so one DDG per
     * loop serves the whole sweep. Preparation also warms each DDG's
     * lazily-computed SCC tables so the graphs are read-only — and
     * therefore freely shared — once sharded scheduling starts. The
     * default "cme" provider is bound to every entry up front.
     */
    explicit Workbench(const std::vector<std::string> &only = {});

    /**
     * Bind @p provider (a cme::LocalityRegistry name) to every entry
     * that does not have it yet. NOT thread-safe: call on the main
     * thread before fanning a sweep out — the suite runners do this for
     * every configuration they are handed. fatal() on unknown names.
     */
    void ensureLocality(const std::string &provider);

    const std::vector<std::unique_ptr<Entry>> &entries() const
    {
        return entries_;
    }

    /** Benchmarks present (paper order). */
    std::vector<std::string> benchmarks() const;

  private:
    std::vector<std::unique_ptr<Entry>> entries_;
};

/**
 * Schedule + simulate one prepared loop under one configuration, with
 * the caller's scheduler context.
 */
LoopRunResult runLoop(Workbench::Entry &entry, const RunConfig &config,
                      sim::SimParams sim_params,
                      sched::SchedContext &ctx);

/** runLoop with a transient context. */
LoopRunResult runLoop(Workbench::Entry &entry, const RunConfig &config,
                      sim::SimParams sim_params = {});

/**
 * Schedule + simulate the whole workbench under one configuration,
 * sharding the loops across @p driver.
 */
SuiteResult runSuite(Workbench &bench, const RunConfig &config,
                     sim::SimParams sim_params, ParallelDriver &driver);

/** runSuite on a default-sized driver (MVP_JOBS / hardware size). */
SuiteResult runSuite(Workbench &bench, const RunConfig &config,
                     sim::SimParams sim_params = {});

/**
 * Run many configurations over the workbench at once, sharding the
 * full (loop, configuration) cross product across @p driver — the
 * preferred shape for figure/table sweeps, where the item count (and
 * so the driver's load-balancing slack) is configs x loops instead of
 * loops. Returns one SuiteResult per configuration, in input order,
 * each byte-identical to what runSuite would have produced serially.
 */
std::vector<SuiteResult> runSuiteSweep(
    Workbench &bench, const std::vector<RunConfig> &configs,
    sim::SimParams sim_params, ParallelDriver &driver);

/**
 * Snapshot the workbench's shared-cache tallies (StreamCache, the CME
 * RatioMemo, the oracle's incremental-vs-fresh counters) into the
 * obs::Registry as max-merged runtime gauges. No-op when metrics are
 * off. The suite runners call this after every sweep; call it
 * directly after hand-rolled runLoop() loops.
 */
void harvestLocalityMetrics(const Workbench &bench);

} // namespace mvp::harness

#endif // MVP_HARNESS_EXPERIMENT_HH
