#include "svc/session.hh"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/logging.hh"

namespace mvp::svc
{
namespace
{

std::vector<std::string>
splitWords(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
            ++i;
        std::size_t j = i;
        while (j < s.size() && s[j] != ' ' && s[j] != '\t')
            ++j;
        if (j > i)
            out.push_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

bool
parseSize(const std::string &s, std::size_t *out)
{
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || s.empty() || v < 0)
        return false;
    *out = static_cast<std::size_t>(v);
    return true;
}

void
appendFrame(std::string &out, const std::string &head,
            const std::string &payload)
{
    out += head + " " + std::to_string(payload.size()) + "\n";
    out += payload;
    out += "\n";
}

} // namespace

bool
ServiceSession::consume(const char *data, std::size_t n,
                        std::string &out)
{
    if (closed_)
        return false;
    buffer_.append(data, n);
    for (;;) {
        if (closed_) {
            buffer_.clear();
            return false;
        }
        if (mode_ == Mode::Line) {
            const std::size_t eol = buffer_.find('\n');
            if (eol == std::string::npos)
                break;
            std::string line = buffer_.substr(0, eol);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            buffer_.erase(0, eol + 1);
            handleLine(line, out);
        } else {
            // Payload plus its terminating newline.
            if (buffer_.size() < pending_bytes_ + 1)
                break;
            if (buffer_[pending_bytes_] != '\n') {
                protocolError("payload not followed by newline", out);
                continue;
            }
            std::string payload = buffer_.substr(0, pending_bytes_);
            buffer_.erase(0, pending_bytes_ + 1);
            mode_ = Mode::Line;
            handlePayload(std::move(payload), out);
        }
    }
    return !closed_;
}

void
ServiceSession::finish(std::string &out)
{
    if (closed_)
        return;
    if (!buffer_.empty())
        protocolError("input ended mid-frame", out);
    else
        flushBatch(out);
    closed_ = true;
}

void
ServiceSession::handleLine(const std::string &line, std::string &out)
{
    const std::vector<std::string> words = splitWords(line);
    if (words.empty())
        return;   // blank lines between frames are tolerated
    const std::string &cmd = words[0];

    if (cmd == "REQ") {
        std::size_t nbytes = 0;
        if (words.size() != 3 || !parseSize(words[2], &nbytes)) {
            protocolError("REQ wants 'REQ <id> <nbytes>', got '" +
                              line + "'",
                          out);
            return;
        }
        if (nbytes > MAX_FRAME_BYTES) {
            protocolError("REQ payload of " + words[2] +
                              " bytes exceeds the frame cap",
                          out);
            return;
        }
        pending_cmd_ = "REQ";
        pending_id_ = words[1];
        pending_bytes_ = nbytes;
        mode_ = Mode::Payload;
        return;
    }
    if (cmd == "SAVE" || cmd == "LOAD") {
        std::size_t nbytes = 0;
        if (words.size() != 2 || !parseSize(words[1], &nbytes) ||
            nbytes > MAX_FRAME_BYTES) {
            protocolError(cmd + " wants '" + cmd + " <nbytes>', got '" +
                              line + "'",
                          out);
            return;
        }
        pending_cmd_ = cmd;
        pending_id_.clear();
        pending_bytes_ = nbytes;
        mode_ = Mode::Payload;
        return;
    }
    if (cmd == "FLUSH") {
        flushBatch(out);
        return;
    }
    if (cmd == "STATS") {
        appendFrame(out, "STATS", svc_.renderStats());
        return;
    }
    if (cmd == "QUIT") {
        flushBatch(out);
        out += "BYE\n";
        closed_ = true;
        return;
    }
    protocolError("unknown command '" + cmd +
                      "' (known: REQ, FLUSH, STATS, SAVE, LOAD, QUIT)",
                  out);
}

void
ServiceSession::handlePayload(std::string &&payload, std::string &out)
{
    if (pending_cmd_ == "REQ") {
        PendingReq p;
        p.id = std::move(pending_id_);
        // The zero-parse lane: byte-identical repeats resolve here,
        // before the parser ever sees the payload.
        p.resolved = svc_.rawProbe(payload);
        if (p.resolved == nullptr) {
            p.parsed = parseRequest(payload, "request '" + p.id + "'");
            p.parsed.id = p.id;
        }
        pending_.push_back(std::move(p));
        return;
    }
    // SAVE / LOAD: the payload is a file path, acted on immediately.
    std::string err;
    const bool ok = pending_cmd_ == "SAVE"
                        ? svc_.saveStateFile(payload, &err)
                        : svc_.loadStateFile(payload, &err);
    if (ok)
        out += pending_cmd_ == "SAVE" ? "OK save\n" : "OK load\n";
    else
        appendFrame(out, "ERR", err);
}

void
ServiceSession::flushBatch(std::string &out)
{
    if (pending_.empty())
        return;

    // Serve only the frames the raw lane didn't already resolve; the
    // replies land back into their submission slots.
    std::vector<Request> todo;
    std::vector<std::size_t> slots;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].resolved != nullptr)
            continue;
        slots.push_back(i);
        todo.push_back(std::move(pending_[i].parsed));
    }
    if (!todo.empty()) {
        auto replies = svc_.processBatch(std::move(todo));
        for (std::size_t j = 0; j < replies.size(); ++j)
            pending_[slots[j]].resolved =
                std::move(replies[j].payload);
    }

    // Emit every REP in submission order. One reserve covers the
    // whole burst; the frame heads are appended piecewise so no
    // per-frame temporaries are allocated.
    const auto emit_start = std::chrono::steady_clock::now();
    const std::size_t before = out.size();
    std::size_t want = 0;
    for (const PendingReq &p : pending_)
        want += p.id.size() + p.resolved->size() + 32;
    out.reserve(before + want);
    for (const PendingReq &p : pending_) {
        out += "REP ";
        out += p.id;
        out += ' ';
        out += std::to_string(p.resolved->size());
        out += '\n';
        out += *p.resolved;
        out += '\n';
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - emit_start)
                          .count();
    svc_.noteFlush(pending_.size(), out.size() - before, us);
    pending_.clear();
}

void
ServiceSession::protocolError(const std::string &message,
                              std::string &out)
{
    appendFrame(out, "ERR", message);
    closed_ = true;
}

} // namespace mvp::svc
