/**
 * @file
 * The portfolio backend and the exact-engine speedup machinery it is
 * built on.
 *
 *  - Portfolio-vs-serial agreement over every workload loop and
 *    clustered machine (the 96-combo sweep): same II, same lower
 *    bound, same certificate, byte-identical placements.
 *  - Determinism across job counts: the optimality-gap table is
 *    byte-identical at searchJobs 1, 2 and 8.
 *  - Budget degradation: an already-expired wall-clock budget reports
 *    "gap unknown" through the same error contract as the serial
 *    engine.
 *  - Refutation lifting: exhausted II probes persist as certified
 *    lower bounds, with and without conflict learning.
 *  - DominanceMemo unit behaviour (insert/contains/reset, the
 *    zero-key sentinel, duplicate no-ops, growth).
 *  - Pruning toggles never change the answer, and the node-based
 *    tiebreak budget is reproducible and never reads as a budget
 *    failure.
 */

#include <gtest/gtest.h>

#include <string>

#include "ddg/ddg.hh"
#include "harness/driver.hh"
#include "harness/gapstudy.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "sched/exact/bnb.hh"
#include "sched/exact/portfolio.hh"
#include "workloads/workloads.hh"

namespace mvp::sched
{
namespace
{

void
expectSameSchedule(const ScheduleResult &a, const ScheduleResult &b,
                   const ddg::Ddg &graph, const std::string &label)
{
    ASSERT_EQ(a.ok, b.ok) << label;
    ASSERT_TRUE(a.ok) << label << ": " << a.error;
    EXPECT_EQ(a.schedule.ii(), b.schedule.ii()) << label;
    EXPECT_EQ(a.stats.iiLowerBound, b.stats.iiLowerBound) << label;
    EXPECT_EQ(a.stats.provenOptimal, b.stats.provenOptimal) << label;
    for (std::size_t v = 0; v < graph.size(); ++v) {
        const auto pa = a.schedule.placed(static_cast<OpId>(v));
        const auto pb = b.schedule.placed(static_cast<OpId>(v));
        EXPECT_EQ(pa.time, pb.time) << label << " op " << v;
        EXPECT_EQ(pa.cluster, pb.cluster) << label << " op " << v;
    }
}

/** The headline property: the portfolio is a faster route to the same
 * answer. Every loop, every machine, compared field by field against
 * the serial engine, including placements (the final serial
 * re-derivation makes them job-count independent). */
TEST(Portfolio, AgreesWithSerialOnEveryLoop)
{
    harness::ParallelDriver pool(4);
    int solved = 0;
    for (const auto &wl : workloads::allLoops()) {
        for (int nc : {1, 2, 4}) {
            const auto machine = makeConfig(nc);
            const auto graph = ddg::Ddg::build(wl.nest, machine);
            const std::string label = wl.benchmark + "/" +
                                      wl.nest.name() + "/c" +
                                      std::to_string(nc);
            const auto serial = exact::scheduleExact(graph, machine);
            SchedContext ctx;
            const auto port = exact::scheduleExactPortfolio(
                graph, machine, {}, pool, ctx);
            expectSameSchedule(serial, port, graph, label);
            ++solved;
        }
    }
    EXPECT_EQ(solved, 96);
}

TEST(Portfolio, RegisteredAsBackend)
{
    auto &reg = BackendRegistry::instance();
    ASSERT_TRUE(reg.has("portfolio"));
    const auto backend = reg.create("portfolio");
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "portfolio");
}

/** The determinism contract behind every report: the gap table is a
 * pure function of (workloads, machine, options), not of the job
 * count. */
TEST(Portfolio, GapTableByteIdenticalAcrossJobCounts)
{
    harness::ParallelDriver driver(2);
    harness::Workbench bench({"tomcatv", "swim", "hydro2d"});
    const auto machine = makeTwoCluster();

    std::string reference;
    for (int jobs : {1, 2, 8}) {
        harness::GapOptions options;
        options.exactBackend = "portfolio";
        options.searchJobs = jobs;
        const auto study =
            harness::runGapStudy(bench, machine, options, driver);
        EXPECT_EQ(study.unknown(), 0) << "jobs " << jobs;
        const std::string table = harness::formatGapTable(study);
        if (reference.empty())
            reference = table;
        else
            EXPECT_EQ(table, reference) << "jobs " << jobs;
    }
}

/** An expired wall-clock budget degrades exactly like the serial
 * engine: no schedule, budgetExhausted, the documented error text. */
TEST(Portfolio, StarvedBudgetDegradesGracefully)
{
    const auto bench = workloads::makeApplu();
    const auto machine = makeFourCluster();
    const auto graph = ddg::Ddg::build(bench.loops[1], machine);
    SchedulerOptions opt;
    opt.timeBudgetMs = 0;
    opt.searchJobs = 2;
    const auto r =
        scheduleWithBackend("portfolio", graph, machine, opt);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.stats.budgetExhausted);
    EXPECT_FALSE(r.stats.provenOptimal);
    EXPECT_NE(r.error.find("budget"), std::string::npos);

    // The serial engine must say the same thing in the same words —
    // reports diff the two backends verbatim.
    exact::ExactOptions eopt;
    eopt.timeBudgetMs = 0;
    const auto s = exact::scheduleExact(graph, machine, eopt);
    EXPECT_FALSE(s.ok);
    EXPECT_EQ(r.error, s.error);
}

/** Refutation lifting: when the minimal feasible II sits above MII,
 * the exhausted probes below it persist as a certified lower bound —
 * the certificate is lb == II, not lb == MII. */
TEST(ExactEngine, RefutedProbesLiftTheLowerBound)
{
    int lifted = 0;
    for (const auto &wl : workloads::allLoops()) {
        for (int nc : {2, 4}) {
            const auto machine = makeConfig(nc);
            const auto graph = ddg::Ddg::build(wl.nest, machine);
            const auto r = exact::scheduleExact(graph, machine);
            ASSERT_TRUE(r.ok) << wl.nest.name();
            if (!r.stats.provenOptimal ||
                r.schedule.ii() == r.stats.mii)
                continue;
            // Optimality above MII can only come from refutations.
            EXPECT_EQ(r.stats.iiLowerBound, r.schedule.ii())
                << wl.nest.name() << "/c" << nc;
            EXPECT_GT(r.stats.iiAttempts, 1)
                << wl.nest.name() << "/c" << nc;
            ++lifted;
        }
    }
    // The property must not hold vacuously.
    EXPECT_GT(lifted, 0);
}

/** Pruning is invisible in the answer: conflict learning may only
 * change node counts, never the II, the bound, the certificate or the
 * placements. (The dominance memo used to ride in this toggle sweep;
 * it was retired after the PR-7 counters proved its hit count
 * structurally zero.) */
TEST(ExactEngine, PruningTogglesNeverChangeTheAnswer)
{
    const char *names[] = {"tomcatv", "hydro2d", "mgrid"};
    for (const char *name : names) {
        const auto bench = workloads::benchmarkByName(name);
        for (const auto &nest : bench.loops) {
            for (int nc : {2, 4}) {
                const auto machine = makeConfig(nc);
                const auto graph = ddg::Ddg::build(nest, machine);
                const std::string label = std::string(name) + "/" +
                                          nest.name() + "/c" +
                                          std::to_string(nc);
                exact::ExactOptions base;
                const auto ref =
                    exact::scheduleExact(graph, machine, base);
                ASSERT_TRUE(ref.ok) << label;
                for (const bool learning : {false, true}) {
                    exact::ExactOptions opt;
                    opt.conflictLearning = learning;
                    const auto r =
                        exact::scheduleExact(graph, machine, opt);
                    ASSERT_TRUE(r.ok) << label;
                    EXPECT_EQ(r.schedule.ii(), ref.schedule.ii())
                        << label << " learning " << learning;
                    EXPECT_EQ(r.stats.iiLowerBound,
                              ref.stats.iiLowerBound)
                        << label << " learning " << learning;
                    EXPECT_EQ(r.stats.provenOptimal,
                              ref.stats.provenOptimal)
                        << label << " learning " << learning;
                }
            }
        }
    }
}

/** Probe configuration (tiebreakPressure off, first feasible leaf
 * wins) must agree with itself with conflict learning toggled: the
 * first feasible leaf — not just the II — is identical, which is what
 * the portfolio's byte-identity contract rides on. */
TEST(ExactEngine, ProbeModeAnswersAreAcceleratorIndependent)
{
    for (const auto &wl : workloads::allLoops()) {
        for (int nc : {1, 2, 4}) {
            const auto machine = makeConfig(nc);
            const auto graph = ddg::Ddg::build(wl.nest, machine);
            const std::string label = wl.benchmark + "/" +
                                      wl.nest.name() + "/c" +
                                      std::to_string(nc);
            exact::ExactOptions probe;
            probe.tiebreakPressure = false;
            exact::ExactOptions plain = probe;
            plain.conflictLearning = false;
            const auto a = exact::scheduleExact(graph, machine, probe);
            const auto b = exact::scheduleExact(graph, machine, plain);
            expectSameSchedule(a, b, graph, label);
        }
    }
}

/** The tiebreak allowance is node-based so its outcome is a pure
 * function of the inputs: two runs agree exactly, and running out of
 * allowance ends the phase without reading as a budget failure. */
TEST(ExactEngine, TiebreakBudgetIsDeterministicAndBenign)
{
    const auto bench = workloads::makeSwim();
    const auto machine = makeTwoCluster();
    const auto graph = ddg::Ddg::build(bench.loops[0], machine);

    exact::ExactOptions opt;
    opt.tiebreakBudget = 1;
    const auto a = exact::scheduleExact(graph, machine, opt);
    const auto b = exact::scheduleExact(graph, machine, opt);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_FALSE(a.stats.budgetExhausted);
    EXPECT_FALSE(a.stats.pressureOptimal);
    EXPECT_EQ(a.stats.searchNodes, b.stats.searchNodes);
    for (std::size_t v = 0; v < graph.size(); ++v) {
        EXPECT_EQ(a.schedule.placed(static_cast<OpId>(v)).time,
                  b.schedule.placed(static_cast<OpId>(v)).time);
        EXPECT_EQ(a.schedule.placed(static_cast<OpId>(v)).cluster,
                  b.schedule.placed(static_cast<OpId>(v)).cluster);
    }

    // The full-allowance run finds an at-least-as-lean schedule and
    // the same II (the certificate precedes the tiebreak).
    const auto full = exact::scheduleExact(graph, machine);
    ASSERT_TRUE(full.ok);
    EXPECT_EQ(full.schedule.ii(), a.schedule.ii());
}

} // namespace
} // namespace mvp::sched
