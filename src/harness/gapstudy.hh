/**
 * @file
 * Optimality-gap study: schedule every workbench loop with the rmca
 * heuristic and the exact branch-and-bound backend and tabulate the II
 * gap — the repo's analogue of the heuristic-vs-exact comparisons in
 * the SMT/SAT exact-modulo-scheduling literature (Roorda; Tirelli et
 * al.). Loops the exact search cannot settle within its budget — the
 * wall clock, or the deprecated node cap — are reported as "gap
 * unknown" rather than guessed, and the report states both the
 * unknown count and the budget that was in force.
 */

#ifndef MVP_HARNESS_GAPSTUDY_HH
#define MVP_HARNESS_GAPSTUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace mvp::harness
{

/** How hard the certifying engine tries, and which engine it is. */
struct GapOptions
{
    /** rmca miss-latency threshold. */
    double threshold = 0.25;

    /**
     * Deprecated node cap per II attempt (0 = uncapped, leaving the
     * wall clock in charge). Kept for deterministic-starvation tests:
     * under a pure node cap the set of "gap unknown" rows is a pure
     * function of (workbench, machine, options).
     */
    std::int64_t nodeBudget = 0;

    /**
     * Wall-clock budget per loop, in milliseconds (negative = no
     * deadline, 0 = expired on entry). The budget the table reports
     * as in force.
     */
    std::int64_t timeBudgetMs = sched::DEFAULT_TIME_BUDGET_MS;

    /** Locality provider for the heuristic (empty = "cme"). */
    std::string locality = "cme";

    /**
     * Certifying engine: "exact" (serial) or "portfolio" (raced on
     * the worker pool). Empty is read as "exact".
     */
    std::string exactBackend = "exact";

    /** Worker count of the portfolio backend (0 = default). */
    int searchJobs = 0;
};

/** Per-loop outcome of the gap study. */
struct GapRow
{
    std::string benchmark;
    std::string loop;
    Cycle mii = 0;
    Cycle heuristicII = 0;
    Cycle exactII = 0;        ///< 0 when the exact search did not settle
    Cycle gap = 0;            ///< heuristicII - exactII (when known)
    bool gapKnown = false;    ///< exact solved within budget
    bool provenOptimal = false;   ///< exact II carries a certificate
    std::int64_t searchNodes = 0;
};

/** Whole-suite outcome plus per-benchmark aggregates. */
struct GapStudy
{
    std::vector<GapRow> rows;

    /** The budgets/engine the study ran under (for the report). */
    GapOptions options;

    /** Rows with a known gap. */
    int known() const;

    /** Rows without one — the "gap unknown" count of the report. */
    int unknown() const;

    /** Rows where the heuristic was optimal (gap == 0, known). */
    int tight() const;

    /** Sum of known gaps (cycles of II lost by the heuristic). */
    Cycle totalGap() const;
};

/**
 * Run the study over every loop of @p bench on @p machine under
 * @p options, sharding loops across @p driver. The exact search is the
 * workload this sharding was built for: a single hard loop can cost
 * ~10^3x an easy one, and the driver's dynamic item claiming keeps the
 * pool busy around it. Rows come back in workbench order regardless of
 * the job count.
 */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     const GapOptions &options, ParallelDriver &driver);

/**
 * Historical signature: rmca at @p threshold against the serial exact
 * backend under @p search_budget nodes per attempt (plus the default
 * wall clock). Forwards to the GapOptions overload.
 */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     double threshold, std::int64_t search_budget,
                     ParallelDriver &driver,
                     const std::string &locality = "cme");

/** runGapStudy on a default-sized driver (MVP_JOBS / hardware size). */
GapStudy runGapStudy(Workbench &bench, const MachineConfig &machine,
                     double threshold = 0.25,
                     std::int64_t search_budget =
                         sched::DEFAULT_SEARCH_BUDGET,
                     const std::string &locality = "cme");

/**
 * Render the study: one row per loop plus a per-benchmark aggregate
 * block (loops, gaps known, heuristic-optimal count, total gap).
 */
std::string formatGapTable(const GapStudy &study);

} // namespace mvp::harness

#endif // MVP_HARNESS_GAPSTUDY_HH
