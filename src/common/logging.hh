/**
 * @file
 * gem5-flavoured status and error reporting.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so the debugger or a core dump can take over.
 * fatal()  - the user asked for something impossible (bad configuration);
 *            exits with status 1.
 * warn()   - something works but not as well as it should.
 * inform() - neutral progress/status output.
 */

#ifndef MVP_COMMON_LOGGING_HH
#define MVP_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace mvp
{

/** Verbosity levels for inform(); higher is chattier. */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2, Debug = 3 };

/**
 * What mvp_fatal() throws while a FatalScope is active on the calling
 * thread. Carries the composed message (without the file:line suffix
 * the exiting path prints — the catcher reports context its own way).
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard turning mvp_fatal() into a throw of FatalError on this
 * thread for its lifetime. Long-running servers wrap the handling of
 * one request in a FatalScope so malformed input — which the parsers
 * and registries report via mvp_fatal() — rejects that request instead
 * of killing the process. Nests; panic() is unaffected.
 */
class FatalScope
{
  public:
    FatalScope();
    ~FatalScope();
    FatalScope(const FatalScope &) = delete;
    FatalScope &operator=(const FatalScope &) = delete;
};

/** Process-wide log level; default Normal. */
LogLevel logLevel();

/** Set the process-wide log level (e.g. from a harness flag). */
void setLogLevel(LogLevel level);

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(LogLevel level, const std::string &msg);

/** Stream-compose a message from a variadic pack. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail
} // namespace mvp

/** Abort: internal invariant violated. */
#define mvp_panic(...)                                                       \
    ::mvp::detail::panicImpl(__FILE__, __LINE__,                             \
                             ::mvp::detail::composeMessage(__VA_ARGS__))

/** Exit(1): unusable user configuration or input. */
#define mvp_fatal(...)                                                       \
    ::mvp::detail::fatalImpl(__FILE__, __LINE__,                             \
                             ::mvp::detail::composeMessage(__VA_ARGS__))

/** Non-fatal warning on stderr. */
#define mvp_warn(...)                                                        \
    ::mvp::detail::warnImpl(::mvp::detail::composeMessage(__VA_ARGS__))

/** Status message at Normal verbosity. */
#define mvp_inform(...)                                                      \
    ::mvp::detail::informImpl(::mvp::LogLevel::Normal,                       \
                              ::mvp::detail::composeMessage(__VA_ARGS__))

/** Status message only shown at Verbose or Debug verbosity. */
#define mvp_verbose(...)                                                     \
    ::mvp::detail::informImpl(::mvp::LogLevel::Verbose,                      \
                              ::mvp::detail::composeMessage(__VA_ARGS__))

/** panic() unless the condition holds. */
#define mvp_assert(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mvp::detail::panicImpl(                                        \
                __FILE__, __LINE__,                                          \
                std::string("assertion failed: " #cond " ") +                \
                    ::mvp::detail::composeMessage(__VA_ARGS__));             \
        }                                                                    \
    } while (0)

#endif // MVP_COMMON_LOGGING_HH
