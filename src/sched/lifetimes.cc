#include "sched/lifetimes.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mvp::sched
{

namespace
{

Cycle
floorDiv(Cycle a, Cycle b)
{
    return a >= 0 ? a / b : -((-a + b - 1) / b);
}

} // namespace

LifetimeStats
computeLifetimes(const ddg::Ddg &graph, const ModuloSchedule &sched,
                 const MachineConfig &machine)
{
    LifetimeScratch scratch;
    return computeLifetimes(graph, sched, machine, scratch);
}

LifetimeStats
computeLifetimes(const ddg::Ddg &graph, const ModuloSchedule &sched,
                 const MachineConfig &machine, LifetimeScratch &scratch)
{
    const Cycle ii = sched.ii();
    std::vector<LifetimeScratch::Interval> &intervals = scratch.intervals;
    intervals.clear();
    intervals.reserve(graph.size() + sched.comms().size());

    const auto &loop = graph.loop();
    for (const auto &op : loop.ops()) {
        if (!op.producesValue())
            continue;
        const auto &p = sched.placed(op.id);

        // Local interval: from the write until the last same-cluster
        // read and the last OUT BUS issue.
        Cycle local_end = p.time + p.outLatency;
        const Cycle local_start = p.time + p.outLatency;
        for (int ei : graph.outEdges(op.id)) {
            const auto &e = graph.edges()[static_cast<std::size_t>(ei)];
            if (!e.isRegFlow())
                continue;
            const auto &pc = sched.placed(e.dst);
            if (pc.cluster == p.cluster)
                local_end = std::max(local_end,
                                     pc.time + ii * e.distance);
        }
        for (const auto &c : sched.comms())
            if (c.producer == op.id)
                local_end = std::max(local_end, c.xferStart);
        intervals.push_back({p.cluster, local_start, local_end});

        // Remote intervals: one per destination cluster.
        for (const auto &c : sched.comms()) {
            if (c.producer != op.id)
                continue;
            const Cycle arrival = c.xferStart + machine.regBusLatency;
            Cycle remote_end = arrival;
            for (int ei : graph.outEdges(op.id)) {
                const auto &e =
                    graph.edges()[static_cast<std::size_t>(ei)];
                if (!e.isRegFlow())
                    continue;
                const auto &pc = sched.placed(e.dst);
                if (pc.cluster == c.to)
                    remote_end = std::max(remote_end,
                                          pc.time + ii * e.distance);
            }
            intervals.push_back({c.to, arrival, remote_end});
        }
    }

    LifetimeStats stats;
    stats.maxLivePerCluster.assign(
        static_cast<std::size_t>(machine.nClusters), 0);

    // live(s) = sum over intervals of |{k : from <= s + k*II <= to}|.
    // Flat [cluster x slot] table: one allocation, not one per cluster.
    // Closed form per interval: a span of len cycles contributes
    // floor(len/II) to every slot plus one to the len%II slots starting
    // at from%II (wrapping) — two divisions per interval instead of two
    // per (interval, slot) pair.
    std::vector<Cycle> &live = scratch.live;
    live.assign(static_cast<std::size_t>(machine.nClusters) *
                    static_cast<std::size_t>(ii),
                0);
    for (const auto &iv : intervals) {
        const Cycle len = iv.to - iv.from + 1;
        stats.totalLifetime += len;
        Cycle *row = live.data() + static_cast<std::size_t>(iv.cluster) *
                                       static_cast<std::size_t>(ii);
        const Cycle base = len / ii;
        Cycle rest = len % ii;
        if (base > 0)
            for (Cycle s = 0; s < ii; ++s)
                row[static_cast<std::size_t>(s)] += base;
        Cycle s = floorDiv(iv.from, ii) * -ii + iv.from;   // from mod II
        for (; rest > 0; --rest) {
            ++row[static_cast<std::size_t>(s)];
            if (++s == ii)
                s = 0;
        }
    }
    for (int c = 0; c < machine.nClusters; ++c) {
        Cycle max_live = 0;
        for (Cycle s = 0; s < ii; ++s)
            max_live = std::max(
                max_live, live[static_cast<std::size_t>(c) *
                                   static_cast<std::size_t>(ii) +
                               static_cast<std::size_t>(s)]);
        stats.maxLivePerCluster[static_cast<std::size_t>(c)] =
            static_cast<int>(max_live);
    }
    return stats;
}

} // namespace mvp::sched
