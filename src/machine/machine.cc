#include "machine/machine.hh"

#include <sstream>

#include "common/logging.hh"

namespace mvp
{

Cycle
MachineConfig::opLatency(ir::Opcode op) const
{
    using ir::Opcode;
    switch (op) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::Copy:
        return latInt;
      case Opcode::IMul:
        return latIntMul;
      case Opcode::IDiv:
        return latIntDiv;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FMadd:
        return latFp;
      case Opcode::FDiv:
        return latFpDiv;
      case Opcode::Load:
        return latCacheHit;
      case Opcode::Store:
        return latStore;
    }
    mvp_panic("unknown Opcode");
}

int
MachineConfig::fusPerCluster(ir::FuType type) const
{
    switch (type) {
      case ir::FuType::Int: return intFusPerCluster;
      case ir::FuType::Fp: return fpFusPerCluster;
      case ir::FuType::Mem: return memFusPerCluster;
    }
    mvp_panic("unknown FuType");
}

void
MachineConfig::validate() const
{
    if (nClusters < 1)
        mvp_fatal("machine '", name, "': nClusters must be >= 1");
    if (intFusPerCluster < 1 || fpFusPerCluster < 1 || memFusPerCluster < 1)
        mvp_fatal("machine '", name, "': every cluster needs at least one "
                  "FU of each class");
    if (regsPerCluster < 1)
        mvp_fatal("machine '", name, "': regsPerCluster must be >= 1");
    if (nClusters > 1 && !unboundedRegBuses && nRegBuses < 1)
        mvp_fatal("machine '", name, "': clustered machines need at least "
                  "one register bus");
    if (!unboundedMemBuses && nMemBuses < 1)
        mvp_fatal("machine '", name, "': need at least one memory bus");
    if (regBusLatency < 1 || memBusLatency < 1)
        mvp_fatal("machine '", name, "': bus latencies must be >= 1");
    if (totalCacheBytes % nClusters != 0)
        mvp_fatal("machine '", name, "': cache capacity not divisible by "
                  "cluster count");
    const std::int64_t per_cluster = totalCacheBytes / nClusters;
    if (per_cluster % (static_cast<std::int64_t>(cacheLineBytes) *
                       cacheAssoc) != 0)
        mvp_fatal("machine '", name, "': per-cluster cache not divisible "
                  "into lines/ways");
    if (mshrEntries < 1)
        mvp_fatal("machine '", name, "': mshrEntries must be >= 1");
    if (latCacheHit < 1 || latMainMemory < 1)
        mvp_fatal("machine '", name, "': memory latencies must be >= 1");
}

std::string
MachineConfig::summary() const
{
    std::ostringstream os;
    os << name << ": " << nClusters << " cluster(s) x (" << intFusPerCluster
       << " INT + " << fpFusPerCluster << " FP + " << memFusPerCluster
       << " MEM), " << regsPerCluster << " regs/cluster, ";
    if (nClusters > 1) {
        if (unboundedRegBuses)
            os << "unbounded reg buses @" << regBusLatency << "cy, ";
        else
            os << nRegBuses << " reg bus(es) @" << regBusLatency << "cy, ";
    }
    if (unboundedMemBuses)
        os << "unbounded mem buses @" << memBusLatency << "cy, ";
    else
        os << nMemBuses << " mem bus(es) @" << memBusLatency << "cy, ";
    os << totalCacheBytes / 1024 << "KB L1 total ("
       << cacheBytesPerCluster() / 1024.0 << "KB/cluster, "
       << cacheLineBytes << "B lines, " << (cacheAssoc == 1
                                                ? std::string("direct-mapped")
                                                : std::to_string(cacheAssoc) +
                                                      "-way")
       << ")";
    return os.str();
}

} // namespace mvp
