#include "svc/service.hh"

#include <exception>
#include <utility>

#include "cme/provider.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sched/backend.hh"

namespace mvp::svc
{
namespace
{

/** Latency histogram binning: 10 us buckets to 50 ms; slower replies
 * (deep exact searches) clamp to the top, which only makes the
 * reported tail percentiles conservative. */
constexpr double LAT_LO = 0.0;
constexpr double LAT_HI = 50'000.0;
constexpr std::size_t LAT_BUCKETS = 5'000;

} // namespace

SchedService::LoopContext::LoopContext(ir::LoopNest n)
    : nest(std::move(n)),
      streams(std::make_shared<cme::StreamCache>(nest))
{
}

const ddg::Ddg &
SchedService::LoopContext::ddgFor(const MachineConfig &machine,
                                  const std::string &machineKey)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = ddgs.find(machineKey);
    if (it == ddgs.end()) {
        auto graph = std::make_unique<ddg::Ddg>(
            ddg::Ddg::build(nest, machine));
        // Warm the lazily-built SCC tables while we hold the context
        // lock, exactly like Workbench::prepare — afterwards the DDG
        // is read-only and safe to share across workers.
        graph->sccs();
        it = ddgs.emplace(machineKey, std::move(graph)).first;
    }
    return *it->second;
}

cme::LocalityAnalysis &
SchedService::LoopContext::localityFor(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = bound.find(name);
    if (it == bound.end()) {
        auto analysis =
            cme::LocalityRegistry::instance().bind(name, nest, streams);
        it = bound.emplace(name, std::move(analysis)).first;
    }
    return *it->second;
}

SchedService::SchedService(int jobs)
    : driver_(jobs), latency_us_(LAT_LO, LAT_HI, LAT_BUCKETS),
      flush_us_(LAT_LO, LAT_HI, LAT_BUCKETS)
{
}

SchedService::~SchedService() = default;

SchedService::LoopContext &
SchedService::contextFor(const std::string &loopKey,
                         const ir::LoopNest &nest)
{
    std::lock_guard<std::mutex> lock(ctx_mu_);
    auto it = contexts_.find(loopKey);
    if (it == contexts_.end())
        it = contexts_
                 .emplace(loopKey, std::make_unique<LoopContext>(nest))
                 .first;
    return *it->second;
}

ReplyBytes
SchedService::rawProbe(const std::string &rawPayload)
{
    const auto start = std::chrono::steady_clock::now();
    ReplyBytes stored = raw_.lookup(rawPayload);
    if (stored == nullptr) {
        obs::foldRtCounter("svc.rawlane.misses", 1);
        return nullptr;
    }
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        requests_ += 1;
        hits_ += 1;
        raw_hits_ += 1;
        latency_us_.add(us);
    }
    if (obs::metricsOn()) {
        obs::foldRtCounter("svc.rawlane.hits", 1);
        obs::foldRtHist("svc.rawlane.probe_us", LAT_LO, LAT_HI, 500,
                        us);
    }
    return stored;
}

std::vector<SchedService::Reply>
SchedService::processBatch(std::vector<Request> &&requests)
{
    std::lock_guard<std::mutex> batch_lock(batch_mu_);
    std::vector<Reply> replies(requests.size());
    driver_.run(requests.size(),
                [&](std::size_t i, sched::SchedContext &ctx) {
                    replies[i] = serveOne(requests[i], ctx);
                });
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        batches_ += 1;
    }
    if (obs::metricsOn()) {
        obs::MetricShard shard;
        shard.rtMax("svc.cache_entries",
                    static_cast<std::int64_t>(cache_.size()));
        shard.rtMax("svc.rawlane.entries",
                    static_cast<std::int64_t>(raw_.size()));
        {
            std::lock_guard<std::mutex> lock(ctx_mu_);
            shard.rtMax("svc.loop_contexts",
                        static_cast<std::int64_t>(contexts_.size()));
        }
        obs::Registry::instance().fold(shard);
    }
    return replies;
}

SchedService::Reply
SchedService::processOne(Request &&request)
{
    std::vector<Request> batch;
    batch.push_back(std::move(request));
    return processBatch(std::move(batch)).front();
}

SchedService::Reply
SchedService::serveOne(Request &request, sched::SchedContext &ctx)
{
    const auto start = std::chrono::steady_clock::now();
    Reply out;

    if (!request.error.empty()) {
        // Parse-error replies quote the frame id (the parse origin),
        // so they are not pure functions of the payload bytes — they
        // stay out of both cache lanes.
        out.payload =
            std::make_shared<const std::string>(renderErrorReply(
                request.error));
        noteRequest(start, false, true, ctx);
        return out;
    }

    if (ReplyBytes stored = cache_.lookup(request.key)) {
        out.payload = std::move(stored);
        out.cacheHit = true;
        // The canonical entry existed but this raw spelling missed:
        // teach the zero-parse lane so the next byte-identical
        // payload skips the parser too.
        if (!request.raw.empty())
            raw_.publish(request.raw, out.payload);
        noteRequest(start, true, false, ctx);
        return out;
    }

    std::string payload;
    bool cacheable = false;
    bool is_error = false;
    {
        // User input reaches registries and parsers that fatal on bad
        // names; the scope turns those into per-request error replies.
        FatalScope guard;
        try {
            MVP_TRACE_SPAN("svc.schedule",
                           request.scenario.loop.name());
            LoopContext &lc =
                contextFor(request.loopKey, request.scenario.loop);
            const ddg::Ddg &graph =
                lc.ddgFor(request.scenario.machine, request.machineKey);
            cme::LocalityAnalysis &locality =
                lc.localityFor(request.options.locality);

            sched::SchedulerOptions opt;
            opt.missThreshold = request.options.threshold;
            opt.locality = &locality;
            opt.localityProvider = request.options.locality;
            opt.searchBudget = request.options.nodeBudget;
            opt.timeBudgetMs = request.options.timeBudgetMs;
            opt.exactBackend = request.options.exactBackend.empty()
                                   ? "exact"
                                   : request.options.exactBackend;
            // Parallelism comes from batching across the pool; a
            // per-request portfolio pool on top would oversubscribe.
            opt.searchJobs = 1;

            const auto result = sched::scheduleWithBackend(
                request.options.backend, graph,
                request.scenario.machine, opt, ctx);
            if (!result.ok) {
                // A within-budget scheduling failure (e.g. maxII
                // exceeded) is as deterministic as a schedule — cache
                // it like one.
                payload = renderErrorReply(result.error);
                cacheable = true;
                is_error = true;
            } else {
                const std::string verr = result.schedule.validate(
                    graph, request.scenario.machine);
                if (!verr.empty()) {
                    payload = renderErrorReply("invalid schedule: " +
                                               verr);
                    is_error = true;
                } else {
                    payload = renderReply(request, result);
                    cacheable = true;
                }
            }
        } catch (const FatalError &e) {
            payload = renderErrorReply(e.what());
            is_error = true;
        } catch (const std::exception &e) {
            payload = renderErrorReply(e.what());
            is_error = true;
        }
    }

    if (cacheable) {
        out.payload = cache_.tryInsert(request.key, std::move(payload));
        // Alias the *published* entry (ours or the racing winner's)
        // under the verbatim bytes: raw hits are byte-identical to
        // canonical hits by construction.
        if (!request.raw.empty())
            raw_.publish(request.raw, out.payload);
    } else {
        out.payload =
            std::make_shared<const std::string>(std::move(payload));
    }
    noteRequest(start, false, is_error, ctx);
    return out;
}

void
SchedService::noteFlush(std::size_t frames, std::size_t bytes,
                        double us)
{
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        flush_us_.add(us);
    }
    if (obs::metricsOn()) {
        obs::MetricShard shard;
        shard.rt("svc.flush.bursts") += 1;
        shard.rt("svc.flush.frames") +=
            static_cast<std::int64_t>(frames);
        shard.rt("svc.flush.bytes") += static_cast<std::int64_t>(bytes);
        shard.rtHist("svc.flush.us", LAT_LO, LAT_HI, 500).add(us);
        obs::Registry::instance().fold(shard);
    }
}

void
SchedService::noteRequest(std::chrono::steady_clock::time_point start,
                          bool hit, bool error, sched::SchedContext &ctx)
{
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        requests_ += 1;
        if (hit)
            hits_ += 1;
        else
            misses_ += 1;
        if (error)
            errors_ += 1;
        latency_us_.add(us);
    }
    if (obs::metricsOn()) {
        ctx.metrics.rt("svc.requests") += 1;
        ctx.metrics.rt(hit ? "svc.cache_hits" : "svc.cache_misses") +=
            1;
        if (error)
            ctx.metrics.rt("svc.errors") += 1;
        ctx.metrics.rtHist("svc.request_us", LAT_LO, LAT_HI, 500)
            .add(us);
    }
}

ServiceStats
SchedService::stats() const
{
    ServiceStats out;
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        out.requests = requests_;
        out.cacheHits = hits_;
        out.cacheMisses = misses_;
        out.rawHits = raw_hits_;
        out.errors = errors_;
        out.batches = batches_;
        out.latencyP50Us = latency_us_.percentile(50.0);
        out.latencyP99Us = latency_us_.percentile(99.0);
        out.latencyMeanUs = latency_us_.mean();
    }
    out.cacheEntries = static_cast<std::int64_t>(cache_.size());
    out.rawEntries = static_cast<std::int64_t>(raw_.size());
    {
        std::lock_guard<std::mutex> lock(ctx_mu_);
        out.loopContexts = static_cast<std::int64_t>(contexts_.size());
    }
    return out;
}

std::string
SchedService::renderStats() const
{
    const ServiceStats st = stats();
    std::string out;
    out += "requests " + std::to_string(st.requests) + "\n";
    out += "cache-hits " + std::to_string(st.cacheHits) + "\n";
    out += "cache-misses " + std::to_string(st.cacheMisses) + "\n";
    out += "raw-hits " + std::to_string(st.rawHits) + "\n";
    out += "errors " + std::to_string(st.errors) + "\n";
    out += "batches " + std::to_string(st.batches) + "\n";
    out += "cache-entries " + std::to_string(st.cacheEntries) + "\n";
    out += "raw-entries " + std::to_string(st.rawEntries) + "\n";
    out += "loop-contexts " + std::to_string(st.loopContexts) + "\n";
    out += "latency-p50-us " + strprintf("%.1f", st.latencyP50Us) +
           "\n";
    out += "latency-p99-us " + strprintf("%.1f", st.latencyP99Us) +
           "\n";
    out += "latency-mean-us " + strprintf("%.1f", st.latencyMeanUs) +
           "\n";
    return out;
}

} // namespace mvp::svc
