#include "sched/sat/sat.hh"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sched/lifetimes.hh"
#include "sched/mii.hh"
#include "sched/ordering.hh"
#include "sched/sat/encode.hh"
#include "sched/sat/solver.hh"

namespace mvp::sched
{

namespace
{

/** Per-loop search state: one incremental solver across all II probes. */
struct SatSearch
{
    const ddg::Ddg &graph;
    const MachineConfig &machine;
    const SatOptions &options;
    SchedContext &ctx;

    sat::Solver solver;
    bool deadline_on = false;
    std::chrono::steady_clock::time_point deadline{};

    // Telemetry mirrored on the B&B counter names where the concept
    // matches (attempts, refutations, lifts, budget ends) plus the
    // SAT-specific work counters.
    std::int64_t ii_refuted = 0;
    std::int64_t fu_refuted = 0;
    std::int64_t lifts = 0;
    std::int64_t blocked_models = 0;
    std::int64_t too_large = 0;
    bool cancelled = false;
    bool budget_hit = false;

    SatSearch(const ddg::Ddg &g, const MachineConfig &m,
              const SatOptions &o, SchedContext &c)
        : graph(g), machine(m), options(o), ctx(c)
    {
    }

    bool deadlineExpired() const
    {
        return deadline_on &&
               std::chrono::steady_clock::now() >= deadline;
    }

    bool cancelledAt(Cycle ii) const
    {
        return options.sharedBestII != nullptr &&
               options.sharedBestII->load(std::memory_order_relaxed) <=
                   ii;
    }

    /** Same per-class FU counting refutation the B&B applies. */
    bool resourcesFit(Cycle ii, const int (&op_count)[ir::NUM_FU_TYPES])
        const
    {
        for (int f = 0; f < ir::NUM_FU_TYPES; ++f) {
            const auto type = static_cast<ir::FuType>(f);
            const int capacity =
                static_cast<int>(ii) * machine.totalFus(type);
            if (op_count[f] > capacity)
                return false;
        }
        return true;
    }

    void foldMetrics(const ScheduleResult &result)
    {
        if (!obs::metricsOn())
            return;
        // Same routing rule as the B&B: a probe races the portfolio
        // siblings (whoever publishes the incumbent first cancels the
        // rest), so its counts are runtime-only; a plain sat search is
        // a pure function of (loop, machine, options) within budget.
        const bool probe = options.sharedBestII != nullptr;
        const char *prefix = probe ? "portfolio.sat." : "sat.";
        auto &m = ctx.metrics;
        const auto c = [&](const char *name) -> std::int64_t & {
            return m.counter(!probe, std::string(prefix) + name);
        };
        const sat::SolverStats &st = solver.stats();
        c("searches") += 1;
        c("conflicts") += st.conflicts;
        c("propagations") += st.propagations;
        c("decisions") += st.decisions;
        c("learned_clauses") += st.learned;
        c("learned_lits") += st.learnedLits;
        c("restarts") += st.restarts;
        c("vars") += solver.nVars();
        c("ii_attempts") += result.stats.iiAttempts;
        c("ii_refuted") += ii_refuted;
        c("fu_refuted") += fu_refuted;
        c("lifts") += lifts;
        c("blocked_models") += blocked_models;
        c("encodings_too_large") += too_large;
        if (cancelled)
            c("cancelled") += 1;
        if (budget_hit)
            c("budget_exhausted") += 1;
    }

    ScheduleResult run();
};

ScheduleResult
SatSearch::run()
{
    MVP_TRACE_SPAN("sat", graph.loop().name());
    ScheduleResult result;
    result.stats.resMii = resMii(graph.loop(), machine);
    result.stats.recMii = graph.recMii();
    result.stats.mii =
        std::max(result.stats.resMii, result.stats.recMii);
    result.stats.iiLowerBound = result.stats.mii;
    if (graph.size() == 0) {
        result.error = "empty loop";
        return result;
    }

    // Same placement order as the heuristic and the B&B (computed once
    // at MII): the encoding's anchor and cluster symmetry break hang
    // off this order, so both exact engines certify over the same
    // placement space.
    computeOrdering(graph, result.stats.mii, ctx.order, ctx.ordering);

    int op_count[ir::NUM_FU_TYPES] = {};
    for (std::size_t v = 0; v < graph.size(); ++v)
        ++op_count[static_cast<int>(
            graph.loop().op(static_cast<OpId>(v)).fuType())];

    if (options.hasDeadline) {
        deadline_on = true;
        deadline = options.deadline;
    } else if (options.timeBudgetMs >= 0) {
        deadline_on = true;
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options.timeBudgetMs);
    }
    if (deadline_on)
        solver.setDeadline(deadline);
    solver.setConflictBudget(options.conflictBudget);

    // Same abort allowance as the B&B: up to this many II attempts may
    // burn their whole conflict cap (or overflow the variable budget)
    // without settling before the search gives up; the wall-clock
    // deadline instead ends the search at the first aborted attempt.
    constexpr int MAX_ABORTED_ATTEMPTS = 4;
    int aborted_attempts = 0;

    bool found = false;
    ModuloSchedule best;

    const Cycle first_ii =
        options.onlyII > 0 ? options.onlyII : result.stats.mii;
    const Cycle last_ii =
        options.onlyII > 0 ? options.onlyII : options.maxII;
    for (Cycle ii = first_ii; ii <= last_ii; ++ii) {
        MVP_TRACE_SPAN("sat-ii", graph.loop().name(),
                       static_cast<std::int64_t>(ii));
        ++result.stats.iiAttempts;

        if (!resourcesFit(ii, op_count)) {
            ++fu_refuted;
            if (result.stats.iiLowerBound == ii) {
                result.stats.iiLowerBound = ii + 1;
                ++lifts;
            }
            mvp_verbose("sat: loop '", graph.loop().name(),
                        "' II=", ii, " refuted by FU counting");
            continue;
        }
        if (deadlineExpired()) {
            budget_hit = true;
            break;
        }
        if (cancelledAt(ii)) {
            cancelled = true;
            budget_hit = true;
            break;
        }

        sat::IiEncoding enc(graph, machine, ctx.order, ii);
        const sat::IiEncoding::Status st = enc.build(solver);
        if (st == sat::IiEncoding::Status::Infeasible) {
            // Statically refuted (empty window hull): as certified as
            // an UNSAT answer, without paying for a solve.
            ++ii_refuted;
            if (result.stats.iiLowerBound == ii) {
                result.stats.iiLowerBound = ii + 1;
                ++lifts;
            }
            mvp_verbose("sat: loop '", graph.loop().name(),
                        "' II=", ii, " statically refuted");
            continue;
        }
        if (st == sat::IiEncoding::Status::TooLarge) {
            // Variable budget overflow: the II is neither certified
            // feasible nor refuted, exactly a burned search budget —
            // the lower bound must not rise past it.
            ++too_large;
            budget_hit = true;
            if (++aborted_attempts >= MAX_ABORTED_ATTEMPTS)
                break;
            continue;
        }

        solver.setCancel(options.sharedBestII, ii);

        // Solve/decode/validate loop: the bus and register
        // cardinalities under-approximate the checker (encode.hh), so
        // a model the full validation rejects is blocked and the probe
        // re-solved; UNSAT needs no such care.
        bool attempt_done = false;
        bool stop_search = false;
        while (!attempt_done) {
            const sat::SolveResult r = solver.solve({enc.activation()});
            if (r == sat::SolveResult::Sat) {
                ModuloSchedule cand;
                bool good = enc.decode(solver, cand);
                if (good) {
                    const LifetimeStats lt = computeLifetimes(
                        graph, cand, machine, ctx.lifetimes);
                    for (int ml : lt.maxLivePerCluster)
                        if (ml > machine.regsPerCluster)
                            good = false;
                    if (good &&
                        !cand.validate(graph, machine).empty())
                        good = false;
                    if (good)
                        cand.setMaxLive(lt.maxLivePerCluster);
                }
                if (!good) {
                    ++blocked_models;
                    enc.blockModel(solver);
                    continue;
                }
                best = std::move(cand);
                found = true;
                result.ok = true;
                result.stats.provenOptimal =
                    ii == result.stats.iiLowerBound;
                attempt_done = true;
            } else if (r == sat::SolveResult::Unsat) {
                // Refuted: retire the probe's activation so its
                // clauses go inert, and lift the lower bound while
                // refutations are gapless from MII.
                solver.addClause({~enc.activation()});
                ++ii_refuted;
                if (result.stats.iiLowerBound == ii) {
                    result.stats.iiLowerBound = ii + 1;
                    ++lifts;
                }
                mvp_verbose("sat: loop '", graph.loop().name(),
                            "' II=", ii, " refuted (",
                            solver.stats().conflicts, " conflicts)");
                attempt_done = true;
            } else {
                // Unknown: a budget fired. A cancelled probe or an
                // expired deadline ends the search outright; a
                // conflict-cap abort moves on (a larger II is usually
                // much easier) until the abort allowance is spent.
                if (cancelledAt(ii)) {
                    cancelled = true;
                    budget_hit = true;
                    stop_search = true;
                } else {
                    budget_hit = true;
                    if (deadlineExpired() ||
                        ++aborted_attempts >= MAX_ABORTED_ATTEMPTS)
                        stop_search = true;
                }
                attempt_done = true;
            }
        }
        solver.setCancel(nullptr, 0);
        if (found || stop_search)
            break;
    }

    result.stats.searchNodes = solver.stats().conflicts;
    result.stats.budgetExhausted = budget_hit;
    foldMetrics(result);
    if (!result.ok) {
        result.error =
            budget_hit
                ? "exact search budget exhausted before any schedule "
                  "was found for loop '" +
                      graph.loop().name() + "'"
                : "no feasible II up to " +
                      std::to_string(last_ii) + " for loop '" +
                      graph.loop().name() + "'";
        return result;
    }

    // decode() already normalised times to >= 0 and assigned buses;
    // MaxLive was attached from the validating lifetime pass.
    result.schedule = std::move(best);
    result.stats.comms = static_cast<int>(result.schedule.numComms());
    return result;
}

} // namespace

ScheduleResult
scheduleSatExact(const ddg::Ddg &graph, const MachineConfig &machine,
                 const SatOptions &options, SchedContext &ctx)
{
    return SatSearch(graph, machine, options, ctx).run();
}

ScheduleResult
scheduleSatExact(const ddg::Ddg &graph, const MachineConfig &machine,
                 const SatOptions &options)
{
    SchedContext ctx;
    return scheduleSatExact(graph, machine, options, ctx);
}

} // namespace mvp::sched
