/**
 * @file
 * Differential fuzz sweep: generate scenarios, validate the whole
 * stack on each (text round trip, rmca schedule validation, exact-II
 * cross-check, kernel-image shape, lockstep compute-cycle identity,
 * CME-vs-oracle agreement), and report wall clock plus an output
 * fingerprint.
 *
 * Prints one machine-readable line:
 *
 *   fuzz jobs=4 scenarios=200 passed=200 failed=0 exact_settled=200 \
 *        rmca_optimal=178 wall_ms=1234.5 fingerprint=0x...
 *
 * run_bench.sh records the line under "fuzz_sweep" in BENCH_sched.json;
 * CI runs it with a fixed seed and fails on any scenario failure (the
 * exit status is the failure count, capped at 125).
 *
 * Usage: fuzz_sweep [--jobs N] [--scenarios N] [--seed S] [--budget B]
 *                   [--time-budget-ms MS] [--exact-backend NAME]
 *                   [--locality NAME] [--no-exact] [--verbose]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/strutil.hh"
#include "harness/differential.hh"
#include "harness/flags.hh"

using namespace mvp;

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    harness::DiffOptions options;
    const std::string locality = harness::parseLocalityFlag(argc, argv);
    if (!locality.empty())
        options.locality = locality;
    options.timeBudgetMs = harness::parseTimeBudgetFlag(argc, argv);
    const std::string exact_backend =
        harness::parseExactBackendFlag(argc, argv);
    if (!exact_backend.empty())
        options.exactBackend = exact_backend;
    const std::string scenarios = harness::stripValueFlag(
        argc, argv, "--scenarios", "scenario count");
    if (!scenarios.empty())
        options.scenarios = std::atoi(scenarios.c_str());
    const std::string seed =
        harness::stripValueFlag(argc, argv, "--seed", "seed");
    if (!seed.empty())
        options.seed = std::strtoull(seed.c_str(), nullptr, 0);
    const std::string budget =
        harness::stripValueFlag(argc, argv, "--budget", "node budget");
    if (!budget.empty())
        options.exactBudget = std::atoll(budget.c_str());
    if (harness::stripBoolFlag(argc, argv, "--no-exact"))
        options.checkExact = false;
    if (harness::stripBoolFlag(argc, argv, "--no-sat"))
        options.checkSat = false;
    const bool verbose =
        harness::stripBoolFlag(argc, argv, "--verbose");
    harness::rejectUnknownFlags(
        argc, argv,
        {"--jobs", "--locality", "--time-budget-ms",
         "--exact-backend", "--scenarios", "--seed", "--budget",
         "--no-exact", "--no-sat", "--verbose", "--log-level",
         "--metrics", "--trace"});
    if (options.scenarios < 1) {
        std::fprintf(stderr, "--scenarios wants a positive count\n");
        return 2;
    }

    const auto start = std::chrono::steady_clock::now();
    const auto report = harness::runDifferential(options, driver);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    const std::string serialised = report.serialise();
    if (verbose)
        std::printf("%s", serialised.c_str());
    std::printf("%s", report.summary().c_str());
    std::printf("fuzz jobs=%d scenarios=%d passed=%d failed=%d "
                "exact_settled=%d rmca_optimal=%d wall_ms=%.1f "
                "fingerprint=0x%016llx\n",
                driver.jobs(), options.scenarios, report.passed(),
                report.failed(), report.exactSettled(),
                report.rmcaOptimal(), wall_ms,
                static_cast<unsigned long long>(fnv1a(serialised)));
    return report.failed() > 125 ? 125 : report.failed();
}
