/**
 * @file
 * Statistics accumulators used by the CME sampling solver, the simulator
 * and the experiment harness.
 */

#ifndef MVP_COMMON_STATS_HH
#define MVP_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mvp
{

/**
 * Running mean/variance accumulator (Welford's algorithm).
 *
 * Numerically stable for long sampling runs; also exposes the half-width
 * of a normal-approximation confidence interval, which the CME solver
 * uses as its stop rule (Vera et al. style sampling).
 */
class RunningStat
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with < 2 observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation seen (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation seen (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    /**
     * Half-width of the confidence interval around the mean for the given
     * two-sided confidence level (normal approximation).
     *
     * @param z Critical value; 1.96 gives a 95% interval.
     */
    double ciHalfWidth(double z = 1.96) const;

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Named counter bag: a tiny stats registry for simulator components.
 *
 * Counters auto-create at first touch; dump() renders them sorted by name
 * so simulator output is stable across runs.
 */
class StatGroup
{
  public:
    /** Mutable access to the counter named @p name (created at 0). */
    std::int64_t &counter(const std::string &name);

    /**
     * Gauge-set: overwrite @p name with @p value. The honest spelling
     * for sampled quantities (pool high-water marks, harvested cache
     * totals) that were previously smuggled through `counter() +=`
     * arithmetic.
     */
    void set(const std::string &name, std::int64_t value);

    /** Gauge-set keeping the larger of the stored and given value. */
    void setMax(const std::string &name, std::int64_t value);

    /** Read-only value of @p name (0 when never touched). */
    std::int64_t value(const std::string &name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::int64_t> &all() const
    {
        return counters_;
    }

    /**
     * Render "name = value" lines. Locale-independent: values are
     * formatted with std::to_string, so a host locale with digit
     * grouping (e.g. de_DE) cannot leak thousands separators into
     * fingerprinted reports.
     */
    std::string dump(const std::string &prefix = "") const;

    /** Add every counter of @p other into this group. */
    void merge(const StatGroup &other);

    /** Reset all counters to zero (keeps the names). */
    void reset();

  private:
    std::map<std::string, std::int64_t> counters_;
};

/**
 * Fixed-bucket histogram for latency distributions.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the first bucket.
     * @param hi Exclusive upper bound of the last regular bucket.
     * @param buckets Number of equal-width buckets between lo and hi;
     *                out-of-range samples land in under/overflow.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample. */
    void add(double x);

    /** Number of samples recorded. */
    std::size_t count() const { return count_; }

    /** Count in regular bucket @p i. */
    std::size_t bucketCount(std::size_t i) const;

    /** Samples below the low bound. */
    std::size_t underflow() const { return underflow_; }

    /** Samples at or above the high bound. */
    std::size_t overflow() const { return overflow_; }

    /** Number of regular buckets. */
    std::size_t buckets() const { return counts_.size(); }

    /** Mean of all recorded samples. */
    double mean() const;

    /**
     * Approximate percentile @p p (0..100) from the bucket counts,
     * linearly interpolated inside the winning bucket. Underflow
     * samples clamp to the low bound and overflow samples to the high
     * bound (a fixed-range histogram cannot know their true values).
     * Returns 0 when empty.
     */
    double percentile(double p) const;

    /**
     * One-line summary renderer:
     * "count=N mean=M p50=A p90=B p99=C min<lo max>=hi" style, with
     * under/overflow counts when nonzero. Locale-independent.
     */
    std::string dump() const;

    /**
     * Fold @p other into this histogram. Both must have identical
     * bounds and bucket counts (asserted): merged distributions only
     * make sense over the same binning.
     */
    void merge(const Histogram &other);

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t count_ = 0;
    double sum_ = 0.0;
};

} // namespace mvp

#endif // MVP_COMMON_STATS_HH
