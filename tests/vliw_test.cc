/**
 * @file
 * Tests for VLIW code expansion: kernel/prologue/epilogue structure,
 * per-stage instance accounting, bus field encoding and utilisation.
 */

#include <gtest/gtest.h>

#include "cme/solver.hh"
#include "ir/builder.hh"
#include "machine/presets.hh"
#include "sched/scheduler.hh"
#include "vliw/kernel.hh"

namespace mvp::vliw
{
namespace
{

using namespace mvp::ir;

LoopNest
testLoop()
{
    LoopNestBuilder b("vliw");
    b.loop("i", 0, 64);
    const auto A = b.arrayAt("A", {66}, 0x10000);
    const auto B = b.arrayAt("B", {66}, 0x12000);
    const auto la = b.load(A, {affineVar(0)}, "la");
    const auto lb = b.load(B, {affineVar(0, 1, 1)}, "lb");
    const auto m = b.op(Opcode::FMul, {use(la), use(lb)}, "m");
    const auto s = b.op(Opcode::FAdd, {use(m), liveIn()}, "s");
    b.store(A, {affineVar(0)}, use(s), "sa");
    return b.build();
}

struct Expanded
{
    ir::LoopNest nest;
    std::unique_ptr<ddg::Ddg> graph;
    MachineConfig machine;
    sched::ScheduleResult sched;
    KernelImage img;
};

Expanded
expand(const MachineConfig &machine)
{
    Expanded e;
    e.nest = testLoop();
    e.machine = machine;
    e.graph = std::make_unique<ddg::Ddg>(ddg::Ddg::build(e.nest, machine));
    e.sched = sched::scheduleBaseline(*e.graph, machine);
    EXPECT_TRUE(e.sched.ok) << e.sched.error;
    EXPECT_EQ(e.sched.schedule.validate(*e.graph, machine), "");
    e.img = KernelImage::generate(*e.graph, e.sched.schedule, machine);
    return e;
}

/** Count occurrences of op @p v in a block. */
int
countOp(const std::vector<VliwInstr> &block, OpId v)
{
    int n = 0;
    for (const auto &instr : block)
        for (const auto &cw : instr.clusters)
            for (const auto &units : cw.fu)
                for (const auto &slot : units)
                    n += (!slot.isNop() && slot.op == v) ? 1 : 0;
    return n;
}

TEST(Kernel, BlockSizes)
{
    const auto e = expand(makeTwoCluster());
    const auto ii = static_cast<std::size_t>(e.sched.schedule.ii());
    const auto sc = static_cast<std::size_t>(
        e.sched.schedule.stageCount());
    EXPECT_EQ(e.img.kernel().size(), ii);
    EXPECT_EQ(e.img.prologue().size(), (sc - 1) * ii);
    EXPECT_EQ(e.img.epilogue().size(), (sc - 1) * ii);
    EXPECT_EQ(e.img.codeSizeInstrs(), (2 * sc - 1) * ii);
}

TEST(Kernel, EveryOpOnceInKernel)
{
    const auto e = expand(makeTwoCluster());
    for (OpId v = 0; v < static_cast<OpId>(e.nest.size()); ++v)
        EXPECT_EQ(countOp(e.img.kernel(), v), 1) << "op " << v;
}

TEST(Kernel, RampInstancesMatchStages)
{
    // Op at stage s appears (SC-1-s) times in the prologue and s times
    // in the epilogue: prologue + kernel + epilogue = SC instances.
    const auto e = expand(makeTwoCluster());
    const int sc = e.sched.schedule.stageCount();
    for (OpId v = 0; v < static_cast<OpId>(e.nest.size()); ++v) {
        const int stage = e.sched.schedule.stage(v);
        EXPECT_EQ(countOp(e.img.prologue(), v), sc - 1 - stage)
            << "op " << v;
        EXPECT_EQ(countOp(e.img.epilogue(), v), stage) << "op " << v;
    }
}

TEST(Kernel, BusFieldsEncodeEveryComm)
{
    const auto e = expand(makeTwoCluster());
    int outs = 0;
    int ins = 0;
    for (const auto &instr : e.img.kernel()) {
        for (const auto &cw : instr.clusters) {
            for (const auto &bf : cw.buses) {
                outs += bf.out != INVALID_ID ? 1 : 0;
                ins += bf.in != INVALID_ID ? 1 : 0;
            }
        }
    }
    EXPECT_EQ(outs, static_cast<int>(e.sched.schedule.numComms()));
    EXPECT_EQ(ins, static_cast<int>(e.sched.schedule.numComms()));
}

TEST(Kernel, UnifiedMachineHasNoBusFields)
{
    const auto e = expand(makeUnified());
    for (const auto &instr : e.img.kernel())
        for (const auto &cw : instr.clusters)
            EXPECT_TRUE(cw.buses.empty());
}

TEST(Kernel, UtilisationConsistentWithCounts)
{
    const auto e = expand(makeFourCluster());
    const double util = e.img.kernelUtilisation();
    const double ops = static_cast<double>(e.nest.size());
    const double slots =
        static_cast<double>(e.sched.schedule.ii() * e.machine.issueWidth());
    EXPECT_NEAR(util, ops / slots, 1e-9);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST(Kernel, FuSlotShapesMatchMachine)
{
    const auto e = expand(makeFourCluster());
    for (const auto &instr : e.img.kernel()) {
        ASSERT_EQ(instr.clusters.size(), 4u);
        for (const auto &cw : instr.clusters) {
            ASSERT_EQ(cw.fu.size(), 3u);
            EXPECT_EQ(cw.fu[0].size(), 1u);   // 1 INT unit
            EXPECT_EQ(cw.fu[1].size(), 1u);   // 1 FP unit
            EXPECT_EQ(cw.fu[2].size(), 1u);   // 1 MEM unit
            EXPECT_EQ(cw.buses.size(), 2u);   // 2 register buses
        }
    }
}

TEST(Kernel, RenderShowsOpsAndBuses)
{
    const auto e = expand(makeTwoCluster());
    const std::string text = e.img.render(*e.graph, e.machine);
    EXPECT_NE(text.find("kernel"), std::string::npos);
    EXPECT_NE(text.find("prologue"), std::string::npos);
    EXPECT_NE(text.find("epilogue"), std::string::npos);
    EXPECT_NE(text.find("la("), std::string::npos);
    if (e.sched.schedule.numComms() > 0) {
        EXPECT_NE(text.find("out"), std::string::npos);
    }
}

} // namespace
} // namespace mvp::vliw
