/**
 * @file
 * Named sentinel values shared by the scheduling subsystem. One home for
 * every "special" slot/cycle/bus marker so no scheduler file carries raw
 * -1/-2 literals whose meaning depends on context.
 */

#ifndef MVP_SCHED_SENTINELS_HH
#define MVP_SCHED_SENTINELS_HH

#include "common/types.hh"

namespace mvp::sched
{

/** Bus index used when the machine has unbounded register buses. */
constexpr int BUS_UNBOUNDED = -1;

/** Returned by findFreeBus when no bus can take the transfer. */
constexpr int BUS_NONE = -2;

/** Cycle marker: the operation / transfer has not been placed yet. */
constexpr Cycle TIME_UNPLACED = -1;

/** Per-op out-latency override marker: no override in effect. */
constexpr Cycle LAT_NO_OVERRIDE = -1;

/** Per-op minimum-distance scratch marker: entry unset. */
constexpr int DIST_UNSET = -1;

} // namespace mvp::sched

#endif // MVP_SCHED_SENTINELS_HH
