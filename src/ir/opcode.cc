#include "ir/opcode.hh"

#include "common/logging.hh"

namespace mvp::ir
{

std::string_view
fuTypeName(FuType type)
{
    switch (type) {
      case FuType::Int: return "INT";
      case FuType::Fp: return "FP";
      case FuType::Mem: return "MEM";
    }
    mvp_panic("unknown FuType");
}

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::IAdd: return "iadd";
      case Opcode::ISub: return "isub";
      case Opcode::IMul: return "imul";
      case Opcode::IDiv: return "idiv";
      case Opcode::Copy: return "copy";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FMadd: return "fmadd";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
    }
    mvp_panic("unknown Opcode");
}

FuType
fuTypeOf(Opcode op)
{
    switch (op) {
      case Opcode::IAdd:
      case Opcode::ISub:
      case Opcode::IMul:
      case Opcode::IDiv:
      case Opcode::Copy:
        return FuType::Int;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FMadd:
        return FuType::Fp;
      case Opcode::Load:
      case Opcode::Store:
        return FuType::Mem;
    }
    mvp_panic("unknown Opcode");
}

bool
isMemory(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Load;
}

bool
isStore(Opcode op)
{
    return op == Opcode::Store;
}

bool
producesValue(Opcode op)
{
    return op != Opcode::Store;
}

} // namespace mvp::ir
