/**
 * @file
 * SAT-based exact modulo scheduler: the second exact engine family.
 *
 * Probes IIs upward from MII exactly like the branch-and-bound, but
 * answers each probe with the embedded CDCL solver (solver.hh) on the
 * placement encoding of encode.hh. One incremental Solver per loop
 * hosts all probes: each II's clauses are guarded by an activation
 * literal, a probe solves under that single assumption, a refuted
 * probe is retired with the negated activation unit, and learned
 * clauses carry across probes.
 *
 * Certificates and reporting mirror the B&B contract bit for bit:
 * UNSAT lifts iiLowerBound while refutations are gapless from MII,
 * provenOptimal = (ii == iiLowerBound) at the first feasible II,
 * wall-clock budgets degrade to "gap unknown" (budgetExhausted) with
 * the same error strings — so verify/gap-study tooling consumes either
 * engine interchangeably. The schedule itself generally differs from
 * the B&B winner (no register-pressure tiebreak): only the II and the
 * certificate are comparable, which is what the differential harness
 * asserts.
 */

#ifndef MVP_SCHED_SAT_SAT_HH
#define MVP_SCHED_SAT_SAT_HH

#include <atomic>
#include <chrono>

#include "common/types.hh"
#include "ddg/ddg.hh"
#include "machine/machine.hh"
#include "sched/context.hh"
#include "sched/scheduler.hh"

namespace mvp::sched
{

/** Options of the SAT exact backend (the sat-specific knobs). */
struct SatOptions
{
    /** Give up raising the II past this. */
    Cycle maxII = 512;

    /**
     * Per-II-attempt conflict cap; 0 = uncapped. The deterministic
     * budget (mirrors the B&B's node budget): an attempt that burns
     * its cap is aborted, and after four aborted attempts the search
     * reports "gap unknown".
     */
    std::int64_t conflictBudget = 0;

    /** Wall-clock budget (ms) for the whole search; < 0 = none. */
    std::int64_t timeBudgetMs = DEFAULT_TIME_BUDGET_MS;

    /** Probe exactly this II (portfolio shards); 0 = sweep from MII. */
    Cycle onlyII = 0;

    /**
     * Portfolio racing: abort as soon as *sharedBestII <= the II being
     * probed (someone already certified at least as good an II).
     */
    const std::atomic<Cycle> *sharedBestII = nullptr;

    /** Externally-imposed deadline (overrides timeBudgetMs when set). */
    std::chrono::steady_clock::time_point deadline{};
    bool hasDeadline = false;
};

/** Run the SAT exact scheduler with the caller's scratch context. */
ScheduleResult scheduleSatExact(const ddg::Ddg &graph,
                                const MachineConfig &machine,
                                const SatOptions &options,
                                SchedContext &ctx);

/** scheduleSatExact with a transient context. */
ScheduleResult scheduleSatExact(const ddg::Ddg &graph,
                                const MachineConfig &machine,
                                const SatOptions &options);

} // namespace mvp::sched

#endif // MVP_SCHED_SAT_SAT_HH
