#include "ir/loop.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace mvp::ir
{

std::int64_t
LoopDim::tripCount() const
{
    if (step <= 0 || upper <= lower)
        return 0;
    return (upper - lower + step - 1) / step;
}

std::int64_t
ArrayDecl::sizeBytes() const
{
    return elements() * elemSize;
}

std::int64_t
ArrayDecl::elements() const
{
    std::int64_t n = 1;
    for (auto d : dims)
        n *= d;
    return n;
}

Operand
liveIn()
{
    return Operand{INVALID_ID, 0};
}

Operand
use(OpId producer, int distance)
{
    return Operand{producer, distance};
}

LoopNest::LoopNest(std::string name) : name_(std::move(name)) {}

const LoopDim &
LoopNest::innerLoop() const
{
    mvp_assert(!loops_.empty(), "loop nest '", name_, "' has no loops");
    return loops_.back();
}

std::int64_t
LoopNest::innerTripCount() const
{
    return innerLoop().tripCount();
}

std::int64_t
LoopNest::outerExecutions() const
{
    mvp_assert(!loops_.empty(), "loop nest '", name_, "' has no loops");
    std::int64_t n = 1;
    for (std::size_t d = 0; d + 1 < loops_.size(); ++d)
        n *= loops_[d].tripCount();
    return n;
}

const ArrayDecl &
LoopNest::array(ArrayId id) const
{
    mvp_assert(id >= 0 && static_cast<std::size_t>(id) < arrays_.size(),
               "array id ", id, " out of range in loop '", name_, "'");
    return arrays_[static_cast<std::size_t>(id)];
}

const Operation &
LoopNest::op(OpId id) const
{
    mvp_assert(id >= 0 && static_cast<std::size_t>(id) < ops_.size(),
               "op id ", id, " out of range in loop '", name_, "'");
    return ops_[static_cast<std::size_t>(id)];
}

std::vector<OpId>
LoopNest::memoryOps() const
{
    std::vector<OpId> out;
    for (const auto &o : ops_)
        if (o.isMemory())
            out.push_back(o.id);
    return out;
}

Addr
LoopNest::addressOf(const AffineRef &ref,
                    const std::vector<std::int64_t> &ivs) const
{
    const ArrayDecl &arr = array(ref.array);
    mvp_assert(ref.index.size() == arr.dims.size(),
               "reference to '", arr.name, "' has ", ref.index.size(),
               " indices, array has ", arr.dims.size(), " dims");
    std::int64_t linear = 0;
    for (std::size_t d = 0; d < ref.index.size(); ++d)
        linear = linear * arr.dims[d] + ref.index[d].eval(ivs);
    return arr.base + static_cast<Addr>(linear * arr.elemSize);
}

namespace
{

/**
 * Minimum and maximum of an affine expression over the (box) iteration
 * space: evaluate coefficient-by-coefficient at the bound that minimises
 * or maximises the term.
 */
std::pair<std::int64_t, std::int64_t>
affineRange(const AffineExpr &expr, const std::vector<LoopDim> &loops)
{
    std::int64_t lo = expr.constant;
    std::int64_t hi = expr.constant;
    for (std::size_t d = 0; d < loops.size(); ++d) {
        const std::int64_t c = expr.coeff(d);
        if (c == 0 || loops[d].tripCount() == 0)
            continue;
        const std::int64_t first = loops[d].lower;
        const std::int64_t last =
            loops[d].lower + (loops[d].tripCount() - 1) * loops[d].step;
        lo += c > 0 ? c * first : c * last;
        hi += c > 0 ? c * last : c * first;
    }
    return {lo, hi};
}

} // namespace

void
LoopNest::validate() const
{
    if (loops_.empty())
        mvp_fatal("loop nest '", name_, "' has no loops");
    for (const auto &l : loops_) {
        if (l.step <= 0)
            mvp_fatal("loop '", l.name, "' in '", name_,
                      "' has non-positive step ", l.step);
        if (l.tripCount() <= 0)
            mvp_fatal("loop '", l.name, "' in '", name_,
                      "' has empty iteration range");
    }
    for (std::size_t a = 0; a < arrays_.size(); ++a) {
        const auto &arr = arrays_[a];
        if (arr.id != static_cast<ArrayId>(a))
            mvp_fatal("array '", arr.name, "' has id ", arr.id,
                      ", expected ", a);
        if (arr.dims.empty())
            mvp_fatal("array '", arr.name, "' has no dimensions");
        for (auto d : arr.dims)
            if (d <= 0)
                mvp_fatal("array '", arr.name, "' has non-positive extent");
        if (arr.elemSize <= 0)
            mvp_fatal("array '", arr.name, "' has non-positive elemSize");
    }
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        const Operation &o = ops_[i];
        if (o.id != static_cast<OpId>(i))
            mvp_fatal("op ", i, " in '", name_, "' has id ", o.id);
        for (const Operand &in : o.inputs) {
            if (in.isLiveIn())
                continue;
            if (in.producer < 0 ||
                static_cast<std::size_t>(in.producer) >= ops_.size())
                mvp_fatal("op ", o.id, " in '", name_,
                          "' reads unknown producer ", in.producer);
            if (!ops_[static_cast<std::size_t>(in.producer)].producesValue())
                mvp_fatal("op ", o.id, " in '", name_,
                          "' reads a store result");
            if (in.distance < 0)
                mvp_fatal("op ", o.id, " in '", name_,
                          "' has negative dependence distance");
            if (in.distance == 0 && in.producer >= o.id)
                mvp_fatal("op ", o.id, " in '", name_,
                          "' reads op ", in.producer,
                          " in the same iteration before it executes");
        }
        if (o.isMemory() != o.memRef.has_value())
            mvp_fatal("op ", o.id, " in '", name_,
                      "': memory reference present iff Load/Store");
        if (o.isStore() && o.inputs.empty())
            mvp_fatal("store op ", o.id, " in '", name_,
                      "' has no value operand");
        if (o.memRef) {
            const ArrayDecl &arr = array(o.memRef->array);
            if (o.memRef->index.size() != arr.dims.size())
                mvp_fatal("op ", o.id, " indexes '", arr.name, "' with ",
                          o.memRef->index.size(), " subscripts, expected ",
                          arr.dims.size());
            for (std::size_t d = 0; d < arr.dims.size(); ++d) {
                auto [lo, hi] = affineRange(o.memRef->index[d], loops_);
                if (lo < 0 || hi >= arr.dims[d])
                    mvp_fatal("op ", o.id, " in '", name_, "' indexes '",
                              arr.name, "' dim ", d, " with range [", lo,
                              ", ", hi, "], extent ", arr.dims[d]);
            }
        }
    }
}

std::string
LoopNest::toString() const
{
    std::ostringstream os;
    os << "loop nest '" << name_ << "'\n";
    for (std::size_t d = 0; d < loops_.size(); ++d) {
        os << std::string(2 * (d + 1), ' ') << "for " << loops_[d].name
           << " = " << loops_[d].lower << " .. <" << loops_[d].upper
           << " step " << loops_[d].step << "  (trip "
           << loops_[d].tripCount() << ")\n";
    }
    os << "  arrays:\n";
    for (const auto &a : arrays_) {
        os << "    " << a.name << "[";
        for (std::size_t d = 0; d < a.dims.size(); ++d)
            os << (d ? "][" : "") << a.dims[d];
        os << "] elem=" << a.elemSize << "B base=0x" << std::hex << a.base
           << std::dec << "\n";
    }
    os << "  body:\n";
    for (const auto &o : ops_) {
        os << "    %" << o.id << " = " << opcodeName(o.opcode);
        if (!o.name.empty())
            os << " '" << o.name << "'";
        for (const auto &in : o.inputs) {
            if (in.isLiveIn())
                os << " livein";
            else if (in.distance == 0)
                os << " %" << in.producer;
            else
                os << " %" << in.producer << "@-" << in.distance;
        }
        if (o.memRef) {
            os << " " << array(o.memRef->array).name << "(";
            for (std::size_t d = 0; d < o.memRef->index.size(); ++d)
                os << (d ? ", " : "") << o.memRef->index[d].toString();
            os << ")";
        }
        os << "\n";
    }
    return os.str();
}

std::size_t
LoopNest::addLoop(LoopDim dim)
{
    loops_.push_back(std::move(dim));
    return loops_.size() - 1;
}

ArrayId
LoopNest::addArray(ArrayDecl decl)
{
    decl.id = static_cast<ArrayId>(arrays_.size());
    arrays_.push_back(std::move(decl));
    return arrays_.back().id;
}

OpId
LoopNest::addOp(Operation op)
{
    op.id = static_cast<OpId>(ops_.size());
    ops_.push_back(std::move(op));
    return ops_.back().id;
}

ArrayDecl &
LoopNest::mutableArray(ArrayId id)
{
    mvp_assert(id >= 0 && static_cast<std::size_t>(id) < arrays_.size(),
               "array id out of range");
    return arrays_[static_cast<std::size_t>(id)];
}

IterationSpace::IterationSpace(const LoopNest &nest) : nest_(nest)
{
    points_ = 1;
    for (const auto &l : nest.loops()) {
        trips_.push_back(l.tripCount());
        points_ *= l.tripCount();
    }
}

std::vector<std::int64_t>
IterationSpace::at(std::int64_t idx) const
{
    std::vector<std::int64_t> out;
    at(idx, out);
    return out;
}

void
IterationSpace::at(std::int64_t idx, std::vector<std::int64_t> &out) const
{
    mvp_assert(idx >= 0 && idx < points_, "iteration index out of range");
    out.resize(trips_.size());
    for (std::size_t d = trips_.size(); d-- > 0;) {
        const std::int64_t k = idx % trips_[d];
        idx /= trips_[d];
        const auto &l = nest_.loops()[d];
        out[d] = l.lower + k * l.step;
    }
}

std::int64_t
IterationSpace::indexOf(const std::vector<std::int64_t> &ivs) const
{
    mvp_assert(ivs.size() == trips_.size(), "IV vector has wrong arity");
    std::int64_t idx = 0;
    for (std::size_t d = 0; d < trips_.size(); ++d) {
        const auto &l = nest_.loops()[d];
        const std::int64_t k = (ivs[d] - l.lower) / l.step;
        mvp_assert(k >= 0 && k < trips_[d], "IV out of loop range");
        idx = idx * trips_[d] + k;
    }
    return idx;
}

} // namespace mvp::ir
