/**
 * @file
 * Evaluation of the paper's un-evaluated suggestion (§4.3): unroll a
 * loop by the cache-line length so that one instance of each spatially-
 * local load always misses and the rest always hit, letting the
 * threshold mechanism promote exactly the missing instance instead of
 * all-or-nothing.
 *
 * Runs the su2cor and turb3d suites (their inner trips divide the
 * factors) at unroll factors 1/2/4/8 on the 2-cluster machine with
 * realistic buses, RMCA at thresholds 0.75 and 0.00. Each (suite,
 * factor, threshold) cell is an independent work item — its unrolled
 * nests, DDGs and CME analysis are built inside the item — so the whole
 * table shards across --jobs workers with byte-identical output.
 *
 * Usage: ablation_unroll [--jobs N]
 */

#include <cstdio>
#include <vector>

#include "cme/provider.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "ddg/ddg.hh"
#include "harness/driver.hh"
#include "ir/transform.hh"
#include "machine/presets.hh"
#include "sched/backend.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace mvp;

int
main(int argc, char **argv)
{
    harness::parseObservabilityFlags(argc, argv);
    harness::ParallelDriver driver(harness::parseJobsFlag(argc, argv));
    std::string locality = harness::parseLocalityFlag(argc, argv);
    if (locality.empty())
        locality = "cme";
    harness::rejectUnknownFlags(argc, argv,
                                {"--jobs", "--locality",
                                 "--log-level", "--metrics",
                                 "--trace"});
    const auto machine = withLimitedBuses(makeTwoCluster(), 1, 1);
    // Resolve the provider name on the main thread: an unknown name
    // must fatal here, not inside a pool worker.
    (void)cme::LocalityRegistry::instance().create(locality);
    std::printf("machine: %s (locality provider '%s')\n\n",
                machine.summary().c_str(), locality.c_str());

    struct Cell
    {
        const char *suite;
        int factor;
        double thr;
        // Filled by the worker:
        Cycle compute = 0;
        Cycle stall = 0;
        double iiPerElem = 0;
        int promoted = 0;
        int counted = 0;
        std::string failures = {};   ///< reported after the pool joins
    };
    std::vector<Cell> cells;
    for (const char *suite : {"su2cor", "turb3d"})
        for (int factor : {1, 2, 4, 8})
            for (double thr : {0.75, 0.0})
                cells.push_back({suite, factor, thr});

    driver.run(cells.size(), [&](std::size_t i,
                                 sched::SchedContext &ctx) {
        Cell &cell = cells[i];
        const auto bench = workloads::benchmarkByName(cell.suite);
        for (const auto &loop : bench.loops) {
            if (loop.innerTripCount() % cell.factor != 0)
                continue;
            const auto unrolled = ir::unrollInner(loop, cell.factor);
            const auto g = ddg::Ddg::build(unrolled, machine);
            const auto analysis =
                cme::LocalityRegistry::instance().bind(locality,
                                                       unrolled);
            sched::SchedulerOptions opt;
            opt.missThreshold = cell.thr;
            opt.locality = analysis.get();
            auto r = sched::scheduleWithBackend("rmca", g, machine, opt,
                                                ctx);
            if (!r.ok) {
                // No worker-thread printf: messages would interleave
                // nondeterministically; the main thread prints them
                // in cell order after the pool joins.
                cell.failures += "  " + loop.name() + " x" +
                                 std::to_string(cell.factor) +
                                 " failed: " + r.error + "\n";
                continue;
            }
            const auto sim = sim::simulateLoop(g, r.schedule, machine);
            cell.compute += sim.computeCycles;
            cell.stall += sim.stallCycles;
            cell.iiPerElem +=
                static_cast<double>(r.schedule.ii()) / cell.factor;
            cell.promoted += r.stats.missScheduledLoads;
            ++cell.counted;
        }
    });

    for (const Cell &cell : cells)
        if (!cell.failures.empty())
            std::printf("%s", cell.failures.c_str());

    TextTable table({"suite", "unroll", "thr", "mean II/elem",
                     "promoted", "compute", "stall", "total"});
    table.setTitle("Unrolling x binding prefetching (RMCA)");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        table.addRow({cell.suite, std::to_string(cell.factor),
                      fmtDouble(cell.thr, 2),
                      fmtDouble(cell.iiPerElem / cell.counted, 2),
                      std::to_string(cell.promoted),
                      std::to_string(cell.compute),
                      std::to_string(cell.stall),
                      std::to_string(cell.compute + cell.stall)});
        if (i + 1 < cells.size() &&
            cells[i + 1].suite != std::string(cell.suite))
            table.addRule();
    }
    table.addRule();
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Reading the table: at threshold 0.75 the un-unrolled loops "
        "promote nothing\n(spatial loads miss only 12-25%% of the "
        "time), so stalls stay; unrolling by the\nline length "
        "concentrates the misses in one instance whose ratio ~100%% "
        "crosses\nany threshold -- stalls drop without paying the miss "
        "latency on every copy.\n");
    return 0;
}
