#include "sched/ordering.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mvp::sched
{

namespace
{

/**
 * Reachability matrix (transitive, not reflexive) via per-node BFS,
 * stored flat (row-major n x n) in a caller-owned reusable buffer.
 */
void
reachability(const ddg::Ddg &graph, std::vector<char> &reach,
             std::vector<OpId> &work)
{
    const std::size_t n = graph.size();
    reach.assign(n * n, 0);
    for (std::size_t s = 0; s < n; ++s) {
        char *row = reach.data() + s * n;
        work.clear();
        work.push_back(static_cast<OpId>(s));
        while (!work.empty()) {
            const OpId u = work.back();
            work.pop_back();
            for (int ei : graph.outEdges(u)) {
                const OpId v = graph.edges()[static_cast<std::size_t>(ei)]
                                   .dst;
                if (!row[static_cast<std::size_t>(v)]) {
                    row[static_cast<std::size_t>(v)] = 1;
                    work.push_back(v);
                }
            }
        }
    }
}

} // namespace

std::vector<OpId>
computeOrdering(const ddg::Ddg &graph, Cycle ii)
{
    std::vector<OpId> order;
    computeOrdering(graph, ii, order);
    return order;
}

void
computeOrdering(const ddg::Ddg &graph, Cycle ii, std::vector<OpId> &order)
{
    OrderingScratch scratch;
    computeOrdering(graph, ii, order, scratch);
}

void
computeOrdering(const ddg::Ddg &graph, Cycle ii, std::vector<OpId> &order,
                OrderingScratch &scratch)
{
    order.clear();
    const std::size_t n = graph.size();
    if (n == 0)
        return;

    // The ASAP/ALAP tables live in the caller's scratch with the rest
    // of the ordering workspace: one scheduler run recomputes them
    // once, allocation-free on a warm context.
    ddg::Ddg::TimeBounds &tb = scratch.tb;
    graph.timeBounds(ii, tb);

    // Reusable workspace: the scheduler recomputes orderings constantly
    // (one per scheduled loop) and every buffer here reaches a
    // steady-state capacity after a few calls.
    std::vector<char> &reach = scratch.reach;
    std::vector<char> &taken = scratch.taken;
    std::vector<OpId> &placed_union = scratch.placedUnion;
    std::vector<OpId> &set_nodes = scratch.setNodes;   // flat sets
    std::vector<std::size_t> &set_begin = scratch.setBegin;

    // The reachability matrix is only consulted when a *second*
    // recurrence set absorbs path nodes; most loops have at most one
    // cyclic SCC, so it is built lazily.
    bool have_reach = false;
    auto ensure_reach = [&]() {
        if (!have_reach) {
            reachability(graph, reach, scratch.work);
            have_reach = true;
        }
    };

    // ---- Step 1: the priority list of node sets. ----
    // Non-trivial SCCs by decreasing RecMII (ties: smaller first id);
    // the new set also absorbs every node lying on a path between the
    // union of earlier sets and the SCC. Remaining nodes form the final
    // set. Sets are stored back to back in set_nodes; set_begin holds
    // each set's start offset.
    auto &recurrence_sccs = scratch.recurrenceSccs;
    recurrence_sccs.clear();
    const auto &sccs = graph.sccs();
    for (std::size_t s = 0; s < sccs.size(); ++s) {
        const bool cyclic =
            sccs[s].size() > 1 || graph.inRecurrence(sccs[s][0]);
        if (cyclic)
            recurrence_sccs.push_back(
                {static_cast<int>(s), graph.sccRecMii(static_cast<int>(s))});
    }
    std::sort(recurrence_sccs.begin(), recurrence_sccs.end(),
              [&](const OrderingScratch::SccInfo &a,
                  const OrderingScratch::SccInfo &b) {
                  if (a.recMii != b.recMii)
                      return a.recMii > b.recMii;
                  return sccs[static_cast<std::size_t>(a.index)][0] <
                         sccs[static_cast<std::size_t>(b.index)][0];
              });

    taken.assign(n, 0);
    placed_union.clear();
    set_nodes.clear();
    set_begin.clear();
    for (const auto &info : recurrence_sccs) {
        const std::size_t start = set_nodes.size();
        for (OpId v : sccs[static_cast<std::size_t>(info.index)]) {
            if (!taken[static_cast<std::size_t>(v)]) {
                taken[static_cast<std::size_t>(v)] = 1;
                set_nodes.push_back(v);
            }
        }
        if (set_nodes.size() == start)
            continue;
        // Absorb nodes on paths between earlier sets and this one (the
        // set under construction is the flat tail, so growth during the
        // scan is visible to later candidates, as before).
        if (!placed_union.empty()) {
            ensure_reach();
            for (std::size_t v = 0; v < n; ++v) {
                if (taken[v])
                    continue;
                bool from_prev = false;
                bool to_set = false;
                bool from_set = false;
                bool to_prev = false;
                for (OpId p : placed_union) {
                    from_prev |= reach[static_cast<std::size_t>(p) * n + v];
                    to_prev |= reach[v * n + static_cast<std::size_t>(p)];
                }
                for (std::size_t i = start; i < set_nodes.size(); ++i) {
                    const auto s = static_cast<std::size_t>(set_nodes[i]);
                    to_set |= reach[v * n + s];
                    from_set |= reach[s * n + v];
                }
                if ((from_prev && to_set) || (from_set && to_prev)) {
                    taken[v] = 1;
                    set_nodes.push_back(static_cast<OpId>(v));
                }
            }
        }
        for (std::size_t i = start; i < set_nodes.size(); ++i)
            placed_union.push_back(set_nodes[i]);
        set_begin.push_back(start);
    }
    // Final set: everything not yet taken.
    {
        const std::size_t start = set_nodes.size();
        for (std::size_t v = 0; v < n; ++v)
            if (!taken[v])
                set_nodes.push_back(static_cast<OpId>(v));
        if (set_nodes.size() > start)
            set_begin.push_back(start);
    }

    // ---- Step 2: swing ordering inside the concatenated sets. ----
    order.reserve(n);
    std::vector<char> &ordered = scratch.ordered;
    ordered.assign(n, 0);

    auto height = [&](OpId v) { return tb.height(v); };
    auto depth = [&](OpId v) { return tb.depth(v); };
    auto mobility = [&](OpId v) { return tb.mobility(v); };

    // Choose from R by the sweep's priority; ties: lowest mobility, then
    // lowest id (determinism).
    auto pick = [&](const std::vector<OpId> &r, bool top_down) {
        OpId best = r[0];
        for (OpId v : r) {
            const Cycle pv = top_down ? height(v) : depth(v);
            const Cycle pb = top_down ? height(best) : depth(best);
            if (pv > pb ||
                (pv == pb && (mobility(v) < mobility(best) ||
                              (mobility(v) == mobility(best) && v < best))))
                best = v;
        }
        return best;
    };

    // Visit v's unordered predecessors / successors inside the current
    // set, in edge order, without materialising a vector per call.
    auto for_preds_in = [&](OpId v, const std::vector<char> &in_set,
                            auto &&fn) {
        for (int ei : graph.inEdges(v)) {
            const OpId u =
                graph.edges()[static_cast<std::size_t>(ei)].src;
            if (in_set[static_cast<std::size_t>(u)] &&
                !ordered[static_cast<std::size_t>(u)])
                fn(u);
        }
    };
    auto for_succs_in = [&](OpId v, const std::vector<char> &in_set,
                            auto &&fn) {
        for (int ei : graph.outEdges(v)) {
            const OpId w =
                graph.edges()[static_cast<std::size_t>(ei)].dst;
            if (in_set[static_cast<std::size_t>(w)] &&
                !ordered[static_cast<std::size_t>(w)])
                fn(w);
        }
    };

    std::vector<char> &in_set = scratch.inSet;
    in_set.assign(n, 0);
    std::vector<OpId> &r = scratch.frontier;
    r.clear();
    auto push_unique = [&](OpId w) {
        if (std::find(r.begin(), r.end(), w) == r.end())
            r.push_back(w);
    };

    for (std::size_t si = 0; si < set_begin.size(); ++si) {
        const std::size_t begin = set_begin[si];
        const std::size_t end = si + 1 < set_begin.size()
                                    ? set_begin[si + 1]
                                    : set_nodes.size();
        std::fill(in_set.begin(), in_set.end(), 0);
        std::size_t remaining = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const OpId v = set_nodes[i];
            if (!ordered[static_cast<std::size_t>(v)]) {
                in_set[static_cast<std::size_t>(v)] = 1;
                ++remaining;
            }
        }

        while (remaining > 0) {
            // Seed the sweep: unordered set members adjacent to the
            // global order so far; prefer the predecessor side
            // (bottom-up) as [22] does.
            r.clear();
            bool top_down;
            // Predecessors of ordered nodes that lie in this set.
            for (OpId o : order)
                for_preds_in(o, in_set, [&](OpId u) { r.push_back(u); });
            if (!r.empty()) {
                top_down = false;   // consume predecessors bottom-up
            } else {
                for (OpId o : order)
                    for_succs_in(o, in_set,
                                 [&](OpId w) { r.push_back(w); });
                if (!r.empty()) {
                    top_down = true;
                } else {
                    // Detached from everything ordered: start top-down
                    // from the set's most source-like node.
                    for (std::size_t v = 0; v < n; ++v)
                        if (in_set[v] && !ordered[v])
                            r.push_back(static_cast<OpId>(v));
                    top_down = true;
                }
            }
            std::sort(r.begin(), r.end());
            r.erase(std::unique(r.begin(), r.end()), r.end());

            // Alternate directional sweeps until the set drains or the
            // frontier empties (then re-seed).
            while (!r.empty()) {
                while (!r.empty()) {
                    const OpId v = pick(r, top_down);
                    order.push_back(v);
                    ordered[static_cast<std::size_t>(v)] = 1;
                    --remaining;
                    std::erase(r, v);
                    if (top_down)
                        for_succs_in(v, in_set, push_unique);
                    else
                        for_preds_in(v, in_set, push_unique);
                }
                // Swing: pick up the other direction's frontier.
                top_down = !top_down;
                for (OpId o : order) {
                    if (top_down)
                        for_succs_in(o, in_set, push_unique);
                    else
                        for_preds_in(o, in_set, push_unique);
                }
                if (r.empty())
                    break;
            }
        }
    }

    mvp_assert(order.size() == n, "ordering lost nodes");
}

int
bothNeighbourCount(const ddg::Ddg &graph, const std::vector<OpId> &order)
{
    OrderingScratch scratch;
    return bothNeighbourCount(graph, order, scratch);
}

int
bothNeighbourCount(const ddg::Ddg &graph, const std::vector<OpId> &order,
                   OrderingScratch &scratch)
{
    std::vector<char> &before = scratch.before;
    before.assign(graph.size(), 0);
    int count = 0;
    for (OpId v : order) {
        bool has_pred = false;
        bool has_succ = false;
        for (int ei : graph.inEdges(v)) {
            const OpId u = graph.edges()[static_cast<std::size_t>(ei)].src;
            if (u != v && before[static_cast<std::size_t>(u)])
                has_pred = true;
        }
        for (int ei : graph.outEdges(v)) {
            const OpId w = graph.edges()[static_cast<std::size_t>(ei)].dst;
            if (w != v && before[static_cast<std::size_t>(w)])
                has_succ = true;
        }
        if (has_pred && has_succ)
            ++count;
        before[static_cast<std::size_t>(v)] = 1;
    }
    return count;
}

} // namespace mvp::sched
